PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-sharded test-region bench bench-sharded bench-region lint

test:
	$(PYTHON) -m pytest -x -q

# The sharded-equivalence gate: fixed-seed, fully deterministic.
test-sharded:
	$(PYTHON) -m pytest -q tests/test_tsdb_sharded.py

# The fan-in gate: queue invariants + N-city/merged-dataport equivalence.
test-region:
	$(PYTHON) -m pytest -q tests/test_region_queue.py tests/test_region_hub.py

bench:
	$(PYTHON) -m pytest -q benchmarks/test_ingest_throughput.py -s

bench-sharded:
	$(PYTHON) -m pytest -q benchmarks/test_ingest_throughput.py -k sharded -s

# 1/2/4-city fan-in throughput, recorded into BENCH_ingest.json.
bench-region:
	$(PYTHON) -m pytest -q benchmarks/test_region_fanin.py -s

lint:
	$(PYTHON) -m ruff check src/
