PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-sharded test-region test-persist test-query test-catalog test-replication test-tier serve-test bench bench-sharded bench-region bench-persist bench-query bench-serve bench-catalog bench-replication bench-tier lint

test:
	$(PYTHON) -m pytest -x -q

# The sharded-equivalence gate: fixed-seed, fully deterministic.
test-sharded:
	$(PYTHON) -m pytest -q tests/test_tsdb_sharded.py

# The fan-in gate: queue invariants + N-city/merged-dataport equivalence.
test-region:
	$(PYTHON) -m pytest -q tests/test_region_queue.py tests/test_region_hub.py

# The persistence-format gate: binary/text round-trip equivalence,
# codec properties, corruption recovery, spill adoption.
test-persist:
	$(PYTHON) -m pytest -q tests/test_tsdb_segments.py tests/test_tsdb_persistence.py

# The query-engine gate: builder/run_many/pushdown/expression results
# byte-identical to the seed run() path, plus wire codec round-trips.
test-query:
	$(PYTHON) -m pytest -q tests/test_tsdb_plan.py tests/test_tsdb_wire.py

# The serving-layer gate: cache/refresh results byte-identical to
# uncached run_many, live asyncio server survives malformed requests,
# per-tenant admission control, wire error paths.
serve-test:
	$(PYTHON) -m pytest -q tests/test_serve.py tests/test_tsdb_wire.py

# The catalog gate: postings-index matching byte-identical to the
# brute-force scan under random ingest/retention/restore interleavings
# (hypothesis), cardinality guard-rails, catalog rebuild on every
# restore path, catalog wire/CLI surface.
test-catalog:
	$(PYTHON) -m pytest -q tests/test_tsdb_catalog.py tests/test_tsdb_wire.py tests/test_serve.py

# The replication gate: a promoted follower byte-identical to a
# from-scratch build of the acknowledged input under seeded fault
# injection (disconnects, dup/reorder, torn tails, bit flips), plus the
# live two-process SIGUSR1 failover drill.
test-replication:
	$(PYTHON) -m pytest -q tests/test_replication.py

# The tiered-storage gate: compact(log) restores byte-identical to
# replay(log) under random op interleavings (hypothesis, both formats,
# single + sharded), crash-safe swap-in, cold-shard paging equivalence,
# rollup-tier cascade journaled through both WAL formats.
test-tier:
	$(PYTHON) -m pytest -q tests/test_tsdb_tier.py

bench:
	$(PYTHON) -m pytest -q benchmarks/test_ingest_throughput.py -s

bench-sharded:
	$(PYTHON) -m pytest -q benchmarks/test_ingest_throughput.py -k sharded -s

# 1/2/4-city fan-in throughput, recorded into BENCH_ingest.json.
bench-region:
	$(PYTHON) -m pytest -q benchmarks/test_region_fanin.py -s

# WAL append / replay / snapshot-restore, text vs binary segments;
# gates the >=10x binary speedup and records the persistence section.
bench-persist:
	$(PYTHON) -m pytest -q benchmarks/test_persistence.py -s

# 12-panel dashboard workload, seed vs batched planner, 1/4/8 shards;
# gates the >=2x batched speedup and records the query section.
bench-query:
	$(PYTHON) -m pytest -q benchmarks/test_query_throughput.py -s

# TCP end-to-end serving: cold vs cached vs incremental dashboard
# refresh + sustained queries/sec at N concurrent clients; gates the
# >=5x cached speedup and records the serve section.
bench-serve:
	$(PYTHON) -m pytest -q benchmarks/test_serve_throughput.py -s

# Inverted-index matching vs pre-catalog scan at 120k series; gates
# the >=5x indexed speedup and records the catalog section.
bench-catalog:
	$(PYTHON) -m pytest -q benchmarks/test_catalog.py -s

# Steady-state replication lag, catch-up replay throughput, and
# promote-to-first-query failover time; gates catch-up >= 5x live
# ingest and records the replication section.
bench-replication:
	$(PYTHON) -m pytest -q benchmarks/test_replication_throughput.py -s

# Marker-heavy aged-WAL compaction and cold-start paging; gates the
# >=5x compacted-replay speedup and records the tier section.
bench-tier:
	$(PYTHON) -m pytest -q benchmarks/test_tier.py -s

lint:
	$(PYTHON) -m ruff check src/
