PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-sharded bench bench-sharded lint

test:
	$(PYTHON) -m pytest -x -q

# The sharded-equivalence gate: fixed-seed, fully deterministic.
test-sharded:
	$(PYTHON) -m pytest -q tests/test_tsdb_sharded.py

bench:
	$(PYTHON) -m pytest -q benchmarks/test_ingest_throughput.py -s

bench-sharded:
	$(PYTHON) -m pytest -q benchmarks/test_ingest_throughput.py -k sharded -s

lint:
	$(PYTHON) -m ruff check src/
