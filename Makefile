PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench lint

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest -q benchmarks/test_ingest_throughput.py -s

lint:
	$(PYTHON) -m ruff check src/
