"""Dashboard query throughput: seed one-shot vs the v2 batched planner.

The paper's dashboards fire many simultaneous OpenTSDB-shape queries
over the same city feeds.  This benchmark replays that workload — a
12-panel dashboard (per-metric city average, city spread, and per-node
breakdown, over 4 metrics) against the 1M-point ingest database — and
records the ``query`` section of ``BENCH_ingest.json``:

- *seed_sequential*: one query at a time through a frozen replica of
  the seed execution path (per-call match + scans, hash-based unique
  timestamp union, serial shard fan-out) — the pre-redesign baseline
  the acceptance gate measures against;
- *sequential*: one ``run()`` per panel on today's engine — the shims
  share the planner's faster exact kernels but plan each call alone;
- *batched_serial* / *batched*: one ``run_many`` over all panels —
  shared matching, one scan per touched series, shared union+stack
  across panels, pushdown into shards — without and with the
  thread-pooled fan-out (identical results either way; the pool only
  pays off with >1 core).

Gate: on the 4-shard store, batched ``run_many`` must beat the
sequential seed path by ≥2× — while every path returns byte-identical
results (asserted here on every shard count).
"""

from __future__ import annotations

import time
from collections import defaultdict

import numpy as np
import pytest

from repro.tsdb import (
    BatchBuilder,
    Query,
    ShardedTSDB,
    TSDB,
    aggregators,
    run_boundaries,
)
from repro.tsdb.downsample import apply as apply_downsample
from repro.tsdb.query import QueryResult, ResultSeries, compute_rate
from repro.tsdb.series import SeriesSlice

N_POINTS = 1_000_000
N_NODES = 25
METRICS = ["air.co2.ppm", "air.no2.ugm3", "air.pm10.ugm3", "weather.temperature.c"]
N_SERIES = N_NODES * len(METRICS)
from bench_io import update_section  # noqa: E402
SHARD_COUNTS = (1, 4, 8)
FLUSH_SIZE = 100_000
REPEATS = 5


# ---------------------------------------------------------------------------
# Frozen seed baseline: the pre-planner query path, verbatim.
# One scan per (query, key), np.unique timestamp unions, serial shard
# fan-out — what `run()` executed before this redesign.  Kept here (not
# in the library) so the benchmark always measures the same baseline.
# ---------------------------------------------------------------------------


def _seed_aggregate_across(slices, agg):
    slices = [s for s in slices if len(s) > 0]
    if not slices:
        return SeriesSlice(np.empty(0, np.int64), np.empty(0, np.float64))
    if len(slices) == 1:
        return slices[0]
    all_ts = np.unique(np.concatenate([s.timestamps for s in slices]))
    stacked = np.full((len(slices), all_ts.shape[0]), np.nan)
    for i, s in enumerate(slices):
        idx = np.searchsorted(all_ts, s.timestamps)
        stacked[i, idx] = s.values
    return SeriesSlice(all_ts, agg(stacked))


def _seed_execute_query(query, matched, scan):
    ds = query.parsed_downsample()
    agg = aggregators.get_columnar(query.aggregator)
    groups = defaultdict(list)
    for key in matched:
        label = tuple((g, key.tag(g, "")) for g in sorted(query.group_by))
        groups[label].append(key)
    scanned = 0
    series_out = []
    for label, keys in sorted(groups.items()):
        slices = []
        for key in sorted(keys, key=str):
            sl = scan(key)
            scanned += len(sl)
            if query.rate:
                sl = compute_rate(sl)
            slices.append(sl)
        combined = _seed_aggregate_across(slices, agg)
        if ds is not None:
            combined = apply_downsample(combined, ds, query.start, query.end)
        series_out.append(
            ResultSeries(
                metric=query.metric,
                group_tags=dict(label),
                slice=combined,
                source_series=tuple(sorted(keys, key=str)),
            )
        )
    if not series_out:
        empty = SeriesSlice(np.empty(0, np.int64), np.empty(0, np.float64))
        series_out.append(ResultSeries(query.metric, {}, empty, ()))
    return QueryResult(query=query, series=tuple(series_out), scanned_points=scanned)


def seed_run(db, query: Query) -> QueryResult:
    """The seed one-shot path, for single or sharded stores."""
    if isinstance(db, ShardedTSDB):
        slices = {}
        for sh in db.shards:
            for key in sh._match(query.metric, query.tags):
                slices[key] = sh._stores[key].scan(query.start, query.end)
        return _seed_execute_query(query, list(slices), slices.__getitem__)
    matched = db._match(query.metric, query.tags)
    return _seed_execute_query(
        query,
        matched,
        lambda key: db._stores[key].scan(query.start, query.end),
    )


# ---------------------------------------------------------------------------
# Workload
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def workload():
    """Same 1M-point arrival-ordered workload as the ingest benchmark."""
    rng = np.random.default_rng(2017)
    rows_per_series = N_POINTS // N_SERIES
    base = np.repeat(np.arange(rows_per_series, dtype=np.int64) * 60, N_SERIES)
    series_idx = np.tile(np.arange(N_SERIES, dtype=np.int64), rows_per_series)
    ts = base + (series_idx % 7)
    late = rng.random(ts.shape[0]) < 0.01
    ts[late] -= 120
    values = rng.normal(400.0, 25.0, size=ts.shape[0])
    return series_idx, ts, values


def series_tags(s: int) -> tuple[str, dict]:
    return METRICS[s % len(METRICS)], {
        "node": f"ctt-{s // len(METRICS):02d}", "city": "trondheim",
    }


def ingest(db, series_idx, ts, values) -> None:
    tag_cache = [series_tags(s) for s in range(N_SERIES)]
    n = ts.shape[0]
    for lo in range(0, n, FLUSH_SIZE):
        hi = min(lo + FLUSH_SIZE, n)
        builder = BatchBuilder()
        chunk_series = series_idx[lo:hi]
        order = np.argsort(chunk_series, kind="stable")
        chunk_series = chunk_series[order]
        chunk_ts = ts[lo:hi][order]
        chunk_vals = values[lo:hi][order]
        starts, ends = run_boundaries(chunk_series)
        for s, e in zip(starts, ends):
            metric, tags = tag_cache[int(chunk_series[s])]
            builder.add_series(metric, chunk_ts[s:e], chunk_vals[s:e], tags)
        db.put_batch(builder.build())


def dashboard_queries(t_max: int) -> list[Query]:
    """The 12-panel dashboard: 3 panels per metric over 4 metrics.

    Per metric: the city-wide mean, the city-wide spread (same series
    and window — the batch shares their alignment work), and the
    per-node breakdown (single-series groups — pushed down whole into
    the owning shards).
    """
    panels: list[Query] = []
    for metric in METRICS:
        city = {"city": "trondheim"}
        panels.append(Query(metric, 0, t_max, tags=city, downsample="5m-avg"))
        panels.append(
            Query(metric, 0, t_max, tags=city, aggregator="dev",
                  downsample="15m-max")
        )
        panels.append(
            Query(metric, 0, t_max, tags=city, downsample="5m-avg",
                  group_by=("node",))
        )
    return panels


def median_seconds(fn, repeats: int = REPEATS) -> tuple[float, object]:
    out = None
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        times.append(time.perf_counter() - t0)
    return sorted(times)[len(times) // 2], out


def assert_identical(a, b):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert len(ra) == len(rb)
        assert ra.scanned_points == rb.scanned_points
        for sa, sb in zip(ra, rb):
            assert dict(sa.group_tags) == dict(sb.group_tags)
            assert np.array_equal(sa.timestamps, sb.timestamps)
            assert np.array_equal(sa.values, sb.values, equal_nan=True)


def test_batched_dashboard_beats_sequential(workload):
    series_idx, ts, values = workload
    t_max = int(ts.max())
    panels = dashboard_queries(t_max)

    report: dict = {
        "workload": {
            "points": int(ts.shape[0]),
            "series": N_SERIES,
            "panels": len(panels),
            "repeats": REPEATS,
        },
        "stores": {},
    }

    single = TSDB()
    ingest(single, series_idx, ts, values)
    seed_single_s, reference = median_seconds(
        lambda: [seed_run(single, q) for q in panels]
    )
    seq_single_s, seq_single = median_seconds(
        lambda: [single.run(q) for q in panels]
    )
    batch_single_s, batch_single = median_seconds(
        lambda: single.run_many(panels)
    )
    assert_identical(seq_single, reference)
    assert_identical(batch_single, reference)
    report["stores"]["single"] = {
        "seed_sequential_ms": round(seed_single_s * 1e3, 2),
        "sequential_ms": round(seq_single_s * 1e3, 2),
        "batched_ms": round(batch_single_s * 1e3, 2),
        "batched_speedup_vs_seed": round(seed_single_s / batch_single_s, 2),
    }
    print(f"\nBENCH_query[single]: seed {seed_single_s * 1e3:.1f} ms, "
          f"sequential {seq_single_s * 1e3:.1f} ms, "
          f"batched {batch_single_s * 1e3:.1f} ms "
          f"({seed_single_s / batch_single_s:.2f}x vs seed)")

    speedup_at_4 = None
    for shards in SHARD_COUNTS:
        db = ShardedTSDB(shards)
        ingest(db, series_idx, ts, values)

        # The seed model: one query at a time, serial fan-out, no reuse.
        seed_s, seed_results = median_seconds(
            lambda: [seed_run(db, q) for q in panels]
        )
        # Today's one-shot shims (each call plans alone).
        seq_s, seq_results = median_seconds(
            lambda: [db.run(q, parallel=False) for q in panels]
        )
        # The batched planner, without and with the thread pool.
        plan_s, plan_results = median_seconds(
            lambda: db.run_many(panels, parallel=False)
        )
        batch_s, batch_results = median_seconds(
            lambda: db.run_many(panels)
        )

        assert_identical(seq_results, seed_results)
        assert_identical(plan_results, seed_results)
        assert_identical(batch_results, seed_results)
        assert_identical(seed_results, reference)

        speedup = seed_s / batch_s
        if shards == 4:
            speedup_at_4 = speedup
        report["stores"][f"sharded_{shards}"] = {
            "seed_sequential_ms": round(seed_s * 1e3, 2),
            "sequential_ms": round(seq_s * 1e3, 2),
            "batched_serial_ms": round(plan_s * 1e3, 2),
            "batched_ms": round(batch_s * 1e3, 2),
            "batched_speedup_vs_seed": round(speedup, 2),
        }
        print(f"BENCH_query[{shards} shards]: seed {seed_s * 1e3:.1f} ms, "
              f"sequential {seq_s * 1e3:.1f} ms, "
              f"batched-serial {plan_s * 1e3:.1f} ms, "
              f"batched {batch_s * 1e3:.1f} ms ({speedup:.2f}x vs seed)")

    update_section("query", report)

    # The acceptance gate: batched multi-query execution on the 4-shard
    # store beats N sequential seed run() calls by >=2x.
    assert speedup_at_4 is not None and speedup_at_4 >= 2.0, (
        f"batched dashboard only {speedup_at_4:.2f}x faster than the seed "
        "path on 4 shards"
    )
