"""Ablations: the design choices DESIGN.md calls out, measured.

Each test pits a design decision against its alternative and asserts the
direction of the effect; benchmarks quantify the cost/benefit.
"""

import datetime as dt

import numpy as np
import pytest

from conftest import report
from repro.dataport import (
    ActorSystem,
    AlarmKind,
    AlarmLog,
    FleetSupervisor,
    GatewayHeard,
    TwinConfig,
)
from repro.geo import TRONDHEIM
from repro.lorawan import DutyCycle, Gateway, LoraDevice, PropagationModel, RadioPlane
from repro.sensors import (
    BatteryAdaptive,
    FixedInterval,
    PowerSpec,
    SensorNode,
    UrbanEnvironment,
)
from repro.simclock import DAY, HOUR, Scheduler, SimClock, from_datetime
from repro.tsdb import Query, TSDB


# ---------------------------------------------------------------------------
# Ablation 1: downsampling for dashboard queries
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def dense_db():
    """30 days of 1-minute data for one series (43,200 points)."""
    db = TSDB()
    rng = np.random.default_rng(0)
    ts = np.arange(0, 30 * DAY, 60)
    vals = 400.0 + rng.normal(0, 5.0, ts.size)
    for t, v in zip(ts.tolist(), vals.tolist()):
        db.put("air.co2.ppm", t, v, {"node": "n1"})
    return db


def test_ablation_downsample_reduces_payload(dense_db):
    raw = dense_db.run(Query("air.co2.ppm", 0, 30 * DAY))
    ds = dense_db.run(Query("air.co2.ppm", 0, 30 * DAY, downsample="1h-avg"))
    assert len(raw.single()) == 43_200
    assert len(ds.single()) == 720
    report(
        "Ablation: downsampling",
        [("raw points", len(raw.single())), ("1h-avg buckets", len(ds.single())),
         ("reduction", f"{len(raw.single()) / len(ds.single()):.0f}x")],
    )


def test_ablation_downsample_query_benchmark(dense_db, benchmark):
    def downsampled():
        return dense_db.run(
            Query("air.co2.ppm", 0, 30 * DAY, downsample="1h-avg")
        )

    result = benchmark(downsampled)
    assert len(result.single()) == 720


# ---------------------------------------------------------------------------
# Ablation 2: EU868 duty cycle on/off
# ---------------------------------------------------------------------------


def test_ablation_duty_cycle_blocks_rapid_fire():
    plane = RadioPlane(
        PropagationModel(shadowing_sigma_db=0.0), np.random.default_rng(0)
    )
    plane.add_gateway(Gateway("gw", TRONDHEIM.destination(0.0, 300.0)))

    limited = LoraDevice("a", TRONDHEIM, plane, sf=12,
                         duty_cycle=DutyCycle(limit=0.01))
    unlimited = LoraDevice("b", TRONDHEIM, plane, sf=12,
                           duty_cycle=DutyCycle(limit=1.0))
    # 2 s cadence at SF12 (~1.5 s airtime) brutally violates 1 %.
    blocked = sum(
        1 for i in range(60) if limited.send(b"\x00" * 18, now=i * 2).blocked_by_duty_cycle
    )
    free = sum(
        1 for i in range(60) if unlimited.send(b"\x00" * 18, now=i * 2 + 1).blocked_by_duty_cycle
    )
    # Budget is 36 s airtime/h; SF12 frames are ~1.8 s, so ~19 of 60 fit.
    assert blocked >= 38
    assert free == 0
    report(
        "Ablation: duty cycle (60 frames at 2 s cadence, SF12)",
        [("blocked with 1% limit", blocked), ("blocked without", free)],
    )


# ---------------------------------------------------------------------------
# Ablation 3: adaptive vs fixed sampling under winter starvation
# ---------------------------------------------------------------------------


def _run_policy(policy, seed=2):
    env = UrbanEnvironment("trondheim", TRONDHEIM, seed=7)
    start = from_datetime(dt.datetime(2017, 1, 5))  # polar-night-ish week
    sched = Scheduler(SimClock(start=start))
    plane = RadioPlane(
        PropagationModel(shadowing_sigma_db=0.0), np.random.default_rng(seed)
    )
    plane.add_gateway(Gateway("gw", TRONDHEIM.destination(0.0, 300.0)))
    node = SensorNode(
        "n",
        TRONDHEIM,
        env,
        LoraDevice("n", TRONDHEIM, plane, sf=9),
        rng=np.random.default_rng(seed),
        power_spec=PowerSpec(battery_capacity_mah=150.0),
        policy=policy,
        initial_soc=0.4,
        start_time=start,
    )
    node._last_wake = start
    node.schedule(sched, phase_s=0)
    sched.run_until(start + 3 * DAY)
    return node.stats


def test_ablation_adaptive_sampling_survives_winter():
    adaptive = _run_policy(BatteryAdaptive(300))
    fixed = _run_policy(FixedInterval(300))
    assert adaptive.samples < fixed.samples  # it slowed down on purpose
    assert adaptive.brownouts <= fixed.brownouts
    report(
        "Ablation: sampling policy (3 January days, 150 mAh)",
        [
            ("policy", "samples", "brownouts"),
            ("adaptive", adaptive.samples, adaptive.brownouts),
            ("fixed 300s", fixed.samples, fixed.brownouts),
        ],
    )


# ---------------------------------------------------------------------------
# Ablation 4: cycles-to-detect vs false alarms on adaptive nodes
# ---------------------------------------------------------------------------


def _twin_false_alarms(cycles_to_failure, mirror_policy):
    """A node reports at 300 s, then its battery drops and it legally
    slows to 900 s (the adaptive policy).  Returns the number of
    SENSOR_OVERDUE incidents the twin raised — any incident is a false
    alarm, because the node never actually failed.
    """
    from tests.test_dataport_twins import Harness

    config = TwinConfig(
        cycles_to_failure=cycles_to_failure,
        low_factor=3 if mirror_policy else 1,
        critical_factor=12 if mirror_policy else 1,
    )
    h = Harness(config)
    h.add_sensor("n")
    fcnt = 0
    # Healthy phase: 8 packets at the nominal 300 s cadence.
    for i in range(8):
        h.scheduler.run_until(i * 300)
        h.feed("n", ts=i * 300, battery_v=3.9, fcnt=fcnt)
        fcnt += 1
    # Battery low: the node stretches to 900 s (by design, not failure).
    t = 8 * 300
    for _ in range(6):
        h.scheduler.run_until(t)
        h.feed("n", ts=t, battery_v=3.5, fcnt=fcnt)
        fcnt += 1
        t += 900
    h.scheduler.run_until(t)
    return sum(
        1 for a in h.alarms.history if a.kind is AlarmKind.SENSOR_OVERDUE
    )


def test_ablation_policy_mirror_prevents_false_alarms():
    """Without mirroring the node's adaptive policy, the paper's 3-cycle
    detector false-alarms on a merely-slowed-down node; with the mirror
    it stays quiet."""
    naive = _twin_false_alarms(cycles_to_failure=2.0, mirror_policy=False)
    mirrored = _twin_false_alarms(cycles_to_failure=2.0, mirror_policy=True)
    assert naive >= 1  # false alarm(s)
    assert mirrored == 0
    report(
        "Ablation: twin model of adaptive sampling",
        [("naive 300s expectation", f"{naive} false alarm(s)"),
         ("policy-mirrored expectation", f"{mirrored} false alarm(s)")],
    )


# ---------------------------------------------------------------------------
# Ablation 5: hierarchical grouping vs alarm storm
# ---------------------------------------------------------------------------


def _gateway_outage_alarms(monitor_gateways: bool) -> int:
    """12 sensors behind one gateway; the gateway dies.

    With gateway twins (the paper's hierarchy) the supervisor knows the
    gateway went silent and groups the sensor outages under it.  Without
    gateway monitoring each sensor looks independently dead.
    """
    from tests.test_dataport_twins import Harness

    h = Harness()
    if monitor_gateways:
        h.add_gateway("gw")
    for i in range(12):
        h.add_sensor(f"n{i:02d}")
        h.feed(f"n{i:02d}", ts=0, gateways=("gw",))
    h.scheduler.run_until(5000)
    sensor_alarms = len(h.alarms.active(kind=AlarmKind.SENSOR_OVERDUE))
    gateway_alarms = len(h.alarms.active(kind=AlarmKind.GATEWAY_OUTAGE))
    return sensor_alarms + gateway_alarms


def test_ablation_alarm_grouping_prevents_storm():
    """With the twin hierarchy a 12-sensor gateway outage raises 1
    grouped alarm; without gateway monitoring, 12 per-sensor alarms."""
    grouped = _gateway_outage_alarms(monitor_gateways=True)
    storm = _gateway_outage_alarms(monitor_gateways=False)
    assert grouped <= 2  # the gateway alarm (+ tolerance)
    assert storm >= 12
    report(
        "Ablation: hierarchical failure grouping (12 sensors, 1 dead gateway)",
        [("with gateway metadata", f"{grouped} alarm(s)"),
         ("without (naive)", f"{storm} alarm(s)")],
    )
