"""Tiered-storage benchmarks: compaction payoff, cold-start paging.

Records the ``tier`` section of ``BENCH_ingest.json``:

- **compaction** — a marker-heavy aged WAL (small per-cadence blocks,
  periodic retention markers as rollup tiers age data out) is compacted
  and the *replay cost* measured before and after; the acceptance gate
  is a ≥5x replay-time reduction — the whole point of the subsystem is
  that restart cost tracks live data, not write history;
- **cold_query** — time-to-first-answer for one keyed series read from
  a cold 4-shard snapshot: eager ``restore_from_dir`` (replays all
  shards) vs :class:`ColdShardPager` (replays exactly the owning
  shard), mmap on both, plus the pager's paged-RAM footprint
  (``resident_points``) against the full archive.
"""

from __future__ import annotations

import time

import pytest

from bench_io import update_section
from repro.tsdb import (
    ColdShardPager,
    DataPoint,
    SeriesKey,
    ShardedTSDB,
    compact_log,
    load,
    segment_stats,
)
from repro.tsdb.segments import SegmentWriter

N_SERIES = 40
POINTS_PER_SERIES = 1500
CADENCE_S = 60
#: Retention horizon driving the aged workload's markers: everything
#: older than this is dead weight a rollup pass already aged out.
KEEP_LAST_S = 150 * CADENCE_S
GATE_REPLAY_SPEEDUP = 5.0


def _series_key(s: int) -> SeriesKey:
    return SeriesKey.make(
        f"air.co2.node{s % 8}", {"node": f"n{s:03d}", "city": "trondheim"}
    )


def _best_of(fn, repeats: int = 3) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


@pytest.fixture(scope="module")
def aged_wal(tmp_path_factory):
    """A WAL shaped like months of ingest + periodic retention: one
    small batch block per cadence tick, a ``!delete_before`` marker
    every 50 ticks (the tier cascade ageing rolled-up raw data out)."""
    path = tmp_path_factory.mktemp("tier-bench") / "aged.seg"
    keys = [_series_key(s) for s in range(N_SERIES)]
    with SegmentWriter(path) as w:
        for tick in range(POINTS_PER_SERIES):
            ts = tick * CADENCE_S
            for key in keys:
                w.write(DataPoint(key, ts, float(tick % 17)))
            w.flush()  # one block per cadence tick: append fragmentation
            if tick and tick % 50 == 0:
                w.delete_before(ts - KEEP_LAST_S)
    return path


def test_compaction_replay_cost(aged_wal):
    """The tentpole gate: compacted replay is >=5x cheaper."""
    before = segment_stats(aged_wal, strict=True)
    replay_before_s, db_before = _best_of(lambda: load(aged_wal, mmap=True))
    reference = db_before.point_count

    result = compact_log(aged_wal)
    after = segment_stats(aged_wal, strict=True)
    replay_after_s, db_after = _best_of(lambda: load(aged_wal, mmap=True))
    assert db_after.point_count == reference  # equivalence, cheaply
    assert after.marker_blocks == 0

    replay_speedup = replay_before_s / replay_after_s
    section = {
        "workload": {
            "series": N_SERIES,
            "points_written": N_SERIES * POINTS_PER_SERIES,
            "points_live": reference,
            "blocks_before": before.blocks,
            "markers_before": before.marker_blocks,
        },
        "compaction": {
            "bytes_before": result.bytes_before,
            "bytes_after": result.bytes_after,
            "bytes_ratio": round(result.bytes_ratio, 1),
            "blocks_after": after.blocks,
            "replay_before_ms": round(replay_before_s * 1e3, 1),
            "replay_after_ms": round(replay_after_s * 1e3, 1),
            "replay_speedup": round(replay_speedup, 1),
        },
    }
    update_section("tier", section, merge=True)
    print(f"\nBENCH_tier: {before.blocks} -> {after.blocks} blocks, "
          f"{result.bytes_ratio:.1f}x smaller, replay "
          f"{replay_before_s * 1e3:.0f} -> {replay_after_s * 1e3:.0f} ms "
          f"({replay_speedup:.1f}x)")
    assert replay_speedup >= GATE_REPLAY_SPEEDUP, (
        f"compacted replay only {replay_speedup:.1f}x faster "
        f"(gate {GATE_REPLAY_SPEEDUP}x)"
    )


def test_cold_query_paging(tmp_path_factory):
    """mmap pager vs eager restore: latency to the first keyed answer
    from a cold snapshot, and how much of the archive stays on disk."""
    directory = tmp_path_factory.mktemp("tier-bench-cold")
    db = ShardedTSDB(4)
    for s in range(N_SERIES):
        key = _series_key(s)
        for tick in range(POINTS_PER_SERIES):
            db.put(key.metric, tick * CADENCE_S, float(tick % 17),
                   key.tag_dict())
    db.snapshot_to_dir(directory, format="binary")
    total_points = db.point_count
    probe = _series_key(0)

    def eager_query():
        store = ShardedTSDB.restore_from_dir(directory, mmap=True)
        return store.series_slice(probe)

    def paged_query():
        pager = ColdShardPager(directory, mmap=True)
        return pager.series_slice(probe), pager

    eager_s, eager_slice = _best_of(eager_query)
    paged_s, (paged_slice, pager) = _best_of(paged_query)
    assert len(paged_slice) == len(eager_slice) == POINTS_PER_SERIES
    resident = pager.resident_points
    assert resident < total_points  # only the probe's shard is in RAM

    section = {
        "cold_query": {
            "shards": 4,
            "archive_points": total_points,
            "eager_restore_ms": round(eager_s * 1e3, 1),
            "paged_mmap_ms": round(paged_s * 1e3, 1),
            "speedup": round(eager_s / paged_s, 1),
            "resident_points": resident,
            "resident_fraction": round(resident / total_points, 3),
        },
    }
    update_section("tier", section, merge=True)
    print(f"\nBENCH_tier cold query: eager {eager_s * 1e3:.0f} ms vs "
          f"paged {paged_s * 1e3:.0f} ms ({eager_s / paged_s:.1f}x), "
          f"resident {resident:,}/{total_points:,} points")
    # The pager must beat replaying the whole archive and keep most of
    # it out of RAM (1 shard of 4 resident, modulo hash imbalance).
    assert paged_s < eager_s
    assert resident / total_points < 0.5
