"""Fig. 8 — network monitoring and data visualization wall display.

Regenerates the composite wall: network map + alarm strip + both Fig. 6
dashboards + fleet summary line, in healthy and degraded states, and
benchmarks a full wall refresh.
"""

import pytest

from conftest import report
from repro.core import build_wall_display
from repro.simclock import HOUR


def test_fig8_wall_composition(live_ecosystem):
    eco = live_ecosystem
    city = eco.city("trondheim")
    wall = build_wall_display(city, 0, eco.now)
    text = wall.render_text()
    # All sections of the wall are present.
    assert "CTT wall — trondheim" in text
    assert "CTT network" in text  # Fig. 3 panel
    assert "Active alarms" in text
    assert "Air quality — trondheim" in text  # Fig. 6 left
    assert "Traffic — trondheim" in text  # Fig. 6 right
    assert "fleet: 12/12 sensors live" in text


def test_fig8_wall_reflects_degradation(live_ecosystem):
    eco = live_ecosystem
    city = eco.city("trondheim")
    victim = city.nodes["ctt-tr-07"]
    was_alive = victim.alive
    victim.alive = False
    eco.run(2 * HOUR)
    text = build_wall_display(city, 0, eco.now).render_text()
    assert "sensor ctt-tr-07 overdue" in text
    assert "11/12 sensors live" in text
    victim.alive = was_alive  # note: node loop stays stopped; fine for tests


def test_fig8_wall_refresh_benchmark(live_ecosystem, benchmark):
    eco = live_ecosystem
    city = eco.city("trondheim")
    wall = build_wall_display(city, 0, eco.now)
    text = benchmark(wall.render_text)
    assert "CTT wall" in text
    if benchmark.stats:
        report(
            "Fig.8: wall refresh",
            [("mean", f"{benchmark.stats['mean'] * 1e3:.1f} ms"),
             ("chars", len(text))],
        )
