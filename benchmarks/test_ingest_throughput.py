"""Ingest/query throughput of the columnar batch pipeline.

Writes ``BENCH_ingest.json`` at the repo root so successive PRs can
track the trajectory of the hot path: points/sec for the per-point
``put`` loop vs the columnar ``put_batch`` path on a 1M-point workload,
plus query latency over the resulting database.

The workload mimics live ingest: 100 series (25 nodes × 4 metrics),
timestamps round-robin across series in arrival order, a sprinkle of
out-of-order rows and duplicate timestamps so the dedup path is
exercised, not bypassed.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.tsdb import BatchBuilder, Query, ShardedTSDB, TSDB, dumps, run_boundaries

N_POINTS = 1_000_000
N_NODES = 25
METRICS = ["air.co2.ppm", "air.no2.ugm3", "air.pm10.ugm3", "weather.temperature.c"]
N_SERIES = N_NODES * len(METRICS)
from bench_io import update_section, update_top_level  # noqa: E402


@pytest.fixture(scope="module")
def workload():
    """Arrival-ordered (metric, node, ts, value) columns, 1M rows."""
    rng = np.random.default_rng(2017)
    rows_per_series = N_POINTS // N_SERIES
    # Round-robin arrival: at each cadence step every series reports once.
    base = np.repeat(np.arange(rows_per_series, dtype=np.int64) * 60, N_SERIES)
    series_idx = np.tile(np.arange(N_SERIES, dtype=np.int64), rows_per_series)
    ts = base + (series_idx % 7)  # small per-series phase offset
    # Disorder: swap ~1% of rows a few slots back (LoRaWAN retransmits).
    n = ts.shape[0]
    late = rng.random(n) < 0.01
    ts[late] -= 120
    values = rng.normal(400.0, 25.0, size=n)
    return series_idx, ts, values


def series_tags(s: int) -> tuple[str, dict]:
    return METRICS[s % len(METRICS)], {"node": f"ctt-{s // len(METRICS):02d}", "city": "trondheim"}


FLUSH_SIZE = 100_000


def columnar_ingest(db, series_idx, ts, values, tag_cache, flush=FLUSH_SIZE) -> float:
    """Ingest the workload in dataport-sized columnar flushes; returns
    elapsed seconds.  ``db`` is any TimeSeriesStore (single or sharded)."""
    n = ts.shape[0]
    t0 = time.perf_counter()
    for lo in range(0, n, flush):
        hi = min(lo + flush, n)
        builder = BatchBuilder()
        chunk_series = series_idx[lo:hi]
        order = np.argsort(chunk_series, kind="stable")
        chunk_series = chunk_series[order]
        chunk_ts = ts[lo:hi][order]
        chunk_vals = values[lo:hi][order]
        starts, ends = run_boundaries(chunk_series)
        for s, e in zip(starts, ends):
            metric, tags = tag_cache[int(chunk_series[s])]
            builder.add_series(metric, chunk_ts[s:e], chunk_vals[s:e], tags)
        db.put_batch(builder.build())
    return time.perf_counter() - t0


def median_query_latency_ms(db, query, repeats: int = 3) -> tuple[float, int]:
    latencies = []
    res = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        res = db.run(query)
        latencies.append(time.perf_counter() - t0)
    return sorted(latencies)[len(latencies) // 2] * 1e3, res.scanned_points


def test_batch_ingest_at_least_5x_faster_than_per_point(workload):
    series_idx, ts, values = workload
    n = ts.shape[0]

    # --- seed-style per-point loop -------------------------------------
    per_point_db = TSDB()
    tag_cache = [series_tags(s) for s in range(N_SERIES)]
    sidx = series_idx.tolist()
    tlist = ts.tolist()
    vlist = values.tolist()
    t0 = time.perf_counter()
    put = per_point_db.put
    for s, t, v in zip(sidx, tlist, vlist):
        metric, tags = tag_cache[s]
        put(metric, t, v, tags)
    per_point_s = time.perf_counter() - t0

    # --- columnar batch path -------------------------------------------
    # Accumulate through a BatchBuilder in dataport-sized flushes
    # (100k points), exactly as the batching writer does under load.
    batch_db = TSDB()
    batch_s = columnar_ingest(batch_db, series_idx, ts, values, tag_cache)

    # --- equivalence: same database state ------------------------------
    assert batch_db.exact_point_count() == per_point_db.exact_point_count()
    probe_metric, probe_tags = tag_cache[0]
    q = Query(probe_metric, 0, int(ts.max()), tags=probe_tags)
    a = per_point_db.run(q).single()
    b = batch_db.run(q).single()
    assert np.array_equal(a.timestamps, b.timestamps)
    assert np.allclose(a.values, b.values)

    # --- query latency over the 1M-point database ----------------------
    city_q = Query(
        METRICS[0], 0, int(ts.max()), tags={"city": "trondheim"}, downsample="5m-avg"
    )
    latencies = []
    for _ in range(3):
        t0 = time.perf_counter()
        res = batch_db.run(city_q)
        latencies.append(time.perf_counter() - t0)
    query_ms = sorted(latencies)[1] * 1e3

    speedup = per_point_s / batch_s
    report = {
        "workload": {
            "points": n,
            "series": N_SERIES,
            "out_of_order_fraction": 0.01,
        },
        "per_point": {
            "seconds": round(per_point_s, 3),
            "points_per_sec": round(n / per_point_s),
        },
        "batch": {
            "seconds": round(batch_s, 3),
            "points_per_sec": round(n / batch_s),
            "flush_size": FLUSH_SIZE,
        },
        "speedup": round(speedup, 1),
        "query_1m_points": {
            "downsample": "5m-avg",
            "scanned_points": res.scanned_points,
            "median_latency_ms": round(query_ms, 2),
        },
    }
    update_top_level(report)
    print(f"\nBENCH_ingest: per-point {n / per_point_s:,.0f} pts/s, "
          f"batch {n / batch_s:,.0f} pts/s, speedup {speedup:.1f}x, "
          f"query {query_ms:.1f} ms")
    assert speedup >= 5.0, f"batch path only {speedup:.1f}x faster"


def test_sharded_ingest_and_query(workload):
    """Sharded-engine trajectory: columnar ingest and fan-out query
    latency at 1/2/4/8 shards, recorded next to the single-store numbers
    in ``BENCH_ingest.json``.  Correctness is asserted against a
    single-store reference on the same workload."""
    series_idx, ts, values = workload
    n = ts.shape[0]
    tag_cache = [series_tags(s) for s in range(N_SERIES)]

    reference = TSDB()
    single_s = columnar_ingest(reference, series_idx, ts, values, tag_cache)
    probe_metric, probe_tags = tag_cache[0]
    probe_q = Query(probe_metric, 0, int(ts.max()), tags=probe_tags)
    ref_probe = reference.run(probe_q).single()
    city_q = Query(
        METRICS[0], 0, int(ts.max()), tags={"city": "trondheim"}, downsample="5m-avg"
    )
    single_query_ms, _ = median_query_latency_ms(reference, city_q)

    per_shard_count = {}
    for shards in (1, 2, 4, 8):
        db = ShardedTSDB(shards)
        secs = columnar_ingest(db, series_idx, ts, values, tag_cache)

        # Equivalence: identical state and identical query output.
        assert db.exact_point_count() == reference.exact_point_count()
        probe = db.run(probe_q).single()
        assert np.array_equal(probe.timestamps, ref_probe.timestamps)
        assert np.array_equal(probe.values, ref_probe.values)

        query_ms, scanned = median_query_latency_ms(db, city_q)
        per_shard_count[str(shards)] = {
            "ingest_seconds": round(secs, 3),
            "ingest_points_per_sec": round(n / secs),
            "query_median_latency_ms": round(query_ms, 2),
            "query_scanned_points": scanned,
        }
        print(f"BENCH_sharded[{shards}]: ingest {n / secs:,.0f} pts/s, "
              f"query {query_ms:.1f} ms")

    update_section("sharded", {
        "flush_size": FLUSH_SIZE,
        "single_store_ingest_seconds": round(single_s, 3),
        "single_store_query_median_latency_ms": round(single_query_ms, 2),
        "shards": per_shard_count,
    })

    # Routing overhead stays bounded: sharded ingest must remain within
    # 3x of the single store (it is the same columnar path + crc32).
    worst = max(v["ingest_seconds"] for v in per_shard_count.values())
    assert worst <= max(3.0 * single_s, single_s + 1.0), (
        f"sharded ingest regressed: {worst:.3f}s vs single {single_s:.3f}s"
    )


def test_small_batch_equivalence_snapshot():
    """Cheap exactness check riding along with the big benchmark: the
    two paths produce byte-identical snapshots on a mixed workload."""
    rng = np.random.default_rng(5)
    a, b = TSDB(), TSDB()
    builder = BatchBuilder()
    for i in range(5_000):
        s = int(rng.integers(N_SERIES))
        metric, tags = series_tags(s)
        t = int(rng.integers(0, 3_600))
        v = float(rng.normal())
        a.put(metric, t, v, tags)
        builder.add(metric, t, v, tags)
        if i % 1_024 == 0:
            b.put_batch(builder.build())
    b.put_batch(builder.build())
    assert dumps(a) == dumps(b)
