"""Fig. 7 — integration of sensor data into the 3D CityGML model.

Regenerates the Vejle pipeline: LOD1 city model (CityGML round trip),
sensor measuring points placed in the model, buildings shaded by the
interpolated pollution level, plus the demo's siting-consultation
feature ("choosing the sites of air quality monitoring ... according to
the road network and building density").
"""

import math

import pytest

from conftest import report
from repro.integration import parse_citygml, write_citygml
from repro.tsdb import METRIC_NO2
from repro.viz import (
    attach_sensor_values,
    city_model_geojson,
    render_city_svg,
    siting_suggestions,
)


def test_fig7_gml_round_trip(history_ecosystem):
    eco, city, start, end = history_ecosystem
    model = city.city_model
    assert len(model) > 100  # a real block model, not a toy
    text = write_citygml(model)
    restored = parse_citygml(text)
    assert len(restored) == len(model)


def test_fig7_sensors_into_model(history_ecosystem):
    eco, city, start, end = history_ecosystem
    sensor_values = city.sensor_values_latest(METRIC_NO2)
    assert len(sensor_values) == 2  # the Vejle pair
    levels = attach_sensor_values(city.city_model, sensor_values)
    shaded = [v for v in levels.values() if math.isfinite(v)]
    assert shaded  # buildings near sensors picked up a level
    svg = render_city_svg(city.city_model, sensor_values)
    assert svg.count("<polygon") == len(city.city_model)
    assert svg.count("<circle") == 2
    geo = city_model_geojson(city.city_model, sensor_values)
    kinds = [f["properties"]["kind"] for f in geo["features"]]
    report(
        "Fig.7: city model integration",
        [
            ("buildings", kinds.count("building")),
            ("sensors placed", kinds.count("sensor")),
            ("buildings with level", len(shaded)),
        ],
    )


def test_fig7_injection_visible_in_model(history_ecosystem):
    """Demo: 'inject synthetic data showing different pollution levels'
    and see it in the 3D view."""
    eco, city, start, end = history_ecosystem
    sensor_values = city.sensor_values_latest(METRIC_NO2)
    baseline = attach_sensor_values(city.city_model, sensor_values)
    # Simulate a construction site next to node 1: raise its value.
    node, (loc, value) = sorted(sensor_values.items())[0]
    polluted = {**sensor_values, node: (loc, value + 150.0)}
    after = attach_sensor_values(city.city_model, polluted)
    raised = [
        b for b in baseline
        if math.isfinite(baseline[b]) and after[b] > baseline[b] + 1.0
    ]
    assert raised  # nearby buildings visibly change level


def test_fig7_siting_consultation(history_ecosystem):
    eco, city, start, end = history_ecosystem
    existing = [loc for _, (loc, _) in city.sensor_values_latest(METRIC_NO2).items()]
    sites = siting_suggestions(city.city_model, existing, n=3)
    assert len(sites) == 3
    for site in sites:
        for old in existing:
            assert site.distance_to(old) >= 400.0


def test_fig7_pipeline_benchmark(history_ecosystem, benchmark):
    """Benchmark: GML write+parse plus the shaded SVG render."""
    eco, city, start, end = history_ecosystem
    sensor_values = city.sensor_values_latest(METRIC_NO2)

    def pipeline():
        text = write_citygml(city.city_model)
        model = parse_citygml(text)
        return render_city_svg(model, sensor_values)

    svg = benchmark(pipeline)
    assert "<svg" in svg
