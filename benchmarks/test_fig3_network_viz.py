"""Fig. 3 — visualization of sensors, gateways, and links.

Regenerates the network visualization from the live dataport snapshot in
all three output formats (ASCII, SVG, GeoJSON) and benchmarks the
render path that the wall display refreshes continuously.
"""

import json

import pytest

from conftest import report
from repro.viz import render_svg_map, render_text_map, to_geojson


def test_fig3_shows_full_deployment(live_ecosystem):
    city = live_ecosystem.city("trondheim")
    snapshot = city.network_snapshot()
    text = render_text_map(snapshot)
    # All 12 sensors and 3 gateways drawn.
    assert text.count("S") + text.count("!") >= 10  # projections may overlap
    assert "sensors=12" in text
    assert "gateways=3" in text

    svg = render_svg_map(snapshot)
    assert svg.count("<circle") == 12
    assert svg.count("<rect") >= 3

    geo = to_geojson(snapshot)
    kinds = [f["properties"]["kind"] for f in geo["features"]]
    assert kinds.count("sensor") == 12
    assert kinds.count("gateway") == 3
    assert kinds.count("link") >= 12  # every sensor heard by >= 1 gateway
    json.dumps(geo)
    report(
        "Fig.3: network visualization",
        [
            ("sensors", kinds.count("sensor")),
            ("gateways", kinds.count("gateway")),
            ("links", kinds.count("link")),
        ],
    )


def test_fig3_live_links_carry_rssi(live_ecosystem):
    geo = to_geojson(live_ecosystem.city("trondheim").network_snapshot())
    links = [f for f in geo["features"] if f["properties"]["kind"] == "link"]
    assert all(l["properties"]["rssi_dbm"] is not None for l in links)
    assert all(-140.0 < l["properties"]["rssi_dbm"] < -20.0 for l in links)


def test_fig3_render_benchmark(live_ecosystem, benchmark):
    """Benchmark: one full refresh (snapshot -> all three renders)."""
    city = live_ecosystem.city("trondheim")

    def refresh():
        snapshot = city.network_snapshot()
        return (
            render_text_map(snapshot),
            render_svg_map(snapshot),
            to_geojson(snapshot),
        )

    text, svg, geo = benchmark(refresh)
    assert "CTT network" in text
