"""Fig. 4 — battery level analysis.

Left panel: battery level vs time.  Right panel: Δbattery vs time of
day, flagged by whether the node could have charged from sunlight since
the previous packet.  The paper's qualitative claims:

- charging occurs during daytime and is affected by weather;
- the analysis "allows to estimate battery depletion".

We run a node through seven simulated April days (radio-accurate), pull
its telemetered battery series from the TSDB, and regenerate both
panels plus the depletion estimate.
"""

import datetime as dt

import numpy as np
import pytest

from conftest import report
from repro.analytics import battery_deltas, charge_balance, estimate_depletion
from repro.core import CttEcosystem, EcosystemConfig, vejle_deployment
from repro.sensors import PowerSpec
from repro.simclock import DAY, from_datetime
from repro.tsdb import METRIC_BATTERY, Query


@pytest.fixture(scope="module")
def battery_week():
    """7 April days of live telemetry from the Vejle pair."""
    start = from_datetime(dt.datetime(2017, 4, 10))
    eco = CttEcosystem(
        [vejle_deployment()],
        config=EcosystemConfig(
            seed=29,
            # Small battery so the daily cycle is visible in 7 days.
            power_spec=PowerSpec(battery_capacity_mah=500.0),
            initial_soc=0.6,
        ),
        start_time=start,
    )
    eco.start()
    eco.run(7 * DAY)
    res = eco.db.run(
        Query(METRIC_BATTERY, start, eco.now, tags={"node": "ctt-vj-01"})
    ).single()
    lat = eco.city("vejle").deployment.center.lat
    lon = eco.city("vejle").deployment.center.lon
    return res.timestamps, res.values, lat, lon


def test_fig4_left_panel_battery_vs_time(battery_week):
    """Left panel: the voltage series exists, stays in Li-ion range, and
    shows a daily rhythm (some rise, some fall)."""
    ts, v, lat, lon = battery_week
    assert len(ts) > 7 * 24 * 6  # at least 5-minute-ish cadence survived
    assert v.min() >= 3.0
    assert v.max() <= 4.2
    dv = np.diff(v)
    assert (dv > 0).any() and (dv < 0).any()


def test_fig4_right_panel_charging_in_daylight(battery_week):
    """Right panel: positive deltas concentrate in could-have-charged
    packets; dark packets drain on average."""
    ts, v, lat, lon = battery_week
    deltas = battery_deltas(ts, v, lat, lon)
    balance = charge_balance(deltas)
    assert balance.n_sunlit > 50
    assert balance.n_dark > 50
    assert balance.charging_works
    assert balance.mean_delta_sunlit_v > 0.0
    assert balance.mean_delta_dark_v < 0.0
    # Hour-of-day structure: net gain mid-day, net loss at night.
    mid_day = [d.delta_v for d in deltas if 10.0 <= d.hour_of_day <= 14.0]
    night = [d.delta_v for d in deltas if d.hour_of_day <= 3.0]
    assert np.mean(mid_day) > np.mean(night)
    report(
        "Fig.4: battery delta vs time-of-day",
        [
            ("mean dV (sunlit)", f"{balance.mean_delta_sunlit_v:+.5f} V"),
            ("mean dV (dark)", f"{balance.mean_delta_dark_v:+.5f} V"),
            ("n sunlit / dark", f"{balance.n_sunlit} / {balance.n_dark}"),
        ],
    )


def test_fig4_depletion_estimate(battery_week):
    """The figure's purpose: a usable depletion estimate."""
    ts, v, lat, lon = battery_week
    est = estimate_depletion(ts, v, lat, lon)
    assert est.discharge_v_per_day < 0.0  # nights drain
    # April in Denmark: solar keeps up, or depletion is months away.
    assert est.days_to_empty > 7.0
    report(
        "Fig.4: depletion estimate",
        [
            ("dark-hours slope", f"{est.discharge_v_per_day:+.4f} V/day"),
            ("days to empty", f"{est.days_to_empty:.1f}"),
        ],
    )


def test_fig4_analysis_benchmark(battery_week, benchmark):
    """Benchmark: the full Fig. 4 analysis on a week of telemetry."""
    ts, v, lat, lon = battery_week

    def analyse():
        deltas = battery_deltas(ts, v, lat, lon)
        return charge_balance(deltas), estimate_depletion(ts, v, lat, lon)

    balance, est = benchmark(analyse)
    assert balance.charging_works
