"""Shared ``BENCH_ingest.json`` I/O for the benchmark suite.

Every benchmark records its numbers in one repo-root JSON file so
successive PRs can diff performance.  The file is shared, so writers
must be good neighbours: each updates **only its own section**, leaves
every other key byte-for-byte untouched, and preserves key order (an
existing section updates in its original position, a new one appends at
the end — ``json.loads``/``dumps`` keep insertion order).  Route every
write through :func:`update_section` / :func:`update_top_level` instead
of hand-rolling the read-modify-write.
"""

from __future__ import annotations

import json
from pathlib import Path

#: The shared benchmark report at the repo root.
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_ingest.json"

__all__ = ["RESULT_PATH", "read_results", "update_section", "update_top_level"]


def read_results(path: Path = RESULT_PATH) -> dict:
    """The current report (``{}`` before the first benchmark runs)."""
    return json.loads(path.read_text()) if path.exists() else {}


def _write(existing: dict, path: Path) -> None:
    path.write_text(json.dumps(existing, indent=2) + "\n")


def _deep_merge(target: dict, payload: dict) -> None:
    for key, value in payload.items():
        if isinstance(value, dict) and isinstance(target.get(key), dict):
            _deep_merge(target[key], value)
        else:
            target[key] = value


def update_section(
    section: str,
    payload: dict,
    *,
    merge: bool = False,
    path: Path = RESULT_PATH,
) -> dict:
    """Replace (or with ``merge=True``, deep-merge into) one top-level
    section, leaving every other section untouched and in place.

    Merging is for parametrized benchmarks that accumulate sub-keys
    across runs (e.g. ``region_fanin.cities.<n>``); replacement is the
    default so a re-run never leaves stale fields behind.  Returns the
    full report as written.
    """
    existing = read_results(path)
    if merge and isinstance(existing.get(section), dict):
        _deep_merge(existing[section], payload)
    else:
        existing[section] = payload
    _write(existing, path)
    return existing


def update_top_level(payload: dict, *, path: Path = RESULT_PATH) -> dict:
    """Update several top-level keys at once (the ingest benchmark owns
    ``workload``/``per_point``/``batch``/...), same ordering contract as
    :func:`update_section`."""
    existing = read_results(path)
    existing.update(payload)
    _write(existing, path)
    return existing
