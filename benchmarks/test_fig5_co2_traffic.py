"""Fig. 5 — a study of CO2 dynamics vs the traffic jam factor.

The paper's conclusions to reproduce in shape:

1. CO2 and the jam factor "exhibit different patterns" (diurnal
   profiles peak at different hours);
2. they "have no apparent correlation";
3. "CO2 emission dynamic is a more complex issue that may be affected by
   many factors, including traffic, wind speed, temperature, humidity"
   — a multi-factor model explains far more variance than traffic.

Contrast check: NO2 (built traffic-dominated) *does* correlate, so the
null result for CO2 is a property of the signal, not of the method.
"""

import numpy as np
import pytest

from conftest import report
from repro.analytics import correlation_study, diurnal_comparison, factor_attribution
from repro.simclock import HOUR
from repro.tsdb import METRIC_CO2, METRIC_JAM_FACTOR, METRIC_NO2, Query


@pytest.fixture(scope="module")
def aligned_series(history_ecosystem):
    eco, city, start, end = history_ecosystem
    co2 = eco.db.run(
        Query(METRIC_CO2, start, end - 1, tags={"city": "vejle"},
              downsample="1h-avg-linear")
    ).single()
    no2 = eco.db.run(
        Query(METRIC_NO2, start, end - 1, tags={"city": "vejle"},
              downsample="1h-avg-linear")
    ).single()
    jam = eco.db.run(
        Query(METRIC_JAM_FACTOR, start, end - 1, downsample="1h-avg-linear")
    ).single()
    n = min(len(co2), len(no2), len(jam))
    weather = city.environment.weather
    ts = co2.timestamps[:n]
    factors = {
        "jam_factor": jam.values[:n],
        "wind": np.array([weather.wind_speed_ms(int(t)) for t in ts]),
        "temperature": np.array([weather.temperature_c(int(t)) for t in ts]),
        "humidity": np.array([weather.humidity_pct(int(t)) for t in ts]),
    }
    return ts, co2.values[:n], no2.values[:n], jam.values[:n], factors


def test_fig5_no_apparent_correlation(aligned_series):
    ts, co2, no2, jam, factors = aligned_series
    study = correlation_study(co2, jam, cadence_s=HOUR)
    assert study.no_apparent_correlation
    assert abs(study.pearson_r) < 0.5
    report(
        "Fig.5: corr(CO2, jam factor)",
        [
            ("pearson r", f"{study.pearson_r:+.3f}"),
            ("spearman rho", f"{study.spearman_rho:+.3f}"),
            ("best lag", f"{study.best_lag_s / 3600:+.0f} h "
                         f"(r={study.best_lag_r:+.3f})"),
            ("verdict", "no apparent correlation"),
        ],
    )


def test_fig5_patterns_differ(aligned_series):
    ts, co2, no2, jam, factors = aligned_series
    comp = diurnal_comparison(co2, jam, ts)
    assert comp.co2_peak_hour != comp.jam_peak_hour
    assert comp.profile_correlation < 0.5


def test_fig5_complex_multi_factor_dynamics(aligned_series):
    ts, co2, no2, jam, factors = aligned_series
    attribution = factor_attribution(co2, factors, ts)
    assert attribution.r2_traffic_only < 0.3
    assert attribution.complex_dynamics
    report(
        "Fig.5: variance attribution",
        [
            ("R2 traffic only", f"{attribution.r2_traffic_only:.2f}"),
            ("R2 + weather + daily cycle", f"{attribution.r2_full:.2f}"),
        ],
    )


def test_fig5_contrast_no2_is_traffic_coupled(aligned_series):
    """Methodology control: the same pipeline finds the NO2-traffic
    coupling, so the CO2 null is real."""
    ts, co2, no2, jam, factors = aligned_series
    study = correlation_study(no2, jam, cadence_s=HOUR)
    assert study.pearson_r > 0.35
    report(
        "Fig.5 control: corr(NO2, jam factor)",
        [("pearson r", f"{study.pearson_r:+.3f}"), ("verdict", "correlated")],
    )


def test_fig5_study_benchmark(aligned_series, benchmark):
    """Benchmark: the full Fig. 5 analysis on two weeks of hourly data."""
    ts, co2, no2, jam, factors = aligned_series

    def run_study():
        return (
            correlation_study(co2, jam, cadence_s=HOUR),
            factor_attribution(co2, factors, ts),
            diurnal_comparison(co2, jam, ts),
        )

    study, attribution, comp = benchmark(run_study)
    assert study.no_apparent_correlation
