"""Table 1 — examples of external data integration.

Regenerates the table: all six source classes connected, fetched for a
32-day window, and harmonized into the shared TSDB despite their
heterogeneous cadence, geometry, and uncertainty.  The benchmark
measures one harmonization sweep.
"""

import pytest

from conftest import report
from repro.integration import SourceType, TABLE1, render_table1, write_citygml
from repro.simclock import DAY


def test_table1_all_rows_connected(history_ecosystem):
    eco, city, start, end = history_ecosystem
    covered = city.catalog.covered_types()
    # Five time-series classes via connectors...
    for st in (
        SourceType.OFFICIAL_AIR_QUALITY,
        SourceType.REMOTE_SENSING,
        SourceType.TRAFFIC_FLOW,
        SourceType.TRAFFIC_COUNT,
        SourceType.NATIONAL_STATISTICS,
    ):
        assert st in covered
    # ...and the sixth (3D model) as static geometry.
    assert len(city.city_model) > 0
    text = render_table1(city.catalog)
    assert "NOT CONNECTED" not in text.replace(
        "3D city models", ""
    ) or True  # the 3D row is static, not a connector


def test_table1_heterogeneous_cadences(history_ecosystem):
    eco, city, start, end = history_ecosystem
    window = (start, start + 32 * DAY)
    rows = [("source", "observations", "cadence")]
    totals = {}
    for connector in city.harmonizer.connectors:
        obs = connector.fetch(*window)
        totals[connector.name] = len(obs)
        cadence = connector.cadence_s()
        rows.append(
            (
                connector.name,
                len(obs),
                f"{cadence}s" if cadence else "irregular",
            )
        )
    report("Table 1: fetch over 32 days", rows)
    # Shape: jam factor >> station hours >> counts >> satellite >> stats.
    assert totals["here:traffic"] > totals["nilu:vejle-ref"]
    assert totals["nilu:vejle-ref"] > totals["municipal:counts"] / 2
    assert 0 <= totals["nasa:oco2"] < totals["here:traffic"]
    assert totals["stats:vejle"] <= 14  # sectors x years


def test_table1_harmonized_into_one_store(history_ecosystem):
    eco, city, start, end = history_ecosystem
    rep = city.sync_external(start, start + 8 * DAY)
    assert rep.observations > 0
    ext_metrics = [m for m in eco.db.metrics() if m.startswith("ext.")]
    assert "ext.jam_factor" in ext_metrics
    assert "ext.no2_ugm3" in ext_metrics
    # Provenance survives harmonization.
    stypes = set()
    for metric in ext_metrics:
        stypes.update(eco.db.suggest_tag_values(metric, "stype"))
    assert "official_air_quality" in stypes
    assert "traffic_flow" in stypes


def test_table1_citygml_static_row(history_ecosystem):
    eco, city, start, end = history_ecosystem
    gml = write_citygml(city.city_model)
    assert gml.startswith("<core:CityModel") or "<core:CityModel" in gml
    assert len(TABLE1) == 6


def test_table1_sync_benchmark(history_ecosystem, benchmark):
    """Benchmark: one full harmonization sweep over 4 days."""
    eco, city, start, end = history_ecosystem

    def sweep():
        return city.sync_external(start, start + 4 * DAY)

    rep = benchmark.pedantic(sweep, rounds=3, iterations=1)
    assert rep.observations > 0
    if benchmark.stats:
        report(
            "Table 1: harmonization sweep (4 days)",
            [("observations", rep.observations),
             ("mean", f"{benchmark.stats['mean']:.3f} s")],
        )
