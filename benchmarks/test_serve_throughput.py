"""Networked serving throughput: TCP end-to-end over the live store.

The ROADMAP item-1 workload: dashboard clients hammering one
:class:`~repro.serve.server.QueryServer` over TCP with the same
12-panel batch.  Measured end to end (encode → socket → admission →
planner → cache → socket → decode) against the 1M-point ingest
database, recording the ``serve`` section of ``BENCH_ingest.json``:

- *cold_ms*: the full batch with an empty result cache — every panel
  pays its scans;
- *cached_ms*: the identical batch again — all panels answered from the
  generation-validated result cache (one JSON round trip, zero scans);
- *incremental_ms*: steady-state dashboard polling — a minute of new
  points lands, the window slides, and ``refresh=True`` routes through
  the incremental refresher (delta scan + splice, not a full re-scan);
- *sustained queries/sec*: N concurrent clients replaying a cached
  panel as fast as the server answers.

Gate: the cached batch must beat the cold batch by ≥5× — the refresh
storm the cache exists for — while staying byte-identical to the
uncached planner output.
"""

from __future__ import annotations

import asyncio
import threading
import time
from contextlib import contextmanager

import numpy as np
import pytest

from repro.serve import QueryClient, QueryServer
from repro.tsdb import BatchBuilder, Query, ShardedTSDB, run_boundaries, wire

N_POINTS = 1_000_000
N_NODES = 25
METRICS = ["air.co2.ppm", "air.no2.ugm3", "air.pm10.ugm3", "weather.temperature.c"]
N_SERIES = N_NODES * len(METRICS)
from bench_io import update_section  # noqa: E402
FLUSH_SIZE = 100_000
REPEATS = 5
N_CLIENTS = 4
REQUESTS_PER_CLIENT = 100
REFRESH_ROUNDS = 6


def series_tags(s: int) -> tuple[str, dict]:
    return METRICS[s % len(METRICS)], {
        "node": f"ctt-{s // len(METRICS):02d}", "city": "trondheim",
    }


def dashboard_queries(t_max: int) -> list[Query]:
    """The 12-panel wall-display dashboard: same shape as the query
    benchmark, at wall-display bucket widths (the response stays small
    relative to the history scanned, as on a real overview screen).
    """
    panels: list[Query] = []
    for metric in METRICS:
        city = {"city": "trondheim"}
        panels.append(Query(metric, 0, t_max, tags=city, downsample="30m-avg"))
        panels.append(
            Query(metric, 0, t_max, tags=city, aggregator="dev",
                  downsample="1h-max")
        )
        panels.append(
            Query(metric, 0, t_max, tags=city, downsample="1h-avg",
                  group_by=("node",))
        )
    return panels


@pytest.fixture(scope="module")
def store():
    """The 1M-point arrival-ordered ingest workload on 4 shards."""
    rng = np.random.default_rng(2017)
    rows_per_series = N_POINTS // N_SERIES
    base = np.repeat(np.arange(rows_per_series, dtype=np.int64) * 60, N_SERIES)
    series_idx = np.tile(np.arange(N_SERIES, dtype=np.int64), rows_per_series)
    ts = base + (series_idx % 7)
    late = rng.random(ts.shape[0]) < 0.01
    ts[late] -= 120
    values = rng.normal(400.0, 25.0, size=ts.shape[0])

    db = ShardedTSDB(4)
    tag_cache = [series_tags(s) for s in range(N_SERIES)]
    n = ts.shape[0]
    for lo in range(0, n, FLUSH_SIZE):
        hi = min(lo + FLUSH_SIZE, n)
        builder = BatchBuilder()
        chunk_series = series_idx[lo:hi]
        order = np.argsort(chunk_series, kind="stable")
        chunk_series = chunk_series[order]
        chunk_ts = ts[lo:hi][order]
        chunk_vals = values[lo:hi][order]
        starts, ends = run_boundaries(chunk_series)
        for s, e in zip(starts, ends):
            metric, tags = tag_cache[int(chunk_series[s])]
            builder.add_series(metric, chunk_ts[s:e], chunk_vals[s:e], tags)
        db.put_batch(builder.build())
    return db, int(ts.max())


@contextmanager
def live_server(store, **kwargs):
    server = QueryServer(store, port=0, **kwargs)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    stop_holder: list[asyncio.Event] = []

    async def main():
        stop = asyncio.Event()
        stop_holder.append(stop)
        await server.start()
        started.set()
        await stop.wait()
        await server.stop()

    thread = threading.Thread(
        target=lambda: loop.run_until_complete(main()), daemon=True)
    thread.start()
    assert started.wait(10), "server failed to start"
    try:
        yield server
    finally:
        loop.call_soon_threadsafe(stop_holder[0].set)
        thread.join(timeout=10)
        loop.close()


def median_ms(samples: list[float]) -> float:
    return round(sorted(samples)[len(samples) // 2] * 1e3, 2)


def append_minute(db, t: int) -> None:
    """One new point per series at timestamp ``t`` (steady-state drip)."""
    builder = BatchBuilder()
    one_ts = np.array([t], np.int64)
    for s in range(N_SERIES):
        metric, tags = series_tags(s)
        builder.add_series(metric, one_ts, np.array([400.0 + s], np.float64),
                           tags)
    db.put_batch(builder.build())


def test_cached_refresh_beats_cold(store):
    db, t_max = store
    panels = dashboard_queries(t_max)
    report: dict = {
        "workload": {
            "points": N_POINTS,
            "series": N_SERIES,
            "panels": len(panels),
            "repeats": REPEATS,
            "transport": "tcp newline-delimited json",
        },
    }

    with live_server(db) as server:
        with QueryClient(*server.address, timeout=60) as client:
            # -- cold: empty cache, every panel pays its scans ----------
            cold_samples, cold_reply = [], None
            for _ in range(REPEATS):
                server.caching.cache.clear()
                t0 = time.perf_counter()
                cold_reply = client.request(panels)
                cold_samples.append(time.perf_counter() - t0)
            cold_ms = median_ms(cold_samples)

            # -- cached: identical batch, zero scans --------------------
            cached_samples, cached_reply = [], None
            for _ in range(REPEATS):
                t0 = time.perf_counter()
                cached_reply = client.request(panels)
                cached_samples.append(time.perf_counter() - t0)
            cached_ms = median_ms(cached_samples)

            # byte-identical through the wire (ids aside)
            cold_reply.pop("id", None)
            cached_reply.pop("id", None)
            assert cached_reply == cold_reply
            assert cold_reply == wire.encode_response(db.run_many(panels))

            # -- sustained: N concurrent clients on a cached panel ------
            panel = panels[0]
            failures: list = []

            def hammer():
                try:
                    with QueryClient(*server.address, timeout=60) as c:
                        for _ in range(REQUESTS_PER_CLIENT):
                            reply = c.request([panel])
                            if "error" in reply:
                                failures.append(reply)
                except Exception as exc:  # pragma: no cover - diagnostic
                    failures.append(exc)

            threads = [threading.Thread(target=hammer)
                       for _ in range(N_CLIENTS)]
            t0 = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            sustained_s = time.perf_counter() - t0
            assert not failures
            qps = round(N_CLIENTS * REQUESTS_PER_CLIENT / sustained_s)

            # -- incremental: the window slides as new points land ------
            now = t_max
            inc_samples = []
            inc_reply = None
            for round_no in range(REFRESH_ROUNDS):
                now += 60
                append_minute(db, now)
                sliding = dashboard_queries(now)
                t0 = time.perf_counter()
                inc_reply = client.request(sliding, refresh=True)
                inc_samples.append(time.perf_counter() - t0)
            # first round fully re-plans each panel; steady state follows
            incremental_ms = median_ms(inc_samples[1:])
            got = [r["series"] for r in inc_reply["results"]]
            want = [r["series"] for r in
                    wire.encode_response(db.run_many(sliding))["results"]]
            assert got == want  # splice ≡ full re-scan, through the wire

        stats = server.stats()

    refresh = stats["refresh"]
    assert refresh["incremental_runs"] > 0
    report["cold_ms"] = cold_ms
    report["cached_ms"] = cached_ms
    report["incremental_ms"] = incremental_ms
    report["cached_speedup_vs_cold"] = round(cold_ms / cached_ms, 2)
    report["sustained"] = {
        "clients": N_CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "queries_per_sec": qps,
    }
    report["server_stats"] = {
        "requests": stats["requests"],
        "cache": stats["cache"],
        "refresh": refresh,
    }
    print(f"\nBENCH_serve: cold {cold_ms} ms, cached {cached_ms} ms "
          f"({report['cached_speedup_vs_cold']}x), incremental "
          f"{incremental_ms} ms, sustained {qps} q/s "
          f"({N_CLIENTS} clients)")

    update_section("serve", report)

    # The acceptance gate: a cached dashboard refresh answers at least
    # 5x faster than the cold batch it replays.
    assert cold_ms / cached_ms >= 5.0, (
        f"cached refresh only {cold_ms / cached_ms:.2f}x faster than cold"
    )
