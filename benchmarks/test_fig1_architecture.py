"""Fig. 1 — overall system architecture and data flow.

Regenerates the end-to-end pipeline the architecture diagram describes:
14 sensors across two cities sampling at five-minute intervals, flowing
through LoRaWAN -> network server -> MQTT -> dataport -> TSDB.  The
benchmark measures simulated-hour throughput of the whole stack; the
assertions check the data flow reaches every stage.
"""

import pytest

from conftest import report
from repro.core import CttEcosystem, EcosystemConfig, trondheim_deployment, vejle_deployment
from repro.simclock import HOUR
from repro.tsdb import METRIC_CO2, Query


def build_and_run(hours: int) -> CttEcosystem:
    eco = CttEcosystem(
        [trondheim_deployment(), vejle_deployment()],
        config=EcosystemConfig(seed=17, shadowing_sigma_db=4.0),
    )
    eco.start()
    eco.run(hours * HOUR)
    return eco


def test_fig1_end_to_end_flow(live_ecosystem):
    """Every architecture stage sees the data (the Fig. 1 arrows)."""
    eco = live_ecosystem
    rows = []
    for name in ("trondheim", "vejle"):
        city = eco.city(name)
        stats = city.delivery_stats()
        # Stage 1-2: nodes transmitted over the radio plane.
        assert stats["transmissions"] > 0
        # Stage 3-4: network server forwarded to MQTT, dataport consumed.
        assert stats["processed_dataport"] > 0
        # Stage 5: storage holds the measurements.
        res = eco.db.run(
            Query(METRIC_CO2, 0, eco.now, tags={"city": name})
        )
        assert not res.is_empty()
        # The lossy hops lose little at city scale.
        assert stats["end_to_end_rate"] > 0.85
        rows.append(
            (
                name,
                f"tx={stats['transmissions']}",
                f"delivered={stats['delivered_radio']}",
                f"e2e_rate={stats['end_to_end_rate']:.3f}",
                f"points={stats['points_written']}",
            )
        )
    report("Fig.1: end-to-end data flow (both pilot cities)", rows)


def test_fig1_pipeline_throughput(benchmark):
    """Benchmark: one simulated hour of the full two-city stack."""

    def run_one_hour():
        eco = build_and_run(1)
        return eco.city("trondheim").delivery_stats()

    stats = benchmark.pedantic(run_one_hour, rounds=3, iterations=1)
    assert stats["processed_dataport"] > 0
