"""Fig. 2 — the dataport protocol diagram.

Exercises the eight numbered hops (LoRaWAN, TCP/IP network server, MQTT,
dataport REST, databases, alarms, network visualization, IP ping) and
benchmarks the MQTT->dataport->TSDB ingestion hop, which is the
throughput-critical one in production.
"""

import json

import numpy as np
import pytest

from conftest import report
from repro.dataport import Dataport, TtnMqttBridge, Watchdog
from repro.geo import TRONDHEIM
from repro.lorawan import (
    Gateway,
    Measurements,
    NetworkServer,
    PropagationModel,
    RadioPlane,
    Uplink,
    encode_measurements,
    uplink_to_json,
)
from repro.mqtt import Broker
from repro.simclock import Scheduler, SimClock
from repro.tsdb import TSDB


def make_stack():
    scheduler = Scheduler(SimClock(start=0))
    plane = RadioPlane(
        PropagationModel(shadowing_sigma_db=0.0), np.random.default_rng(0)
    )
    plane.add_gateway(Gateway("gw-0", TRONDHEIM.destination(0.0, 300.0)))
    ns = NetworkServer()
    broker = Broker()
    bridge = TtnMqttBridge(ns, broker, "trondheim")
    db = TSDB()
    dataport = Dataport(broker, db, scheduler)
    return scheduler, plane, ns, broker, bridge, db, dataport


def make_uplink(fcnt: int, ts: int) -> Uplink:
    m = Measurements(420.0, 25.0, 15.0, 8.0, 5.0, 1013.0, 80.0, 3.9, fcnt)
    return Uplink("ctt-00", fcnt, encode_measurements(m), sf=9, sent_at=ts)


def test_fig2_all_eight_hops():
    """Walk one measurement through every hop of the diagram."""
    scheduler, plane, ns, broker, bridge, db, dataport = make_stack()

    # Hop 1: LoRaWAN radio.
    uplink = make_uplink(0, 0)
    receptions = plane.transmit(uplink, TRONDHEIM)
    assert receptions

    # Hop 2: network server (TCP/IP).
    received = ns.ingest(uplink, receptions, now=1)
    assert received is not None

    # Hop 3: TTN -> MQTT (the bridge published on ingest).
    assert bridge.published == 1

    # Hop 4+5: dataport consumed and wrote to the databases.
    assert dataport.stats.uplinks_processed == 1
    assert db.point_count == 8  # 7 channels + battery

    # Hop 6: alarms (none yet, but the log is wired).
    assert len(dataport.alarms) == 0

    # Hop 7: network visualization snapshot.
    snapshot = dataport.network_snapshot()
    assert "ctt-00" in snapshot["sensors"]
    assert "gw-0" in snapshot["gateways"]

    # Hop 8: IP ping from the watchdog.
    dog = Watchdog("dataport", dataport.ping, dataport.alarms)
    assert dog.check(60)

    # REST answer is valid JSON.
    doc = json.loads(dataport.status_json())
    assert doc["stats"]["uplinks_processed"] == 1
    report(
        "Fig.2: protocol hops",
        [
            ("hop", "component", "evidence"),
            (1, "LoRaWAN", f"{len(receptions)} gateway reception(s)"),
            (2, "network server", f"fcnt accepted={received.uplink.fcnt}"),
            (3, "MQTT bridge", f"published={bridge.published}"),
            (4, "dataport", f"processed={dataport.stats.uplinks_processed}"),
            (5, "databases", f"points={db.point_count}"),
            (6, "alarms", "log wired, empty"),
            (7, "network viz", f"{len(snapshot['sensors'])} sensor(s)"),
            (8, "watchdog ping", "healthy"),
        ],
    )


def test_fig2_ingestion_throughput(benchmark):
    """Benchmark: MQTT -> dataport -> TSDB for a batch of 500 uplinks."""
    scheduler, plane, ns, broker, bridge, db, dataport = make_stack()
    receptions = plane.transmit(make_uplink(0, 0), TRONDHEIM)

    counter = {"fcnt": 1}

    def ingest_batch():
        base = counter["fcnt"]
        for i in range(500):
            up = make_uplink(base + i, (base + i) * 60)
            ns.ingest(up, receptions, now=up.sent_at)
        counter["fcnt"] = base + 500
        return dataport.stats.uplinks_processed

    processed = benchmark.pedantic(ingest_batch, rounds=5, iterations=1)
    assert processed >= 500
    if benchmark.stats:
        rate = 500 / benchmark.stats["mean"]
        report(
            "Fig.2: ingestion throughput",
            [("uplinks/s through hops 2-5", f"{rate:,.0f}")],
        )
