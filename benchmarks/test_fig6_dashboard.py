"""Fig. 6 — dashboards for air quality and traffic.

Regenerates both dashboard pages (air quality with per-node CAQI tiles
and mapped sensor values; traffic flow with the jam factor) straight
from TSDB queries, in text and HTML, and benchmarks the full
query+render refresh a Zeppelin auto-refresh would trigger.
"""

import pytest

from conftest import report
from repro.core import build_air_quality_dashboard, build_traffic_dashboard


def test_fig6_air_quality_dashboard(history_ecosystem):
    eco, city, start, end = history_ecosystem
    dash = build_air_quality_dashboard(city, start, end - 1)
    text = dash.render_text()
    assert "CAQI per node" in text
    assert "ctt-vj-01" in text and "ctt-vj-02" in text
    assert "CO2 (city mean)" in text
    assert "Battery" in text
    html = dash.render_html()
    assert "<svg" in html  # timeseries panels render charts
    assert "tile" in html  # CAQI tiles present


def test_fig6_traffic_dashboard(history_ecosystem):
    eco, city, start, end = history_ecosystem
    dash = build_traffic_dashboard(city, start, end - 1)
    text = dash.render_text()
    assert "Jam factor" in text
    assert "Current jam factor" in text


def test_fig6_realtime_updates(history_ecosystem):
    """'The mapped sensors show the real-time data': new points change
    the rendered dashboard without rebuilding it."""
    eco, city, start, end = history_ecosystem
    dash = build_air_quality_dashboard(city, start, end + 3600)
    before = dash.render_text()
    eco.db.put(
        "air.no2.ugm3", end + 60, 399.0, {"city": "vejle", "node": "ctt-vj-01"}
    )
    after = dash.render_text()
    assert before != after
    assert "399" in after or "very_high" in after


def test_fig6_dashboard_refresh_benchmark(history_ecosystem, benchmark):
    """Benchmark: one full refresh of both Fig. 6 dashboards."""
    eco, city, start, end = history_ecosystem

    def refresh():
        air = build_air_quality_dashboard(city, start, end - 1)
        traffic = build_traffic_dashboard(city, start, end - 1)
        return air.render_text(), traffic.render_text()

    air_text, traffic_text = benchmark(refresh)
    assert "CAQI" in air_text
    if benchmark.stats:
        report(
            "Fig.6: dashboard refresh",
            [("panels", 6),
             ("refresh mean", f"{benchmark.stats['mean'] * 1e3:.1f} ms")],
        )
