"""Series-catalog matching at scale: postings index vs brute-force scan.

The catalog exists for exactly this workload: a store holding 100k+
series (the multi-year city archive) answering tag-filtered matches for
every query the planner sees.  Before the catalog, ``_match`` walked
every series of the metric calling ``key.matches``; the inverted
postings index answers the same question from a handful of set
intersections.

This benchmark builds a 120k-series store (4 metrics × 100 cities ×
75 nodes), measures representative filters through both paths —

- *indexed_ms*: ``store._match`` through the catalog postings;
- *scan_ms*:    the pre-catalog reference — iterate the metric's keys,
  ``key.matches`` each, sort;

— asserts the results are **identical** (same keys, same order), gates
the headline claim (indexed wildcard matching ≥5× faster than the
scan), and records the ``catalog`` section of ``BENCH_ingest.json``
with the metadata-op latencies alongside.
"""

from __future__ import annotations

import time

import pytest

from repro.tsdb import TSDB

from bench_io import update_section  # noqa: E402

METRICS = [
    "air.co2.ppm", "air.no2.ugm3", "air.pm10.ugm3", "weather.temperature.c",
]
N_CITIES = 100
N_NODES = 300
N_SERIES = len(METRICS) * N_CITIES * N_NODES  # 30k per metric, 120k total
REPEATS = 5

#: Representative filters: the suggest-driven drill-down (one city, all
#: nodes), an alternation over cities, and a fully exact lookup.
FILTERS = {
    "city_wildcard": {"city": "c042", "node": "*"},
    "alternation": {"city": "c007|c077"},
    "exact": {"city": "c042", "node": "n0042"},
}

#: The headline gate: indexed matching must beat the scan by this much.
MIN_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def store():
    db = TSDB()
    ts = 0
    for metric in METRICS:
        for c in range(N_CITIES):
            for n in range(N_NODES):
                db.put(metric, ts, 1.0,
                       {"city": f"c{c:03d}", "node": f"n{n:04d}"})
    assert db.series_count == N_SERIES
    return db


def _scan_match(all_keys, tags):
    """The pre-catalog implementation, verbatim in spirit: full scan of
    the metric's series + ``key.matches``, sorted for the pinned order.
    """
    return sorted((k for k in all_keys if k.matches(tags)), key=str)


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best * 1000.0, result


def test_indexed_match_vs_scan(store):
    metric = METRICS[0]
    # The scan baseline gets the metric's key list for free — only the
    # per-key matching and sorting are timed, which flatters the old
    # path if anything.
    all_keys = store.series_for_metric(metric)
    assert len(all_keys) == N_CITIES * N_NODES

    section: dict = {"series": N_SERIES, "series_per_metric": len(all_keys),
                     "filters": {}}
    speedups = []
    for name, tags in FILTERS.items():
        indexed_ms, via_index = _best_of(lambda: store._match(metric, tags))
        scan_ms, via_scan = _best_of(lambda: _scan_match(all_keys, tags))
        assert via_index == via_scan, f"divergence on {name}"
        speedup = scan_ms / indexed_ms if indexed_ms else float("inf")
        speedups.append((name, speedup))
        section["filters"][name] = {
            "matched": len(via_index),
            "indexed_ms": round(indexed_ms, 4),
            "scan_ms": round(scan_ms, 4),
            "speedup": round(speedup, 1),
        }

    # Metadata-op latencies ride along (no gate: they are index reads).
    for op, fn in {
        "metrics": store.metrics,
        "tag_values": lambda: store.tag_values(metric, "node"),
        "cardinality": lambda: store.cardinality(
            metric, {"city": "c042", "node": "*"}),
    }.items():
        ms, _ = _best_of(fn)
        section[f"{op}_ms"] = round(ms, 4)

    section["min_speedup"] = round(min(s for _, s in speedups), 1)
    update_section("catalog", section)
    print(f"\nBENCH catalog: {N_SERIES:,} series; " + "; ".join(
        f"{name} {section['filters'][name]['speedup']}x"
        for name in FILTERS))

    for name, speedup in speedups:
        assert speedup >= MIN_SPEEDUP, (
            f"indexed {name} matching only {speedup:.1f}x faster than the "
            f"scan (gate: {MIN_SPEEDUP}x)"
        )
