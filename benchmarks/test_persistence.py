"""Durability throughput: text line protocol vs binary columnar segments.

Measures the three persistence hops on the same 1M-point workload the
ingest benchmark uses — WAL append, WAL replay, and snapshot/restore —
in both formats, records them in a ``persistence`` section of
``BENCH_ingest.json``, and gates the tentpole claim: the binary segment
path must replay and snapshot/restore at least 10× faster than the line
protocol, while restoring byte-identical store state.
"""

from __future__ import annotations

import time

import numpy as np

from repro.tsdb import (
    LogWriter,
    SegmentWriter,
    TSDB,
    dumps,
    load,
    snapshot,
)

from bench_io import update_section  # noqa: E402
from test_ingest_throughput import (  # same dir; pytest puts it on sys.path
    FLUSH_SIZE,
    N_SERIES,
    columnar_ingest,
    series_tags,
    workload,  # noqa: F401  (pytest fixture)
)

#: The binary path must beat the line protocol by at least this factor
#: on replay and snapshot/restore (the ISSUE 4 acceptance bar).
REQUIRED_SPEEDUP = 10.0


def build_flush_batches(series_idx, ts, values, tag_cache):
    """The workload as dataport-sized PointBatches (the WAL append unit)."""
    from repro.tsdb import BatchBuilder, run_boundaries

    batches = []
    n = ts.shape[0]
    for lo in range(0, n, FLUSH_SIZE):
        hi = min(lo + FLUSH_SIZE, n)
        builder = BatchBuilder()
        chunk_series = series_idx[lo:hi]
        order = np.argsort(chunk_series, kind="stable")
        chunk_series = chunk_series[order]
        chunk_ts = ts[lo:hi][order]
        chunk_vals = values[lo:hi][order]
        starts, ends = run_boundaries(chunk_series)
        for s, e in zip(starts, ends):
            metric, tags = tag_cache[int(chunk_series[s])]
            builder.add_series(metric, chunk_ts[s:e], chunk_vals[s:e], tags)
        batches.append(builder.build())
    return batches


def timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def test_binary_persistence_at_least_10x_faster(workload, tmp_path):  # noqa: F811
    series_idx, ts, values = workload
    n = ts.shape[0]
    tag_cache = [series_tags(s) for s in range(N_SERIES)]
    batches = build_flush_batches(series_idx, ts, values, tag_cache)

    # --- WAL append: one write_batch per dataport flush ----------------
    def append_with(writer_cls, path):
        with writer_cls(path) as w:
            for batch in batches:
                w.write_batch(batch)
        return path

    text_append_s, text_wal = timed(
        lambda: append_with(LogWriter, tmp_path / "wal.log")
    )
    bin_append_s, bin_wal = timed(
        lambda: append_with(SegmentWriter, tmp_path / "wal.seg")
    )

    # --- WAL replay ----------------------------------------------------
    text_replay_s, from_text = timed(lambda: load(text_wal))
    bin_replay_s, from_bin = timed(lambda: load(bin_wal))
    assert dumps(from_bin) == dumps(from_text), "replay equivalence broken"

    # --- snapshot + restore --------------------------------------------
    db = TSDB()
    ingest_s = columnar_ingest(db, series_idx, ts, values, tag_cache)
    text_snap_s, text_points = timed(
        lambda: snapshot(db, tmp_path / "snap.log", format="text")
    )
    bin_snap_s, bin_points = timed(
        lambda: snapshot(db, tmp_path / "snap.seg", format="binary")
    )
    assert text_points == bin_points == db.exact_point_count()
    text_restore_s, r_text = timed(lambda: load(tmp_path / "snap.log"))
    bin_restore_s, r_bin = timed(lambda: load(tmp_path / "snap.seg"))
    assert dumps(r_bin) == dumps(r_text) == dumps(db), "restore equivalence broken"

    replay_speedup = text_replay_s / bin_replay_s
    snap_restore_speedup = (text_snap_s + text_restore_s) / (
        bin_snap_s + bin_restore_s
    )

    def fmt(seconds: float) -> dict:
        return {
            "seconds": round(seconds, 3),
            "points_per_sec": round(n / seconds) if seconds else None,
        }

    report = {
        "workload_points": n,
        "flush_size": FLUSH_SIZE,
        "ingest_reference_seconds": round(ingest_s, 3),
        "text": {
            "wal_append": fmt(text_append_s),
            "wal_replay": fmt(text_replay_s),
            "snapshot": fmt(text_snap_s),
            "restore": fmt(text_restore_s),
            "wal_bytes": text_wal.stat().st_size,
        },
        "binary": {
            "wal_append": fmt(bin_append_s),
            "wal_replay": fmt(bin_replay_s),
            "snapshot": fmt(bin_snap_s),
            "restore": fmt(bin_restore_s),
            "wal_bytes": bin_wal.stat().st_size,
        },
        "speedup": {
            "wal_append": round(text_append_s / bin_append_s, 1),
            "wal_replay": round(replay_speedup, 1),
            "snapshot_restore": round(snap_restore_speedup, 1),
        },
    }
    update_section("persistence", report)
    print(
        f"\nBENCH_persist: append {n / text_append_s:,.0f} -> "
        f"{n / bin_append_s:,.0f} pts/s ({text_append_s / bin_append_s:.1f}x), "
        f"replay {n / text_replay_s:,.0f} -> {n / bin_replay_s:,.0f} pts/s "
        f"({replay_speedup:.1f}x), snapshot+restore "
        f"{snap_restore_speedup:.1f}x, wal bytes "
        f"{text_wal.stat().st_size:,} -> {bin_wal.stat().st_size:,}"
    )

    assert replay_speedup >= REQUIRED_SPEEDUP, (
        f"binary replay only {replay_speedup:.1f}x faster than text"
    )
    assert snap_restore_speedup >= REQUIRED_SPEEDUP, (
        f"binary snapshot/restore only {snap_restore_speedup:.1f}x faster"
    )
