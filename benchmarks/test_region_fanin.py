"""Regional fan-in throughput: 1/2/4 cities into one sharded store.

Extends ``BENCH_ingest.json`` with a ``region_fanin`` section so
successive PRs can track what the queue/hub layer costs on top of the
raw columnar path: per-city batches enter through ``CityIngress`` lanes
(bounded queues, block backpressure), hub ticks drain them into a
4-shard regional store, and the recorded number is end-to-end points/s
through the whole fan-in machinery.

Correctness rides along: every configuration must land *all* points
(zero drops under ``block``) and honour the bounded-depth invariant
throughout.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.region import CityPolicy, RegionalHub
from repro.simclock import Scheduler, SimClock
from repro.tsdb import PointBatch, ShardedTSDB

POINTS_PER_CITY = 200_000
BATCH_ROWS = 10_000
N_NODES = 10
METRICS = ("air.co2.ppm", "air.no2.ugm3", "weather.temperature.c")
from bench_io import update_section  # noqa: E402


def build_city_batches(city: str, seed: int) -> list[PointBatch]:
    """Arrival-ordered columnar batches for one city's dataport."""
    rng = np.random.default_rng(seed)
    batches = []
    for b in range(POINTS_PER_CITY // BATCH_ROWS):
        base = b * BATCH_ROWS * 60
        ts = base + np.arange(BATCH_ROWS, dtype=np.int64) * 60
        vals = rng.normal(400.0, 25.0, size=BATCH_ROWS)
        metric = METRICS[b % len(METRICS)]
        node = f"ctt-{b % N_NODES:02d}"
        batches.append(
            PointBatch.for_series(metric, ts, vals, {"node": node, "city": city})
        )
    return batches


@pytest.mark.parametrize("n_cities", (1, 2, 4))
def test_fanin_throughput(n_cities):
    cities = [f"city-{i:02d}" for i in range(n_cities)]
    traffic = {c: build_city_batches(c, seed=40 + i) for i, c in enumerate(cities)}
    total = n_cities * POINTS_PER_CITY

    scheduler = Scheduler(SimClock(start=0))
    store = ShardedTSDB(4)
    hub = RegionalHub(store, scheduler, flush_interval_s=60)
    lanes = {
        c: hub.register_city(CityPolicy(c, queue_capacity=4 * BATCH_ROWS))
        for c in cities
    }
    hub.start()

    t0 = time.perf_counter()
    for i in range(POINTS_PER_CITY // BATCH_ROWS):
        for c in cities:
            lanes[c].put_batch(traffic[c][i])
        scheduler.run_for(60)  # one hub tick: drain every lane
        for c in cities:
            assert hub.queue(c).depth_points <= 4 * BATCH_ROWS
    hub.drain_all()
    elapsed = time.perf_counter() - t0

    # Zero loss, exact accounting, everything queryable.
    assert store.exact_point_count() == total
    for c in cities:
        stats = hub.city_stats(c)
        assert stats["dropped_points"] == 0
        assert stats["flushed_points"] == POINTS_PER_CITY

    pts_per_sec = total / elapsed
    update_section("region_fanin", {
        "store": "sharded-4",
        "points_per_city": POINTS_PER_CITY,
        "cities": {str(n_cities): {
            "seconds": round(elapsed, 3),
            "points_per_sec": round(pts_per_sec),
        }},
    }, merge=True)
    print(
        f"\nBENCH_region[{n_cities} cities]: {total:,} pts in {elapsed:.3f}s "
        f"({pts_per_sec:,.0f} pts/s through the fan-in layer)"
    )
