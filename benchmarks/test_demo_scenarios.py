"""§3 Demonstration — the three audience scenarios over both use cases.

Trondheim (12 sensors) and Vejle (2 sensors), historic data in the TSDB,
synthetic pollution injection, and the developer / officials / citizens
walkthroughs, each asserted against what the paper says each audience
sees.
"""

import pytest

from conftest import report
from repro.core import (
    citizens_scenario,
    developer_scenario,
    officials_scenario,
)
from repro.sensors import PollutionInjection
from repro.simclock import DAY, HOUR


def test_demo_developer_view(history_ecosystem):
    eco, city, start, end = history_ecosystem
    view = developer_scenario(city)
    # "demonstrate the building blocks of the system"
    for block in ("sensor nodes", "gateways", "backbone", "storage",
                  "external sources", "monitoring"):
        assert block in view.architecture
    assert "segmentation" not in view.flow_description  # flow, not streams
    assert "MQTT" in view.flow_description


def test_demo_officials_view_with_injection(history_ecosystem):
    eco, city, start, end = history_ecosystem
    injection = PollutionInjection(
        center=city.deployment.center,
        start=start + 5 * DAY,
        end=start + 5 * DAY + 4 * HOUR,
        no2_ugm3=150.0,
    )
    view = officials_scenario(city, start, end - 1, injection=injection)
    # Fig. 5 discussion with the officials.
    assert view.co2_traffic_verdict == "no apparent correlation"
    # Fig. 7: the CityGML view renders.
    assert "<svg" in view.city_svg
    # The what-if moves the air-quality band (the planning discussion).
    effect = view.suggested_injection_effect
    assert effect["no2_after"] > effect["no2_before"]
    assert effect["caqi_after"] != effect["caqi_before"]
    city.environment.clear_injections()
    report(
        "Demo: officials' what-if",
        [(k, v) for k, v in effect.items()],
    )


def test_demo_citizens_view(history_ecosystem):
    eco, city, start, end = history_ecosystem
    view = citizens_scenario(city, start, end - 1)
    assert "CAQI per node" in view.dashboard_text
    assert view.anomalous_day_count >= 0


def test_demo_citizens_find_injected_anomaly(history_ecosystem):
    """'Attendees can browse historic data ... to investigate anomalous
    emission levels' — an injected event shows up as an anomalous day."""
    eco, city, start, end = history_ecosystem
    day = start + 10 * DAY
    # Write an obvious pollution event into history (as the demo's
    # synthetic injection would have produced).
    for h in range(24):
        eco.db.put(
            "air.no2.ugm3",
            day + h * HOUR,
            320.0,
            {"city": "vejle", "node": "ctt-vj-01"},
        )
    view = citizens_scenario(city, start, end - 1)
    assert view.anomalous_day_count >= 1
    assert view.worst_day == day


def test_demo_scenarios_benchmark(history_ecosystem, benchmark):
    """Benchmark: the full three-audience demo pass for one city."""
    eco, city, start, end = history_ecosystem

    def full_demo():
        dev = developer_scenario(city)
        off = officials_scenario(city, start, end - 1)
        cit = citizens_scenario(city, start, end - 1)
        return dev, off, cit

    dev, off, cit = benchmark.pedantic(full_demo, rounds=3, iterations=1)
    assert off.co2_traffic_verdict == "no apparent correlation"
