"""Replication benchmarks: steady-state lag, catch-up replay, failover.

The hot-standby trajectory measured end to end over real sockets,
recording the ``replication`` section of ``BENCH_ingest.json``:

- *steady-state lag*: paced ingest (sensor-arrival cadence) through a
  :class:`~repro.replication.ReplicatedStore` with a live follower —
  how many records sit unacknowledged at each pacing tick;
- *catch-up throughput*: the follower joins **after** the primary has
  accumulated a backlog, and must replay it from seq 1 (the disconnect
  / cold-standby recovery path);
- *failover to first query*: promote the caught-up follower, stand up
  a :class:`~repro.serve.server.QueryServer` on its store, and time
  the gap until the first client query is answered — the span a
  dashboard actually goes dark during a primary loss.

Gate: catch-up replay must apply points at >= 5x the paced live-ingest
rate — a standby that cannot out-run the ingest it missed would never
converge after an outage.
"""

from __future__ import annotations

import asyncio
import threading
import time
from contextlib import contextmanager

import numpy as np

from repro.replication import Follower, ReplicatedStore, SegmentShipper
from repro.serve import QueryClient, QueryServer
from repro.tsdb import BatchBuilder, Query, TSDB, wire

from bench_io import update_section  # noqa: E402

N_NODES = 10
ROWS_PER_NODE = 50          # 500 points per batch / log record
LIVE_ROUNDS = 80            # paced ingest batches
PACE_S = 0.005              # sensor-arrival cadence between batches
BACKLOG_ROUNDS = 400        # catch-up backlog batches (200k points)
GATE_SPEEDUP = 5.0


def make_batch(round_no: int) -> "BatchBuilder":
    """One paced arrival: ``N_NODES`` series, ``ROWS_PER_NODE`` rows."""
    builder = BatchBuilder()
    base = round_no * ROWS_PER_NODE * 60
    ts = base + np.arange(ROWS_PER_NODE, dtype=np.int64) * 60
    for node in range(N_NODES):
        builder.add_series(
            "air.co2.ppm",
            ts,
            400.0 + round_no + np.arange(ROWS_PER_NODE, dtype=np.float64),
            {"node": f"ctt-{node:02d}", "city": "trondheim"},
        )
    return builder.build()


@contextmanager
def bg_loop():
    """An event loop on its own thread, driven via coroutine handles."""
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    try:
        yield loop
    finally:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()


def run_on(loop, coro, timeout=120):
    return asyncio.run_coroutine_threadsafe(coro, loop).result(timeout)


async def _start_follower(follower):
    return await follower.start()


async def _start_shipper(shipper):
    shipper.start()


def test_replication_lag_catchup_failover():
    report: dict = {
        "workload": {
            "points_per_record": N_NODES * ROWS_PER_NODE,
            "live_rounds": LIVE_ROUNDS,
            "pace_ms": PACE_S * 1e3,
            "backlog_records": BACKLOG_ROUNDS,
            "transport": "tcp length-prefixed segment blocks",
        },
    }

    with bg_loop() as loop:
        # -- steady-state: paced ingest with a live follower ------------
        follower = Follower()
        host, port = run_on(loop, _start_follower(follower))
        primary = ReplicatedStore(TSDB())
        shipper = SegmentShipper(primary.log, host, port,
                                 backoff=0.005, max_backoff=0.05, seed=0)
        run_on(loop, _start_shipper(shipper))

        lag_samples: list[int] = []
        t0 = time.perf_counter()
        for i in range(LIVE_ROUNDS):
            primary.put_batch(make_batch(i))
            time.sleep(PACE_S)
            lag_samples.append(shipper.lag_records)
        live_elapsed = time.perf_counter() - t0
        run_on(loop, shipper.wait_caught_up(timeout=60))
        run_on(loop, shipper.stop())
        run_on(loop, follower.stop())

        live_points = LIVE_ROUNDS * N_NODES * ROWS_PER_NODE
        live_rate = live_points / live_elapsed
        lag_samples.sort()
        report["steady_state"] = {
            "live_ingest_points_per_sec": round(live_rate),
            "lag_records_p50": lag_samples[len(lag_samples) // 2],
            "lag_records_p99": lag_samples[int(len(lag_samples) * 0.99)],
            "lag_records_max": lag_samples[-1],
        }

        # -- catch-up: the follower joins with a backlog waiting --------
        primary2 = ReplicatedStore(TSDB())
        for i in range(BACKLOG_ROUNDS):
            primary2.put_batch(make_batch(i))
        backlog_points = BACKLOG_ROUNDS * N_NODES * ROWS_PER_NODE

        late = Follower()
        lhost, lport = run_on(loop, _start_follower(late))
        shipper2 = SegmentShipper(primary2.log, lhost, lport,
                                  backoff=0.005, max_backoff=0.05, seed=0)
        t0 = time.perf_counter()
        run_on(loop, _start_shipper(shipper2))
        run_on(loop, shipper2.wait_caught_up(timeout=120))
        catchup_elapsed = time.perf_counter() - t0
        run_on(loop, shipper2.stop())
        catchup_rate = backlog_points / catchup_elapsed
        report["catchup"] = {
            "backlog_points": backlog_points,
            "elapsed_s": round(catchup_elapsed, 3),
            "points_per_sec": round(catchup_rate),
            "speedup_vs_live_ingest": round(catchup_rate / live_rate, 2),
        }

        # -- failover: promote + serve + first query answered -----------
        t_max = BACKLOG_ROUNDS * ROWS_PER_NODE * 60
        panel = Query("air.co2.ppm", 0, t_max, tags={"city": "trondheim"},
                      downsample="1h-avg")
        t0 = time.perf_counter()
        promoted = late.promote()
        run_on(loop, late.stop())
        server = QueryServer(promoted, port=0)
        run_on(loop, server.start())
        with QueryClient(*server.address, timeout=30, deadline=30) as client:
            first_reply = client.request([panel])
        failover_s = time.perf_counter() - t0
        run_on(loop, server.stop(timeout=10.0))
        report["failover"] = {
            "promote_to_first_query_ms": round(failover_s * 1e3, 2),
            "records_applied": late.stats.records_applied,
        }

    # The promoted answer is the primary's answer, byte for byte.
    assert first_reply["results"] == wire.encode_response(
        primary2.wrapped.run_many([panel])
    )["results"]
    assert late.applied_seq == primary2.log.last_seq

    print(f"\nBENCH_replication: live {report['steady_state']['live_ingest_points_per_sec']} pts/s "
          f"(lag p50 {report['steady_state']['lag_records_p50']} rec), "
          f"catch-up {report['catchup']['points_per_sec']} pts/s "
          f"({report['catchup']['speedup_vs_live_ingest']}x live), "
          f"failover {report['failover']['promote_to_first_query_ms']} ms")

    update_section("replication", report)

    # The acceptance gate: catch-up replay out-runs paced live ingest by
    # at least 5x, so a standby that missed an outage converges.
    assert report["catchup"]["points_per_sec"] >= GATE_SPEEDUP * live_rate, (
        f"catch-up only {catchup_rate / live_rate:.2f}x live ingest"
    )
