"""Shared fixtures for the per-figure/table benchmark harness.

Every benchmark regenerates the data behind one figure or table of the
paper and (a) asserts the qualitative *shape* the paper reports and
(b) measures the hot code path with pytest-benchmark.  Expensive
ecosystem builds are session-scoped.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CttEcosystem,
    EcosystemConfig,
    backfill_history,
    trondheim_deployment,
    vejle_deployment,
)
from repro.simclock import CTT_EPOCH, DAY, HOUR


@pytest.fixture(scope="session")
def live_ecosystem():
    """Both cities after 6 live hours (radio-accurate path)."""
    eco = CttEcosystem(
        [trondheim_deployment(), vejle_deployment()],
        config=EcosystemConfig(seed=17, shadowing_sigma_db=4.0),
    )
    eco.start()
    eco.run(6 * HOUR)
    return eco


@pytest.fixture(scope="module")
def history_ecosystem():
    """Vejle with 14 days of hourly backfilled history.

    Module-scoped on purpose: some benchmarks write synthetic events
    into the history (the demo's injection), which must not leak into
    other figures' analyses.
    """
    eco = CttEcosystem([vejle_deployment()], config=EcosystemConfig(seed=23))
    city = eco.city("vejle")
    start = CTT_EPOCH
    end = start + 14 * DAY
    backfill_history(city, start, end, cadence_s=HOUR)
    return eco, city, start, end


def report(title: str, rows: list[tuple]) -> None:
    """Print a paper-style table into the benchmark output."""
    print(f"\n--- {title} ---")
    for row in rows:
        print("  " + "  ".join(str(c) for c in row))
