#!/usr/bin/env python3
"""Grounding and calibrating the low-cost network (paper §2.4).

One CTT node is co-located with the only official NILU station in the
pilot area.  This example reproduces the calibration workflow:

1. collect a week of hourly pairs (low-cost node vs reference station);
2. quantify the raw sensor's absolute and relative accuracy;
3. fit the linear transfer and show the improvement out-of-sample;
4. propagate the calibration to the rest of the network through
   "larger-scale correlated trends" (with lower certainty).

Run:  python examples/calibration_study.py
"""

import numpy as np

from repro.analytics import accuracy, fit_colocation, propagate_network
from repro.core import CttEcosystem, EcosystemConfig, trondheim_deployment
from repro.simclock import CTT_EPOCH, DAY, HOUR


def main() -> None:
    eco = CttEcosystem(
        [trondheim_deployment()], config=EcosystemConfig(seed=11)
    )
    city = eco.city("trondheim")
    anchor = city.deployment.reference_node
    station = city.nilu
    print(f"co-located pair: node {anchor.node_id} <-> station {station.name}\n")

    # Hourly aligned pairs for two weeks (fit week + evaluation week).
    start = CTT_EPOCH
    hours = np.arange(start, start + 14 * DAY, HOUR, dtype=np.int64)
    node = city.nodes[anchor.node_id]

    raw = np.array([node.read_channels(int(t))["no2_ugm3"] for t in hours])
    ref_obs = station.fetch(int(hours[0]), int(hours[-1]))
    ref_by_ts = {
        o.timestamp: o.value for o in ref_obs if o.quantity == "no2_ugm3"
    }
    reference = np.array([ref_by_ts.get(int(t), np.nan) for t in hours])

    half = hours.size // 2
    before = accuracy(raw[half:], reference[half:])
    print("== raw low-cost sensor vs reference (evaluation week) ==")
    print(f"  RMSE {before.rmse:6.2f} ug/m3   bias {before.bias:+6.2f}   "
          f"r {before.correlation:.3f}   (n={before.n})")

    cal = fit_colocation(raw[:half], reference[:half])
    print(f"\nfitted transfer: corrected = {cal.gain:.3f} * raw "
          f"{cal.offset:+.2f}  (sigma {cal.residual_sigma:.2f}, n={cal.n})")

    after = accuracy(cal.apply(raw[half:]), reference[half:])
    print("\n== calibrated sensor vs reference (same week) ==")
    print(f"  RMSE {after.rmse:6.2f} ug/m3   bias {after.bias:+6.2f}   "
          f"r {after.correlation:.3f}")
    print(f"  improvement: RMSE x{before.rmse / max(after.rmse, 1e-9):.1f} better")

    # Network propagation: other nodes never met the reference station.
    print("\n== network propagation (lower certainty) ==")
    node_series = {
        node_id: np.array(
            [n.read_channels(int(t))["no2_ugm3"] for t in hours[:half]]
        )
        for node_id, n in sorted(city.nodes.items())[:5]
    }
    node_series[anchor.node_id] = raw[:half]
    net = propagate_network(anchor.node_id, cal, node_series)
    for node_id in sorted(node_series):
        c = net.for_node(node_id)
        marker = "(anchor)" if node_id == anchor.node_id else ""
        print(f"  {node_id}: gain {c.gain:.3f}, offset {c.offset:+7.2f}, "
              f"sigma {c.residual_sigma:.2f} {marker}")


if __name__ == "__main__":
    main()
