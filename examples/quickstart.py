#!/usr/bin/env python3
"""Quickstart: build the Trondheim pilot, run six hours, look at the data.

This is the smallest end-to-end tour of the CTT ecosystem (paper Fig. 1):
sensor nodes -> LoRaWAN -> network server -> MQTT -> dataport -> TSDB,
then a query and a dashboard over the collected measurements.

Run:  python examples/quickstart.py
"""

from repro.core import (
    CttEcosystem,
    EcosystemConfig,
    build_air_quality_dashboard,
    trondheim_deployment,
)
from repro.simclock import HOUR
from repro.tsdb import METRIC_CO2, Query


def main() -> None:
    # 1. Build the ecosystem from the declarative deployment descriptor.
    eco = CttEcosystem(
        [trondheim_deployment()], config=EcosystemConfig(seed=42)
    )
    eco.start()

    # 2. Run six simulated hours (nodes sample every five minutes).
    start = eco.now
    eco.run(6 * HOUR)
    city = eco.city("trondheim")

    # 3. Pipeline health: how many uplinks survived radio + backend?
    stats = city.delivery_stats()
    print("== pipeline ==")
    for key, value in stats.items():
        print(f"  {key:>22}: {value}")

    # 4. Query the TSDB like a dashboard would: city-mean CO2, hourly.
    result = eco.db.run(
        Query(
            METRIC_CO2,
            start,
            eco.now,
            tags={"city": "trondheim"},
            downsample="1h-avg",
        )
    )
    series = result.single()
    print("\n== hourly city-mean CO2 (ppm) ==")
    for ts, value in zip(series.timestamps, series.values):
        print(f"  t+{(int(ts) - start) // HOUR:02d}h  {value:7.1f}")

    # 5. Render the live air-quality dashboard (paper Fig. 6).
    dashboard = build_air_quality_dashboard(city, start, eco.now)
    print("\n" + dashboard.render_text())


if __name__ == "__main__":
    main()
