#!/usr/bin/env python3
"""Network monitoring with digital twins (paper §2.3, Figs. 2-3).

Runs the Trondheim pilot, then injects the failure classes the paper
discusses and shows how the dataport reacts:

- a single sensor dies           -> one per-sensor alarm;
- a whole gateway goes down      -> ONE grouped gateway alarm (no storm);
- the dataport itself fails      -> the external watchdog catches it.

Finally renders the Fig. 3 network visualization before/after.

Run:  python examples/network_monitoring.py
"""

from repro.core import CttEcosystem, EcosystemConfig, trondheim_deployment
from repro.dataport import AlarmKind
from repro.simclock import HOUR
from repro.viz import render_alarm_panel, render_text_map, to_geojson


def show_alarms(city, label):
    print(f"\n-- alarms {label} --")
    print(render_alarm_panel(city.dataport.alarms))


def main() -> None:
    eco = CttEcosystem(
        [trondheim_deployment()], config=EcosystemConfig(seed=5)
    )
    eco.start()
    eco.run(2 * HOUR)
    city = eco.city("trondheim")

    print("== healthy network (Fig. 3) ==")
    print(render_text_map(city.network_snapshot()))
    show_alarms(city, "while healthy")

    # --- failure 1: one sensor stops transmitting -----------------------
    victim = city.nodes["ctt-tr-04"]
    victim.alive = False
    print("\n>>> killing sensor ctt-tr-04 ...")
    eco.run(2 * HOUR)
    show_alarms(city, "after sensor death")
    assert city.dataport.alarms.is_active(AlarmKind.SENSOR_OVERDUE, "ctt-tr-04")

    # --- failure 2: a gateway outage -------------------------------------
    print("\n>>> taking gateway gw-tr-sentrum offline ...")
    city.plane.gateway("gw-tr-sentrum").set_online(False)
    eco.run(2 * HOUR)
    show_alarms(city, "after gateway outage")
    snapshot = city.network_snapshot()
    print(f"\noverdue sensors (grouped under the gateway alarm): "
          f"{snapshot['overdue_sensors']}")
    print(f"silent gateways: {snapshot['silent_gateways']}")
    print("\n== degraded network (Fig. 3) ==")
    print(render_text_map(snapshot))

    # --- recovery ----------------------------------------------------------
    print("\n>>> gateway restored ...")
    city.plane.gateway("gw-tr-sentrum").set_online(True)
    eco.run(2 * HOUR)
    show_alarms(city, "after recovery")

    # --- failure 3: the dataport itself ------------------------------------
    print("\n>>> dataport process hangs; the external watchdog takes over ...")
    city.dataport.healthy = False
    eco.run(HOUR)
    assert city.watchdog.down
    show_alarms(city, "dataport down (watchdog)")
    city.dataport.healthy = True
    eco.run(HOUR)
    print(f"\nwatchdog stats: {city.watchdog.stats}")

    # GeoJSON export for web maps.
    geojson = to_geojson(city.network_snapshot())
    print(f"\nGeoJSON export: {len(geojson['features'])} features "
          "(sensors + gateways + links)")


if __name__ == "__main__":
    main()
