#!/usr/bin/env python3
"""The CO2-vs-traffic study behind paper Fig. 5.

Aligns a week of CO2 measurements with the here.com jam factor at one
sensor location, prints both diurnal profiles side by side, the
correlation scan, and the multi-factor attribution — arriving at the
paper's conclusion: "traffic is not the only factor that accounts for
the dynamics of the CO2 emission ... no apparent correlation".

Run:  python examples/co2_traffic_study.py
"""

import numpy as np

from repro.analytics import correlation_study, diurnal_comparison, factor_attribution
from repro.core import CttEcosystem, EcosystemConfig, backfill_history, vejle_deployment
from repro.integration import Harmonizer
from repro.simclock import CTT_EPOCH, DAY, HOUR
from repro.tsdb import METRIC_CO2, METRIC_JAM_FACTOR, Query
from repro.viz import sparkline


def main() -> None:
    eco = CttEcosystem([vejle_deployment()], config=EcosystemConfig(seed=3))
    city = eco.city("vejle")
    start, end = CTT_EPOCH, CTT_EPOCH + 14 * DAY
    backfill_history(city, start, end, cadence_s=HOUR)

    co2 = eco.db.run(
        Query(METRIC_CO2, start, end - 1, tags={"city": "vejle"},
              downsample="1h-avg-linear")
    ).single()
    jam = eco.db.run(
        Query(METRIC_JAM_FACTOR, start, end - 1, downsample="1h-avg-linear")
    ).single()
    n = min(len(co2), len(jam))
    ts = co2.timestamps[:n]

    comp = diurnal_comparison(co2.values[:n], jam.values[:n], ts)
    print("== diurnal profiles (normalized, hour 0-23) ==")
    print(f"  CO2   {sparkline(comp.co2_profile)}   peak hour {comp.co2_peak_hour:2d}")
    print(f"  jam   {sparkline(comp.jam_profile)}   peak hour {comp.jam_peak_hour:2d}")
    print(f"  profile correlation: {comp.profile_correlation:+.3f}"
          "  -> the patterns differ\n")

    study = correlation_study(co2.values[:n], jam.values[:n], cadence_s=HOUR)
    print("== correlation scan (Fig. 5 verdict) ==")
    print(f"  Pearson r  {study.pearson_r:+.3f} (p={study.pearson_p:.2g})")
    print(f"  Spearman   {study.spearman_rho:+.3f}")
    print(f"  best lag   {study.best_lag_s / 3600:+.0f} h -> r {study.best_lag_r:+.3f}")
    verdict = ("NO apparent correlation" if study.no_apparent_correlation
               else "correlated")
    print(f"  verdict: {verdict}\n")

    weather = city.environment.weather
    attribution = factor_attribution(
        co2.values[:n],
        {
            "jam_factor": jam.values[:n],
            "wind": np.array([weather.wind_speed_ms(int(t)) for t in ts]),
            "temperature": np.array([weather.temperature_c(int(t)) for t in ts]),
            "humidity": np.array([weather.humidity_pct(int(t)) for t in ts]),
        },
        ts,
    )
    print("== what DOES explain CO2? (multi-factor attribution) ==")
    print(f"  R2, traffic alone:            {attribution.r2_traffic_only:.2f}")
    print(f"  R2, + weather + daily cycle:  {attribution.r2_full:.2f}")
    print("  standardized coefficients:")
    for name, coef in sorted(attribution.coefficients.items()):
        print(f"    {name:>12}: {coef:+7.2f}")
    print(
        "\nconclusion: CO2 dynamics are a complex, multi-factor signal — "
        "matching the paper."
    )


if __name__ == "__main__":
    main()
