#!/usr/bin/env python3
"""The paper's demonstration (§3): Trondheim + Vejle, three audiences.

Replays the EDBT demo: both pilot cities run on one clock and one
database ("two and twelve sensors were deployed respectively"), a week
of historic data is backfilled ("historic data ... collected since
January 2017"), and the three points of view are walked through:
developers, city officials (with a synthetic pollution injection), and
citizens.

Run:  python examples/two_city_demo.py
"""

from repro.core import (
    CttEcosystem,
    EcosystemConfig,
    backfill_history,
    build_wall_display,
    citizens_scenario,
    developer_scenario,
    officials_scenario,
    trondheim_deployment,
    vejle_deployment,
)
from repro.sensors import PollutionInjection
from repro.simclock import CTT_EPOCH, DAY, HOUR


def main() -> None:
    eco = CttEcosystem(
        [trondheim_deployment(), vejle_deployment()],
        config=EcosystemConfig(seed=7),
    )

    # Historic archive (hourly since 2017-01-01), then a live morning.
    history_start = CTT_EPOCH
    history_end = CTT_EPOCH + 7 * DAY
    for name in ("trondheim", "vejle"):
        n = backfill_history(eco.city(name), history_start, history_end)
        print(f"backfilled {n} historic points for {name}")
    eco.scheduler.clock.advance_to(history_end)
    eco.start()
    eco.run(3 * HOUR)
    print(f"simulated through {eco.scheduler.clock.isoformat()}\n")

    trondheim = eco.city("trondheim")
    vejle = eco.city("vejle")

    # ---- developers' point of view -----------------------------------
    dev = developer_scenario(trondheim)
    print(dev.architecture)
    print(f"\n{dev.flow_description}")
    print(f"pipeline: {dev.pipeline_stats}\n")

    # ---- city officials' point of view --------------------------------
    injection = PollutionInjection(
        center=vejle.deployment.center,
        start=history_start + 3 * DAY,
        end=history_start + 3 * DAY + 6 * HOUR,
        no2_ugm3=100.0,
        pm10_ugm3=60.0,
    )
    officials = officials_scenario(
        vejle, history_start, history_end - 1, injection=injection
    )
    print("== city officials: CO2 dynamics (Fig. 5) ==")
    print(f"  corr(CO2, jam factor) = {officials.co2_traffic_correlation:+.3f}"
          f"  -> {officials.co2_traffic_verdict}")
    print(f"  R2 traffic only = {officials.factor_r2_traffic:.2f}, "
          f"R2 with weather+diurnal = {officials.factor_r2_full:.2f}")
    print(f"  construction-site what-if: {officials.suggested_injection_effect}")
    with open("/tmp/vejle_city_model.svg", "w", encoding="utf-8") as fh:
        fh.write(officials.city_svg)
    print("  wrote 3D city model view to /tmp/vejle_city_model.svg (Fig. 7)\n")

    # ---- citizens' point of view -----------------------------------------
    citizens = citizens_scenario(vejle, history_start, history_end - 1)
    print("== citizens: air quality dashboard (Fig. 6) ==")
    print(citizens.dashboard_text)
    print(
        f"\nhistoric browsing: {citizens.anomalous_day_count} anomalous day(s)"
        + (f", worst at epoch {citizens.worst_day}" if citizens.worst_day else "")
    )

    # ---- the wall display (Fig. 8) ---------------------------------------------
    wall = build_wall_display(trondheim, history_end, eco.now)
    print("\n" + wall.render_text())


if __name__ == "__main__":
    main()
