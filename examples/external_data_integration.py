#!/usr/bin/env python3
"""External data integration (paper Table 1, §2.2).

Pulls all six source classes for the Trondheim region, harmonizes them
into the shared TSDB, and shows what makes the integration hard: the
cadence/geometry/uncertainty mismatch across sources.

Run:  python examples/external_data_integration.py
"""

from repro.core import CttEcosystem, EcosystemConfig, trondheim_deployment
from repro.integration import render_table1, write_citygml
from repro.simclock import CTT_EPOCH, DAY, HOUR


def main() -> None:
    eco = CttEcosystem(
        [trondheim_deployment()], config=EcosystemConfig(seed=9)
    )
    city = eco.city("trondheim")

    print("== Table 1: external sources and live connector status ==")
    print(render_table1(city.catalog))

    start, end = CTT_EPOCH, CTT_EPOCH + 32 * DAY
    report = city.sync_external(start, end)
    print(f"\nsynced {report.observations} observations over 32 days:")
    for source, count in sorted(report.per_source.items()):
        connector = next(
            c for c in city.harmonizer.connectors if c.name == source
        )
        cadence = connector.cadence_s()
        cadence_txt = f"every {cadence}s" if cadence else "irregular"
        print(f"  {source:<22} {count:6d} obs ({cadence_txt})")

    print("\n== the heterogeneity problem in numbers ==")
    print("  here.com jam factor : 5-minute ticks, per road segment")
    print("  NILU station        : hourly averages, one point")
    print("  municipal counts    : hourly, but only during campaigns "
          f"(coverage {city.counts.coverage_fraction(start, end):.0%})")
    passes = city.oco2.overpass_times(start, end)
    print(f"  OCO-2 satellite     : {len(passes)} overpasses in 32 days, "
          "cloud-screened, column averages")
    total, sigma = city.stats.total_with_uncertainty(2017)
    print(f"  national statistics : 1 value/year; municipal estimate "
          f"{total:.0f} +/- {sigma:.0f} kt CO2e ({sigma / total:.0%} rel.)")

    # The static row: the 3D city model.
    gml = write_citygml(city.city_model)
    print(f"  3D city model       : {len(city.city_model)} LOD1 buildings, "
          f"{len(gml)} bytes of CityGML")

    print("\nafter harmonization, everything answers the same query API:")
    for metric in sorted(m for m in eco.db.metrics() if m.startswith("ext.")):
        series = eco.db.series_for_metric(metric)
        print(f"  {metric:<28} {len(series)} series")


if __name__ == "__main__":
    main()
