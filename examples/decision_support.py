#!/usr/bin/env python3
"""Decision support: impact assessment of city measures (paper intro +
future work).

The paper motivates dense sensing with impact assessment "ranging from
small-scale such as closing down certain streets (and being able to
observe spillover and evasion effects in surrounding parts of the city)
to large-scale such as changes in public transport".  This example runs
both against the simulated Trondheim:

1. close the E6 through the centre -> local win, measurable spillover;
2. improve public transport (-20 % traffic) -> broad improvement;
3. site a hypothetical construction plume with the dispersion model and
   estimate the city-wide field from the sensor network.

Run:  python examples/decision_support.py
"""

import datetime as dt

import numpy as np

from repro.analytics import GaussianPlume, StabilityClass, interpolate_field
from repro.core import (
    CttEcosystem,
    EcosystemConfig,
    StreetClosure,
    TransitImprovement,
    assess_intervention,
    trondheim_deployment,
)
from repro.geo import BoundingBox
from repro.simclock import HOUR, from_datetime
from repro.tsdb import METRIC_NO2
from repro.viz import sparkline


def main() -> None:
    eco = CttEcosystem(
        [trondheim_deployment()], config=EcosystemConfig(seed=21)
    )
    eco.start()
    eco.run(3 * HOUR)
    city = eco.city("trondheim")
    env = city.environment

    probes = {
        p.node_id: p.location for p in city.deployment.nodes[:6]
    }
    base = from_datetime(dt.datetime(2017, 6, 14))
    rush = [base + h * HOUR for h in (7, 8, 9, 15, 16, 17)]

    # ---- small-scale: close the E6 -------------------------------------
    print("== what-if 1: close the E6 through the centre ==")
    closure = assess_intervention(
        env, StreetClosure("E6", evasion_fraction=0.7), probes, rush
    )
    print(closure.summary())

    # ---- large-scale: public transport ----------------------------------
    print("\n== what-if 2: public transport upgrade (-20% traffic) ==")
    transit = assess_intervention(
        env, TransitImprovement(0.20), probes, rush
    )
    print(transit.summary())

    # ---- dispersion: a construction-site plume ---------------------------
    print("\n== what-if 3: construction site plume (dispersion model) ==")
    noon = base + 12 * HOUR
    wind = env.weather.wind_speed_ms(noon)
    stability = StabilityClass.from_weather(wind, env.weather.irradiance_wm2(noon))
    plume = GaussianPlume(
        source=city.deployment.center,
        emission_rate_gs=8.0,  # dusty demolition works
        wind_speed_ms=wind,
        wind_direction_deg=250.0,
        stack_height_m=10.0,
        stability=stability,
    )
    print(f"  weather: wind {wind:.1f} m/s, stability class {stability}")
    for dist in (200, 500, 1000, 2000):
        receptor = city.deployment.center.destination(70.0, float(dist))
        c = plume.concentration_ugm3(receptor)
        print(f"  {dist:5d} m downwind: {c:8.1f} ug/m3")
    reach = plume.max_impact_distance_m(threshold_ugm3=5.0)
    print(f"  exceeds 5 ug/m3 out to ~{reach:,.0f} m downwind")

    # ---- field estimation from the live network -----------------------------
    print("\n== city-wide NO2 field estimated from 12 sensors ==")
    sensor_values = city.sensor_values_latest(METRIC_NO2)
    region = BoundingBox.around(city.deployment.center, 3000.0)
    grid = interpolate_field(sensor_values, region, rows=12, cols=12)
    field = grid.mean_field()
    for r in range(grid.rows - 1, -1, -1):
        print("  " + sparkline(field[r]))
    print(f"  (12x12 cells, min {np.nanmin(field):.1f}, "
          f"max {np.nanmax(field):.1f} ug/m3)")


if __name__ == "__main__":
    main()
