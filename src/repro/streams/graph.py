"""Dataflow graphs: named stages, automation, live rewiring.

The demo lets attendees "change the dependency of the data flow to
evaluate the flexibility of the data stream analysis" — a
:class:`FlowGraph` holds named operators as a DAG (networkx digraph
underneath), supports connect/disconnect at runtime, validates
acyclicity, and can bind sources to MQTT topics for automation.
"""

from __future__ import annotations

from typing import Callable

import networkx as nx

from ..mqtt import Broker, Message
from .operators import Event, Operator


class FlowGraphError(ValueError):
    """Invalid graph operation (unknown stage, cycle, duplicate name)."""


class FlowGraph:
    """A named, rewirable operator DAG."""

    def __init__(self, name: str = "flow") -> None:
        self.name = name
        self._graph = nx.DiGraph()
        self._stages: dict[str, Operator] = {}

    # -- construction -----------------------------------------------------
    def add(self, stage_name: str, operator: Operator) -> Operator:
        if stage_name in self._stages:
            raise FlowGraphError(f"duplicate stage name: {stage_name}")
        self._stages[stage_name] = operator
        self._graph.add_node(stage_name)
        return operator

    def connect(self, upstream: str, downstream: str) -> None:
        """Add an edge; refuses cycles."""
        up = self._stage(upstream)
        down = self._stage(downstream)
        self._graph.add_edge(upstream, downstream)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(upstream, downstream)
            raise FlowGraphError(
                f"edge {upstream} -> {downstream} would create a cycle"
            )
        up.to(down)

    def disconnect(self, upstream: str, downstream: str) -> None:
        up = self._stage(upstream)
        down = self._stage(downstream)
        if not self._graph.has_edge(upstream, downstream):
            raise FlowGraphError(f"no edge {upstream} -> {downstream}")
        self._graph.remove_edge(upstream, downstream)
        up.disconnect(down)

    def _stage(self, name: str) -> Operator:
        try:
            return self._stages[name]
        except KeyError:
            raise FlowGraphError(f"unknown stage: {name}") from None

    def stage(self, name: str) -> Operator:
        return self._stage(name)

    # -- execution ----------------------------------------------------------
    def push(self, source_name: str, event: Event) -> None:
        stage = self._stage(source_name)
        stage.push(event)

    def flush(self) -> None:
        """Flush all sources (roots) so windows/segments close."""
        for name in self.roots():
            self._stages[name].flush()

    # -- automation -----------------------------------------------------------
    def bind_mqtt(
        self,
        broker: Broker,
        topic_filter: str,
        source_name: str,
        extract: Callable[[Message], Event | None],
        client_id: str | None = None,
    ) -> None:
        """Drive a source from an MQTT subscription (paper: "automation").

        ``extract`` turns a broker message into an event (or None to
        skip); every matching publish then flows through the graph with
        no manual pushes.
        """
        source = self._stage(source_name)
        client = broker.connect(client_id or f"flow-{self.name}-{source_name}")

        def handler(message: Message) -> None:
            event = extract(message)
            if event is not None:
                source.push(event)

        client.subscribe(topic_filter, handler)

    # -- introspection -----------------------------------------------------------
    def roots(self) -> list[str]:
        return sorted(n for n in self._graph if self._graph.in_degree(n) == 0)

    def leaves(self) -> list[str]:
        return sorted(n for n in self._graph if self._graph.out_degree(n) == 0)

    def topological_order(self) -> list[str]:
        return list(nx.topological_sort(self._graph))

    def edges(self) -> list[tuple[str, str]]:
        return sorted(self._graph.edges())

    def stage_stats(self) -> dict[str, dict[str, int]]:
        return {
            name: {"received": op.received, "emitted": op.emitted}
            for name, op in sorted(self._stages.items())
        }

    def describe(self) -> str:
        """ASCII rendering of the DAG in topological order."""
        lines = [f"flow graph '{self.name}':"]
        for name in self.topological_order():
            succ = sorted(self._graph.successors(name))
            arrow = f" -> {', '.join(succ)}" if succ else " (sink)"
            op = self._stages[name]
            lines.append(
                f"  {name} [{type(op).__name__}: in={op.received} out={op.emitted}]{arrow}"
            )
        return "\n".join(lines)
