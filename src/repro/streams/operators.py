"""Stream-processing operators.

Paper §3 (developers' view): "we demonstrate ... how to streamline the
whole data flow, including segmentation, chaining, and automation."
Operators are push-based: an upstream stage calls ``emit`` on its
downstream stages; chains compose operators; windows and segmenters
group events by event time.  Events are ``(timestamp, value)`` pairs
with an optional tag dict.

The pipeline moves in two granularities: single :class:`Event` objects
(``push``/``emit``) and columnar :class:`EventBatch` blocks
(``push_batch``/``emit_batch``).  Operators that have a vectorized form
process whole batches in numpy; the base class falls back to per-event
processing, so batch and scalar stages compose freely in one chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

import numpy as np

from ..tsdb.batch import run_boundaries


@dataclass(frozen=True)
class Event:
    """One stream element."""

    timestamp: int
    value: float
    tags: dict = field(default_factory=dict, hash=False, compare=False)


@dataclass(frozen=True)
class EventBatch:
    """Many stream elements in columnar form (shared tag dict).

    Rows keep arrival order; timestamps need not be sorted (windows and
    segmenters apply the same event-time rules as for single events).
    """

    timestamps: np.ndarray  # int64, parallel to values
    values: np.ndarray  # float64
    tags: dict = field(default_factory=dict, hash=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "timestamps", np.asarray(self.timestamps, dtype=np.int64)
        )
        object.__setattr__(self, "values", np.asarray(self.values, dtype=np.float64))
        if self.timestamps.shape != self.values.shape or self.timestamps.ndim != 1:
            raise ValueError(
                "expected parallel 1-D columns, got "
                f"{self.timestamps.shape} and {self.values.shape}"
            )

    def __len__(self) -> int:
        return int(self.timestamps.shape[0])

    def __iter__(self) -> Iterator[Event]:
        for t, v in zip(self.timestamps.tolist(), self.values.tolist()):
            yield Event(int(t), float(v), dict(self.tags))

    @classmethod
    def from_events(cls, events: Iterable[Event], tags: dict | None = None) -> "EventBatch":
        """Columnarize events.  A batch carries one shared tag dict, so
        the events must agree on tags (pass ``tags`` to override); a
        mixed-tag stream would silently lose information otherwise."""
        events = list(events)
        if tags is None:
            distinct = {tuple(sorted(e.tags.items())) for e in events}
            if len(distinct) > 1:
                raise ValueError(
                    "events carry differing tags; pass an explicit "
                    "tags= or batch them per tag set"
                )
            tags = events[0].tags if events else {}
        return cls(
            np.array([e.timestamp for e in events], dtype=np.int64),
            np.array([e.value for e in events], dtype=np.float64),
            dict(tags),
        )


class Operator:
    """Base push operator; subclasses override :meth:`process`."""

    def __init__(self, name: str | None = None) -> None:
        self.name = name or type(self).__name__
        self._downstream: list[Operator] = []
        self.received = 0
        self.emitted = 0

    def to(self, *operators: "Operator") -> "Operator":
        """Connect downstream stages; returns the *last* for chaining."""
        self._downstream.extend(operators)
        return operators[-1] if operators else self

    def disconnect(self, operator: "Operator") -> bool:
        """Remove a downstream link (demo: "change the dependency of the
        data flow")."""
        if operator in self._downstream:
            self._downstream.remove(operator)
            return True
        return False

    def push(self, event: Event) -> None:
        """Feed one event into this stage."""
        self.received += 1
        self.process(event)

    def push_batch(self, batch: EventBatch) -> None:
        """Feed a columnar batch into this stage."""
        self.received += len(batch)
        self.process_batch(batch)

    def process(self, event: Event) -> None:
        self.emit(event)

    def process_batch(self, batch: EventBatch) -> None:
        """Batch hook; the default falls back to per-event processing so
        non-vectorized operators stay correct inside batch chains."""
        for event in batch:
            self.process(event)

    def emit(self, event: Event) -> None:
        self.emitted += 1
        for op in self._downstream:
            op.push(event)

    def emit_batch(self, batch: EventBatch) -> None:
        if len(batch) == 0:
            return
        self.emitted += len(batch)
        for op in self._downstream:
            op.push_batch(batch)

    def flush(self) -> None:
        """Propagate end-of-stream (windows emit partial buckets)."""
        for op in self._downstream:
            op.flush()


class Source(Operator):
    """Entry point; also accepts bulk iterables and columnar batches."""

    def push_many(self, events: Iterable[Event]) -> int:
        n = 0
        for e in events:
            self.push(e)
            n += 1
        return n


class Map(Operator):
    """Apply ``fn(event) -> event`` to every element.

    ``vector_fn(timestamps, values) -> (timestamps, values)`` is the
    optional columnar form; when given, whole batches transform in one
    numpy call (and ``fn`` handles any stray single events).
    """

    def __init__(
        self,
        fn: Callable[[Event], Event],
        name: str | None = None,
        *,
        vector_fn: Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]
        | None = None,
    ) -> None:
        super().__init__(name)
        self._fn = fn
        self._vector_fn = vector_fn

    def process(self, event: Event) -> None:
        self.emit(self._fn(event))

    def process_batch(self, batch: EventBatch) -> None:
        if self._vector_fn is None:
            super().process_batch(batch)
            return
        ts, vals = self._vector_fn(batch.timestamps, batch.values)
        self.emit_batch(EventBatch(ts, vals, batch.tags))


class Filter(Operator):
    """Keep only events where ``predicate(event)`` is true.

    ``vector_predicate(timestamps, values) -> bool mask`` enables the
    columnar path: one mask per batch instead of one call per event.
    """

    def __init__(
        self,
        predicate: Callable[[Event], bool],
        name: str | None = None,
        *,
        vector_predicate: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
    ) -> None:
        super().__init__(name)
        self._predicate = predicate
        self._vector_predicate = vector_predicate

    def process(self, event: Event) -> None:
        if self._predicate(event):
            self.emit(event)

    def process_batch(self, batch: EventBatch) -> None:
        if self._vector_predicate is None:
            super().process_batch(batch)
            return
        mask = np.asarray(
            self._vector_predicate(batch.timestamps, batch.values), dtype=bool
        )
        if mask.all():
            self.emit_batch(batch)
        elif mask.any():
            self.emit_batch(
                EventBatch(batch.timestamps[mask], batch.values[mask], batch.tags)
            )


class TumblingWindow(Operator):
    """Fixed, non-overlapping event-time windows.

    Emits one aggregate event per closed window, timestamped at the
    window start.  Windows close when an event arrives at or past the
    boundary (event-time semantics; late events re-open nothing and are
    folded into the current window).
    """

    def __init__(
        self,
        width_s: int,
        aggregate: Callable[[np.ndarray], float] = np.mean,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if width_s <= 0:
            raise ValueError("width_s must be positive")
        self.width_s = width_s
        self._aggregate = aggregate
        self._bucket_start: int | None = None
        self._values: list[float] = []

    def process(self, event: Event) -> None:
        bucket = (event.timestamp // self.width_s) * self.width_s
        if self._bucket_start is None:
            self._bucket_start = bucket
        if bucket > self._bucket_start:
            self._close()
            self._bucket_start = bucket
        self._values.append(event.value)

    def process_batch(self, batch: EventBatch) -> None:
        if len(batch) == 0:
            return
        buckets = (batch.timestamps // self.width_s) * self.width_s
        # Late events fold into the window that is open when they arrive
        # (same rule as the per-event path): clamp to the running max of
        # the open-window start.
        if self._bucket_start is not None:
            np.maximum(buckets, self._bucket_start, out=buckets)
        np.maximum.accumulate(buckets, out=buckets)
        if self._bucket_start is None:
            self._bucket_start = int(buckets[0])
        starts, ends = run_boundaries(buckets)
        for s, e in zip(starts, ends):
            bucket = int(buckets[s])
            if bucket > self._bucket_start:
                self._close()
                self._bucket_start = bucket
            self._values.extend(batch.values[s:e].tolist())

    def _close(self) -> None:
        if self._bucket_start is not None and self._values:
            agg = float(self._aggregate(np.asarray(self._values)))
            self.emit(Event(self._bucket_start, agg))
        self._values = []

    def flush(self) -> None:
        self._close()
        self._bucket_start = None
        super().flush()


class Segmenter(Operator):
    """Split a stream into segments at time gaps (paper: "segmentation").

    A gap longer than ``max_gap_s`` between consecutive events closes the
    current segment.  Each completed segment is delivered to
    ``on_segment`` and forwarded downstream as its constituent events
    tagged with a segment id.
    """

    def __init__(
        self,
        max_gap_s: int,
        on_segment: Callable[[list[Event]], None] | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if max_gap_s <= 0:
            raise ValueError("max_gap_s must be positive")
        self.max_gap_s = max_gap_s
        self._on_segment = on_segment
        self._segment: list[Event] = []
        self._segment_id = 0
        self.segments_closed = 0

    def process(self, event: Event) -> None:
        if self._segment and event.timestamp - self._segment[-1].timestamp > self.max_gap_s:
            self._close()
        self._segment.append(event)

    def _close(self) -> None:
        if not self._segment:
            return
        if self._on_segment is not None:
            self._on_segment(list(self._segment))
        for e in self._segment:
            self.emit(
                Event(e.timestamp, e.value, {**e.tags, "segment": self._segment_id})
            )
        self.segments_closed += 1
        self._segment_id += 1
        self._segment = []

    def flush(self) -> None:
        self._close()
        super().flush()


class Sink(Operator):
    """Terminal stage collecting events (or forwarding to a callback)."""

    def __init__(
        self, callback: Callable[[Event], None] | None = None, name: str | None = None
    ) -> None:
        super().__init__(name)
        self._callback = callback
        self.events: list[Event] = []

    def process(self, event: Event) -> None:
        self.events.append(event)
        if self._callback is not None:
            self._callback(event)

    def values(self) -> np.ndarray:
        return np.array([e.value for e in self.events])

    def timestamps(self) -> np.ndarray:
        return np.array([e.timestamp for e in self.events], dtype=np.int64)


class BatchSink(Operator):
    """Terminal stage collecting columnar chunks (no per-event objects).

    The batch-path counterpart of :class:`Sink`: single events become
    one-row chunks, batches are stored as-is, and the collected columns
    concatenate on read.
    """

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self._chunks: list[tuple[np.ndarray, np.ndarray]] = []

    def __len__(self) -> int:
        return sum(c[0].shape[0] for c in self._chunks)

    def process(self, event: Event) -> None:
        self._chunks.append(
            (
                np.array([event.timestamp], dtype=np.int64),
                np.array([event.value], dtype=np.float64),
            )
        )

    def process_batch(self, batch: EventBatch) -> None:
        if len(batch):
            self._chunks.append((batch.timestamps, batch.values))

    def timestamps(self) -> np.ndarray:
        if not self._chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([c[0] for c in self._chunks])

    def values(self) -> np.ndarray:
        if not self._chunks:
            return np.empty(0, dtype=np.float64)
        return np.concatenate([c[1] for c in self._chunks])


class StoreSink(Operator):
    """Terminal stage writing the stream into a time-series store.

    ``store`` is anything exposing ``put_batch`` — a
    :class:`~repro.tsdb.TSDB`, a :class:`~repro.tsdb.ShardedTSDB`, or a
    regional :class:`~repro.region.CityIngress` lane — so a stream
    pipeline can feed the regional fan-in layer in columnar form.
    Buffering delegates to the dataport's
    :class:`~repro.dataport.app.BatchingTsdbWriter` (one batch flushed
    every ``flush_every`` rows and on end-of-stream), so there is a
    single accumulate-and-flush implementation in the codebase.
    """

    def __init__(
        self,
        store,
        metric: str,
        tags: dict | None = None,
        *,
        flush_every: int = 4096,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        from ..dataport.app import BatchingTsdbWriter

        self.store = store
        self.metric = metric
        self.tags = dict(tags or {})
        self.flush_every = flush_every
        self._writer = BatchingTsdbWriter(store, max_pending=flush_every)

    @property
    def written(self) -> int:
        return self._writer.written

    def process(self, event: Event) -> None:
        self._writer.add(
            self.metric, event.timestamp, event.value, {**self.tags, **event.tags}
        )

    def process_batch(self, batch: EventBatch) -> None:
        if len(batch):
            self._writer.add_series(
                self.metric, batch.timestamps, batch.values,
                {**self.tags, **batch.tags},
            )

    def flush_writes(self) -> int:
        """Push buffered rows to the store; returns rows written."""
        return self._writer.flush()

    def flush(self) -> None:
        self.flush_writes()
        super().flush()


def chain(*operators: Operator) -> tuple[Operator, Operator]:
    """Wire operators linearly; returns (head, tail)."""
    if not operators:
        raise ValueError("chain needs at least one operator")
    for up, down in zip(operators, operators[1:]):
        up.to(down)
    return operators[0], operators[-1]
