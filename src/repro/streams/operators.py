"""Stream-processing operators.

Paper §3 (developers' view): "we demonstrate ... how to streamline the
whole data flow, including segmentation, chaining, and automation."
Operators are push-based: an upstream stage calls ``emit`` on its
downstream stages; chains compose operators; windows and segmenters
group events by event time.  Events are ``(timestamp, value)`` pairs
with an optional tag dict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np


@dataclass(frozen=True)
class Event:
    """One stream element."""

    timestamp: int
    value: float
    tags: dict = field(default_factory=dict, hash=False, compare=False)


class Operator:
    """Base push operator; subclasses override :meth:`process`."""

    def __init__(self, name: str | None = None) -> None:
        self.name = name or type(self).__name__
        self._downstream: list[Operator] = []
        self.received = 0
        self.emitted = 0

    def to(self, *operators: "Operator") -> "Operator":
        """Connect downstream stages; returns the *last* for chaining."""
        self._downstream.extend(operators)
        return operators[-1] if operators else self

    def disconnect(self, operator: "Operator") -> bool:
        """Remove a downstream link (demo: "change the dependency of the
        data flow")."""
        if operator in self._downstream:
            self._downstream.remove(operator)
            return True
        return False

    def push(self, event: Event) -> None:
        """Feed one event into this stage."""
        self.received += 1
        self.process(event)

    def process(self, event: Event) -> None:
        self.emit(event)

    def emit(self, event: Event) -> None:
        self.emitted += 1
        for op in self._downstream:
            op.push(event)

    def flush(self) -> None:
        """Propagate end-of-stream (windows emit partial buckets)."""
        for op in self._downstream:
            op.flush()


class Source(Operator):
    """Entry point; also accepts bulk iterables."""

    def push_many(self, events: Iterable[Event]) -> int:
        n = 0
        for e in events:
            self.push(e)
            n += 1
        return n


class Map(Operator):
    """Apply ``fn(event) -> event`` to every element."""

    def __init__(self, fn: Callable[[Event], Event], name: str | None = None) -> None:
        super().__init__(name)
        self._fn = fn

    def process(self, event: Event) -> None:
        self.emit(self._fn(event))


class Filter(Operator):
    """Keep only events where ``predicate(event)`` is true."""

    def __init__(
        self, predicate: Callable[[Event], bool], name: str | None = None
    ) -> None:
        super().__init__(name)
        self._predicate = predicate

    def process(self, event: Event) -> None:
        if self._predicate(event):
            self.emit(event)


class TumblingWindow(Operator):
    """Fixed, non-overlapping event-time windows.

    Emits one aggregate event per closed window, timestamped at the
    window start.  Windows close when an event arrives at or past the
    boundary (event-time semantics; late events re-open nothing and are
    folded into the current window).
    """

    def __init__(
        self,
        width_s: int,
        aggregate: Callable[[np.ndarray], float] = np.mean,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if width_s <= 0:
            raise ValueError("width_s must be positive")
        self.width_s = width_s
        self._aggregate = aggregate
        self._bucket_start: int | None = None
        self._values: list[float] = []

    def process(self, event: Event) -> None:
        bucket = (event.timestamp // self.width_s) * self.width_s
        if self._bucket_start is None:
            self._bucket_start = bucket
        if bucket > self._bucket_start:
            self._close()
            self._bucket_start = bucket
        self._values.append(event.value)

    def _close(self) -> None:
        if self._bucket_start is not None and self._values:
            agg = float(self._aggregate(np.asarray(self._values)))
            self.emit(Event(self._bucket_start, agg))
        self._values = []

    def flush(self) -> None:
        self._close()
        self._bucket_start = None
        super().flush()


class Segmenter(Operator):
    """Split a stream into segments at time gaps (paper: "segmentation").

    A gap longer than ``max_gap_s`` between consecutive events closes the
    current segment.  Each completed segment is delivered to
    ``on_segment`` and forwarded downstream as its constituent events
    tagged with a segment id.
    """

    def __init__(
        self,
        max_gap_s: int,
        on_segment: Callable[[list[Event]], None] | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if max_gap_s <= 0:
            raise ValueError("max_gap_s must be positive")
        self.max_gap_s = max_gap_s
        self._on_segment = on_segment
        self._segment: list[Event] = []
        self._segment_id = 0
        self.segments_closed = 0

    def process(self, event: Event) -> None:
        if self._segment and event.timestamp - self._segment[-1].timestamp > self.max_gap_s:
            self._close()
        self._segment.append(event)

    def _close(self) -> None:
        if not self._segment:
            return
        if self._on_segment is not None:
            self._on_segment(list(self._segment))
        for e in self._segment:
            self.emit(
                Event(e.timestamp, e.value, {**e.tags, "segment": self._segment_id})
            )
        self.segments_closed += 1
        self._segment_id += 1
        self._segment = []

    def flush(self) -> None:
        self._close()
        super().flush()


class Sink(Operator):
    """Terminal stage collecting events (or forwarding to a callback)."""

    def __init__(
        self, callback: Callable[[Event], None] | None = None, name: str | None = None
    ) -> None:
        super().__init__(name)
        self._callback = callback
        self.events: list[Event] = []

    def process(self, event: Event) -> None:
        self.events.append(event)
        if self._callback is not None:
            self._callback(event)

    def values(self) -> np.ndarray:
        return np.array([e.value for e in self.events])

    def timestamps(self) -> np.ndarray:
        return np.array([e.timestamp for e in self.events], dtype=np.int64)


def chain(*operators: Operator) -> tuple[Operator, Operator]:
    """Wire operators linearly; returns (head, tail)."""
    if not operators:
        raise ValueError("chain needs at least one operator")
    for up, down in zip(operators, operators[1:]):
        up.to(down)
    return operators[0], operators[-1]
