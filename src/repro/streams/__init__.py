"""Stream processing: operators, segmentation, chaining, automation."""

from .graph import FlowGraph, FlowGraphError
from .operators import (
    BatchSink,
    Event,
    EventBatch,
    Filter,
    Map,
    Operator,
    Segmenter,
    Sink,
    Source,
    StoreSink,
    TumblingWindow,
    chain,
)

__all__ = [
    "BatchSink",
    "Event",
    "EventBatch",
    "Filter",
    "FlowGraph",
    "FlowGraphError",
    "Map",
    "Operator",
    "Segmenter",
    "Sink",
    "Source",
    "StoreSink",
    "TumblingWindow",
    "chain",
]
