"""Stream processing: operators, segmentation, chaining, automation."""

from .graph import FlowGraph, FlowGraphError
from .operators import (
    Event,
    Filter,
    Map,
    Operator,
    Segmenter,
    Sink,
    Source,
    TumblingWindow,
    chain,
)

__all__ = [
    "Event",
    "Filter",
    "FlowGraph",
    "FlowGraphError",
    "Map",
    "Operator",
    "Segmenter",
    "Sink",
    "Source",
    "TumblingWindow",
    "chain",
]
