"""MQTT topic names and wildcard matching.

Implements the MQTT 3.1.1 topic rules the CTT backbone relies on:
``/``-separated levels, single-level wildcard ``+`` and multi-level
wildcard ``#`` (only as the final level) in subscription filters.
"""

from __future__ import annotations


class InvalidTopic(ValueError):
    """Topic or filter violates MQTT rules."""


def validate_topic(topic: str) -> str:
    """Validate a *publish* topic (no wildcards allowed)."""
    _validate_common(topic, "topic")
    if "+" in topic or "#" in topic:
        raise InvalidTopic(f"publish topic may not contain wildcards: {topic!r}")
    return topic


def validate_filter(filter_: str) -> str:
    """Validate a *subscription* filter (wildcards allowed, per spec)."""
    _validate_common(filter_, "filter")
    levels = filter_.split("/")
    for i, level in enumerate(levels):
        if level == "#":
            if i != len(levels) - 1:
                raise InvalidTopic(f"'#' must be the final level: {filter_!r}")
        elif level == "+":
            continue
        elif "#" in level or "+" in level:
            raise InvalidTopic(
                f"wildcard must occupy a whole level: {filter_!r}"
            )
    return filter_


def _validate_common(s: str, what: str) -> None:
    if not isinstance(s, str) or not s:
        raise InvalidTopic(f"{what} must be a non-empty string: {s!r}")
    if "\x00" in s:
        raise InvalidTopic(f"{what} may not contain NUL: {s!r}")
    if len(s.encode("utf-8")) > 65535:
        raise InvalidTopic(f"{what} too long")


def topic_matches(filter_: str, topic: str) -> bool:
    """True when ``topic`` matches subscription ``filter_``.

    Implements the spec corner cases: ``#`` matches the parent level too
    (``"a/#"`` matches ``"a"``), and topics starting with ``$`` (broker
    internals) are never matched by filters starting with a wildcard.
    """
    if topic.startswith("$") and (filter_.startswith("#") or filter_.startswith("+")):
        return False
    f_levels = filter_.split("/")
    t_levels = topic.split("/")
    i = 0
    for i, f in enumerate(f_levels):
        if f == "#":
            return True
        if i >= len(t_levels):
            return False
        if f == "+":
            continue
        if f != t_levels[i]:
            return False
    if len(t_levels) == len(f_levels):
        return True
    # "a/#" also matches "a": one trailing level that is exactly "#".
    return len(t_levels) == len(f_levels) - 1 and f_levels[-1] == "#"


def join(*levels: str) -> str:
    """Join topic levels, validating the result as a publish topic."""
    return validate_topic("/".join(levels))
