"""In-process MQTT-style message bus (the CTT event backbone)."""

from .broker import Broker, Client, Message, MqttError, Subscription
from .topics import InvalidTopic, join, topic_matches, validate_filter, validate_topic

__all__ = [
    "Broker",
    "Client",
    "InvalidTopic",
    "Message",
    "MqttError",
    "Subscription",
    "join",
    "topic_matches",
    "validate_filter",
    "validate_topic",
]
