"""In-process MQTT-style broker.

The CTT pipeline is event-driven: TTN pushes uplinks over MQTT, the
dataport and storage writers subscribe.  This module reproduces the broker
semantics the system depends on — topic-filter routing, QoS 0/1 delivery,
retained messages, and last-will — as a synchronous in-process message
bus.  "Network" unreliability is injected per-client via a drop
probability so QoS 1 redelivery is actually exercised.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .topics import topic_matches, validate_filter, validate_topic

MessageHandler = Callable[["Message"], None]


@dataclass(frozen=True, slots=True)
class Message:
    """One published application message."""

    topic: str
    payload: bytes
    qos: int = 0
    retain: bool = False
    mid: int = 0  # broker-assigned message id

    def text(self) -> str:
        return self.payload.decode("utf-8")


@dataclass
class Subscription:
    filter: str
    qos: int
    handler: MessageHandler


@dataclass
class _Session:
    client_id: str
    subscriptions: dict[str, Subscription] = field(default_factory=dict)
    connected: bool = False
    will: Message | None = None
    # QoS 1 in-flight messages awaiting ack: mid -> message
    inflight: dict[int, Message] = field(default_factory=dict)
    delivered: int = 0
    dropped: int = 0
    drop_probability: float = 0.0


class MqttError(RuntimeError):
    """Protocol misuse (publishing while disconnected, bad QoS, ...)."""


class Broker:
    """Synchronous in-process broker with QoS 0/1, retain, and wills.

    Delivery is immediate and run-to-completion inside :meth:`publish`
    (matching how an event-driven pipeline behaves under light load);
    QoS 1 messages that a lossy client "misses" stay in-flight and are
    redelivered by :meth:`redeliver`, normally driven by the simulation
    scheduler.
    """

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        self._sessions: dict[str, _Session] = {}
        self._retained: dict[str, Message] = {}
        self._mid = itertools.count(1)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.published = 0

    # -- connection lifecycle -------------------------------------------
    def connect(
        self,
        client_id: str,
        *,
        clean_session: bool = True,
        will: Message | None = None,
        drop_probability: float = 0.0,
    ) -> "Client":
        """Attach a client; reconnecting with ``clean_session=False`` keeps
        subscriptions and in-flight QoS 1 messages."""
        if not 0.0 <= drop_probability < 1.0:
            raise MqttError(f"drop_probability out of range: {drop_probability}")
        session = self._sessions.get(client_id)
        if session is None or clean_session:
            session = _Session(client_id=client_id)
            self._sessions[client_id] = session
        session.connected = True
        session.will = will
        session.drop_probability = drop_probability
        return Client(self, session)

    def disconnect(self, client_id: str, *, graceful: bool = True) -> None:
        session = self._sessions.get(client_id)
        if session is None or not session.connected:
            return
        session.connected = False
        if not graceful and session.will is not None:
            self.publish(
                session.will.topic,
                session.will.payload,
                qos=session.will.qos,
                retain=session.will.retain,
            )
        session.will = None

    def is_connected(self, client_id: str) -> bool:
        s = self._sessions.get(client_id)
        return bool(s and s.connected)

    # -- pub/sub ---------------------------------------------------------
    def publish(
        self, topic: str, payload: bytes | str, *, qos: int = 0, retain: bool = False
    ) -> Message:
        """Route one message to all matching, connected subscribers."""
        validate_topic(topic)
        if qos not in (0, 1):
            raise MqttError(f"unsupported QoS: {qos} (broker supports 0 and 1)")
        if isinstance(payload, str):
            payload = payload.encode("utf-8")
        msg = Message(topic, payload, qos=qos, retain=retain, mid=next(self._mid))
        self.published += 1

        if retain:
            if payload:
                self._retained[topic] = msg
            else:
                self._retained.pop(topic, None)  # empty retained payload clears

        for session in self._sessions.values():
            if not session.connected:
                continue
            sub = _best_match(session, topic)
            if sub is None:
                continue
            self._deliver(session, sub, msg)
        return msg

    def _deliver(self, session: _Session, sub: Subscription, msg: Message) -> None:
        effective_qos = min(msg.qos, sub.qos)
        lost = (
            session.drop_probability > 0.0
            and self._rng.random() < session.drop_probability
        )
        if lost:
            session.dropped += 1
            if effective_qos >= 1:
                session.inflight[msg.mid] = msg
            return
        sub.handler(msg)
        session.delivered += 1
        # QoS 1: handler return == ack in this in-process model.

    def redeliver(self, client_id: str | None = None) -> int:
        """Retry undelivered QoS 1 messages; returns how many got through."""
        sessions = (
            [self._sessions[client_id]]
            if client_id is not None
            else list(self._sessions.values())
        )
        delivered = 0
        for session in sessions:
            if not session.connected or not session.inflight:
                continue
            for mid in sorted(session.inflight):
                msg = session.inflight[mid]
                sub = _best_match(session, msg.topic)
                if sub is None:
                    del session.inflight[mid]
                    continue
                lost = (
                    session.drop_probability > 0.0
                    and self._rng.random() < session.drop_probability
                )
                if lost:
                    session.dropped += 1
                    continue
                sub.handler(msg)
                session.delivered += 1
                delivered += 1
                del session.inflight[mid]
        return delivered

    def retained_for(self, filter_: str) -> list[Message]:
        validate_filter(filter_)
        return [
            m for t, m in sorted(self._retained.items()) if topic_matches(filter_, t)
        ]

    def stats(self) -> dict[str, int]:
        return {
            "published": self.published,
            "sessions": len(self._sessions),
            "connected": sum(1 for s in self._sessions.values() if s.connected),
            "retained": len(self._retained),
            "inflight": sum(len(s.inflight) for s in self._sessions.values()),
        }


def _best_match(session: _Session, topic: str) -> Subscription | None:
    """Most specific matching subscription (spec: deliver once per client)."""
    best: Subscription | None = None
    for sub in session.subscriptions.values():
        if topic_matches(sub.filter, topic):
            if best is None or sub.qos > best.qos:
                best = sub
    return best


class Client:
    """Handle bound to one broker session."""

    def __init__(self, broker: Broker, session: _Session) -> None:
        self._broker = broker
        self._session = session

    @property
    def client_id(self) -> str:
        return self._session.client_id

    @property
    def connected(self) -> bool:
        return self._session.connected

    @property
    def stats(self) -> dict[str, int]:
        return {
            "delivered": self._session.delivered,
            "dropped": self._session.dropped,
            "inflight": len(self._session.inflight),
        }

    def subscribe(self, filter_: str, handler: MessageHandler, *, qos: int = 0) -> None:
        """Register a handler; retained messages replay immediately."""
        validate_filter(filter_)
        if qos not in (0, 1):
            raise MqttError(f"unsupported QoS: {qos}")
        if not self._session.connected:
            raise MqttError("subscribe on a disconnected client")
        self._session.subscriptions[filter_] = Subscription(filter_, qos, handler)
        for msg in self._broker.retained_for(filter_):
            handler(msg)
            self._session.delivered += 1

    def unsubscribe(self, filter_: str) -> bool:
        return self._session.subscriptions.pop(filter_, None) is not None

    def publish(
        self, topic: str, payload: bytes | str, *, qos: int = 0, retain: bool = False
    ) -> Message:
        if not self._session.connected:
            raise MqttError("publish on a disconnected client")
        return self._broker.publish(topic, payload, qos=qos, retain=retain)

    def disconnect(self, *, graceful: bool = True) -> None:
        self._broker.disconnect(self._session.client_id, graceful=graceful)
