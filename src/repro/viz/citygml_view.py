"""Sensor data in the 3D city model (paper Fig. 7).

"This was further integrated into a 3D CityGML model" — measuring points
placed among the buildings, buildings shaded by the pollution level of
the nearest sensor.  We render a top-down SVG of the LOD1 model (height
encoded as fill darkness, pollution as outline colour) and export a
GeoJSON variant carrying the same attributes for 3D viewers.
"""

from __future__ import annotations

import math

import numpy as np

from ..geo import GeoPoint, feature_collection, point_feature, polygon_feature
from ..integration.citygml import Building, CityModel
from .render import SvgDocument, value_color


def attach_sensor_values(
    model: CityModel,
    sensor_values: dict[str, tuple[GeoPoint, float]],
    influence_radius_m: float = 400.0,
) -> dict[str, float]:
    """Assign each building the inverse-distance-weighted sensor level.

    Returns ``{building_id: level}``; buildings beyond every sensor's
    influence radius get NaN (rendered neutral).
    """
    out: dict[str, float] = {}
    for building in model.buildings:
        c = building.centroid
        weights, values = [], []
        for _node, (loc, value) in sensor_values.items():
            d = c.distance_to(loc)
            if d <= influence_radius_m:
                weights.append(1.0 / max(10.0, d))
                values.append(value)
        if weights:
            out[building.building_id] = float(
                np.average(values, weights=weights)
            )
        else:
            out[building.building_id] = float("nan")
    return out


def render_city_svg(
    model: CityModel,
    sensor_values: dict[str, tuple[GeoPoint, float]],
    *,
    px: int = 640,
    vmin: float | None = None,
    vmax: float | None = None,
    title: str = "Sensor data in 3D city model",
) -> str:
    """Fig. 7 as a top-down SVG."""
    box = model.bounds().expanded(0.0008)
    levels = attach_sensor_values(model, sensor_values)
    finite = [v for v in levels.values() if math.isfinite(v)]
    values = [v for _, (_, v) in sensor_values.items()]
    lo = vmin if vmin is not None else (min(finite + values) if finite or values else 0.0)
    hi = vmax if vmax is not None else (max(finite + values) if finite or values else 1.0)

    svg = SvgDocument(px, px)
    svg.rect(0, 0, px, px, fill="#f4f2ee", stroke="#888")
    svg.text(10, 18, title, size=13)
    margin = 30

    def project(p: GeoPoint) -> tuple[float, float]:
        fx = (p.lon - box.west) / max(1e-12, box.east - box.west)
        fy = (p.lat - box.south) / max(1e-12, box.north - box.south)
        return (margin + fx * (px - 2 * margin), margin + (1 - fy) * (px - 2 * margin))

    max_height = max((b.height_m for b in model.buildings), default=1.0)
    for building in model.buildings:
        # Height -> grey level (taller = darker), pollution -> outline.
        shade = int(225 - 140 * min(1.0, building.height_m / max_height))
        fill = f"rgb({shade},{shade},{shade})"
        level = levels.get(building.building_id, float("nan"))
        stroke = value_color(level, lo, hi) if math.isfinite(level) else "#bbb"
        pts = [project(p) for p in building.footprint]
        svg.polygon(
            pts,
            fill=fill,
            stroke=stroke,
            title=f"{building.building_id}: h={building.height_m}m "
            f"level={level:.1f}" if math.isfinite(level) else building.building_id,
        )
    for node, (loc, value) in sorted(sensor_values.items()):
        x, y = project(loc)
        svg.circle(x, y, 7, fill=value_color(value, lo, hi), stroke="#222",
                   title=f"{node}: {value:.1f}")
        svg.text(x + 9, y + 4, node, size=9)
    return svg.render()


def city_model_geojson(
    model: CityModel,
    sensor_values: dict[str, tuple[GeoPoint, float]],
) -> dict:
    """GeoJSON export: building polygons with height + pollution level,
    sensor points with their values (for external 3D tooling)."""
    levels = attach_sensor_values(model, sensor_values)
    features = []
    for building in model.buildings:
        level = levels.get(building.building_id)
        features.append(
            polygon_feature(
                building.footprint,
                {
                    "kind": "building",
                    "id": building.building_id,
                    "height_m": building.height_m,
                    "function": building.function,
                    "pollution_level": None
                    if level is None or not math.isfinite(level)
                    else round(level, 2),
                },
            )
        )
    for node, (loc, value) in sorted(sensor_values.items()):
        features.append(
            point_feature(
                loc, {"kind": "sensor", "id": node, "value": round(value, 2)}
            )
        )
    return feature_collection(features)


def siting_suggestions(
    model: CityModel,
    existing: list[GeoPoint],
    n: int = 3,
    min_separation_m: float = 400.0,
) -> list[GeoPoint]:
    """Suggest monitoring sites "according to the road network and
    building density" (demo §3): densest unmonitored building clusters.

    Greedy: repeatedly pick the building whose 150 m neighbourhood has
    the largest total footprint area, excluding areas already within
    ``min_separation_m`` of a chosen or existing site.
    """
    chosen: list[GeoPoint] = []
    taken = list(existing)
    candidates = list(model.buildings)
    for _ in range(n):
        best: tuple[float, Building] | None = None
        for building in candidates:
            c = building.centroid
            if any(c.distance_to(t) < min_separation_m for t in taken):
                continue
            density = sum(
                b.footprint_area_m2() * b.height_m
                for b in model.buildings_within(c, 150.0)
            )
            if best is None or density > best[0]:
                best = (density, building)
        if best is None:
            break
        site = best[1].centroid
        chosen.append(site)
        taken.append(site)
    return chosen
