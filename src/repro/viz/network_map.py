"""Network visualization (paper Fig. 3).

"The dataport further drives a visualization of the network itself ...
of the structure of digital twins for sensors and gateways, their
location, the connections and live data transmission between sensors
and gateways."

Input is :meth:`repro.dataport.Dataport.network_snapshot`; output is an
ASCII map, an SVG map, or GeoJSON for web maps.  Sensors draw with their
health state, links with the RSSI of the last reception.
"""

from __future__ import annotations

from ..geo import BoundingBox, GeoPoint, feature_collection, line_feature, point_feature
from .render import SvgDocument, TextCanvas


def _locations(snapshot: dict) -> dict[str, GeoPoint]:
    out: dict[str, GeoPoint] = {}
    for group in ("sensors", "gateways"):
        for name, status in snapshot.get(group, {}).items():
            loc = status.get("location")
            if loc is not None:
                out[name] = GeoPoint(loc[0], loc[1])
    return out


def _links(snapshot: dict) -> list[tuple[str, str, float | None]]:
    """(sensor, gateway, rssi) for each sensor's recent gateways."""
    links = []
    for name, status in snapshot.get("sensors", {}).items():
        for gw in status.get("gateways", []):
            links.append((name, gw, status.get("rssi_dbm")))
    return links


def render_text_map(snapshot: dict, width: int = 72, height: int = 24) -> str:
    """ASCII Fig. 3: S = healthy sensor, ! = overdue, G = gateway,
    g = silent gateway, lines = sensor-gateway links."""
    locations = _locations(snapshot)
    canvas = TextCanvas(width, height)
    canvas.frame("CTT network")
    if not locations:
        canvas.text(2, height // 2, "(no devices with locations)")
        return canvas.render()
    box = BoundingBox.of_points(locations.values(), pad_deg=0.002)

    def project(p: GeoPoint) -> tuple[int, int]:
        fx = (p.lon - box.west) / max(1e-12, box.east - box.west)
        fy = (p.lat - box.south) / max(1e-12, box.north - box.south)
        return (2 + int(fx * (width - 5)), 1 + int((1.0 - fy) * (height - 4)))

    for sensor, gateway, _rssi in _links(snapshot):
        if sensor in locations and gateway in locations:
            x0, y0 = project(locations[sensor])
            x1, y1 = project(locations[gateway])
            canvas.line(x0, y0, x1, y1, "·")

    overdue = set(snapshot.get("overdue_sensors", []))
    silent = set(snapshot.get("silent_gateways", []))
    for name, status in snapshot.get("sensors", {}).items():
        if name in locations:
            x, y = project(locations[name])
            canvas.set(x, y, "!" if name in overdue else "S")
    for name, status in snapshot.get("gateways", {}).items():
        if name in locations:
            x, y = project(locations[name])
            canvas.set(x, y, "g" if name in silent else "G")
    summary = (
        f"sensors={len(snapshot.get('sensors', {}))} "
        f"gateways={len(snapshot.get('gateways', {}))} "
        f"overdue={len(overdue)} silent_gw={len(silent)}"
    )
    canvas.text(2, height - 2, summary[: width - 4])
    return canvas.render()


def render_svg_map(snapshot: dict, px: int = 560) -> str:
    """SVG Fig. 3 with RSSI-tinted links and health-coloured nodes."""
    locations = _locations(snapshot)
    svg = SvgDocument(px, px)
    svg.rect(0, 0, px, px, fill="#fbfbfb", stroke="#888")
    svg.text(10, 18, "CTT network: sensors, gateways, links", size=13)
    if not locations:
        return svg.render()
    box = BoundingBox.of_points(locations.values(), pad_deg=0.002)
    margin = 36

    def project(p: GeoPoint) -> tuple[float, float]:
        fx = (p.lon - box.west) / max(1e-12, box.east - box.west)
        fy = (p.lat - box.south) / max(1e-12, box.north - box.south)
        return (margin + fx * (px - 2 * margin), margin + (1 - fy) * (px - 2 * margin))

    for sensor, gateway, rssi in _links(snapshot):
        if sensor in locations and gateway in locations:
            x0, y0 = project(locations[sensor])
            x1, y1 = project(locations[gateway])
            # Stronger links (higher RSSI) draw darker.
            strength = 0.2 if rssi is None else min(
                1.0, max(0.15, (rssi + 130.0) / 50.0)
            )
            grey = int(200 - strength * 150)
            svg.line(x0, y0, x1, y1, stroke=f"rgb({grey},{grey},{grey})", width=1.2)

    overdue = set(snapshot.get("overdue_sensors", []))
    silent = set(snapshot.get("silent_gateways", []))
    for name in snapshot.get("sensors", {}):
        if name not in locations:
            continue
        x, y = project(locations[name])
        fill = "#e74c3c" if name in overdue else "#2ecc71"
        svg.circle(x, y, 5, fill=fill, stroke="#333", title=name)
    for name in snapshot.get("gateways", {}):
        if name not in locations:
            continue
        x, y = project(locations[name])
        fill = "#e74c3c" if name in silent else "#2980b9"
        svg.rect(x - 6, y - 6, 12, 12, fill=fill, stroke="#333")
        svg.text(x + 8, y + 4, name, size=9)
    return svg.render()


def to_geojson(snapshot: dict) -> dict:
    """GeoJSON FeatureCollection of nodes, gateways, and links."""
    locations = _locations(snapshot)
    overdue = set(snapshot.get("overdue_sensors", []))
    silent = set(snapshot.get("silent_gateways", []))
    features = []
    for name, status in snapshot.get("sensors", {}).items():
        if name not in locations:
            continue
        features.append(
            point_feature(
                locations[name],
                {
                    "kind": "sensor",
                    "id": name,
                    "overdue": name in overdue,
                    "battery_v": status.get("battery_v"),
                    "uplinks": status.get("uplinks"),
                },
            )
        )
    for name, status in snapshot.get("gateways", {}).items():
        if name not in locations:
            continue
        features.append(
            point_feature(
                locations[name],
                {
                    "kind": "gateway",
                    "id": name,
                    "silent": name in silent,
                    "frames": status.get("frames"),
                },
            )
        )
    for sensor, gateway, rssi in _links(snapshot):
        if sensor in locations and gateway in locations:
            features.append(
                line_feature(
                    [locations[sensor], locations[gateway]],
                    {"kind": "link", "sensor": sensor, "gateway": gateway,
                     "rssi_dbm": rssi},
                )
            )
    return feature_collection(features)
