"""Visualizations: charts, dashboards, network map, city model, wall."""

from .citygml_view import (
    attach_sensor_values,
    city_model_geojson,
    render_city_svg,
    siting_suggestions,
)
from .dashboard import (
    AqiPanel,
    Dashboard,
    GaugePanel,
    Panel,
    TextPanel,
    TimeseriesPanel,
    build_regional_dashboard,
)
from .network_map import render_svg_map, render_text_map, to_geojson
from .render import (
    COLOR_RAMP,
    SvgDocument,
    TextCanvas,
    horizontal_bar,
    sparkline,
    value_color,
)
from .timeseries import Chart
from .wall import WallDisplay, render_alarm_panel

__all__ = [
    "AqiPanel",
    "COLOR_RAMP",
    "Chart",
    "Dashboard",
    "GaugePanel",
    "Panel",
    "SvgDocument",
    "TextCanvas",
    "TextPanel",
    "TimeseriesPanel",
    "WallDisplay",
    "attach_sensor_values",
    "build_regional_dashboard",
    "city_model_geojson",
    "horizontal_bar",
    "render_alarm_panel",
    "render_city_svg",
    "render_svg_map",
    "render_text_map",
    "siting_suggestions",
    "sparkline",
    "to_geojson",
    "value_color",
]
