"""Wall display (paper Fig. 8): "a full network and data overview wall
display" — network monitoring and data dashboards composed into one
large view.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dataport import AlarmLog, Severity
from ..tsdb import TimeSeriesStore
from .dashboard import Dashboard, batch_prefetch
from .network_map import render_text_map


def render_alarm_panel(alarms: AlarmLog, width: int = 72) -> str:
    """The alarm strip of the wall display."""
    lines = ["== Active alarms =="]
    active = alarms.active()
    if not active:
        lines.append("  (all clear)")
    for alarm in active[:12]:
        marker = {
            Severity.CRITICAL: "!!",
            Severity.WARNING: " !",
            Severity.INFO: "  ",
        }[alarm.severity]
        lines.append(f"  {marker} [{alarm.kind.value}] {alarm.message}"[:width])
    if len(active) > 12:
        lines.append(f"  ... and {len(active) - 12} more")
    return "\n".join(lines)


@dataclass
class WallDisplay:
    """Composite view: network map + alarms + data dashboards."""

    title: str
    db: TimeSeriesStore
    alarms: AlarmLog
    snapshot_provider: object  # callable -> network snapshot dict
    dashboards: list[Dashboard] = field(default_factory=list)

    def add_dashboard(self, dashboard: Dashboard) -> "WallDisplay":
        self.dashboards.append(dashboard)
        return self

    def render_text(self, width: int = 76) -> str:
        snapshot = self.snapshot_provider()  # type: ignore[operator]
        sections = [
            f"#### {self.title} ####",
            render_text_map(snapshot, width=width, height=20),
            render_alarm_panel(self.alarms, width=width),
        ]
        # All dashboards' panel queries plan as one batch per store.
        prefetched = batch_prefetch(self.dashboards)
        for dashboard, results in zip(self.dashboards, prefetched):
            sections.append(dashboard.render_text(width=width, prefetched=results))
        stats = snapshot.get("sensors", {})
        live = sum(1 for s in stats.values() if not s.get("overdue"))
        sections.append(
            f"fleet: {live}/{len(stats)} sensors live, "
            f"{len(snapshot.get('gateways', {}))} gateways, "
            f"{len(self.alarms)} active alarms"
        )
        return "\n\n".join(sections)
