"""Dashboards (paper Fig. 6): the Zeppelin-over-OpenTSDB role.

"The dashboard is implemented using Apache Zeppelin as the visualization
platform and accesses the data from the OpenTSDB time series database.
The mapped sensors show the real-time data and analytic results for each
location."

A :class:`Dashboard` is a grid of panels, each bound to a TSDB query (or
a live-value/analytic callable).  Rendering pulls fresh data, so calling
``render_text``/``render_html`` repeatedly gives the "real-time" view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..analytics.aqi import caqi
from ..tsdb import METRIC_CO2, ExprQuery, Query, TimeSeriesStore, expr
from .render import horizontal_bar, value_color
from .timeseries import Chart


@dataclass
class TimeseriesPanel:
    """A line chart bound to one TSDB query (or expression query)."""

    title: str
    query: Query | ExprQuery

    def _result(self, db: TimeSeriesStore):
        run_many = getattr(db, "run_many", None)
        if run_many is not None:
            return run_many([self.query])[0]
        return db.run(self.query)

    def render_text(
        self, db: TimeSeriesStore, width: int = 72, result=None
    ) -> str:
        chart = Chart(self.title, width=width)
        for series in self._result(db) if result is None else result:
            chart.add_result(series)
        return chart.render_text()

    def render_html(self, db: TimeSeriesStore, result=None) -> str:
        chart = Chart(self.title)
        for series in self._result(db) if result is None else result:
            chart.add_result(series)
        return chart.render_svg()


@dataclass
class GaugePanel:
    """Latest value per series of one metric (the map tiles of Fig. 6)."""

    title: str
    metric: str
    tags: dict = field(default_factory=dict)
    vmax: float | None = None
    unit: str = ""

    def _rows(self, db: TimeSeriesStore) -> list[tuple[str, float]]:
        latest = db.last(self.metric, self.tags)
        rows = []
        for key, (ts, value) in sorted(latest.items(), key=lambda kv: str(kv[0])):
            label = key.tag("node") or key.tag("source") or str(key)
            rows.append((label, value))
        return rows

    def render_text(self, db: TimeSeriesStore, width: int = 72) -> str:
        rows = self._rows(db)
        vmax = self.vmax or (max((v for _, v in rows), default=1.0) or 1.0)
        lines = [f"== {self.title} =="]
        if not rows:
            lines.append("  (no data)")
        for label, value in rows:
            bar = horizontal_bar(value, vmax, width=24)
            lines.append(f"  {label:<12} {bar} {value:8.1f} {self.unit}")
        return "\n".join(lines)

    def render_html(self, db: TimeSeriesStore) -> str:
        rows = self._rows(db)
        vmax = self.vmax or (max((v for _, v in rows), default=1.0) or 1.0)
        cells = "".join(
            f'<div class="gauge"><span class="label">{label}</span>'
            f'<span class="value" style="color:{value_color(value, 0, vmax)}">'
            f"{value:.1f} {self.unit}</span></div>"
            for label, value in rows
        )
        return f'<div class="panel"><h3>{self.title}</h3>{cells or "(no data)"}</div>'


@dataclass
class AqiPanel:
    """Per-node CAQI tiles computed from the latest pollutant values."""

    title: str
    city: str | None = None

    _METRICS = {
        "no2_ugm3": "air.no2.ugm3",
        "pm10_ugm3": "air.pm10.ugm3",
        "pm25_ugm3": "air.pm25.ugm3",
    }

    def compute(self, db: TimeSeriesStore) -> dict[str, dict]:
        tags = {"city": self.city} if self.city else {}
        per_node: dict[str, dict[str, float]] = {}
        for quantity, metric in self._METRICS.items():
            for key, (_ts, value) in db.last(metric, tags).items():
                node = key.tag("node") or str(key)
                per_node.setdefault(node, {})[quantity] = value
        out = {}
        for node, concentrations in sorted(per_node.items()):
            try:
                result = caqi(concentrations)
            except ValueError:
                continue
            out[node] = {
                "index": result.index,
                "band": result.band,
                "dominant": result.dominant,
            }
        return out

    def render_text(self, db: TimeSeriesStore, width: int = 72) -> str:
        lines = [f"== {self.title} =="]
        tiles = self.compute(db)
        if not tiles:
            lines.append("  (no data)")
        for node, info in tiles.items():
            lines.append(
                f"  {node:<12} CAQI {info['index']:6.1f}  "
                f"{info['band']:<10} (dominant: {info['dominant']})"
            )
        return "\n".join(lines)

    def render_html(self, db: TimeSeriesStore) -> str:
        tiles = self.compute(db)
        cells = "".join(
            f'<div class="tile {info["band"]}"><b>{node}</b> '
            f'{info["index"]:.0f} ({info["band"]})</div>'
            for node, info in tiles.items()
        )
        return f'<div class="panel"><h3>{self.title}</h3>{cells or "(no data)"}</div>'


@dataclass
class TextPanel:
    """Free-form analytic output (a callable returning text)."""

    title: str
    producer: Callable[[TimeSeriesStore], str]

    def render_text(self, db: TimeSeriesStore, width: int = 72) -> str:
        return f"== {self.title} ==\n{self.producer(db)}"

    def render_html(self, db: TimeSeriesStore) -> str:
        return (
            f'<div class="panel"><h3>{self.title}</h3>'
            f"<pre>{self.producer(db)}</pre></div>"
        )


Panel = TimeseriesPanel | GaugePanel | AqiPanel | TextPanel


@dataclass
class Dashboard:
    """A named collection of panels over one TSDB."""

    title: str
    db: TimeSeriesStore
    panels: list[Panel] = field(default_factory=list)

    def add(self, panel: Panel) -> "Dashboard":
        self.panels.append(panel)
        return self

    def prefetch_results(self) -> dict[int, object]:
        """One batched ``run_many`` for every panel-bound query.

        The whole dashboard plans as a single batch: panels sharing
        series share scans, duplicate queries execute once, and the
        sharded engine fans the batch out in one thread-pooled pass
        instead of once per panel.  Returns panel-index → result.
        """
        bound = [
            (i, p.query)
            for i, p in enumerate(self.panels)
            if isinstance(p, TimeseriesPanel)
        ]
        if not bound:
            return {}
        run_many = getattr(self.db, "run_many", None)
        if run_many is None:  # store without the v2 query surface
            return {i: self.db.run(q) for i, q in bound}
        results = run_many([q for _, q in bound])
        return {i: r for (i, _), r in zip(bound, results)}

    def _render_panels(
        self,
        renderer: str,
        width: int | None = None,
        prefetched: dict[int, object] | None = None,
    ) -> list[str]:
        results = self.prefetch_results() if prefetched is None else prefetched
        parts = []
        for i, panel in enumerate(self.panels):
            kwargs = {} if width is None else {"width": width}
            if isinstance(panel, TimeseriesPanel):
                kwargs["result"] = results.get(i)
            parts.append(getattr(panel, renderer)(self.db, **kwargs))
        return parts

    def render_text(
        self, width: int = 72, *, prefetched: dict[int, object] | None = None
    ) -> str:
        return "\n\n".join(
            [
                f"### {self.title} ###",
                *self._render_panels("render_text", width, prefetched),
            ]
        )

    def render_html(
        self, *, prefetched: dict[int, object] | None = None
    ) -> str:
        body = "\n".join(self._render_panels("render_html", None, prefetched))
        return (
            "<!DOCTYPE html><html><head><meta charset='utf-8'>"
            f"<title>{self.title}</title>"
            "<style>body{font-family:monospace;background:#f7f7f7}"
            ".panel{background:#fff;border:1px solid #ccc;margin:8px;"
            "padding:8px;display:inline-block;vertical-align:top}"
            ".tile{display:inline-block;margin:4px;padding:6px;"
            "border-radius:4px;background:#eee}"
            ".very_low{background:#aaf0c9}.low{background:#d7f0aa}"
            ".medium{background:#f8e08e}.high{background:#f5b680}"
            ".very_high{background:#f08a8a}</style></head><body>"
            f"<h1>{self.title}</h1>\n{body}\n</body></html>"
        )


def batch_prefetch(dashboards: list["Dashboard"]) -> list[dict[int, object]]:
    """Prefetch panel results for several dashboards in one pass.

    Panels are grouped by their dashboard's store and each store gets a
    single ``run_many`` batch — the wall display's N dashboards over one
    TSDB cost one planning pass instead of one per panel.  Returns one
    panel-index → result mapping per dashboard.
    """
    out: list[dict[int, object]] = [{} for _ in dashboards]
    by_store: dict[int, tuple[object, list[tuple[int, int, object]]]] = {}
    for di, dash in enumerate(dashboards):
        for pi, panel in enumerate(dash.panels):
            if isinstance(panel, TimeseriesPanel):
                by_store.setdefault(id(dash.db), (dash.db, []))[1].append(
                    (di, pi, panel.query)
                )
    for store, items in by_store.values():
        run_many = getattr(store, "run_many", None)
        if run_many is None:
            results = [store.run(q) for _, _, q in items]
        else:
            results = run_many([q for _, _, q in items])
        for (di, pi, _), res in zip(items, results):
            out[di][pi] = res
    return out


# ----------------------------------------------------------------------
# Regional view (multi-city fan-in)
# ----------------------------------------------------------------------
def _fanin_health_text(hub) -> str:
    """Tabulate per-lane queue/backpressure counters from the hub."""
    snapshot = hub.stats_snapshot()
    header = (
        f"{'city':<12} {'policy':<11} {'depth':>7} {'spill':>7} "
        f"{'stall':>7} {'drop':>7} {'flushed':>9}"
    )
    lines = [header]
    for city, s in snapshot["cities"].items():
        lines.append(
            f"{city:<12} {s['policy']:<11} {s['queue_depth_points']:>7} "
            f"{s['spill_pending_points']:>7} {s['stalled_points']:>7} "
            f"{s['dropped_points']:>7} {s['flushed_points']:>9}"
        )
    hub_s = snapshot["hub"]
    lines.append(
        f"hub: {hub_s['flushed_points']} points / {hub_s['flushes']} flushes "
        f"every {hub_s['flush_interval_s']}s ({hub_s['ticks']} ticks)"
    )
    return "\n".join(lines)


def build_regional_dashboard(
    hub,
    start: int,
    end: int,
    *,
    metric: str = METRIC_CO2,
    downsample: str | None = "1h-avg",
) -> Dashboard:
    """The regional operations view: per-city panels over the fan-in hub.

    ``hub`` is a :class:`~repro.region.RegionalHub` (duck-typed: needs
    ``store``, ``cities`` and ``stats_snapshot()``, so viz stays
    import-independent of the region layer).  One chart + one gauge row
    per registered city, a cross-city comparison chart grouped by the
    ``city`` tag, and a fan-in health panel with queue depth / drop /
    spill / stall counters per lane.
    """
    dash = Dashboard(f"Regional fan-in — {len(hub.cities)} cities", hub.store)
    dash.add(
        TimeseriesPanel(
            f"{metric} by city",
            Query(
                metric,
                start,
                end,
                downsample=downsample,
                group_by=("city",),
            ),
        )
    )
    # Expression panel: each city's enhancement over the regional
    # baseline — the grouped operand broadcasts against the ungrouped
    # one, and both sub-queries share scans with the panels above.
    dash.add(
        TimeseriesPanel(
            f"{metric} enhancement over regional baseline",
            expr(
                "city - baseline",
                city=Query(
                    metric, start, end, downsample=downsample,
                    group_by=("city",),
                ),
                baseline=Query(metric, start, end, downsample=downsample),
            ),
        )
    )
    for city in hub.cities:
        dash.add(
            TimeseriesPanel(
                f"{city}: {metric}",
                Query(
                    metric, start, end, tags={"city": city}, downsample=downsample
                ),
            )
        )
        dash.add(
            GaugePanel(f"{city}: latest {metric}", metric, tags={"city": city})
        )
    dash.add(TextPanel("Fan-in health", lambda db: _fanin_health_text(hub)))
    return dash
