"""Low-level rendering primitives: text canvas, sparklines, SVG.

Dashboards in this reproduction render to two targets: fixed-width text
(terminal / tests / wall display) and dependency-free SVG (the "web
interface" artifacts).  Everything here is deterministic string
building — no drawing libraries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

SPARK_CHARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: np.ndarray, width: int | None = None) -> str:
    """Unicode sparkline of a series (NaNs render as spaces).

    When ``width`` is given the series is resampled to that many bins by
    averaging.
    """
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        return ""
    if width is not None and width > 0 and v.size != width:
        edges = np.linspace(0, v.size, width + 1).astype(int)
        v = np.array(
            [
                np.nanmean(v[a:b]) if b > a and np.isfinite(v[a:b]).any() else np.nan
                for a, b in zip(edges[:-1], edges[1:])
            ]
        )
    finite = v[np.isfinite(v)]
    if finite.size == 0:
        return " " * v.size
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo
    chars = []
    for x in v:
        if not np.isfinite(x):
            chars.append(" ")
            continue
        frac = 0.5 if span == 0 else (x - lo) / span
        idx = 1 + int(round(frac * (len(SPARK_CHARS) - 2)))
        chars.append(SPARK_CHARS[idx])
    return "".join(chars)


def horizontal_bar(value: float, vmax: float, width: int = 20) -> str:
    """A ``[#####.....]``-style bar."""
    if vmax <= 0:
        return "[" + "." * width + "]"
    filled = int(round(min(1.0, max(0.0, value / vmax)) * width))
    return "[" + "#" * filled + "." * (width - filled) + "]"


class TextCanvas:
    """A character grid with plot/line/text primitives."""

    def __init__(self, width: int, height: int, fill: str = " ") -> None:
        if width < 1 or height < 1:
            raise ValueError("canvas must be at least 1x1")
        self.width = width
        self.height = height
        self._rows = [[fill] * width for _ in range(height)]

    def set(self, x: int, y: int, char: str) -> None:
        """Place a character; out-of-bounds writes are clipped."""
        if 0 <= x < self.width and 0 <= y < self.height:
            self._rows[y][x] = char[0]

    def text(self, x: int, y: int, s: str) -> None:
        for i, ch in enumerate(s):
            self.set(x + i, y, ch)

    def line(self, x0: int, y0: int, x1: int, y1: int, char: str = "·") -> None:
        """Bresenham line."""
        dx, dy = abs(x1 - x0), -abs(y1 - y0)
        sx = 1 if x0 < x1 else -1
        sy = 1 if y0 < y1 else -1
        err = dx + dy
        x, y = x0, y0
        while True:
            self.set(x, y, char)
            if x == x1 and y == y1:
                break
            e2 = 2 * err
            if e2 >= dy:
                err += dy
                x += sx
            if e2 <= dx:
                err += dx
                y += sy

    def frame(self, title: str | None = None) -> None:
        """Draw a box border, optionally with a title in the top edge."""
        for x in range(self.width):
            self.set(x, 0, "-")
            self.set(x, self.height - 1, "-")
        for y in range(self.height):
            self.set(0, y, "|")
            self.set(self.width - 1, y, "|")
        for x, y in ((0, 0), (self.width - 1, 0), (0, self.height - 1),
                     (self.width - 1, self.height - 1)):
            self.set(x, y, "+")
        if title:
            self.text(2, 0, f" {title[: self.width - 6]} ")

    def render(self) -> str:
        return "\n".join("".join(row).rstrip() for row in self._rows)


# ---------------------------------------------------------------------------
# SVG
# ---------------------------------------------------------------------------


@dataclass
class SvgDocument:
    """Minimal SVG builder (no external dependencies)."""

    width: int
    height: int

    def __post_init__(self) -> None:
        self._elements: list[str] = []

    def rect(self, x, y, w, h, fill="none", stroke="black", opacity=1.0) -> None:
        self._elements.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{h:.1f}" '
            f'fill="{fill}" stroke="{stroke}" opacity="{opacity:.2f}"/>'
        )

    def circle(self, cx, cy, r, fill="black", stroke="none", title=None) -> None:
        body = (
            f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="{r:.1f}" '
            f'fill="{fill}" stroke="{stroke}">'
        )
        if title:
            body += f"<title>{_escape(title)}</title>"
        body += "</circle>"
        self._elements.append(body)

    def line(self, x1, y1, x2, y2, stroke="black", width=1.0, dash=None) -> None:
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._elements.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{stroke}" stroke-width="{width:.1f}"{dash_attr}/>'
        )

    def polyline(self, points: list[tuple[float, float]], stroke="steelblue",
                 width=1.5) -> None:
        pts = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        self._elements.append(
            f'<polyline points="{pts}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width:.1f}"/>'
        )

    def polygon(self, points: list[tuple[float, float]], fill="#ccc",
                stroke="#666", title=None) -> None:
        pts = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        body = f'<polygon points="{pts}" fill="{fill}" stroke="{stroke}">'
        if title:
            body += f"<title>{_escape(title)}</title>"
        body += "</polygon>"
        self._elements.append(body)

    def text(self, x, y, s, size=11, fill="black", anchor="start") -> None:
        self._elements.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'fill="{fill}" text-anchor="{anchor}" '
            f'font-family="monospace">{_escape(s)}</text>'
        )

    def render(self) -> str:
        inner = "\n  ".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n  {inner}\n</svg>'
        )


def _escape(s: str) -> str:
    return (
        str(s)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


#: Pollution-level colour ramp (low → high), shared across views.
COLOR_RAMP = ("#2ecc71", "#a3d977", "#f1c40f", "#e67e22", "#e74c3c")


def value_color(value: float, vmin: float, vmax: float) -> str:
    """Colour for a value on the shared low→high ramp."""
    if not math.isfinite(value) or vmax <= vmin:
        return "#999999"
    frac = min(1.0, max(0.0, (value - vmin) / (vmax - vmin)))
    return COLOR_RAMP[min(len(COLOR_RAMP) - 1, int(frac * len(COLOR_RAMP)))]
