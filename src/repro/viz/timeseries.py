"""Time-series charts: the building block of every dashboard panel."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..tsdb import ResultSeries
from .render import SvgDocument, TextCanvas, sparkline

_SERIES_COLORS = ("steelblue", "#e67e22", "#2ecc71", "#9b59b6", "#e74c3c",
                  "#16a085")


@dataclass
class Chart:
    """A multi-series line chart rendering to text or SVG."""

    title: str
    width: int = 72
    height: int = 14
    series: list[tuple[str, np.ndarray, np.ndarray]] = field(default_factory=list)

    def add(self, label: str, timestamps: np.ndarray, values: np.ndarray) -> None:
        ts = np.asarray(timestamps, dtype=np.int64)
        vs = np.asarray(values, dtype=float)
        if ts.shape != vs.shape:
            raise ValueError("timestamps and values must be aligned")
        self.series.append((label, ts, vs))

    def add_result(self, result_series: ResultSeries, label: str | None = None) -> None:
        self.add(
            label or result_series.label(),
            result_series.timestamps,
            result_series.values,
        )

    def _extent(self) -> tuple[int, int, float, float] | None:
        all_ts = [ts for _, ts, vs in self.series if ts.size]
        all_vs = [vs[np.isfinite(vs)] for _, ts, vs in self.series]
        all_vs = [v for v in all_vs if v.size]
        if not all_ts or not all_vs:
            return None
        t0 = int(min(ts.min() for ts in all_ts))
        t1 = int(max(ts.max() for ts in all_ts))
        lo = float(min(v.min() for v in all_vs))
        hi = float(max(v.max() for v in all_vs))
        if hi == lo:
            hi = lo + 1.0
        if t1 == t0:
            t1 = t0 + 1
        return t0, t1, lo, hi

    # -- text -----------------------------------------------------------
    def render_text(self) -> str:
        extent = self._extent()
        canvas = TextCanvas(self.width, self.height)
        canvas.frame(self.title)
        if extent is None:
            canvas.text(2, self.height // 2, "(no data)")
            return canvas.render()
        t0, t1, lo, hi = extent
        plot_w = self.width - 12
        plot_h = self.height - 4
        markers = "*o+x%@"
        for s_idx, (label, ts, vs) in enumerate(self.series):
            marker = markers[s_idx % len(markers)]
            # Columnar rasterization: map all points to cells in two
            # numpy expressions, then draw each *distinct* cell once.
            mask = np.isfinite(vs)
            if not mask.any():
                continue
            t = ts[mask].astype(np.float64)
            v = vs[mask]
            xs = 10 + ((t - t0) / (t1 - t0) * (plot_w - 1)).astype(np.intp)
            ys = (
                1 + plot_h - 1
                - ((v - lo) / (hi - lo) * (plot_h - 1)).astype(np.intp)
            )
            cells = np.unique(np.stack([xs, ys], axis=1), axis=0)
            for x, y in cells.tolist():
                canvas.set(x, y, marker)
        canvas.text(1, 1, f"{hi:9.1f}")
        canvas.text(1, self.height - 3, f"{lo:9.1f}")
        legend = "  ".join(
            f"{markers[i % len(markers)]}={label[:18]}"
            for i, (label, _, _) in enumerate(self.series)
        )
        canvas.text(2, self.height - 2, legend[: self.width - 4])
        return canvas.render()

    # -- svg ----------------------------------------------------------------
    def render_svg(self, px_width: int = 640, px_height: int = 240) -> str:
        svg = SvgDocument(px_width, px_height)
        svg.rect(0, 0, px_width, px_height, fill="white", stroke="#999")
        svg.text(8, 16, self.title, size=13)
        extent = self._extent()
        if extent is None:
            svg.text(px_width / 2, px_height / 2, "(no data)", anchor="middle")
            return svg.render()
        t0, t1, lo, hi = extent
        margin_l, margin_r, margin_t, margin_b = 52, 10, 26, 22
        pw = px_width - margin_l - margin_r
        ph = px_height - margin_t - margin_b

        def sx(t: float) -> float:
            return margin_l + (t - t0) / (t1 - t0) * pw

        def sy(v: float) -> float:
            return margin_t + (1.0 - (v - lo) / (hi - lo)) * ph

        # Axes + gridlines.
        svg.line(margin_l, margin_t, margin_l, margin_t + ph, stroke="#555")
        svg.line(margin_l, margin_t + ph, margin_l + pw, margin_t + ph, stroke="#555")
        for frac in (0.0, 0.5, 1.0):
            v = lo + frac * (hi - lo)
            svg.line(margin_l, sy(v), margin_l + pw, sy(v), stroke="#eee")
            svg.text(margin_l - 4, sy(v) + 4, f"{v:.1f}", size=10, anchor="end")

        for i, (label, ts, vs) in enumerate(self.series):
            color = _SERIES_COLORS[i % len(_SERIES_COLORS)]
            # Columnar projection: both screen-space transforms run as
            # whole-array expressions; only the final string assembly
            # touches Python objects.
            mask = np.isfinite(vs)
            px = margin_l + (ts[mask].astype(np.float64) - t0) / (t1 - t0) * pw
            py = margin_t + (1.0 - (vs[mask] - lo) / (hi - lo)) * ph
            points = list(zip(px.tolist(), py.tolist()))
            if len(points) >= 2:
                svg.polyline(points, stroke=color)
            elif points:
                svg.circle(points[0][0], points[0][1], 2.5, fill=color)
            svg.text(
                margin_l + 6 + 150 * i, margin_t - 8, label[:22], size=10, fill=color
            )
        return svg.render()

    def spark(self, width: int = 40) -> str:
        """One-line summary of the first series."""
        if not self.series:
            return ""
        _, _, vs = self.series[0]
        return sparkline(vs, width)
