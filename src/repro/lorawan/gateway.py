"""LoRaWAN gateways and the city-wide radio plane.

Gateways are fixed receivers; the :class:`RadioPlane` owns all of them
plus the propagation model, evaluates every transmitted uplink against
every gateway (LoRaWAN is receive-by-all), applies collision capture,
and reports per-gateway receptions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geo import GeoPoint
from .airtime import SENSITIVITY_DBM, airtime_s
from .frames import GatewayReception, Uplink
from .radio import DEFAULT_TX_POWER_DBM, PropagationModel


@dataclass
class Gateway:
    """One LoRaWAN gateway installation."""

    gateway_id: str
    location: GeoPoint
    altitude_m: float = 20.0
    online: bool = True
    received_count: int = 0

    def set_online(self, online: bool) -> None:
        self.online = online


@dataclass
class _InFlight:
    uplink: Uplink
    start: float
    end: float
    rssi_by_gateway: dict[str, float]
    snr_by_gateway: dict[str, float]


class RadioPlane:
    """Shared radio medium connecting devices and gateways.

    :meth:`transmit` evaluates one uplink and returns the receptions per
    gateway.  Concurrent transmissions (overlapping airtime on the same
    SF) interfere: the stronger frame survives if it is at least
    ``capture_threshold_db`` above the other, otherwise both are lost at
    that gateway (standard LoRa capture-effect model).
    """

    def __init__(
        self,
        model: PropagationModel | None = None,
        rng: np.random.Generator | None = None,
        capture_threshold_db: float = 6.0,
    ) -> None:
        self.model = model if model is not None else PropagationModel()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.capture_threshold_db = capture_threshold_db
        self._gateways: dict[str, Gateway] = {}
        self._recent: list[_InFlight] = []
        self.transmissions = 0
        self.collisions = 0

    # -- gateway management ---------------------------------------------
    def add_gateway(self, gateway: Gateway) -> None:
        if gateway.gateway_id in self._gateways:
            raise ValueError(f"duplicate gateway id: {gateway.gateway_id}")
        self._gateways[gateway.gateway_id] = gateway

    def gateway(self, gateway_id: str) -> Gateway:
        return self._gateways[gateway_id]

    def gateways(self) -> list[Gateway]:
        return list(self._gateways.values())

    # -- transmission ----------------------------------------------------
    def transmit(
        self,
        uplink: Uplink,
        from_location: GeoPoint,
        tx_power_dbm: float = DEFAULT_TX_POWER_DBM,
    ) -> list[GatewayReception]:
        """Send one uplink; returns successful gateway receptions."""
        self.transmissions += 1
        duration = airtime_s(uplink.phy_size, uplink.sf)
        start = float(uplink.sent_at)
        end = start + duration

        rssi_map: dict[str, float] = {}
        snr_map: dict[str, float] = {}
        receptions: list[GatewayReception] = []
        for gw in self._gateways.values():
            if not gw.online:
                continue
            distance = from_location.distance_to(gw.location)
            budget = self.model.evaluate(distance, uplink.sf, tx_power_dbm, self._rng)
            rssi_map[gw.gateway_id] = budget.rssi_dbm
            snr_map[gw.gateway_id] = budget.snr_db
            if budget.received:
                receptions.append(
                    GatewayReception(gw.gateway_id, budget.rssi_dbm, budget.snr_db)
                )

        flight = _InFlight(uplink, start, end, rssi_map, snr_map)
        survivors = self._apply_collisions(flight, receptions)
        self._recent.append(flight)
        self._recent = [f for f in self._recent if f.end > start - 10.0]
        for r in survivors:
            self._gateways[r.gateway_id].received_count += 1
        return survivors

    def _apply_collisions(
        self, flight: _InFlight, receptions: list[GatewayReception]
    ) -> list[GatewayReception]:
        overlapping = [
            f
            for f in self._recent
            if f.uplink.sf == flight.uplink.sf
            and f.end > flight.start
            and f.start < flight.end
            and f.uplink.dev_eui != flight.uplink.dev_eui
        ]
        if not overlapping:
            return receptions
        survivors: list[GatewayReception] = []
        for r in receptions:
            ours = flight.rssi_by_gateway[r.gateway_id]
            strongest_other = max(
                (f.rssi_by_gateway.get(r.gateway_id, -999.0) for f in overlapping),
                default=-999.0,
            )
            if ours >= strongest_other + self.capture_threshold_db:
                survivors.append(r)  # capture: we win decisively
            else:
                self.collisions += 1
        return survivors

    def coverage_report(
        self, locations: list[GeoPoint], sf: int = 12
    ) -> dict[str, float]:
        """Deterministic coverage check: fraction of ``locations`` whose
        best gateway link closes at the given SF (no shadowing)."""
        if not locations:
            return {"covered_fraction": 0.0, "mean_best_rssi_dbm": float("nan")}
        covered = 0
        best_rssis: list[float] = []
        for loc in locations:
            best = -999.0
            for gw in self._gateways.values():
                budget = self.model.evaluate(
                    loc.distance_to(gw.location), sf, rng=None
                )
                best = max(best, budget.rssi_dbm)
            best_rssis.append(best)
            if best >= SENSITIVITY_DBM[sf]:
                covered += 1
        return {
            "covered_fraction": covered / len(locations),
            "mean_best_rssi_dbm": float(np.mean(best_rssis)),
        }
