"""Device-side LoRaWAN MAC: frame counters, duty cycle, transmission.

A :class:`LoraDevice` is the radio half of a sensor node.  It owns the
frame counter, enforces the EU868 duty cycle (deferring frames that would
bust the budget), and hands frames to the shared :class:`RadioPlane`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geo import GeoPoint
from .airtime import DutyCycle, airtime_s, validate_sf
from .frames import MAC_OVERHEAD, GatewayReception, Uplink
from .gateway import RadioPlane
from .radio import DEFAULT_TX_POWER_DBM


@dataclass
class TransmitResult:
    """Outcome of one send attempt."""

    uplink: Uplink | None
    receptions: list[GatewayReception]
    deferred_until: float | None = None

    @property
    def delivered(self) -> bool:
        return bool(self.receptions)

    @property
    def blocked_by_duty_cycle(self) -> bool:
        return self.uplink is None


class LoraDevice:
    """One device's MAC layer bound to a radio plane."""

    def __init__(
        self,
        dev_eui: str,
        location: GeoPoint,
        plane: RadioPlane,
        sf: int = 9,
        tx_power_dbm: float = DEFAULT_TX_POWER_DBM,
        duty_cycle: DutyCycle | None = None,
    ) -> None:
        validate_sf(sf)
        self.dev_eui = dev_eui
        self.location = location
        self.plane = plane
        self.sf = sf
        self.tx_power_dbm = tx_power_dbm
        self.duty_cycle = duty_cycle if duty_cycle is not None else DutyCycle()
        self.fcnt = 0
        self.sent = 0
        self.duty_blocked = 0

    def set_sf(self, sf: int) -> None:
        """Change data rate (ADR downlink in a real network)."""
        validate_sf(sf)
        self.sf = sf

    def send(self, payload: bytes, now: int) -> TransmitResult:
        """Attempt to transmit ``payload`` at simulated time ``now``.

        Frames blocked by the duty cycle are *dropped* (CTT nodes sample
        again five minutes later rather than queueing stale air samples);
        the result carries the earliest time a send would have fit.
        """
        phy_size = len(payload) + MAC_OVERHEAD
        duration = airtime_s(phy_size, self.sf)
        if not self.duty_cycle.can_send(now, duration):
            self.duty_blocked += 1
            return TransmitResult(
                uplink=None,
                receptions=[],
                deferred_until=self.duty_cycle.next_allowed(now, duration),
            )
        uplink = Uplink(
            dev_eui=self.dev_eui,
            fcnt=self.fcnt,
            payload=payload,
            sf=self.sf,
            sent_at=int(now),
        )
        self.fcnt += 1
        self.sent += 1
        self.duty_cycle.record(now, duration)
        receptions = self.plane.transmit(uplink, self.location, self.tx_power_dbm)
        return TransmitResult(uplink=uplink, receptions=receptions)
