"""Urban radio propagation for the LoRaWAN backbone.

A log-distance path-loss model with log-normal shadowing, parameterized
for dense urban 868 MHz (the published LoRa measurement literature puts
the path-loss exponent at 2.7-3.5 for Nordic cities; we default to 3.1).
Reception succeeds when RSSI clears the SF's sensitivity floor and the
SNR clears the demodulation threshold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .airtime import REQUIRED_SNR_DB, SENSITIVITY_DBM, validate_sf

#: Default CTT node transmit power (EU868 maximum ERP is 14 dBm).
DEFAULT_TX_POWER_DBM = 14.0

#: Thermal noise floor for 125 kHz at ~300 K plus a 6 dB urban noise figure.
NOISE_FLOOR_DBM = -174.0 + 10.0 * math.log10(125_000) + 6.0


@dataclass(frozen=True)
class LinkBudget:
    """Outcome of evaluating one radio link."""

    distance_m: float
    path_loss_db: float
    rssi_dbm: float
    snr_db: float
    sf: int
    received: bool

    @property
    def margin_db(self) -> float:
        """How far above (positive) the sensitivity floor the link sits."""
        return self.rssi_dbm - SENSITIVITY_DBM[self.sf]


@dataclass(frozen=True)
class PropagationModel:
    """Log-distance path loss with optional log-normal shadowing.

    ``PL(d) = PL0 + 10 * n * log10(d / d0) + X_sigma``

    Parameters
    ----------
    exponent:
        Path-loss exponent ``n`` (urban 868 MHz: ~2.7-3.5).
    pl0_db:
        Reference loss at ``d0`` = 1 m. Free-space at 868 MHz is ~31.3 dB;
        antenna/installation losses push the effective value higher.
    shadowing_sigma_db:
        Standard deviation of the shadowing term; 0 disables it.
    """

    exponent: float = 3.1
    pl0_db: float = 38.0
    shadowing_sigma_db: float = 7.0

    def path_loss_db(
        self, distance_m: float, rng: np.random.Generator | None = None
    ) -> float:
        """Path loss for a link of ``distance_m``; shadowing needs ``rng``."""
        d = max(1.0, float(distance_m))
        loss = self.pl0_db + 10.0 * self.exponent * math.log10(d)
        if rng is not None and self.shadowing_sigma_db > 0.0:
            loss += float(rng.normal(0.0, self.shadowing_sigma_db))
        return loss

    def evaluate(
        self,
        distance_m: float,
        sf: int,
        tx_power_dbm: float = DEFAULT_TX_POWER_DBM,
        rng: np.random.Generator | None = None,
    ) -> LinkBudget:
        """Full link evaluation: path loss → RSSI/SNR → reception verdict."""
        validate_sf(sf)
        loss = self.path_loss_db(distance_m, rng)
        rssi = tx_power_dbm - loss
        snr = rssi - NOISE_FLOOR_DBM
        received = rssi >= SENSITIVITY_DBM[sf] and snr >= REQUIRED_SNR_DB[sf]
        return LinkBudget(
            distance_m=float(distance_m),
            path_loss_db=loss,
            rssi_dbm=rssi,
            snr_db=snr,
            sf=sf,
            received=received,
        )

    def max_range_m(self, sf: int, tx_power_dbm: float = DEFAULT_TX_POWER_DBM) -> float:
        """Deterministic (no-shadowing) range where RSSI hits sensitivity."""
        validate_sf(sf)
        max_loss = tx_power_dbm - SENSITIVITY_DBM[sf]
        return 10.0 ** ((max_loss - self.pl0_db) / (10.0 * self.exponent))


def best_sf_for_distance(
    model: PropagationModel,
    distance_m: float,
    tx_power_dbm: float = DEFAULT_TX_POWER_DBM,
    margin_db: float = 10.0,
) -> int | None:
    """Smallest SF (fastest data rate) whose deterministic link budget
    keeps ``margin_db`` of headroom; None when even SF12 cannot reach.

    This is the essence of ADR: close nodes use SF7 (short airtime), far
    nodes fall back to SF12.
    """
    for sf in (7, 8, 9, 10, 11, 12):
        budget = model.evaluate(distance_m, sf, tx_power_dbm, rng=None)
        if budget.rssi_dbm >= SENSITIVITY_DBM[sf] + margin_db:
            return sf
    last = model.evaluate(distance_m, 12, tx_power_dbm, rng=None)
    return 12 if last.received else None
