"""Network server: the TTN-equivalent tier.

Deduplicates uplinks heard by multiple gateways, checks frame-counter
monotonicity (replay protection), runs a simple ADR loop, and forwards
decoded uplinks — with full gateway metadata — to subscribers, normally
the MQTT bridge.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable

from .frames import GatewayReception, ReceivedUplink, Uplink

UplinkHandler = Callable[[ReceivedUplink], None]


@dataclass
class DeviceSession:
    """Per-device state the network server maintains."""

    dev_eui: str
    last_fcnt: int = -1
    uplinks: int = 0
    duplicates_suppressed: int = 0
    replays_rejected: int = 0
    # ADR bookkeeping: recent best-gateway SNRs.
    recent_snrs: list[float] = field(default_factory=list)


class NetworkServer:
    """Receives per-gateway frames, dedups, and emits application uplinks.

    In the simulator the radio plane already aggregates receptions per
    transmission, so :meth:`ingest` takes the uplink plus its reception
    list; duplicates arriving through retransmission paths are handled by
    the frame-counter check.
    """

    #: Keep this many SNR samples per device for ADR decisions.
    ADR_WINDOW = 20
    #: SNR headroom (dB) beyond the demodulation floor before stepping SF down.
    ADR_MARGIN_DB = 10.0

    def __init__(self, online: bool = True) -> None:
        self._sessions: dict[str, DeviceSession] = {}
        self._handlers: list[UplinkHandler] = []
        self.online = online
        self.forwarded = 0
        self.dropped_while_offline = 0

    def on_uplink(self, handler: UplinkHandler) -> None:
        """Register a downstream consumer (e.g. the MQTT bridge)."""
        self._handlers.append(handler)

    def session(self, dev_eui: str) -> DeviceSession:
        if dev_eui not in self._sessions:
            self._sessions[dev_eui] = DeviceSession(dev_eui)
        return self._sessions[dev_eui]

    def sessions(self) -> list[DeviceSession]:
        return list(self._sessions.values())

    def ingest(
        self, uplink: Uplink, receptions: list[GatewayReception], now: int
    ) -> ReceivedUplink | None:
        """Process one transmission; returns the deduplicated uplink or
        None when it was rejected (no receptions, replay, server down)."""
        if not self.online:
            self.dropped_while_offline += 1
            return None
        if not receptions:
            return None
        session = self.session(uplink.dev_eui)
        if uplink.fcnt <= session.last_fcnt:
            session.replays_rejected += 1
            return None
        session.last_fcnt = uplink.fcnt
        session.uplinks += 1
        session.duplicates_suppressed += max(0, len(receptions) - 1)

        received = ReceivedUplink(
            uplink=uplink,
            receptions=tuple(sorted(receptions, key=lambda r: -r.rssi_dbm)),
            received_at=int(now),
        )
        session.recent_snrs.append(received.best_reception.snr_db)
        if len(session.recent_snrs) > self.ADR_WINDOW:
            session.recent_snrs = session.recent_snrs[-self.ADR_WINDOW :]

        for handler in self._handlers:
            handler(received)
        self.forwarded += 1
        return received

    def adr_recommendation(self, dev_eui: str) -> int | None:
        """Recommended SF from recent link quality, or None (keep current).

        Mimics TTN's ADR: take the max SNR over the window, subtract the
        margin, and pick the fastest SF whose demodulation floor still
        clears.  Conservative: requires a full window of samples.
        """
        from .airtime import REQUIRED_SNR_DB

        session = self._sessions.get(dev_eui)
        if session is None or len(session.recent_snrs) < self.ADR_WINDOW:
            return None
        usable = max(session.recent_snrs) - self.ADR_MARGIN_DB
        for sf in (7, 8, 9, 10, 11, 12):
            if usable >= REQUIRED_SNR_DB[sf]:
                return sf
        return 12

    def stats(self) -> dict[str, int]:
        return {
            "devices": len(self._sessions),
            "forwarded": self.forwarded,
            "replays_rejected": sum(
                s.replays_rejected for s in self._sessions.values()
            ),
            "duplicates_suppressed": sum(
                s.duplicates_suppressed for s in self._sessions.values()
            ),
            "dropped_while_offline": self.dropped_while_offline,
        }


def uplink_to_json(received: ReceivedUplink) -> str:
    """Serialize an uplink the way the TTN MQTT bridge would (JSON)."""
    doc = {
        "dev_eui": received.uplink.dev_eui,
        "fcnt": received.uplink.fcnt,
        "sf": received.uplink.sf,
        "sent_at": received.uplink.sent_at,
        "received_at": received.received_at,
        "payload_hex": received.uplink.payload.hex(),
        "gateways": [
            {"id": r.gateway_id, "rssi": r.rssi_dbm, "snr": r.snr_db}
            for r in received.receptions
        ],
    }
    return json.dumps(doc, sort_keys=True)


def uplink_from_json(text: str) -> ReceivedUplink:
    """Inverse of :func:`uplink_to_json`."""
    doc = json.loads(text)
    uplink = Uplink(
        dev_eui=doc["dev_eui"],
        fcnt=int(doc["fcnt"]),
        payload=bytes.fromhex(doc["payload_hex"]),
        sf=int(doc["sf"]),
        sent_at=int(doc["sent_at"]),
    )
    receptions = tuple(
        GatewayReception(g["id"], float(g["rssi"]), float(g["snr"]))
        for g in doc["gateways"]
    )
    return ReceivedUplink(
        uplink=uplink, receptions=receptions, received_at=int(doc["received_at"])
    )
