"""LoRa airtime and data-rate arithmetic.

Airtime drives two behaviours the paper's network exhibits: EU868 duty
cycle limits (1 % on the common subbands) and collision probability at
gateways.  The formulas follow Semtech AN1200.13 (LoRa modem designer's
guide).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: EU868 defaults used by The Things Network.
BANDWIDTH_HZ = 125_000
CODING_RATE = 1  # CR 4/5
PREAMBLE_SYMBOLS = 8
EXPLICIT_HEADER = True

SPREADING_FACTORS = (7, 8, 9, 10, 11, 12)

#: Demodulator sensitivity floor (dBm) per SF at 125 kHz, SX1276 datasheet.
SENSITIVITY_DBM = {
    7: -123.0,
    8: -126.0,
    9: -129.0,
    10: -132.0,
    11: -134.5,
    12: -137.0,
}

#: Required SNR (dB) per SF for demodulation.
REQUIRED_SNR_DB = {7: -7.5, 8: -10.0, 9: -12.5, 10: -15.0, 11: -17.5, 12: -20.0}


class InvalidSpreadingFactor(ValueError):
    """SF outside 7..12."""


def validate_sf(sf: int) -> int:
    if sf not in SPREADING_FACTORS:
        raise InvalidSpreadingFactor(f"SF must be one of {SPREADING_FACTORS}: {sf}")
    return sf


def symbol_time_s(sf: int, bandwidth_hz: int = BANDWIDTH_HZ) -> float:
    """Duration of one LoRa symbol in seconds."""
    validate_sf(sf)
    return (2**sf) / bandwidth_hz


def airtime_s(
    payload_bytes: int,
    sf: int,
    bandwidth_hz: int = BANDWIDTH_HZ,
    coding_rate: int = CODING_RATE,
    preamble_symbols: int = PREAMBLE_SYMBOLS,
    explicit_header: bool = EXPLICIT_HEADER,
) -> float:
    """Time-on-air of one uplink frame in seconds (AN1200.13).

    ``payload_bytes`` is the PHY payload (MAC header + app payload + MIC).
    Low-data-rate optimization is enabled for SF11/12 as TTN mandates.
    """
    validate_sf(sf)
    if payload_bytes < 0:
        raise ValueError(f"payload_bytes must be >= 0: {payload_bytes}")
    t_sym = symbol_time_s(sf, bandwidth_hz)
    de = 1 if sf >= 11 else 0  # low data rate optimization
    ih = 0 if explicit_header else 1
    numerator = 8 * payload_bytes - 4 * sf + 28 + 16 - 20 * ih
    denominator = 4 * (sf - 2 * de)
    n_payload = 8 + max(math.ceil(numerator / denominator) * (coding_rate + 4), 0)
    t_preamble = (preamble_symbols + 4.25) * t_sym
    return t_preamble + n_payload * t_sym


def bitrate_bps(sf: int, bandwidth_hz: int = BANDWIDTH_HZ) -> float:
    """Nominal PHY bitrate for the SF."""
    validate_sf(sf)
    return sf * bandwidth_hz / (2**sf) * 4 / (4 + CODING_RATE)


@dataclass
class DutyCycle:
    """EU868 duty-cycle accounting for one device (default 1 %).

    Tracks cumulative airtime inside a sliding window; :meth:`can_send`
    answers whether a frame of a given airtime fits right now, and
    :meth:`record` charges transmitted airtime.
    """

    limit: float = 0.01
    window_s: int = 3600

    def __post_init__(self) -> None:
        if not 0.0 < self.limit <= 1.0:
            raise ValueError(f"duty-cycle limit must be in (0, 1]: {self.limit}")
        self._sends: list[tuple[float, float]] = []  # (time, airtime)

    def _prune(self, now: float) -> None:
        horizon = now - self.window_s
        self._sends = [(t, a) for (t, a) in self._sends if t >= horizon]

    def used(self, now: float) -> float:
        """Fraction of the window already consumed."""
        self._prune(now)
        return sum(a for _, a in self._sends) / self.window_s

    def can_send(self, now: float, airtime: float) -> bool:
        self._prune(now)
        budget = self.limit * self.window_s
        return sum(a for _, a in self._sends) + airtime <= budget

    def record(self, now: float, airtime: float) -> None:
        self._sends.append((now, airtime))

    def next_allowed(self, now: float, airtime: float) -> float:
        """Earliest time the frame fits the budget (>= now)."""
        self._prune(now)
        if self.can_send(now, airtime):
            return now
        budget = self.limit * self.window_s
        sends = sorted(self._sends)
        running = sum(a for _, a in sends)
        for t, a in sends:
            running -= a
            candidate = t + self.window_s
            if running + airtime <= budget:
                return candidate
        return now + self.window_s
