"""LoRaWAN frames and the CTT sensor payload codec.

Sensor nodes encode a full measurement set into a compact fixed-layout
binary payload (18 bytes), keeping airtime short.  The codec mirrors the
Cayenne-LPP-style scaled-integer approach real deployments use:

====== ===== ========================== =========================
offset bytes field                      scaling
====== ===== ========================== =========================
0      2     CO2 ppm                    unsigned, 1 ppm
2      2     NO2 µg/m³                  unsigned, 0.1 µg/m³
4      2     PM10 µg/m³                 unsigned, 0.1 µg/m³
6      2     PM2.5 µg/m³                unsigned, 0.1 µg/m³
8      2     temperature °C             signed, 0.01 °C
10     2     pressure hPa               unsigned, 0.1 hPa
12     2     humidity %RH               unsigned, 0.01 %
14     2     battery V                  unsigned, 1 mV
16     2     sequence number (app)      unsigned
====== ===== ========================== =========================
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Sequence

import numpy as np

_STRUCT = struct.Struct(">HHHHhHHHH")

#: Structured dtype mirroring ``_STRUCT`` so many payloads decode in one
#: ``np.frombuffer`` instead of one ``struct.unpack`` per frame.
_BATCH_DTYPE = np.dtype(
    [
        ("co2", ">u2"),
        ("no2", ">u2"),
        ("pm10", ">u2"),
        ("pm25", ">u2"),
        ("temp", ">i2"),
        ("pres", ">u2"),
        ("hum", ">u2"),
        ("batt", ">u2"),
        ("seq", ">u2"),
    ]
)

PAYLOAD_SIZE = _STRUCT.size  # 18 bytes
#: PHY payload = MHDR(1) + FHDR(7) + FPort(1) + app payload + MIC(4).
MAC_OVERHEAD = 13


class PayloadError(ValueError):
    """Payload fails to encode/decode."""


@dataclass(frozen=True, slots=True)
class Measurements:
    """One decoded measurement set from a sensor node."""

    co2_ppm: float
    no2_ugm3: float
    pm10_ugm3: float
    pm25_ugm3: float
    temperature_c: float
    pressure_hpa: float
    humidity_pct: float
    battery_v: float
    sequence: int = 0

    def as_dict(self) -> dict[str, float]:
        return {
            "co2_ppm": self.co2_ppm,
            "no2_ugm3": self.no2_ugm3,
            "pm10_ugm3": self.pm10_ugm3,
            "pm25_ugm3": self.pm25_ugm3,
            "temperature_c": self.temperature_c,
            "pressure_hpa": self.pressure_hpa,
            "humidity_pct": self.humidity_pct,
            "battery_v": self.battery_v,
        }


def _clamp_u16(value: float) -> int:
    return max(0, min(65535, int(round(value))))


def _clamp_i16(value: float) -> int:
    return max(-32768, min(32767, int(round(value))))


def encode_measurements(m: Measurements) -> bytes:
    """Encode a measurement set into the 18-byte CTT payload."""
    return _STRUCT.pack(
        _clamp_u16(m.co2_ppm),
        _clamp_u16(m.no2_ugm3 * 10.0),
        _clamp_u16(m.pm10_ugm3 * 10.0),
        _clamp_u16(m.pm25_ugm3 * 10.0),
        _clamp_i16(m.temperature_c * 100.0),
        _clamp_u16(m.pressure_hpa * 10.0),
        _clamp_u16(m.humidity_pct * 100.0),
        _clamp_u16(m.battery_v * 1000.0),
        m.sequence % 65536,
    )


def decode_measurements(payload: bytes) -> Measurements:
    """Decode an 18-byte CTT payload back into engineering units."""
    if len(payload) != PAYLOAD_SIZE:
        raise PayloadError(
            f"expected {PAYLOAD_SIZE}-byte payload, got {len(payload)}"
        )
    co2, no2, pm10, pm25, temp, pres, hum, batt, seq = _STRUCT.unpack(payload)
    return Measurements(
        co2_ppm=float(co2),
        no2_ugm3=no2 / 10.0,
        pm10_ugm3=pm10 / 10.0,
        pm25_ugm3=pm25 / 10.0,
        temperature_c=temp / 100.0,
        pressure_hpa=pres / 10.0,
        humidity_pct=hum / 100.0,
        battery_v=batt / 1000.0,
        sequence=seq,
    )


def decode_measurements_batch(
    payloads: Sequence[bytes] | bytes,
) -> dict[str, np.ndarray]:
    """Vectorized codec: decode many payloads into columnar arrays.

    Accepts a sequence of 18-byte payloads or one pre-concatenated
    buffer.  Returns the :meth:`Measurements.as_dict` fields as parallel
    float arrays plus an int ``"sequence"`` column — ready to feed a
    :class:`~repro.tsdb.batch.BatchBuilder` without per-frame Python.
    """
    if isinstance(payloads, (bytes, bytearray, memoryview)):
        buf = bytes(payloads)
        if len(buf) % PAYLOAD_SIZE:
            raise PayloadError(
                f"buffer length {len(buf)} is not a multiple of {PAYLOAD_SIZE}"
            )
    else:
        payloads = list(payloads)  # tolerate generators: consumed twice below
        if any(len(p) != PAYLOAD_SIZE for p in payloads):
            raise PayloadError(f"every payload must be {PAYLOAD_SIZE} bytes")
        buf = b"".join(payloads)
    raw = np.frombuffer(buf, dtype=_BATCH_DTYPE)
    return {
        "co2_ppm": raw["co2"].astype(np.float64),
        "no2_ugm3": raw["no2"] / 10.0,
        "pm10_ugm3": raw["pm10"] / 10.0,
        "pm25_ugm3": raw["pm25"] / 10.0,
        "temperature_c": raw["temp"] / 100.0,
        "pressure_hpa": raw["pres"] / 10.0,
        "humidity_pct": raw["hum"] / 100.0,
        "battery_v": raw["batt"] / 1000.0,
        "sequence": raw["seq"].astype(np.int64),
    }


@dataclass(frozen=True, slots=True)
class Uplink:
    """One uplink frame as transmitted by a device."""

    dev_eui: str
    fcnt: int
    payload: bytes
    sf: int
    sent_at: int  # epoch seconds
    frequency_mhz: float = 868.1

    @property
    def phy_size(self) -> int:
        return len(self.payload) + MAC_OVERHEAD


@dataclass(frozen=True, slots=True)
class GatewayReception:
    """Reception metadata one gateway attaches to a received uplink."""

    gateway_id: str
    rssi_dbm: float
    snr_db: float


@dataclass(frozen=True)
class ReceivedUplink:
    """An uplink after network-server deduplication.

    Carries the union of gateway receptions — the paper's dataport uses
    exactly this metadata ("identifies the originating sensor and the
    gateway from which it was received") to drive digital twins.
    """

    uplink: Uplink
    receptions: tuple[GatewayReception, ...]
    received_at: int

    @property
    def best_reception(self) -> GatewayReception:
        return max(self.receptions, key=lambda r: r.rssi_dbm)

    @property
    def gateway_ids(self) -> tuple[str, ...]:
        return tuple(r.gateway_id for r in self.receptions)
