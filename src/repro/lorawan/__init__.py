"""LoRaWAN backbone simulator: airtime, radio, gateways, network server."""

from .airtime import (
    BANDWIDTH_HZ,
    REQUIRED_SNR_DB,
    SENSITIVITY_DBM,
    SPREADING_FACTORS,
    DutyCycle,
    InvalidSpreadingFactor,
    airtime_s,
    bitrate_bps,
    symbol_time_s,
    validate_sf,
)
from .device import LoraDevice, TransmitResult
from .frames import (
    MAC_OVERHEAD,
    PAYLOAD_SIZE,
    GatewayReception,
    Measurements,
    PayloadError,
    ReceivedUplink,
    Uplink,
    decode_measurements,
    decode_measurements_batch,
    encode_measurements,
)
from .gateway import Gateway, RadioPlane
from .network_server import (
    DeviceSession,
    NetworkServer,
    uplink_from_json,
    uplink_to_json,
)
from .radio import (
    DEFAULT_TX_POWER_DBM,
    NOISE_FLOOR_DBM,
    LinkBudget,
    PropagationModel,
    best_sf_for_distance,
)

__all__ = [
    "BANDWIDTH_HZ",
    "DEFAULT_TX_POWER_DBM",
    "DeviceSession",
    "DutyCycle",
    "Gateway",
    "GatewayReception",
    "InvalidSpreadingFactor",
    "LinkBudget",
    "LoraDevice",
    "MAC_OVERHEAD",
    "Measurements",
    "NOISE_FLOOR_DBM",
    "NetworkServer",
    "PAYLOAD_SIZE",
    "PayloadError",
    "PropagationModel",
    "REQUIRED_SNR_DB",
    "RadioPlane",
    "ReceivedUplink",
    "SENSITIVITY_DBM",
    "SPREADING_FACTORS",
    "TransmitResult",
    "Uplink",
    "airtime_s",
    "best_sf_for_distance",
    "bitrate_bps",
    "decode_measurements",
    "decode_measurements_batch",
    "encode_measurements",
    "symbol_time_s",
    "uplink_from_json",
    "uplink_to_json",
    "validate_sf",
]
