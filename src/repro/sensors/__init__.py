"""Sensor nodes and the ground-truth urban environment they observe."""

from .channels import (
    LOW_COST_SPECS,
    REFERENCE_SPECS,
    Channel,
    ChannelSpec,
    make_channels,
)
from .environment import (
    EmissionField,
    PollutionInjection,
    RoadSegment,
    SmoothNoise,
    TrafficIntensity,
    UrbanEnvironment,
    Weather,
    WeatherState,
)
from .faults import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    apply_channel_faults,
    random_fault_plan,
)
from .node import NodeStats, SensorNode
from .power import Battery, PowerSpec, soc_to_voltage, voltage_to_soc
from .sampling import BatteryAdaptive, DEFAULT_INTERVAL_S, FixedInterval

__all__ = [
    "Battery",
    "BatteryAdaptive",
    "Channel",
    "ChannelSpec",
    "DEFAULT_INTERVAL_S",
    "EmissionField",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "FixedInterval",
    "LOW_COST_SPECS",
    "NodeStats",
    "PollutionInjection",
    "PowerSpec",
    "REFERENCE_SPECS",
    "RoadSegment",
    "SensorNode",
    "SmoothNoise",
    "TrafficIntensity",
    "UrbanEnvironment",
    "Weather",
    "WeatherState",
    "apply_channel_faults",
    "make_channels",
    "random_fault_plan",
    "soc_to_voltage",
    "voltage_to_soc",
]
