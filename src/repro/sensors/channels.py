"""Measurement channels: how a physical sensor corrupts the truth.

Low-cost sensors are the paper's central trade-off: ~$2,000 nodes instead
of $500,000 stations, compensating lower accuracy with density.  Each
channel model applies gain error, zero offset, temperature-dependent
drift, aging drift, quantization, and white noise — the error structure
the calibration analytics (paper §2.4) must undo against the co-located
reference station.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np


@dataclass(frozen=True)
class ChannelSpec:
    """Error model parameters for one measurement channel.

    Parameters
    ----------
    name:
        Quantity name (matches keys of
        :meth:`~repro.sensors.environment.UrbanEnvironment.true_values`).
    noise_sigma:
        Standard deviation of white measurement noise (engineering units).
    gain_error:
        Multiplicative miscalibration (0.05 → reads 5 % high).
    zero_offset:
        Additive miscalibration in engineering units.
    temp_coefficient:
        Additional offset per °C away from the 20 °C calibration point.
    drift_per_day:
        Aging drift added per elapsed day (sensor decay).
    resolution:
        Quantization step of the ADC/firmware output.
    lower, upper:
        Physical reporting range; readings clamp here (sensor saturation).
    """

    name: str
    noise_sigma: float
    gain_error: float = 0.0
    zero_offset: float = 0.0
    temp_coefficient: float = 0.0
    drift_per_day: float = 0.0
    resolution: float = 0.0
    lower: float = float("-inf")
    upper: float = float("inf")


#: Typical low-cost (NDIR / electrochemical / optical) channel specs.
LOW_COST_SPECS = {
    "co2_ppm": ChannelSpec(
        "co2_ppm",
        noise_sigma=8.0,
        gain_error=0.04,
        zero_offset=15.0,
        temp_coefficient=0.35,
        drift_per_day=0.08,
        resolution=1.0,
        lower=0.0,
        upper=5000.0,
    ),
    "no2_ugm3": ChannelSpec(
        "no2_ugm3",
        noise_sigma=4.0,
        gain_error=0.08,
        zero_offset=3.0,
        temp_coefficient=0.25,
        drift_per_day=0.05,
        resolution=0.1,
        lower=0.0,
        upper=1000.0,
    ),
    "pm10_ugm3": ChannelSpec(
        "pm10_ugm3",
        noise_sigma=3.0,
        gain_error=0.10,
        zero_offset=2.0,
        drift_per_day=0.03,
        resolution=0.1,
        lower=0.0,
        upper=1000.0,
    ),
    "pm25_ugm3": ChannelSpec(
        "pm25_ugm3",
        noise_sigma=2.0,
        gain_error=0.10,
        zero_offset=1.0,
        drift_per_day=0.02,
        resolution=0.1,
        lower=0.0,
        upper=1000.0,
    ),
    "temperature_c": ChannelSpec(
        "temperature_c", noise_sigma=0.2, zero_offset=0.3, resolution=0.01,
        lower=-40.0, upper=85.0,
    ),
    "pressure_hpa": ChannelSpec(
        "pressure_hpa", noise_sigma=0.3, zero_offset=0.5, resolution=0.1,
        lower=300.0, upper=1100.0,
    ),
    "humidity_pct": ChannelSpec(
        "humidity_pct", noise_sigma=1.5, gain_error=0.03, resolution=0.01,
        lower=0.0, upper=100.0,
    ),
}

#: Reference-grade station specs: an order of magnitude cleaner, no drift.
REFERENCE_SPECS = {
    name: replace(
        spec,
        noise_sigma=spec.noise_sigma * 0.08,
        gain_error=0.0,
        zero_offset=0.0,
        temp_coefficient=0.0,
        drift_per_day=0.0,
    )
    for name, spec in LOW_COST_SPECS.items()
}


class Channel:
    """One instantiated channel with unit-specific random miscalibration.

    Two nodes built from the same spec get *different* gain/offset draws
    (manufacturing spread), which is what makes per-node calibration
    necessary.
    """

    def __init__(self, spec: ChannelSpec, rng: np.random.Generator) -> None:
        self.spec = spec
        # Unit-to-unit spread: the spec values are 1-sigma magnitudes.
        self.gain = 1.0 + float(rng.normal(0.0, max(spec.gain_error, 1e-12)))
        self.offset = float(rng.normal(0.0, max(spec.zero_offset, 1e-12)))
        self.temp_co = float(
            rng.normal(0.0, max(spec.temp_coefficient, 1e-12))
        )
        self.drift_rate = float(
            abs(rng.normal(0.0, max(spec.drift_per_day, 1e-12)))
        )
        self._rng = rng

    def measure(
        self, true_value: float, elapsed_days: float, ambient_temp_c: float = 20.0
    ) -> float:
        """Corrupt ``true_value`` per the channel's error model."""
        reading = true_value * self.gain + self.offset
        reading += self.temp_co * (ambient_temp_c - 20.0)
        reading += self.drift_rate * elapsed_days
        reading += float(self._rng.normal(0.0, self.spec.noise_sigma))
        if self.spec.resolution > 0.0:
            reading = round(reading / self.spec.resolution) * self.spec.resolution
        return float(min(self.spec.upper, max(self.spec.lower, reading)))

    def expected_error_at(self, elapsed_days: float) -> float:
        """Deterministic (bias) part of the error for a nominal reading."""
        return self.offset + self.drift_rate * elapsed_days


def make_channels(
    specs: dict[str, ChannelSpec], rng: np.random.Generator
) -> dict[str, Channel]:
    """Instantiate one :class:`Channel` per spec with shared RNG."""
    return {name: Channel(spec, rng) for name, spec in sorted(specs.items())}
