"""Ground-truth urban environment: weather, traffic, and emission fields.

Everything the deployed system *observes* — sensor nodes, the official
NILU station, the OCO-2 satellite, the here.com traffic feed — samples
this shared synthetic world.  That layering reproduces the paper's data
situation: heterogeneous observations of one underlying city, with each
observer adding its own error, cadence, and geometry.

Design notes
------------
* Deterministic random access: any quantity can be evaluated at any
  ``(timestamp, location)`` without simulating forward, via value-noise
  (seeded Gaussian knots + cosine interpolation).  Two evaluations of the
  same instant always agree, so a sensor and a reference station
  co-located at the same point see the same truth.
* The CO2 field is deliberately **multi-factor** (background + biosphere
  diurnal cycle + inversion-driven accumulation + a *small* traffic term
  + plume noise), because the paper's Fig. 5 finding is that "traffic is
  not the only factor that accounts for the dynamics of the CO2
  emission ... they exhibit different patterns, and have no apparent
  correlation".  NO2 and PM are built traffic-dominated, by contrast.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..geo import GeoPoint
from ..simclock import HOUR, day_of_year, hour_of_day, is_weekend
from ..simclock.sun import solar_irradiance_wm2


class SmoothNoise:
    """Deterministic, smooth 1-D value noise.

    Gaussian knots every ``knot_spacing`` seconds, derived from
    ``(seed, knot_index)`` so any timestamp is random-accessible; cosine
    interpolation between knots keeps the signal C1-smooth.  Used for
    synoptic weather variation, plume wander, etc.
    """

    def __init__(self, seed: int, knot_spacing: int, sigma: float = 1.0) -> None:
        if knot_spacing <= 0:
            raise ValueError("knot_spacing must be positive")
        self._seed = int(seed)
        self._spacing = int(knot_spacing)
        self._sigma = float(sigma)
        self._cache: dict[int, float] = {}

    def _knot(self, index: int) -> float:
        value = self._cache.get(index)
        if value is None:
            rng = np.random.default_rng([self._seed, index & 0xFFFFFFFF, index >> 32 & 0xFFFFFFFF])
            value = float(rng.normal(0.0, self._sigma))
            if len(self._cache) > 100_000:
                self._cache.clear()
            self._cache[index] = value
        return value

    def __call__(self, timestamp: int) -> float:
        idx, frac = divmod(int(timestamp), self._spacing)
        a = self._knot(idx)
        b = self._knot(idx + 1)
        t = frac / self._spacing
        w = (1.0 - math.cos(math.pi * t)) / 2.0  # cosine ease
        return a * (1.0 - w) + b * w


@dataclass(frozen=True)
class WeatherState:
    """Instantaneous weather at one location."""

    temperature_c: float
    pressure_hpa: float
    humidity_pct: float
    wind_speed_ms: float
    cloud_cover: float  # 0..1
    irradiance_wm2: float


class Weather:
    """City-scale ground-truth weather.

    Seasonal + diurnal temperature structure for a Nordic coastal city,
    synoptic (multi-day) pressure systems, humidity anti-correlated with
    temperature, wind and cloud driven by smooth noise.
    """

    def __init__(
        self,
        seed: int,
        lat: float,
        lon: float,
        mean_temp_c: float = 5.0,
        seasonal_amplitude_c: float = 9.0,
        diurnal_amplitude_c: float = 3.5,
    ) -> None:
        self.lat = lat
        self.lon = lon
        self.mean_temp_c = mean_temp_c
        self.seasonal_amplitude_c = seasonal_amplitude_c
        self.diurnal_amplitude_c = diurnal_amplitude_c
        self._temp_noise = SmoothNoise(seed * 11 + 1, 6 * HOUR, sigma=2.0)
        self._pressure_noise = SmoothNoise(seed * 11 + 2, 18 * HOUR, sigma=9.0)
        self._humidity_noise = SmoothNoise(seed * 11 + 3, 4 * HOUR, sigma=8.0)
        self._wind_noise = SmoothNoise(seed * 11 + 4, 3 * HOUR, sigma=1.0)
        self._cloud_noise = SmoothNoise(seed * 11 + 5, 5 * HOUR, sigma=1.0)

    def temperature_c(self, timestamp: int) -> float:
        doy = day_of_year(timestamp)
        seasonal = -math.cos(2.0 * math.pi * (doy - 15) / 365.0)
        hod = hour_of_day(timestamp)
        diurnal = -math.cos(2.0 * math.pi * (hod - 3.0) / 24.0)
        return (
            self.mean_temp_c
            + self.seasonal_amplitude_c * seasonal
            + self.diurnal_amplitude_c * diurnal
            + self._temp_noise(timestamp)
        )

    def pressure_hpa(self, timestamp: int) -> float:
        return 1013.0 + self._pressure_noise(timestamp)

    def humidity_pct(self, timestamp: int) -> float:
        hod = hour_of_day(timestamp)
        diurnal = 8.0 * math.cos(2.0 * math.pi * (hod - 4.0) / 24.0)
        value = 78.0 + diurnal + self._humidity_noise(timestamp)
        return min(100.0, max(15.0, value))

    def wind_speed_ms(self, timestamp: int) -> float:
        # Log-normal-ish: positive, occasionally gusty.
        return max(0.1, 3.5 * math.exp(0.45 * self._wind_noise(timestamp)) - 0.5)

    def cloud_cover(self, timestamp: int) -> float:
        # Squash smooth noise into [0, 1] with a bias towards cloudy
        # (Nordic coastal climate).
        return 1.0 / (1.0 + math.exp(-(self._cloud_noise(timestamp) + 0.4)))

    def irradiance_wm2(self, timestamp: int) -> float:
        return solar_irradiance_wm2(
            timestamp, self.lat, self.lon, self.cloud_cover(timestamp)
        )

    def state(self, timestamp: int) -> WeatherState:
        return WeatherState(
            temperature_c=self.temperature_c(timestamp),
            pressure_hpa=self.pressure_hpa(timestamp),
            humidity_pct=self.humidity_pct(timestamp),
            wind_speed_ms=self.wind_speed_ms(timestamp),
            cloud_cover=self.cloud_cover(timestamp),
            irradiance_wm2=self.irradiance_wm2(timestamp),
        )


class TrafficIntensity:
    """Ground-truth traffic intensity in [0, 1] for a road segment.

    Weekday double peak (morning/evening rush), flatter weekend profile,
    plus slow stochastic variation (events, weather).  The here.com jam
    factor and municipal counters both derive from this signal.
    """

    def __init__(self, seed: int, peak_sharpness: float = 8.0) -> None:
        self._noise = SmoothNoise(seed * 17 + 7, 2 * HOUR, sigma=0.1)
        self.peak_sharpness = peak_sharpness

    def __call__(self, timestamp: int) -> float:
        hod = hour_of_day(timestamp)
        if is_weekend(timestamp):
            base = 0.18 + 0.22 * math.exp(
                -((hod - 13.5) ** 2) / (2 * 3.5**2)
            )
        else:
            morning = 0.55 * math.exp(-((hod - 8.0) ** 2) / (2 * 1.3**2))
            evening = 0.60 * math.exp(-((hod - 16.2) ** 2) / (2 * 1.6**2))
            base = 0.12 + morning + evening
        night_damp = 0.35 + 0.65 / (1.0 + math.exp(-(hod - 5.2) * 2.0))
        value = base * night_damp + self._noise(timestamp)
        return min(1.0, max(0.0, value))


@dataclass(frozen=True)
class RoadSegment:
    """A road the emission field couples to."""

    name: str
    start: GeoPoint
    end: GeoPoint
    traffic_weight: float = 1.0  # relative volume

    def distance_m(self, point: GeoPoint) -> float:
        """Distance from ``point`` to the segment (flat-earth approx).

        City-scale segments are < 5 km, so projecting to a local
        tangent plane is accurate to well under a metre.
        """
        lat0 = math.radians((self.start.lat + self.end.lat) / 2.0)
        mx = 111_320.0 * math.cos(lat0)
        my = 110_540.0
        ax, ay = self.start.lon * mx, self.start.lat * my
        bx, by = self.end.lon * mx, self.end.lat * my
        px, py = point.lon * mx, point.lat * my
        dx, dy = bx - ax, by - ay
        seg_len2 = dx * dx + dy * dy
        if seg_len2 == 0.0:
            return math.hypot(px - ax, py - ay)
        t = max(0.0, min(1.0, ((px - ax) * dx + (py - ay) * dy) / seg_len2))
        cx, cy = ax + t * dx, ay + t * dy
        return math.hypot(px - cx, py - cy)


class EmissionField:
    """Pollutant concentration fields over the city.

    CO2 (ppm): global background + biosphere diurnal cycle (night-time
    respiration maximum, afternoon photosynthetic drawdown) + stagnation
    accumulation when wind is low and the boundary layer is shallow
    (cold, stable nights) + a *small* traffic proximity term + plume
    noise.  NO2 and PM (µg/m³): traffic-dominated with wind dispersal,
    plus a residential wood-burning evening term for PM in winter.
    """

    CO2_BACKGROUND_PPM = 408.0

    def __init__(
        self,
        seed: int,
        weather: Weather,
        traffic: TrafficIntensity,
        roads: list[RoadSegment] | None = None,
    ) -> None:
        self.weather = weather
        self.traffic = traffic
        self.roads = list(roads or [])
        self._co2_plume = SmoothNoise(seed * 23 + 1, HOUR, sigma=6.0)
        self._no2_plume = SmoothNoise(seed * 23 + 2, HOUR, sigma=3.0)
        self._pm_plume = SmoothNoise(seed * 23 + 3, 2 * HOUR, sigma=2.5)

    # -- helpers -----------------------------------------------------------
    def _road_proximity(self, location: GeoPoint) -> float:
        """Traffic exposure factor in [0, 1]: 1 on the road, ~0 beyond 300 m."""
        if not self.roads:
            return 0.3  # generic urban exposure when no road map is given
        exposure = 0.0
        for road in self.roads:
            d = road.distance_m(location)
            exposure += road.traffic_weight * math.exp(-d / 120.0)
        return min(1.0, exposure)

    def _stagnation(self, timestamp: int) -> float:
        """Pollution accumulation factor from low wind + stable air, >= ~0.5."""
        wind = self.weather.wind_speed_ms(timestamp)
        dispersal = 1.0 / (1.0 + 0.55 * wind)
        temp = self.weather.temperature_c(timestamp)
        inversion = 1.0 + max(0.0, -temp) * 0.035  # cold air pools pollutants
        return dispersal * inversion

    # -- fields ------------------------------------------------------------
    def co2_ppm(self, timestamp: int, location: GeoPoint) -> float:
        hod = hour_of_day(timestamp)
        # Biosphere: respiration peaks pre-dawn, drawdown mid-afternoon.
        biosphere = 14.0 * math.cos(2.0 * math.pi * (hod - 4.5) / 24.0)
        stagnation = 30.0 * (self._stagnation(timestamp) - 0.5)
        traffic_term = 9.0 * self.traffic(timestamp) * self._road_proximity(location)
        plume = self._co2_plume(timestamp)
        return max(
            380.0,
            self.CO2_BACKGROUND_PPM + biosphere + stagnation + traffic_term + plume,
        )

    def no2_ugm3(self, timestamp: int, location: GeoPoint) -> float:
        traffic_term = 55.0 * self.traffic(timestamp) * self._road_proximity(location)
        background = 6.0
        value = (background + traffic_term) * self._stagnation(timestamp) * 1.4
        return max(0.5, value + self._no2_plume(timestamp))

    def pm10_ugm3(self, timestamp: int, location: GeoPoint) -> float:
        traffic_term = 28.0 * self.traffic(timestamp) * self._road_proximity(location)
        # Studded winter tyres resuspend road dust below ~4 C (a known
        # Trondheim effect).
        cold_dust = 8.0 if self.weather.temperature_c(timestamp) < 4.0 else 0.0
        value = (7.0 + traffic_term + cold_dust) * self._stagnation(timestamp) * 1.3
        return max(1.0, value + self._pm_plume(timestamp))

    def pm25_ugm3(self, timestamp: int, location: GeoPoint) -> float:
        hod = hour_of_day(timestamp)
        wood_burning = 0.0
        if self.weather.temperature_c(timestamp) < 5.0 and 17.0 <= hod <= 23.0:
            wood_burning = 9.0
        base = 0.45 * self.pm10_ugm3(timestamp, location)
        return max(0.5, base + wood_burning * self._stagnation(timestamp))


@dataclass
class PollutionInjection:
    """A synthetic pollution event (demo §3: "inject synthetic data
    showing different pollution levels" for e.g. construction sites)."""

    center: GeoPoint
    start: int
    end: int
    co2_ppm: float = 0.0
    no2_ugm3: float = 0.0
    pm10_ugm3: float = 0.0
    pm25_ugm3: float = 0.0
    radius_m: float = 300.0

    def factor(self, timestamp: int, location: GeoPoint) -> float:
        if not self.start <= timestamp <= self.end:
            return 0.0
        d = self.center.distance_to(location)
        return math.exp(-((d / self.radius_m) ** 2))


class UrbanEnvironment:
    """Facade bundling weather, traffic, and emission fields for one city.

    Also carries the injection list used by the interactive demo
    scenarios; injected plumes add on top of the natural fields.
    """

    def __init__(
        self,
        city: str,
        center: GeoPoint,
        seed: int,
        roads: list[RoadSegment] | None = None,
        mean_temp_c: float = 5.0,
    ) -> None:
        self.city = city
        self.center = center
        self.seed = seed
        self.weather = Weather(seed, center.lat, center.lon, mean_temp_c=mean_temp_c)
        self.traffic = TrafficIntensity(seed)
        self.field = EmissionField(seed, self.weather, self.traffic, roads)
        self.injections: list[PollutionInjection] = []

    def inject(self, injection: PollutionInjection) -> None:
        self.injections.append(injection)

    def clear_injections(self) -> None:
        self.injections.clear()

    def _injected(self, attr: str, timestamp: int, location: GeoPoint) -> float:
        return sum(
            getattr(inj, attr) * inj.factor(timestamp, location)
            for inj in self.injections
        )

    def co2_ppm(self, timestamp: int, location: GeoPoint) -> float:
        return self.field.co2_ppm(timestamp, location) + self._injected(
            "co2_ppm", timestamp, location
        )

    def no2_ugm3(self, timestamp: int, location: GeoPoint) -> float:
        return self.field.no2_ugm3(timestamp, location) + self._injected(
            "no2_ugm3", timestamp, location
        )

    def pm10_ugm3(self, timestamp: int, location: GeoPoint) -> float:
        return self.field.pm10_ugm3(timestamp, location) + self._injected(
            "pm10_ugm3", timestamp, location
        )

    def pm25_ugm3(self, timestamp: int, location: GeoPoint) -> float:
        return self.field.pm25_ugm3(timestamp, location) + self._injected(
            "pm25_ugm3", timestamp, location
        )

    def true_values(self, timestamp: int, location: GeoPoint) -> dict[str, float]:
        """All ground-truth quantities a sensor node samples."""
        w = self.weather.state(timestamp)
        return {
            "co2_ppm": self.co2_ppm(timestamp, location),
            "no2_ugm3": self.no2_ugm3(timestamp, location),
            "pm10_ugm3": self.pm10_ugm3(timestamp, location),
            "pm25_ugm3": self.pm25_ugm3(timestamp, location),
            "temperature_c": w.temperature_c,
            "pressure_hpa": w.pressure_hpa,
            "humidity_pct": w.humidity_pct,
        }
