"""The autonomous sensor node: sensing + power + faults + radio.

A :class:`SensorNode` is the paper's ~$2,000 solar-powered unit.  On each
wake-up it integrates solar charging since the previous wake, samples its
channels against the ground-truth environment, encodes the CTT payload,
and transmits over the shared LoRaWAN radio plane.  The sampling interval
adapts to battery level; an empty battery browns the node out until the
panel restores enough charge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from ..geo import GeoPoint
from ..lorawan import LoraDevice, Measurements, TransmitResult, encode_measurements
from ..simclock import Scheduler
from .channels import LOW_COST_SPECS, Channel, make_channels
from .environment import UrbanEnvironment
from .faults import FaultPlan, apply_channel_faults
from .power import Battery, PowerSpec
from .sampling import BatteryAdaptive


class SamplingPolicy(Protocol):
    """Anything that maps battery state to the next sampling interval."""

    def next_interval(self, battery: Battery) -> int: ...

    def describe(self) -> str: ...


#: Called after every transmission attempt: (node, result, now).
TransmitObserver = Callable[["SensorNode", TransmitResult, int], None]

#: SoC the panel must restore before a browned-out node reboots.
REBOOT_SOC = 0.12
#: How often a browned-out node's recovery is re-evaluated.
BROWNOUT_RECHECK_S = 1800


@dataclass
class NodeStats:
    """Lifetime counters for one node."""

    samples: int = 0
    transmissions: int = 0
    delivered: int = 0
    duty_blocked: int = 0
    dropouts_skipped: int = 0
    brownouts: int = 0


class SensorNode:
    """One deployed CTT sensor unit."""

    def __init__(
        self,
        node_id: str,
        location: GeoPoint,
        environment: UrbanEnvironment,
        device: LoraDevice,
        *,
        rng: np.random.Generator,
        power_spec: PowerSpec | None = None,
        policy: SamplingPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        channel_specs: dict | None = None,
        initial_soc: float = 0.9,
        start_time: int = 0,
    ) -> None:
        self.node_id = node_id
        self.location = location
        self.environment = environment
        self.device = device
        self.battery = Battery(power_spec or PowerSpec(), initial_soc=initial_soc)
        self.policy: SamplingPolicy = policy or BatteryAdaptive()
        self.fault_plan = fault_plan or FaultPlan()
        self.channels: dict[str, Channel] = make_channels(
            channel_specs or LOW_COST_SPECS, rng
        )
        self._rng = rng
        self._start_time = start_time
        self._last_wake = start_time
        self._last_readings: dict[str, float] = {}
        self._sequence = 0
        self._observers: list[TransmitObserver] = []
        self.stats = NodeStats()
        self.alive = True  # cleared only by PERMANENT_DEATH

    # ------------------------------------------------------------------
    def on_transmit(self, observer: TransmitObserver) -> None:
        """Register a callback fired after every transmission attempt."""
        self._observers.append(observer)

    def schedule(self, scheduler: Scheduler, phase_s: int | None = None) -> None:
        """Start the node's wake-up loop on the simulation scheduler.

        ``phase_s`` offsets the first wake-up.  When omitted, a random
        offset inside the first interval is drawn — deployed nodes boot
        at different moments, which is what keeps their (slow, SF-
        orthogonal-less) transmissions from colliding forever.
        """
        interval = self.policy.next_interval(self.battery)
        if phase_s is None:
            phase_s = int(self._rng.integers(0, max(1, interval)))
        scheduler.call_after(
            interval + phase_s, lambda now: self._wake(scheduler, now)
        )

    # ------------------------------------------------------------------
    def _integrate_power(self, now: int) -> None:
        """Charge/drain for the interval since the previous wake.

        Solar input is integrated with a three-point sample of the
        irradiance curve (start, mid, end), plenty for <=1 h intervals.
        """
        elapsed = max(0, now - self._last_wake)
        if elapsed > 0:
            weather = self.environment.weather
            points = (self._last_wake, self._last_wake + elapsed // 2, now)
            mean_irr = sum(weather.irradiance_wm2(int(t)) for t in points) / 3.0
            self.battery.charge_from_irradiance(mean_irr, elapsed)
            self.battery.discharge_sleep(elapsed)
        self._last_wake = now

    def _wake(self, scheduler: Scheduler, now: int) -> None:
        if not self.alive:
            return
        self._integrate_power(now)

        if self.fault_plan.is_dead(now):
            self.alive = False
            return

        if self.battery.is_empty or self.battery.soc < REBOOT_SOC * 0.5:
            # Brown-out: electronics off; wait for the panel.
            self.stats.brownouts += 1
            scheduler.call_after(
                BROWNOUT_RECHECK_S, lambda t: self._recover(scheduler, t)
            )
            return

        self.sample_and_transmit(now)
        interval = self.policy.next_interval(self.battery)
        scheduler.call_after(interval, lambda t: self._wake(scheduler, t))

    def _recover(self, scheduler: Scheduler, now: int) -> None:
        if not self.alive:
            return
        self._integrate_power(now)
        if self.battery.soc >= REBOOT_SOC:
            self.sample_and_transmit(now)
            interval = self.policy.next_interval(self.battery)
            scheduler.call_after(interval, lambda t: self._wake(scheduler, t))
        else:
            scheduler.call_after(
                BROWNOUT_RECHECK_S, lambda t: self._recover(scheduler, t)
            )

    # ------------------------------------------------------------------
    def read_channels(self, now: int) -> dict[str, float]:
        """Sample every channel, applying miscalibration and faults."""
        truth = self.environment.true_values(now, self.location)
        ambient = truth["temperature_c"]
        elapsed_days = (now - self._start_time) / 86400.0
        readings: dict[str, float] = {}
        for name, channel in self.channels.items():
            raw = channel.measure(truth[name], elapsed_days, ambient)
            events = self.fault_plan.channel_faults(now, name)
            if events:
                raw = apply_channel_faults(
                    raw, events, now, self._last_readings.get(name), self._rng
                )
            readings[name] = raw
        self._last_readings = readings
        return readings

    def sample_and_transmit(self, now: int) -> TransmitResult | None:
        """One full measurement + uplink cycle; None when skipped."""
        readings = self.read_channels(now)
        self.battery.discharge_sample()
        self.stats.samples += 1

        measurements = Measurements(
            co2_ppm=readings["co2_ppm"],
            no2_ugm3=readings["no2_ugm3"],
            pm10_ugm3=readings["pm10_ugm3"],
            pm25_ugm3=readings["pm25_ugm3"],
            temperature_c=readings["temperature_c"],
            pressure_hpa=readings["pressure_hpa"],
            humidity_pct=readings["humidity_pct"],
            battery_v=self.battery.voltage,
            sequence=self._sequence,
        )
        self._sequence += 1

        if self.fault_plan.is_dropped_out(now):
            # Radio-path fault: the sample happened but never leaves the node.
            self.stats.dropouts_skipped += 1
            return None

        payload = encode_measurements(measurements)
        result = self.device.send(payload, now)
        self.stats.transmissions += 1
        if result.blocked_by_duty_cycle:
            self.stats.duty_blocked += 1
        else:
            from ..lorawan.airtime import airtime_s

            self.battery.discharge_transmit(
                airtime_s(result.uplink.phy_size, result.uplink.sf)
            )
        if result.delivered:
            self.stats.delivered += 1
        for observer in self._observers:
            observer(self, result, now)
        return result
