"""Fault injection for sensor nodes.

Paper §2.3 enumerates exactly these failure classes: "transient and
permanent failures", "decaying sensors, erroneous behavior of sensor
nodes, or missing data patterns".  Faults are injected per node with a
seeded RNG so failure scenarios replay deterministically in tests and
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np


class FaultKind(Enum):
    """The failure taxonomy the dataport must distinguish."""

    TRANSIENT_DROPOUT = "transient_dropout"  # misses a few cycles, recovers
    PERMANENT_DEATH = "permanent_death"  # node never reports again
    STUCK_VALUE = "stuck_value"  # channel repeats its last reading
    DECAY = "decay"  # channel drifts increasingly out of spec
    SPIKE = "spike"  # isolated absurd readings


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault on one node."""

    kind: FaultKind
    start: int
    duration: int = 0  # 0 = open-ended (permanent)
    channel: str | None = None  # None = whole node
    magnitude: float = 1.0  # kind-specific scale

    @property
    def end(self) -> int | None:
        return None if self.duration == 0 else self.start + self.duration

    def active_at(self, timestamp: int) -> bool:
        if timestamp < self.start:
            return False
        return self.end is None or timestamp < self.end


class FaultPlan:
    """The set of faults scheduled for one node, queried at sample time."""

    def __init__(self, events: list[FaultEvent] | None = None) -> None:
        self.events: list[FaultEvent] = sorted(
            events or [], key=lambda e: e.start
        )

    def add(self, event: FaultEvent) -> None:
        self.events.append(event)
        self.events.sort(key=lambda e: e.start)

    def active(self, timestamp: int) -> list[FaultEvent]:
        return [e for e in self.events if e.active_at(timestamp)]

    def is_dead(self, timestamp: int) -> bool:
        return any(
            e.kind is FaultKind.PERMANENT_DEATH and e.active_at(timestamp)
            for e in self.events
        )

    def is_dropped_out(self, timestamp: int) -> bool:
        return any(
            e.kind is FaultKind.TRANSIENT_DROPOUT and e.active_at(timestamp)
            for e in self.events
        )

    def channel_faults(self, timestamp: int, channel: str) -> list[FaultEvent]:
        return [
            e
            for e in self.active(timestamp)
            if e.kind in (FaultKind.STUCK_VALUE, FaultKind.DECAY, FaultKind.SPIKE)
            and (e.channel is None or e.channel == channel)
        ]


def random_fault_plan(
    rng: np.random.Generator,
    horizon_start: int,
    horizon_end: int,
    *,
    dropout_rate_per_day: float = 0.3,
    death_probability: float = 0.02,
    decay_probability: float = 0.1,
    channels: tuple[str, ...] = ("co2_ppm", "no2_ugm3", "pm10_ugm3", "pm25_ugm3"),
) -> FaultPlan:
    """Sample a realistic fault plan for one node over a horizon.

    Dropouts arrive as a Poisson process (LoRa interference, power
    brown-outs); a small fraction of nodes die permanently; decay faults
    model aging electrochemical cells.
    """
    if horizon_end < horizon_start:
        raise ValueError("horizon_end precedes horizon_start")
    plan = FaultPlan()
    span_days = (horizon_end - horizon_start) / 86400.0

    n_dropouts = rng.poisson(dropout_rate_per_day * span_days)
    for _ in range(int(n_dropouts)):
        start = int(rng.integers(horizon_start, max(horizon_start + 1, horizon_end)))
        duration = int(rng.exponential(45 * 60))  # mean 45 min
        plan.add(
            FaultEvent(FaultKind.TRANSIENT_DROPOUT, start, max(300, duration))
        )

    if rng.random() < death_probability * span_days / 7.0:
        start = int(rng.integers(horizon_start, max(horizon_start + 1, horizon_end)))
        plan.add(FaultEvent(FaultKind.PERMANENT_DEATH, start))

    if rng.random() < decay_probability:
        channel = str(rng.choice(list(channels)))
        start = int(rng.integers(horizon_start, max(horizon_start + 1, horizon_end)))
        plan.add(
            FaultEvent(
                FaultKind.DECAY,
                start,
                channel=channel,
                magnitude=float(rng.uniform(0.5, 3.0)),
            )
        )
    return plan


def apply_channel_faults(
    reading: float,
    events: list[FaultEvent],
    timestamp: int,
    last_reading: float | None,
    rng: np.random.Generator,
) -> float:
    """Transform a reading through the active channel faults."""
    for event in events:
        if event.kind is FaultKind.STUCK_VALUE and last_reading is not None:
            return last_reading
        if event.kind is FaultKind.DECAY:
            elapsed_days = max(0.0, (timestamp - event.start) / 86400.0)
            reading += event.magnitude * elapsed_days**1.5
        if event.kind is FaultKind.SPIKE and rng.random() < 0.08:
            reading *= 1.0 + event.magnitude * float(rng.uniform(2.0, 8.0))
    return reading
