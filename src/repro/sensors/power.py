"""Battery and solar charging model for autonomous sensor nodes.

Paper Fig. 4: "Battery levels depend on the charging of the autonomous
sensor units through their solar panels.  Charg[ing] occurs during
daytime, and is affected by weather conditions."  The model is a Li-ion
cell + small PV panel: energy book-keeping in coulombs, with the battery
*voltage* (what the node actually telemeters) derived from the state of
charge through a standard Li-ion discharge curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Li-ion open-circuit voltage curve: state-of-charge -> volts.
_SOC_KNOTS = np.array([0.0, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 1.00])
_V_KNOTS = np.array([3.00, 3.30, 3.45, 3.60, 3.70, 3.85, 4.00, 4.20])


def soc_to_voltage(soc: float) -> float:
    """Open-circuit voltage for a state of charge in [0, 1]."""
    soc = min(1.0, max(0.0, soc))
    return float(np.interp(soc, _SOC_KNOTS, _V_KNOTS))


def voltage_to_soc(volts: float) -> float:
    """Inverse of :func:`soc_to_voltage` (monotone, so well-defined)."""
    volts = min(_V_KNOTS[-1], max(_V_KNOTS[0], volts))
    return float(np.interp(volts, _V_KNOTS, _SOC_KNOTS))


@dataclass(frozen=True)
class PowerSpec:
    """Electrical parameters of a node.

    Defaults approximate the CTT prototype: a 2000 mAh cell, a 1 W
    panel, tens of µA sleep current, and a power-hungry NDIR CO2 sensor
    dominating the per-sample cost.
    """

    battery_capacity_mah: float = 2000.0
    panel_watts: float = 1.0
    panel_efficiency: float = 0.75  # wiring/charge-controller losses
    sleep_current_ma: float = 0.08
    sample_cost_mas: float = 900.0  # mA·s per measurement cycle
    tx_current_ma: float = 120.0  # radio transmit current
    system_voltage: float = 3.7
    low_battery_soc: float = 0.25
    critical_soc: float = 0.08

    @property
    def capacity_mas(self) -> float:
        """Capacity in mA·s (milliamp-seconds)."""
        return self.battery_capacity_mah * 3600.0


class Battery:
    """Charge book-keeping for one node.

    All flows are in mA·s at the system voltage.  ``charge`` adds solar
    input from irradiance; ``discharge_*`` subtract load.  The class is
    deliberately passive — the node decides when to sample/transmit.
    """

    def __init__(self, spec: PowerSpec, initial_soc: float = 0.9) -> None:
        if not 0.0 <= initial_soc <= 1.0:
            raise ValueError(f"initial_soc must be in [0, 1]: {initial_soc}")
        self.spec = spec
        self._charge_mas = initial_soc * spec.capacity_mas

    @property
    def soc(self) -> float:
        return self._charge_mas / self.spec.capacity_mas

    @property
    def voltage(self) -> float:
        return soc_to_voltage(self.soc)

    @property
    def is_low(self) -> bool:
        return self.soc <= self.spec.low_battery_soc

    @property
    def is_critical(self) -> bool:
        return self.soc <= self.spec.critical_soc

    @property
    def is_empty(self) -> bool:
        return self._charge_mas <= 0.0

    def _clamp(self) -> None:
        self._charge_mas = min(self.spec.capacity_mas, max(0.0, self._charge_mas))

    def charge_from_irradiance(self, irradiance_wm2: float, seconds: float) -> float:
        """Add solar energy for an interval; returns mA·s gained.

        The panel produces ``panel_watts`` at 1000 W/m² reference
        irradiance, scaled linearly, then derated by the controller
        efficiency and converted to current at the system voltage.
        """
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        watts = self.spec.panel_watts * max(0.0, irradiance_wm2) / 1000.0
        ma = watts * self.spec.panel_efficiency / self.spec.system_voltage * 1000.0
        gained = ma * seconds
        before = self._charge_mas
        self._charge_mas += gained
        self._clamp()
        return self._charge_mas - before

    def discharge_sleep(self, seconds: float) -> None:
        """Baseline sleep-current drain for an interval."""
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        self._charge_mas -= self.spec.sleep_current_ma * seconds
        self._clamp()

    def discharge_sample(self) -> None:
        """One full measurement cycle (sensor warm-up dominates)."""
        self._charge_mas -= self.spec.sample_cost_mas
        self._clamp()

    def discharge_transmit(self, airtime_s: float) -> None:
        """One radio transmission of the given airtime."""
        if airtime_s < 0:
            raise ValueError("airtime_s must be >= 0")
        self._charge_mas -= self.spec.tx_current_ma * airtime_s
        self._clamp()

    def idle_days_remaining(self) -> float:
        """Days until empty at pure sleep current (no sampling, no sun)."""
        per_day = self.spec.sleep_current_ma * 86400.0
        return self._charge_mas / per_day if per_day > 0 else float("inf")
