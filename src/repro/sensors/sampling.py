"""Adaptive sampling policies.

Paper §2.3: "sensors nodes can adapt their frequency based on battery
levels", which is why the dataport needs "a complex model of the sensor
node and its status" to decide whether data is *missing* or merely
*slowed down*.  Policies map battery state to the next sampling interval.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simclock import MINUTE
from .power import Battery

#: The paper's nominal cadence: "sensor data is collected at a
#: five-minute interval".
DEFAULT_INTERVAL_S = 5 * MINUTE


@dataclass(frozen=True)
class FixedInterval:
    """Always sample at the same cadence (the non-adaptive baseline)."""

    interval_s: int = DEFAULT_INTERVAL_S

    def next_interval(self, battery: Battery) -> int:
        return self.interval_s

    def describe(self) -> str:
        return f"fixed({self.interval_s}s)"


@dataclass(frozen=True)
class BatteryAdaptive:
    """Stretch the sampling interval as the battery depletes.

    - normal SoC: ``base_interval_s``;
    - below ``low_battery_soc``: interval × ``low_factor``;
    - below ``critical_soc``: interval × ``critical_factor``
      (survival mode — keep the digital twin alive with rare check-ins).
    """

    base_interval_s: int = DEFAULT_INTERVAL_S
    low_factor: int = 3
    critical_factor: int = 12

    def next_interval(self, battery: Battery) -> int:
        if battery.is_critical:
            return self.base_interval_s * self.critical_factor
        if battery.is_low:
            return self.base_interval_s * self.low_factor
        return self.base_interval_s

    def describe(self) -> str:
        return (
            f"adaptive(base={self.base_interval_s}s, "
            f"low x{self.low_factor}, critical x{self.critical_factor})"
        )
