"""Discrete-event scheduler driving the simulation.

A single priority queue orders callbacks by simulated timestamp.  Sensor
nodes schedule their next sample, digital twins schedule timeout checks,
the watchdog schedules pings — all against one scheduler, so a whole
multi-day deployment replays deterministically.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from .clock import SimClock

EventCallback = Callable[[int], None]


@dataclass(order=True)
class _Entry:
    when: int
    seq: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`Scheduler.call_at`; supports cancellation."""

    __slots__ = ("_entry",)

    def __init__(self, entry: _Entry) -> None:
        self._entry = entry

    def cancel(self) -> None:
        self._entry.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled

    @property
    def when(self) -> int:
        return self._entry.when


class Scheduler:
    """Priority-queue event scheduler bound to a :class:`SimClock`.

    Events scheduled for the same timestamp run in scheduling order
    (FIFO), which keeps runs deterministic.
    """

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._queue: list[_Entry] = []
        self._seq = itertools.count()

    def call_at(self, when: int, callback: EventCallback) -> EventHandle:
        """Run ``callback(now)`` at simulated time ``when``.

        Events in the past are clamped to "now" and run on the next step.
        """
        when = max(int(when), self.clock.now())
        entry = _Entry(when=when, seq=next(self._seq), callback=callback)
        heapq.heappush(self._queue, entry)
        return EventHandle(entry)

    def call_after(self, delay: int, callback: EventCallback) -> EventHandle:
        return self.call_at(self.clock.now() + max(0, int(delay)), callback)

    def call_every(
        self, interval: int, callback: EventCallback, *, start_after: int | None = None
    ) -> EventHandle:
        """Run ``callback`` every ``interval`` seconds until cancelled.

        The returned handle cancels the *entire* recurring series.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        first = self.clock.now() + (interval if start_after is None else start_after)
        series = _Entry(when=first, seq=next(self._seq), callback=callback)

        def tick(now: int) -> None:
            if series.cancelled:
                return
            callback(now)
            if not series.cancelled:
                nxt = self.call_at(now + interval, tick)
                series.when = nxt.when  # keep the handle's `when` informative

        heapq.heappush(
            self._queue, _Entry(when=first, seq=series.seq, callback=tick)
        )
        # The pushed entry and `series` share cancellation through closure:
        # `tick` checks `series.cancelled` before acting.
        return EventHandle(series)

    def pending(self) -> int:
        """Number of queued, non-cancelled events."""
        return sum(1 for e in self._queue if not e.cancelled)

    def peek(self) -> int | None:
        """Timestamp of the next runnable event, or None when empty."""
        self._drop_cancelled()
        return self._queue[0].when if self._queue else None

    def step(self) -> bool:
        """Run the next event, advancing the clock to it.

        Returns False when the queue is empty.
        """
        self._drop_cancelled()
        if not self._queue:
            return False
        entry = heapq.heappop(self._queue)
        # Events can be past-due when the clock was advanced directly
        # (e.g. jumping over a backfilled history window); they run late
        # at the current time rather than dragging the clock backwards.
        if entry.when > self.clock.now():
            self.clock.advance_to(entry.when)
        entry.callback(self.clock.now())
        return True

    def run_until(self, deadline: int) -> int:
        """Run all events with ``when <= deadline``; returns events run.

        The clock finishes exactly at ``deadline`` even if the last event
        fired earlier, so follow-up code sees a consistent "now".
        """
        ran = 0
        while True:
            self._drop_cancelled()
            if not self._queue or self._queue[0].when > deadline:
                break
            self.step()
            ran += 1
        if self.clock.now() < deadline:
            self.clock.advance_to(deadline)
        return ran

    def run_for(self, seconds: int) -> int:
        return self.run_until(self.clock.now() + int(seconds))

    def _drop_cancelled(self) -> None:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
