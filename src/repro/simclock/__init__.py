"""Deterministic simulation time: clock, event scheduler, solar model."""

from .clock import (
    CTT_EPOCH,
    DAY,
    HOUR,
    MINUTE,
    SECOND,
    ClockError,
    SimClock,
    day_of_week,
    day_of_year,
    floor_to,
    from_datetime,
    hour_of_day,
    is_weekend,
    to_datetime,
)
from .scheduler import EventHandle, Scheduler
from .sun import (
    daylight_fraction,
    is_daylight,
    solar_declination_deg,
    solar_elevation_deg,
    solar_irradiance_wm2,
    sunrise_sunset,
)

__all__ = [
    "CTT_EPOCH",
    "ClockError",
    "DAY",
    "EventHandle",
    "HOUR",
    "MINUTE",
    "SECOND",
    "Scheduler",
    "SimClock",
    "day_of_week",
    "day_of_year",
    "daylight_fraction",
    "floor_to",
    "from_datetime",
    "hour_of_day",
    "is_daylight",
    "is_weekend",
    "solar_declination_deg",
    "solar_elevation_deg",
    "solar_irradiance_wm2",
    "sunrise_sunset",
    "to_datetime",
]
