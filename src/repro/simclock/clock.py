"""Deterministic simulation clock.

Everything in the reproduction runs on simulated time: sensor sampling,
LoRaWAN airtime, digital-twin timeouts, TSDB timestamps.  The clock is an
integer epoch-seconds counter that only moves when the simulation advances
it, which makes every run reproducible and lets tests fast-forward days of
deployment in milliseconds.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field

#: Paper: "historic data saved in our time-series database, collected
#: since January 2017" — the default simulation epoch.
CTT_EPOCH = int(_dt.datetime(2017, 1, 1, tzinfo=_dt.timezone.utc).timestamp())

SECOND = 1
MINUTE = 60
HOUR = 3600
DAY = 86400


class ClockError(RuntimeError):
    """Raised on attempts to move simulated time backwards."""


@dataclass
class SimClock:
    """A monotonically advancing simulated wall clock.

    Parameters
    ----------
    start:
        Initial epoch seconds (defaults to 2017-01-01T00:00Z, the start of
        the CTT historic archive).
    """

    start: int = CTT_EPOCH
    _now: int = field(init=False)

    def __post_init__(self) -> None:
        self._now = int(self.start)

    def now(self) -> int:
        """Current simulated time as epoch seconds."""
        return self._now

    def advance(self, seconds: int) -> int:
        """Move time forward by ``seconds`` (must be >= 0)."""
        if seconds < 0:
            raise ClockError(f"cannot advance by negative time: {seconds}")
        self._now += int(seconds)
        return self._now

    def advance_to(self, timestamp: int) -> int:
        """Jump to an absolute time at or after the current time."""
        if timestamp < self._now:
            raise ClockError(
                f"cannot move backwards: now={self._now}, target={timestamp}"
            )
        self._now = int(timestamp)
        return self._now

    def elapsed(self) -> int:
        """Seconds elapsed since the clock's start."""
        return self._now - int(self.start)

    def datetime(self) -> _dt.datetime:
        """Current time as an aware UTC ``datetime``."""
        return _dt.datetime.fromtimestamp(self._now, tz=_dt.timezone.utc)

    def isoformat(self) -> str:
        return self.datetime().isoformat().replace("+00:00", "Z")


def to_datetime(timestamp: int) -> _dt.datetime:
    """Epoch seconds → aware UTC datetime."""
    return _dt.datetime.fromtimestamp(timestamp, tz=_dt.timezone.utc)


def from_datetime(when: _dt.datetime) -> int:
    """Aware datetime → epoch seconds (naive datetimes are treated as UTC)."""
    if when.tzinfo is None:
        when = when.replace(tzinfo=_dt.timezone.utc)
    return int(when.timestamp())


def hour_of_day(timestamp: int) -> float:
    """Fractional UTC hour of day in [0, 24)."""
    return (timestamp % DAY) / HOUR


def day_of_year(timestamp: int) -> int:
    """1-based day of year."""
    return to_datetime(timestamp).timetuple().tm_yday


def day_of_week(timestamp: int) -> int:
    """ISO weekday minus one: Monday = 0 ... Sunday = 6."""
    return to_datetime(timestamp).weekday()


def is_weekend(timestamp: int) -> bool:
    return day_of_week(timestamp) >= 5


def floor_to(timestamp: int, interval: int) -> int:
    """Largest multiple of ``interval`` not exceeding ``timestamp``."""
    if interval <= 0:
        raise ValueError("interval must be positive")
    return timestamp - (timestamp % interval)
