"""Approximate solar position and daylight model.

Fig. 4 of the paper analyses battery charging: solar panels charge
"during daytime, and [charging] is affected by weather conditions", and
the right-hand panel flags whether a node "could have been charged by
sunlight since the previous package".  Reproducing that needs sunrise /
sunset and solar elevation as functions of date and latitude — at
Trondheim's 63.4 N the day length swings from ~4.5 h in December to ~20.5 h
in June, which dominates the battery dynamics.

We use the standard low-precision solar declination / hour-angle
formulas (accurate to a fraction of a degree — ample for energy
modelling).
"""

from __future__ import annotations

import math

from .clock import DAY, HOUR, day_of_year, hour_of_day


def solar_declination_deg(timestamp: int) -> float:
    """Solar declination in degrees for the given instant."""
    n = day_of_year(timestamp)
    # Cooper's equation; +10 shifts so the minimum falls near Dec 21.
    return -23.44 * math.cos(math.radians(360.0 / 365.0 * (n + 10)))


def solar_elevation_deg(timestamp: int, lat: float, lon: float) -> float:
    """Solar elevation above the horizon, degrees (negative at night).

    Uses local solar time derived from longitude (1 h per 15 deg); the
    equation of time (< ~17 min) is ignored, which is well inside the
    cloud-cover uncertainty of the energy model.
    """
    decl = math.radians(solar_declination_deg(timestamp))
    solar_hour = (hour_of_day(timestamp) + lon / 15.0) % 24.0
    hour_angle = math.radians(15.0 * (solar_hour - 12.0))
    phi = math.radians(lat)
    sin_elev = math.sin(phi) * math.sin(decl) + math.cos(phi) * math.cos(
        decl
    ) * math.cos(hour_angle)
    return math.degrees(math.asin(max(-1.0, min(1.0, sin_elev))))


def is_daylight(timestamp: int, lat: float, lon: float) -> bool:
    """True when the sun is above the horizon at the location."""
    return solar_elevation_deg(timestamp, lat, lon) > 0.0


def daylight_fraction(timestamp: int, lat: float) -> float:
    """Fraction of this 24 h day with the sun above the horizon.

    Handles polar day/night by clamping the hour-angle cosine.
    """
    decl = math.radians(solar_declination_deg(timestamp))
    phi = math.radians(lat)
    cos_h0 = -math.tan(phi) * math.tan(decl)
    if cos_h0 <= -1.0:
        return 1.0  # midnight sun
    if cos_h0 >= 1.0:
        return 0.0  # polar night
    h0 = math.acos(cos_h0)  # sunrise hour angle, radians
    return h0 / math.pi


def sunrise_sunset(timestamp: int, lat: float, lon: float) -> tuple[int, int] | None:
    """(sunrise, sunset) epoch seconds for the UTC day containing ``timestamp``.

    Returns ``None`` during polar night; during midnight sun the whole day
    is returned.  Times are approximate (no equation of time).
    """
    frac = daylight_fraction(timestamp, lat)
    day_start = timestamp - (timestamp % DAY)
    if frac <= 0.0:
        return None
    if frac >= 1.0:
        return (day_start, day_start + DAY)
    # Local solar noon in UTC seconds-of-day.
    noon = (12.0 - lon / 15.0) % 24.0 * HOUR
    half = frac * 12.0 * HOUR
    rise = int(day_start + noon - half)
    set_ = int(day_start + noon + half)
    return (rise, set_)


def solar_irradiance_wm2(
    timestamp: int, lat: float, lon: float, cloud_cover: float = 0.0
) -> float:
    """Global horizontal irradiance estimate in W/m2.

    A clear-sky model attenuated by cloud cover in [0, 1]:
    ``GHI ≈ 1120 * sin(elev)^1.15 * (1 - 0.75 * cloud^3.4)``
    (Kasten & Czeplak cloud attenuation).  Returns 0 at night.
    """
    if not 0.0 <= cloud_cover <= 1.0:
        raise ValueError(f"cloud_cover must be in [0, 1]: {cloud_cover}")
    elev = solar_elevation_deg(timestamp, lat, lon)
    if elev <= 0.0:
        return 0.0
    clear = 1120.0 * math.sin(math.radians(elev)) ** 1.15
    return clear * (1.0 - 0.75 * cloud_cover**3.4)
