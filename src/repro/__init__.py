"""repro: reproduction of "Analysis and Visualization of Urban Emission
Measurements in Smart Cities" (Ahlers et al., EDBT 2018).

The Carbon Track & Trace (CTT) smart-city air-quality ecosystem, built
from scratch: low-cost sensor simulation, LoRaWAN backbone, MQTT bus,
an OpenTSDB-style time-series database, the actor-based "dataport"
monitoring system with digital twins, external data integration
(Table 1), analytics (calibration, battery, CO2 dynamics), and
visualization (network map, dashboards, CityGML, wall display).

Quick start::

    from repro.core import CttEcosystem, trondheim_deployment
    eco = CttEcosystem([trondheim_deployment()])
    eco.start()
    eco.run(6 * 3600)  # six simulated hours
    print(eco.city("trondheim").delivery_stats())
"""

__version__ = "1.0.0"

from . import (  # noqa: F401
    analytics,
    core,
    dataport,
    geo,
    integration,
    lorawan,
    mqtt,
    region,
    sensors,
    simclock,
    streams,
    tsdb,
    viz,
)

__all__ = [
    "analytics",
    "core",
    "dataport",
    "geo",
    "integration",
    "lorawan",
    "mqtt",
    "region",
    "sensors",
    "simclock",
    "streams",
    "tsdb",
    "viz",
    "__version__",
]
