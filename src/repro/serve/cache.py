"""Bounded-LRU query result cache validated by write generations.

The serving layer's hot path: dashboards re-issue the same panel
queries every few seconds, and most refreshes happen between writes to
the series they touch.  :class:`CachingStore` wraps any
:class:`~repro.tsdb.interface.TimeSeriesStore` and intercepts the
batched execution hook, so ``run_many`` (and therefore the wire layer's
``handle_request``) sees cache hits per *unique* query while expression
recomposition, dedup, and result ordering stay in the shared planner.

Correctness comes from generation validators, not timers:

- an entry remembers the **metric generation** (series created/removed
  under the metric) and every matched series' **write generation** at
  capture time;
- any ``put``/``put_batch``/``delete_*`` touching a cached series bumps
  its generation, so the next lookup sees the mismatch, drops the
  entry, and re-executes — exact per-series invalidation without a
  reverse index;
- validators are captured *before* execution and re-checked *after*;
  if a concurrent write lands mid-run the result is returned but never
  cached (a stale result can never be stamped fresh).

Hits return the very result object the underlying store produced, so
cached responses are byte-identical to uncached ``run_many`` output.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import Sequence

from ..tsdb.interface import StoreApi
from ..tsdb.plan import _canonical_key
from ..tsdb.query import Query, QueryResult
from ..tsdb.wire import CatalogRequest


@dataclass
class CacheStats:
    """Cumulative cache accounting."""

    hits: int = 0
    misses: int = 0
    invalidated: int = 0  # entries dropped on a validator mismatch
    evicted: int = 0  # entries dropped by LRU capacity pressure
    skipped: int = 0  # results not cached (write raced the execution)

    def as_dict(self) -> dict:
        return asdict(self)


#: (metric generation, ((series key, series generation), ...)) — the
#: state of the world a cached result was computed against.
_Validators = tuple


class ResultCache:
    """LRU of :class:`QueryResult` keyed by the planner's canonical
    query key, validated against store write generations on every hit.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple, tuple[QueryResult, _Validators]] = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._entries)

    def capture(self, store, q: Query) -> _Validators:
        """Snapshot the validators a result for ``q`` would depend on.

        Taken *before* executing the query: the matched series set and
        each member's generation.  New series that would change the
        match set bump the metric generation, so the pair
        (metric generation, per-series generations) is exactly "nothing
        this query can observe has changed".
        """
        matched = store._match(q.metric, q.tags)
        return (
            store.metric_generation(q.metric),
            tuple((key, store.series_generation(key)) for key in matched),
        )

    def _holds(self, store, q: Query, validators: _Validators) -> bool:
        metric_gen, series_gens = validators
        if store.metric_generation(q.metric) != metric_gen:
            return False
        return all(
            store.series_generation(key) == gen for key, gen in series_gens
        )

    def lookup(self, store, q: Query) -> QueryResult | None:
        """A still-valid cached result for ``q``, or None.

        Invalid entries (a touched series was written or deleted, or
        the metric's series set changed) are dropped on sight.
        """
        key = _canonical_key(q)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        result, validators = entry
        if not self._holds(store, q, validators):
            del self._entries[key]
            self.stats.invalidated += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return result

    def insert(
        self, store, q: Query, validators: _Validators, result: QueryResult
    ) -> bool:
        """Cache a freshly computed result, unless a write raced it.

        ``validators`` must come from :meth:`capture` taken before the
        execution; if they no longer hold the result may already be
        stale and is *not* cached (returns False).
        """
        if not self._holds(store, q, validators):
            self.stats.skipped += 1
            return False
        key = _canonical_key(q)
        self._entries[key] = (result, validators)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evicted += 1
        return True

    def clear(self) -> None:
        self._entries.clear()


class CatalogCache:
    """LRU of catalog responses validated by catalog generations.

    Catalog answers are tiny but hot — dashboards hammer the suggest
    surface while the user types — so the same generation discipline as
    :class:`ResultCache` applies: whole-catalog answers (``metrics``)
    validate against the store's global catalog generation, and
    metric-scoped answers validate against that metric's generation,
    which moves exactly when series appear under or vanish from the
    metric.  Capture-before / check-after keeps racing writes from
    stamping a stale answer fresh.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple, tuple[dict, _Validators]] = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._entries)

    def capture(self, store, req: CatalogRequest) -> _Validators:
        if req.op == "metrics":
            return ("catalog", store.catalog_generation())
        return ("metric", req.metric, store.metric_generation(req.metric))

    def _holds(self, store, validators: _Validators) -> bool:
        if validators[0] == "catalog":
            return store.catalog_generation() == validators[1]
        _, metric, gen = validators
        return store.metric_generation(metric) == gen

    def lookup(self, store, req: CatalogRequest) -> dict | None:
        key = req.cache_key()
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        response, validators = entry
        if not self._holds(store, validators):
            del self._entries[key]
            self.stats.invalidated += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return response

    def insert(
        self, store, req: CatalogRequest, validators: _Validators,
        response: dict,
    ) -> bool:
        if not self._holds(store, validators):
            self.stats.skipped += 1
            return False
        key = req.cache_key()
        self._entries[key] = (response, validators)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evicted += 1
        return True

    def clear(self) -> None:
        self._entries.clear()


class CachingStore(StoreApi):
    """A store wrapper serving ``run_many`` through a :class:`ResultCache`.

    Implements the planner's ``_run_unique_batch`` hook: per unique
    query the cache answers or the miss set executes as one batch on
    the wrapped store (keeping shared matching/scans/pushdown for the
    misses).  Everything else — writes, introspection, maintenance,
    generation tracking — delegates to the wrapped store, so a
    ``CachingStore`` is a drop-in :class:`TimeSeriesStore` and writes
    through it invalidate exactly the entries they touch.
    """

    def __init__(self, store, *, capacity: int = 128) -> None:
        self._store = store
        self.cache = ResultCache(capacity)

    @property
    def wrapped(self):
        """The underlying store."""
        return self._store

    def __getattr__(self, name: str):
        # Only reached for names not defined here/on StoreApi: writes,
        # introspection, generations, maintenance, persistence hooks.
        return getattr(self._store, name)

    def run(self, query: Query) -> QueryResult:
        return self.run_many([query])[0]

    def _run_unique_batch(
        self, queries: Sequence[Query], parallel: bool | None = None
    ) -> list[QueryResult]:
        results: list[QueryResult | None] = [None] * len(queries)
        miss: list[int] = []
        for i, q in enumerate(queries):
            hit = self.cache.lookup(self._store, q)
            if hit is not None:
                results[i] = hit
            else:
                miss.append(i)
        if miss:
            miss_qs = [queries[i] for i in miss]
            validators = [
                self.cache.capture(self._store, q) for q in miss_qs
            ]
            out = self._store._run_unique_batch(miss_qs, parallel=parallel)
            for i, q, v, res in zip(miss, miss_qs, validators, out):
                results[i] = res
                self.cache.insert(self._store, q, v, res)
        return results  # type: ignore[return-value]
