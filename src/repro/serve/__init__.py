"""The serving layer: one live store behind a networked query service.

ROADMAP item 1: dashboards for many users hit one store over a
versioned wire protocol.  The pieces compose bottom-up and each is
usable on its own:

- :mod:`~repro.serve.cache` — :class:`CachingStore`, a bounded-LRU
  result cache keyed by the planner's canonical query key and
  validated by per-series write generations (exact invalidation, no
  timers), plus :class:`CatalogCache`, the same discipline applied to
  series-metadata answers;
- :mod:`~repro.serve.refresh` — :class:`IncrementalRefresher`,
  steady-state dashboard refresh that rescans only past the splice
  boundary append-only writes cannot have changed;
- :mod:`~repro.serve.server` — :class:`QueryServer`, the asyncio TCP
  endpoint (newline-delimited JSON) with per-tenant admission control
  reusing the region layer's backpressure policies;
- :mod:`~repro.serve.client` — :class:`QueryClient`, the synchronous
  SDK (connection reuse, timeout, retry with backoff, batched calls).
"""

from .cache import CacheStats, CachingStore, CatalogCache, ResultCache
from .client import QueryClient
from .refresh import IncrementalRefresher, RefreshStats
from .server import QueryServer, TenantPolicy, serve

__all__ = [
    "CacheStats",
    "CachingStore",
    "CatalogCache",
    "IncrementalRefresher",
    "QueryClient",
    "QueryServer",
    "RefreshStats",
    "ResultCache",
    "TenantPolicy",
    "serve",
]
