"""Incremental dashboard refresh: re-scan only what can have changed.

A dashboard panel is the same query re-run with a sliding window.  A
steady-state store is append-only — points arrive with timestamps past
each series' maximum — so everything the previous refresh computed
below a *splice boundary* is final and only the tail needs rescanning.

The boundary is exact, not heuristic:

- :attr:`~repro.tsdb.series.SeriesStore.reshape_generation` holds still
  while a series only grows past its maximum timestamp; the metric
  generation holds still while the query's match set is stable.  While
  both hold, history below ``B = min(last timestamp over matched
  series)`` cannot change: any new append lands strictly after its own
  series' last point, hence strictly after ``B``.
- downsample buckets are epoch-aligned and (for the ``none``/``zero``
  fill policies) computed from their own bucket's points only, so
  buckets strictly below ``floor((B+1)/w)*w`` are final and the delta
  query re-runs from that bucket boundary.

The spliced series are byte-identical to a full re-run: the delta is
the *same* query over ``[splice, end]`` through the same planner, and
the kept prefix is the previous run's output for instants the store
guarantees unchanged.  ``rate`` queries and the ``previous``/``linear``
fills couple values across the boundary and always take the full path,
as does any validator mismatch (out-of-order write, retention delete,
series churn, window moving backwards).

``scanned_points`` on an incremental result counts only the points the
*delta* actually scanned — that asymmetry is the speedup being
measured; the series content is what is guaranteed identical.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from ..tsdb.downsample import FillPolicy
from ..tsdb.query import Query, QueryResult, ResultSeries
from ..tsdb.series import SeriesSlice


@dataclass
class RefreshStats:
    """Cumulative refresher accounting."""

    full_runs: int = 0
    incremental_runs: int = 0
    cache_only_runs: int = 0  # window advanced, but nothing to rescan
    invalidated: int = 0  # panel state dropped on a validator mismatch

    def as_dict(self) -> dict:
        return asdict(self)


@dataclass
class _PanelState:
    """What the last refresh of one panel knew."""

    start: int
    end: int
    boundary: int  # min last-timestamp over sources, before the run
    metric_gen: int
    reshape_gens: tuple  # ((series key, reshape generation), ...)
    result: QueryResult


def _panel_key(q: Query) -> tuple:
    """Panel identity: the query minus its time window."""
    ds = q.parsed_downsample()
    return (
        q.metric,
        tuple(sorted(q.tags.items())),
        q.aggregator,
        None if ds is None else (ds.width, ds.agg, ds.fill.value),
        bool(q.rate),
        tuple(sorted(q.group_by)),
    )


def _splice(
    cached: SeriesSlice, delta: SeriesSlice, lo: int | None, cut: int
) -> SeriesSlice:
    """Cached instants in ``[lo, cut)`` followed by the delta's.

    ``lo=None`` keeps the cached prefix untrimmed (the window start did
    not move, so the cached head is already exactly the query's head —
    trimming at an unaligned start would drop a leading bucket whose
    epoch-aligned timestamp sits before it).
    """
    ts = cached.timestamps
    a = 0 if lo is None else int(np.searchsorted(ts, lo, side="left"))
    b = int(np.searchsorted(ts, cut, side="left"))
    return SeriesSlice(
        np.concatenate([ts[a:b], delta.timestamps]),
        np.concatenate([cached.values[a:b], delta.values]),
    )


class IncrementalRefresher:
    """Per-panel incremental execution over one store.

    ``run(query)`` always returns the same series a fresh
    ``store.run(query)`` would; it is a refresher, not a snapshot — the
    incremental path merely avoids rescanning finalized history.  One
    instance serves many panels (state is keyed per panel shape).
    """

    def __init__(self, store, *, max_panels: int = 256) -> None:
        self._store = store
        self._panels: dict[tuple, _PanelState] = {}
        self._max_panels = int(max_panels)
        self.stats = RefreshStats()

    # -- validators ------------------------------------------------------
    def _capture(self, q: Query):
        """(metric gen, reshape gens, boundary) before an execution."""
        store = self._store
        matched = store._match(q.metric, q.tags)
        gens = tuple(
            (key, store.series_reshape_generation(key)) for key in matched
        )
        boundary: int | None = None
        for key in matched:
            latest = store.series_latest(key)
            if latest is None:
                return store.metric_generation(q.metric), gens, None
            boundary = latest[0] if boundary is None else min(boundary, latest[0])
        return store.metric_generation(q.metric), gens, boundary

    def _holds(self, q: Query, metric_gen: int, reshape_gens: tuple) -> bool:
        store = self._store
        if store.metric_generation(q.metric) != metric_gen:
            return False
        return all(
            store.series_reshape_generation(key) == gen
            for key, gen in reshape_gens
        )

    # -- execution -------------------------------------------------------
    def run(self, query: Query) -> QueryResult:
        ds = query.parsed_downsample()
        width = None if ds is None else ds.width
        splice_safe = not query.rate and (
            ds is None or ds.fill in (FillPolicy.NONE, FillPolicy.ZERO)
        )
        key = _panel_key(query)
        st = self._panels.get(key)
        if splice_safe and st is not None and self._window_advances(st, query, width):
            if self._holds(query, st.metric_gen, st.reshape_gens):
                return self._run_incremental(key, st, query, width)
            self._panels.pop(key, None)
            self.stats.invalidated += 1
        elif st is not None and not splice_safe:
            # Never stateful for rate/previous/linear panels.
            self._panels.pop(key, None)
        return self._run_full(key, query, remember=splice_safe)

    def _window_advances(
        self, st: _PanelState, q: Query, width: int | None
    ) -> bool:
        """Can the cached window slide to the query's window exactly?

        The window may only move forward; a moved *start* additionally
        requires bucket alignment under downsampling, because the first
        bucket of a range is truncated at ``start`` and therefore only
        start-independent when ``start`` sits on a bucket boundary.
        """
        if q.end < st.end or q.start < st.start:
            return False
        if q.start == st.start:
            return True
        if width is None:
            return True
        return q.start % width == 0 and st.start % width == 0

    def _run_full(self, key: tuple, query: Query, *, remember: bool) -> QueryResult:
        metric_gen, reshape_gens, boundary = self._capture(query)
        result = self._store.run_many([query])[0]
        self.stats.full_runs += 1
        if (
            remember
            and boundary is not None
            and self._holds(query, metric_gen, reshape_gens)
        ):
            if len(self._panels) >= self._max_panels and key not in self._panels:
                return result  # at capacity: serve, don't remember
            self._panels[key] = _PanelState(
                start=int(query.start),
                end=int(query.end),
                boundary=boundary,
                metric_gen=metric_gen,
                reshape_gens=reshape_gens,
                result=result,
            )
        else:
            self._panels.pop(key, None)
            if remember and boundary is not None:
                # A write raced the run; an empty/partial match
                # (boundary None) is just "nothing to remember".
                self.stats.invalidated += 1
        return result

    def _run_incremental(
        self, key: tuple, st: _PanelState, query: Query, width: int | None
    ) -> QueryResult:
        # Instants <= C are final *and* covered by the cached window.
        C = min(st.boundary, st.end)
        if width is None:
            cut = C + 1
        else:
            cut = ((C + 1) // width) * width
        trim_lo = query.start if query.start > st.start else None
        if cut > query.end:
            # The whole window is final history already in cache (this
            # branch implies query.end == st.end, see the boundary
            # arithmetic in the module docstring).
            series = tuple(
                ResultSeries(
                    metric=s.metric,
                    group_tags=s.group_tags,
                    slice=(
                        s.slice
                        if trim_lo is None
                        else self._trim(s.slice, trim_lo)
                    ),
                    source_series=s.source_series,
                )
                for s in st.result.series
            )
            out = QueryResult(query=query, series=series, scanned_points=0)
            self.stats.cache_only_runs += 1
            self._remember(key, st, query, out, st.boundary)
            return out
        floor_start = (
            query.start if width is None else (query.start // width) * width
        )
        if cut <= floor_start:
            # A lagging series pins the boundary at/before the window
            # start; the delta would be the whole window anyway (and
            # under downsampling would wrongly pull in points below
            # ``start``), so just recompute.
            return self._run_full(key, query, remember=True)

        delta_q = Query(
            query.metric,
            cut,
            query.end,
            tags=dict(query.tags),
            aggregator=query.aggregator,
            downsample=query.downsample,
            rate=False,
            group_by=query.group_by,
        )
        _, _, boundary_now = self._capture(query)
        delta = self._store.run_many([delta_q])[0]
        if not self._holds(query, st.metric_gen, st.reshape_gens):
            # A reshaping write raced the delta scan; the splice would
            # mix epochs.  Drop the state and recompute from scratch.
            self._panels.pop(key, None)
            self.stats.invalidated += 1
            return self._run_full(key, query, remember=True)

        cached_by_label = {
            tuple(sorted(s.group_tags.items())): s for s in st.result.series
        }
        series = []
        for s in delta.series:
            prev = cached_by_label.get(tuple(sorted(s.group_tags.items())))
            spliced = (
                s.slice
                if prev is None
                else _splice(prev.slice, s.slice, trim_lo, cut)
            )
            series.append(
                ResultSeries(
                    metric=s.metric,
                    group_tags=s.group_tags,
                    slice=spliced,
                    source_series=s.source_series,
                )
            )
        out = QueryResult(
            query=query,
            series=tuple(series),
            scanned_points=delta.scanned_points,
        )
        self.stats.incremental_runs += 1
        boundary = st.boundary if boundary_now is None else boundary_now
        self._remember(key, st, query, out, boundary)
        return out

    def _remember(
        self,
        key: tuple,
        st: _PanelState,
        query: Query,
        result: QueryResult,
        boundary: int,
    ) -> None:
        self._panels[key] = _PanelState(
            start=int(query.start),
            end=int(query.end),
            boundary=boundary,
            metric_gen=st.metric_gen,
            reshape_gens=st.reshape_gens,
            result=result,
        )

    @staticmethod
    def _trim(sl: SeriesSlice, lo: int) -> SeriesSlice:
        ts = sl.timestamps
        a = int(np.searchsorted(ts, lo, side="left"))
        if a == 0:
            return sl
        return SeriesSlice(ts[a:], sl.values[a:])
