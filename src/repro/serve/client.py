"""Synchronous client SDK for the query server.

A thin, dependency-free socket client speaking the newline-delimited
JSON protocol of :mod:`repro.serve.server`:

- **connection reuse** — one TCP connection per client, lazily opened
  and kept across calls;
- **timeouts** — a per-call socket deadline; a timed-out call closes
  the connection so a stuck server cannot wedge the client;
- **retry with backoff** — transport failures (refused, reset, timed
  out) reconnect and resend with exponential backoff; queries are
  idempotent reads, so resending is safe.  Each sleep is scaled by a
  random **jitter** factor so a fleet of clients cut off together (say,
  by a primary failover) doesn't retry in lockstep against the freshly
  promoted follower, and an optional total-elapsed **deadline** caps
  the whole retry sequence — a dashboard would rather show one stale
  panel than block a render loop through full exponential backoff.
  *Server-answered* errors
  (:class:`~repro.tsdb.wire.RemoteQueryError`) are never retried — the
  request itself is bad;
- **batched multi-query calls** — :meth:`run_many` ships a whole
  dashboard as one request line, so the server plans it as one batch.

Usage::

    with QueryClient(host, port, tenant="dashboard") as client:
        results = client.run_many(panel_queries, refresh=True)
"""

from __future__ import annotations

import json
import random
import socket
import time
from typing import Callable, Sequence

from ..tsdb import wire
from ..tsdb.plan import ExprQuery, QueryBuilder
from ..tsdb.query import Query
from ..tsdb.wire import RemoteQueryError, WireError, WireResult


class QueryClient:
    """Reusable connection to one :class:`~repro.serve.server.QueryServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        tenant: str | None = None,
        timeout: float = 10.0,
        retries: int = 2,
        backoff: float = 0.05,
        jitter: float = 0.25,
        deadline: float | None = None,
        rng: Callable[[], float] | None = None,
    ) -> None:
        """``jitter`` scales each backoff sleep by a uniform factor in
        ``[1-jitter, 1+jitter]``; ``deadline`` (seconds) is a
        total-elapsed budget per call — once it is spent, no further
        retry starts (the in-progress attempt still finishes, bounded by
        ``timeout``) and sleeps are clipped to the time remaining.
        ``rng`` is an injectable ``random()``-like callable so tests pin
        the jitter.
        """
        self.host = host
        self.port = int(port)
        self.tenant = tenant
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.jitter = float(jitter)
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        self.deadline = None if deadline is None else float(deadline)
        self._rng = rng if rng is not None else random.random
        self._sock: socket.socket | None = None
        self._file = None
        self._next_id = 0

    # -- connection lifecycle --------------------------------------------
    def connect(self) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        sock.settimeout(self.timeout)
        self._sock = sock
        self._file = sock.makefile("rb")

    def close(self) -> None:
        file, self._file = self._file, None
        sock, self._sock = self._sock, None
        if file is not None:
            try:
                file.close()
            except OSError:
                pass
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "QueryClient":
        self.connect()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- calls -----------------------------------------------------------
    def request(
        self,
        queries: Sequence[Query | QueryBuilder | ExprQuery],
        *,
        refresh: bool = False,
    ) -> dict:
        """One batched call; returns the raw (JSON-decoded) response.

        Retries transport failures with exponential backoff, resending
        the same request over a fresh connection.  Raises the last
        transport error when retries are exhausted.
        """
        envelope = wire.encode_request(queries)
        if refresh:
            envelope["refresh"] = True
        return self._call(envelope)

    def _call(self, envelope: dict) -> dict:
        """Stamp the envelope, send it, and read one reply line.

        The shared transport loop under :meth:`request` and
        :meth:`catalog_request`: connection reuse, per-call timeout,
        retry with exponential backoff, and reply-id correlation.
        """
        self._next_id += 1
        envelope["id"] = self._next_id
        if self.tenant is not None:
            envelope["tenant"] = self.tenant
        line = json.dumps(envelope, allow_nan=False).encode() + b"\n"

        started = time.monotonic()
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                delay = self.backoff * (2 ** (attempt - 1))
                # Jittered so clients that failed together retry spread out.
                delay *= 1.0 + self.jitter * (2.0 * self._rng() - 1.0)
                if self.deadline is not None:
                    remaining = self.deadline - (time.monotonic() - started)
                    if remaining <= 0:
                        break  # out of time: surface the last transport error
                    delay = min(delay, remaining)
                time.sleep(max(0.0, delay))
            try:
                self.connect()
                assert self._sock is not None and self._file is not None
                self._sock.sendall(line)
                reply = self._file.readline()
                if not reply:
                    raise ConnectionError("server closed the connection")
                response = json.loads(reply)
                if (
                    isinstance(response, dict)
                    and response.get("id") not in (None, envelope["id"])
                ):
                    raise WireError(
                        f"response id {response.get('id')!r} does not match "
                        f"request id {envelope['id']!r}"
                    )
                return response
            except (ConnectionError, socket.timeout, OSError) as exc:
                # Transport fault: this connection is suspect — drop it
                # and (maybe) retry on a fresh one.
                self.close()
                last_error = exc
            except json.JSONDecodeError as exc:
                self.close()
                raise WireError(f"response is not valid JSON: {exc}") from None
        assert last_error is not None
        raise last_error

    def run_many(
        self,
        queries: Sequence[Query | QueryBuilder | ExprQuery],
        *,
        refresh: bool = False,
    ) -> list[WireResult]:
        """Execute a batch remotely; results align with the input order.

        Raises :class:`RemoteQueryError` when the server answers with a
        wire error response (bad query, overload drop, server fault).
        """
        return wire.decode_response(self.request(queries, refresh=refresh))

    def run(self, query: Query | QueryBuilder | ExprQuery) -> WireResult:
        """Execute a single query remotely."""
        return self.run_many([query])[0]

    # -- catalog metadata ------------------------------------------------
    def catalog_request(
        self,
        op: str,
        *,
        metric: str | None = None,
        key: str | None = None,
        tags: dict | None = None,
    ) -> dict:
        """One catalog call; returns the raw (JSON-decoded) response."""
        return self._call(
            wire.encode_catalog_request(op, metric=metric, key=key, tags=tags)
        )

    def catalog(
        self,
        op: str,
        *,
        metric: str | None = None,
        key: str | None = None,
        tags: dict | None = None,
    ) -> list | int:
        """Series-metadata lookup: the remote suggest/cardinality surface.

        ``op`` is one of ``metrics``, ``tag_keys``, ``tag_values``,
        ``cardinality``; the first three return sorted string lists,
        the last an integer.  Raises :class:`RemoteQueryError` on an
        in-band error (malformed request, guard-rail rejection).
        """
        return wire.decode_catalog_response(
            self.catalog_request(op, metric=metric, key=key, tags=tags)
        )


__all__ = ["QueryClient", "RemoteQueryError"]
