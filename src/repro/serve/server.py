"""Asyncio TCP query server: newline-delimited JSON over the wire codec.

One live store, many dashboard clients.  Each connection sends one JSON
request per line — the :mod:`repro.tsdb.wire` request format plus three
optional envelope fields stripped before decoding:

- ``"tenant"``: admission-control lane (defaults to ``"public"``);
- ``"id"``: opaque correlation value echoed on the reply, so clients
  may pipeline requests;
- ``"refresh"``: route the batch through the server's
  :class:`~repro.serve.refresh.IncrementalRefresher` (steady-state
  dashboard polling) instead of the result cache.

A payload carrying a ``"catalog"`` object instead of ``"queries"`` is a
series-metadata lookup (the ``/api/suggest`` surface — see
:mod:`repro.tsdb.catalog`), answered through a generation-validated
:class:`~repro.serve.cache.CatalogCache`.  With ``max_match_series``
set, query batches are additionally guarded: any sub-query whose tag
filter matches more series than the limit is rejected in-band with a
``CardinalityLimitError`` before a single point is scanned.

Replies are one JSON line each: a wire response, a wire *error*
response for anything malformed (the connection always stays usable —
that is the point of the ``handle_request`` bugfix underneath), or an
``InternalError`` response if the store itself faults.

Admission control reuses the region layer's
:class:`~repro.region.queue.Backpressure` vocabulary per tenant lane,
mapped onto a request queue:

- ``block``       — a full lane stops reading from the submitting
  connection until a slot frees (TCP backpressure reaches the client);
- ``drop-oldest`` — the oldest *queued* request is answered immediately
  with an ``Overloaded`` error and the new one takes its place;
- ``spill``       — the lane queue is unbounded; requests beyond
  capacity are counted as spilled but all execute, in order.

Query execution is offloaded to a thread pool (numpy scans release the
GIL), so the event loop stays responsive while lanes execute
concurrently.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from dataclasses import dataclass

from ..region.queue import Backpressure
from ..tsdb import wire
from ..tsdb.catalog import CardinalityLimitError
from ..tsdb.model import InvalidName
from ..tsdb.plan import ExprQuery
from ..tsdb.query import QueryError
from .cache import CachingStore, CatalogCache
from .refresh import IncrementalRefresher


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's admission contract with the query server.

    ``max_pending`` bounds the lane's queued-but-not-yet-running
    requests; ``backpressure`` picks the overflow behaviour (the same
    vocabulary as the region fan-in queues); ``parallelism`` is how
    many of the tenant's requests may execute concurrently;
    ``max_match_series`` caps how many series one of the tenant's
    queries may fan out over — it overrides the server-wide limit for
    this lane (tighter *or* looser), so one tenant's wildcard storms
    can be capped without throttling operators.
    """

    max_pending: int = 64
    backpressure: Backpressure | str = Backpressure.BLOCK
    parallelism: int = 2
    max_match_series: int | None = None

    def __post_init__(self) -> None:
        if self.max_pending <= 0:
            raise ValueError("max_pending must be positive")
        if self.parallelism <= 0:
            raise ValueError("parallelism must be positive")
        if self.max_match_series is not None and self.max_match_series <= 0:
            raise ValueError("max_match_series must be positive")
        object.__setattr__(
            self, "backpressure", Backpressure.coerce(self.backpressure)
        )


class _Job:
    """One admitted request: payload in, one reply line out."""

    __slots__ = (
        "payload", "refresh", "request_id", "tenant", "writer", "write_lock",
    )

    def __init__(self, payload, refresh, request_id, tenant, writer, write_lock):
        self.payload = payload
        self.refresh = refresh
        self.request_id = request_id
        self.tenant = tenant
        self.writer = writer
        self.write_lock = write_lock


class _Lane:
    """Per-tenant request queue with explicit backpressure."""

    def __init__(self, name: str, policy: TenantPolicy) -> None:
        self.name = name
        self.policy = policy
        self.queue: deque[_Job] = deque()
        self.workers: list[asyncio.Task] = []
        self.has_work = asyncio.Event()
        self.not_full = asyncio.Event()
        self.not_full.set()
        self.admitted = 0
        self.dropped = 0
        self.spilled = 0
        self.in_flight = 0  # popped from the queue, reply not yet sent

    def depth(self) -> int:
        return len(self.queue)

    def idle(self) -> bool:
        """Nothing queued and nothing executing: safe to cancel."""
        return not self.queue and self.in_flight == 0

    def stats(self) -> dict:
        return {
            "admitted": self.admitted,
            "dropped": self.dropped,
            "spilled": self.spilled,
            "depth": self.depth(),
            "policy": self.policy.backpressure.value,
        }


class QueryServer:
    """The serving layer: a TSDB behind an asyncio TCP endpoint.

    Wraps the store in a :class:`CachingStore` (generation-validated
    result cache) and keeps one :class:`IncrementalRefresher` for
    ``refresh``-flagged requests.  ``port=0`` binds an ephemeral port —
    read :attr:`address` after :meth:`start`.
    """

    def __init__(
        self,
        store,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        default_policy: TenantPolicy | None = None,
        tenant_policies: dict[str, TenantPolicy] | None = None,
        cache_capacity: int = 128,
        catalog_cache_capacity: int = 256,
        max_match_series: int | None = None,
    ) -> None:
        if max_match_series is not None and max_match_series <= 0:
            raise ValueError("max_match_series must be positive")
        self.caching = CachingStore(store, capacity=cache_capacity)
        self.refresher = IncrementalRefresher(self.caching)
        self.catalog_cache = CatalogCache(catalog_cache_capacity)
        self.max_match_series = max_match_series
        self._host = host
        self._port = port
        self._default_policy = default_policy or TenantPolicy()
        self._tenant_policies = dict(tenant_policies or {})
        self._lanes: dict[str, _Lane] = {}
        self._server: asyncio.Server | None = None
        self._stopping = False
        self.requests = 0
        self.errors = 0

    # -- lifecycle -------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        if self._server is None:
            raise RuntimeError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        return self.address

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Shut down gracefully: refuse new work, answer admitted work.

        Closing the listener stops new connections; the ``_stopping``
        flag stops live connections from submitting further requests.
        With ``drain`` (the default) every job already admitted to a
        lane — queued or executing — is answered before the workers are
        cancelled, so a SIGTERM rollout never eats requests the server
        accepted; ``timeout`` bounds the wait (then abandons the rest,
        the old behaviour).  ``drain=False`` is the hard stop.
        """
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if drain:
            loop = asyncio.get_running_loop()
            deadline = None if timeout is None else loop.time() + timeout
            while any(not lane.idle() for lane in self._lanes.values()):
                if deadline is not None and loop.time() >= deadline:
                    break
                await asyncio.sleep(0.005)
        for lane in self._lanes.values():
            for task in lane.workers:
                task.cancel()
            for task in lane.workers:
                try:
                    await task
                except asyncio.CancelledError:
                    pass
            lane.workers.clear()

    def stats(self) -> dict:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "cache": self.caching.cache.stats.as_dict(),
            "catalog_cache": self.catalog_cache.stats.as_dict(),
            "refresh": self.refresher.stats.as_dict(),
            "tenants": {
                name: lane.stats() for name, lane in sorted(self._lanes.items())
            },
        }

    # -- admission -------------------------------------------------------
    def _lane(self, tenant: str) -> _Lane:
        lane = self._lanes.get(tenant)
        if lane is None:
            policy = self._tenant_policies.get(tenant, self._default_policy)
            lane = self._lanes[tenant] = _Lane(tenant, policy)
            for _ in range(policy.parallelism):
                lane.workers.append(
                    asyncio.get_running_loop().create_task(self._pump(lane))
                )
        return lane

    async def _admit(self, lane: _Lane, job: _Job) -> None:
        policy = lane.policy
        if lane.depth() >= policy.max_pending:
            bp = policy.backpressure
            if bp is Backpressure.BLOCK:
                # Stop reading this connection until the lane drains —
                # the submitting client feels it as TCP backpressure.
                while lane.depth() >= policy.max_pending:
                    lane.not_full.clear()
                    await lane.not_full.wait()
            elif bp is Backpressure.DROP_OLDEST:
                oldest = lane.queue.popleft()
                lane.dropped += 1
                await self._reply(
                    oldest,
                    _error_dict(
                        "Overloaded",
                        f"dropped by drop-oldest admission "
                        f"(tenant {lane.name!r} backlog "
                        f"{policy.max_pending})",
                    ),
                )
            else:  # SPILL: unbounded overflow, FIFO preserved
                lane.spilled += 1
        lane.queue.append(job)
        lane.admitted += 1
        lane.has_work.set()

    async def _pump(self, lane: _Lane) -> None:
        loop = asyncio.get_running_loop()
        while True:
            while not lane.queue:
                lane.has_work.clear()
                await lane.has_work.wait()
            job = lane.queue.popleft()
            lane.in_flight += 1
            try:
                if lane.depth() < lane.policy.max_pending:
                    lane.not_full.set()
                response = await loop.run_in_executor(None, self._execute, job)
                await self._reply(job, response)
            finally:
                lane.in_flight -= 1

    # -- execution -------------------------------------------------------
    def _execute(self, job: _Job) -> dict:
        """Runs on the executor thread: decode → run → encode, total."""
        self.requests += 1
        try:
            if isinstance(job.payload, dict) and "catalog" in job.payload:
                return self._serve_catalog(job.payload)
            queries = wire.decode_request(job.payload)
            self._guard_match_cardinality(queries, tenant=job.tenant)
            if job.refresh:
                results = [self.refresher.run(q) for q in queries]
            else:
                results = self.caching.run_many(queries)
            return wire.encode_response(results)
        except (
            wire.WireError, QueryError, InvalidName, CardinalityLimitError
        ) as exc:
            return wire.encode_error(exc)
        except Exception as exc:  # store fault: answer, don't die
            return _error_dict("InternalError", f"{type(exc).__name__}: {exc}")

    def _serve_catalog(self, payload: dict) -> dict:
        """Catalog metadata request, served through the catalog cache."""
        req = wire.decode_catalog_request(payload)
        cached = self.catalog_cache.lookup(self.caching, req)
        if cached is not None:
            return cached
        validators = self.catalog_cache.capture(self.caching, req)
        response = wire.execute_catalog_request(self.caching, req)
        self.catalog_cache.insert(self.caching, req, validators, response)
        return response

    def _guard_match_cardinality(self, queries, *, tenant: str | None = None) -> None:
        """Reject queries whose tag filter fans out over too many series.

        The serving-side guard-rail: a wildcard query over a
        high-cardinality metric would scan (and cache) an answer
        assembled from thousands of series.  With ``max_match_series``
        set, each sub-query's match cardinality is checked against the
        catalog — an O(postings) set intersection — before any scan
        runs, and oversized queries come back as an in-band
        ``CardinalityLimitError``.  A tenant whose
        :class:`TenantPolicy` carries its own ``max_match_series`` is
        held to that per-lane limit instead of the server-wide one.
        """
        limit = self.max_match_series
        if tenant is not None:
            policy = self._tenant_policies.get(tenant, self._default_policy)
            if policy.max_match_series is not None:
                limit = policy.max_match_series
        if limit is None:
            return
        seen: set = set()
        for q in queries:
            subs = (
                tuple(sub for _, sub in q.operands)
                if isinstance(q, ExprQuery)
                else (q,)
            )
            for sub in subs:
                probe = (sub.metric, tuple(sorted(sub.tags.items())))
                if probe in seen:
                    continue
                seen.add(probe)
                matched = self.caching.cardinality(sub.metric, sub.tags)
                if matched > limit:
                    scope = "tenant's" if limit != self.max_match_series else "server's"
                    raise CardinalityLimitError(
                        f"query on metric {sub.metric!r} matches {matched} "
                        f"series, over the {scope} {limit}-series limit "
                        f"(narrow the tag filter)",
                        limit=limit,
                    )

    async def _reply(self, job: _Job, response: dict) -> None:
        if "error" in response:
            self.errors += 1
        if job.request_id is not None:
            response = {**response, "id": job.request_id}
        line = json.dumps(response, allow_nan=False).encode() + b"\n"
        async with job.write_lock:
            if job.writer.is_closing():
                return
            job.writer.write(line)
            try:
                await job.writer.drain()
            except ConnectionError:
                pass

    # -- connections -----------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        try:
            while not self._stopping:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                if self._stopping:
                    break  # draining: refuse work read after the stop
                job = self._parse_line(line, writer, write_lock)
                if job is None:
                    continue  # error already replied; connection lives on
                await self._admit(self._lane(job.tenant), job)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    def _parse_line(self, line: bytes, writer, write_lock) -> "_Job | None":
        """Envelope parsing; replies with a wire error on junk input."""
        bad: str | None = None
        payload = None
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            bad = f"request is not valid JSON: {exc}"
        if bad is None and not isinstance(payload, dict):
            bad = "request must be a JSON object"
        if bad is None:
            payload = dict(payload)
            tenant = payload.pop("tenant", "public")
            request_id = payload.pop("id", None)
            refresh = bool(payload.pop("refresh", False))
            if not isinstance(tenant, str) or not tenant:
                bad = "'tenant' must be a non-empty string"
        if bad is not None:
            self.requests += 1
            stub = _Job(None, False, None, "public", writer, write_lock)
            asyncio.get_running_loop().create_task(
                self._reply(stub, wire.encode_error(wire.WireError(bad)))
            )
            return None
        return _Job(payload, refresh, request_id, tenant, writer, write_lock)


def _error_dict(error_type: str, message: str) -> dict:
    return {
        "version": wire.WIRE_VERSION,
        "error": {"type": error_type, "message": message},
    }


async def serve(
    store,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    **kwargs,
) -> QueryServer:
    """Start a :class:`QueryServer` and return it (tests/embedding)."""
    server = QueryServer(store, host=host, port=port, **kwargs)
    await server.start()
    return server
