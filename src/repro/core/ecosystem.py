"""The CTT ecosystem: paper Fig. 1 assembled into one object.

``CityEcosystem`` builds the full stack for one pilot city — environment
→ sensor nodes → LoRaWAN radio plane → network server → TTN/MQTT bridge
→ dataport (twins, alarms, TSDB writes) → watchdog — plus the external
integration layer (NILU, OCO-2, here.com, municipal counts, national
statistics, CityGML model) harmonized into the same TSDB.

``CttEcosystem`` holds several cities (the paper runs Trondheim and
Vejle) over one shared simulation scheduler and database.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..dataport import Dataport, TtnMqttBridge, TwinConfig, Watchdog
from ..geo import BoundingBox
from ..integration import (
    Catalog,
    CountingCampaign,
    Harmonizer,
    HereTrafficConnector,
    Municipality,
    MunicipalCountsConnector,
    NationalStatsConnector,
    NiluStation,
    Oco2Connector,
    generate_city_model,
)
from ..lorawan import Gateway, LoraDevice, NetworkServer, PropagationModel, RadioPlane
from ..mqtt import Broker
from ..region import CityIngress, CityPolicy, RegionalHub
from ..sensors import (
    BatteryAdaptive,
    PollutionInjection,
    PowerSpec,
    SensorNode,
    UrbanEnvironment,
    random_fault_plan,
)
from ..simclock import DAY, Scheduler, SimClock
from ..tsdb import TSDB, ShardedTSDB, TimeSeriesStore
from .deployment import CityDeployment


@dataclass
class EcosystemConfig:
    """Knobs for building an ecosystem."""

    seed: int = 0
    shadowing_sigma_db: float = 5.0
    sampling_interval_s: int = 300
    with_faults: bool = False
    fault_horizon_days: int = 14
    initial_soc: float = 0.85
    power_spec: PowerSpec = field(default_factory=PowerSpec)
    twin_config: TwinConfig = field(default_factory=TwinConfig)
    watchdog_interval_s: int = 60
    #: Number of TSDB shards; 0 keeps the single in-process store.
    tsdb_shards: int = 0
    #: Per-city fan-in policies.  Non-empty routes every dataport's hop-5
    #: writes through a :class:`~repro.region.RegionalHub` (bounded
    #: queues + backpressure) instead of straight into the store;
    #: deployments without a matching policy get the defaults.
    cities: tuple[CityPolicy, ...] = ()
    #: How often (sim seconds) the hub drains city queues into the store.
    region_flush_interval_s: int = 60
    #: Directory for spill-to-disk backpressure segments (required only
    #: when a city policy uses ``Backpressure.SPILL``).
    region_spill_dir: str | None = None

    def build_store(self) -> TimeSeriesStore:
        """The shared measurement store this config calls for."""
        if self.tsdb_shards > 0:
            return ShardedTSDB(self.tsdb_shards)
        return TSDB()

    @property
    def regional(self) -> bool:
        """True when ingestion fans in through a RegionalHub."""
        return bool(self.cities)

    def city_policy(self, city: str) -> CityPolicy:
        """The configured policy for a city, or the defaults."""
        for policy in self.cities:
            if policy.city == city:
                return policy
        return CityPolicy(city)


class CityEcosystem:
    """One pilot city, fully wired."""

    def __init__(
        self,
        deployment: CityDeployment,
        scheduler: Scheduler,
        db: TimeSeriesStore,
        config: EcosystemConfig | None = None,
        *,
        ingest: CityIngress | None = None,
    ) -> None:
        self.deployment = deployment
        self.scheduler = scheduler
        self.db = db
        #: Hop-5 write endpoint: the regional fan-in lane when this city
        #: sits behind a RegionalHub, else the store itself.  Reads
        #: (dashboards, `last`, analytics) always go to ``db``.
        self.ingest = ingest
        self.config = config or EcosystemConfig()
        seed = self.config.seed

        # -- world ---------------------------------------------------------
        self.environment = UrbanEnvironment(
            deployment.city,
            deployment.center,
            seed=deployment.environment_seed,
            roads=list(deployment.roads),
            mean_temp_c=deployment.mean_temp_c,
        )

        # -- radio plane + gateways -----------------------------------------
        self.plane = RadioPlane(
            PropagationModel(shadowing_sigma_db=self.config.shadowing_sigma_db),
            np.random.default_rng([seed, 1]),
        )
        for gw in deployment.gateways:
            self.plane.add_gateway(
                Gateway(gw.gateway_id, gw.location, gw.altitude_m)
            )

        # -- backend: network server -> MQTT -> dataport ---------------------
        self.network_server = NetworkServer()
        self.broker = Broker(np.random.default_rng([seed, 2]))
        self.bridge = TtnMqttBridge(self.network_server, self.broker, deployment.city)
        self.dataport = Dataport(
            self.broker,
            ingest if ingest is not None else db,
            scheduler,
            config=self.config.twin_config,
        )
        for gw in deployment.gateways:
            self.dataport.register_gateway(
                gw.gateway_id, (gw.location.lat, gw.location.lon)
            )

        # -- sensor nodes ------------------------------------------------------
        self.nodes: dict[str, SensorNode] = {}
        start = scheduler.clock.now()
        for i, placement in enumerate(deployment.nodes):
            node_rng = np.random.default_rng([seed, 3, i])
            device = LoraDevice(
                placement.node_id, placement.location, self.plane, sf=9
            )
            fault_plan = None
            if self.config.with_faults:
                fault_plan = random_fault_plan(
                    np.random.default_rng([seed, 4, i]),
                    start,
                    start + self.config.fault_horizon_days * DAY,
                )
            node = SensorNode(
                placement.node_id,
                placement.location,
                self.environment,
                device,
                rng=node_rng,
                power_spec=self.config.power_spec,
                policy=BatteryAdaptive(self.config.sampling_interval_s),
                fault_plan=fault_plan,
                initial_soc=self.config.initial_soc,
                start_time=start,
            )
            node._last_wake = start
            node.on_transmit(self._forward_uplink)
            self.dataport.register_sensor(
                placement.node_id,
                (placement.location.lat, placement.location.lon),
                deployment.city,
            )
            self.nodes[placement.node_id] = node

        # -- watchdog (hop 8) -----------------------------------------------------
        self.watchdog = Watchdog(
            f"dataport-{deployment.city}",
            self.dataport.ping,
            self.dataport.alarms,
            interval_s=self.config.watchdog_interval_s,
        )

        # -- external integration (Table 1) ------------------------------------------
        self.catalog = Catalog()
        self.harmonizer = Harmonizer(db)
        region = BoundingBox.around(deployment.center, 6000.0)
        ref_loc = deployment.reference_location or deployment.center
        self.nilu = NiluStation(
            f"{deployment.city}-ref", ref_loc, self.environment, seed=seed
        )
        self.oco2 = Oco2Connector(region, self.environment, seed=seed)
        self.here = HereTrafficConnector(
            self.environment, list(deployment.roads), seed=seed
        )
        self.counts = MunicipalCountsConnector(
            self.environment,
            [
                CountingCampaign(
                    deployment.roads[0], start + 2 * DAY, start + 9 * DAY
                )
            ],
            seed=seed,
        )
        self.stats = NationalStatsConnector(
            Municipality(
                deployment.city,
                population=190_000 if deployment.city == "trondheim" else 58_000,
                national_population=5_250_000,
            ),
            seed=seed,
        )
        for connector in (self.nilu, self.oco2, self.here, self.counts, self.stats):
            self.catalog.register(connector)
            self.harmonizer.register(connector)
        self.city_model = generate_city_model(
            deployment.city, deployment.center, seed=seed
        )

        self._started = False

    # ------------------------------------------------------------------
    def _forward_uplink(self, node, result, now) -> None:
        if result.uplink is not None:
            self.network_server.ingest(result.uplink, result.receptions, now)

    def start(self) -> None:
        """Schedule node loops and the watchdog (idempotent)."""
        if self._started:
            return
        self._started = True
        for i, node in enumerate(self.nodes.values()):
            # Deterministic stagger spreads airtime across the interval.
            phase = (i * 17) % self.config.sampling_interval_s
            node.schedule(self.scheduler, phase_s=phase)
        self.watchdog.start(self.scheduler)

    def sync_external(self, start: int, end: int):
        """Pull all Table 1 feeds for a window into the TSDB."""
        return self.harmonizer.sync(start, end)

    def apply_adr(self) -> dict[str, tuple[int, int]]:
        """Apply the network server's ADR recommendations to devices.

        Real LoRaWAN networks push data-rate changes in downlinks; the
        simulator applies them directly.  Returns ``{node: (old_sf,
        new_sf)}`` for every device whose spreading factor changed.
        """
        changed: dict[str, tuple[int, int]] = {}
        for node_id, node in self.nodes.items():
            recommended = self.network_server.adr_recommendation(node_id)
            if recommended is not None and recommended != node.device.sf:
                changed[node_id] = (node.device.sf, recommended)
                node.device.set_sf(recommended)
        return changed

    def inject_pollution(self, injection: PollutionInjection) -> None:
        """Demo scenario hook: synthetic pollution event."""
        self.environment.inject(injection)

    # -- convenience views ------------------------------------------------
    def network_snapshot(self) -> dict:
        return self.dataport.network_snapshot()

    def sensor_values_latest(self, metric: str) -> dict:
        """{node: (location, latest value)} for Fig. 7-style overlays."""
        out = {}
        for key, (_ts, value) in self.db.last(
            metric, {"city": self.deployment.city}
        ).items():
            node = key.tag("node")
            if node is None:
                continue
            loc = self.dataport.node_locations.get(node)
            if loc is None:
                continue
            from ..geo import GeoPoint

            out[node] = (GeoPoint(loc[0], loc[1]), value)
        return out

    def delivery_stats(self) -> dict[str, float]:
        """End-to-end pipeline health numbers (Fig. 1/2 benches)."""
        sent = sum(n.stats.transmissions for n in self.nodes.values())
        delivered = sum(n.stats.delivered for n in self.nodes.values())
        processed = self.dataport.stats.uplinks_processed
        return {
            "transmissions": sent,
            "delivered_radio": delivered,
            "processed_dataport": processed,
            "radio_delivery_rate": delivered / sent if sent else 0.0,
            "end_to_end_rate": processed / sent if sent else 0.0,
            "points_written": self.dataport.stats.points_written,
            "collisions": self.plane.collisions,
        }


class CttEcosystem:
    """Both pilot cities on one clock and one database (the paper's demo)."""

    def __init__(
        self,
        deployments: list[CityDeployment],
        *,
        config: EcosystemConfig | None = None,
        start_time: int | None = None,
    ) -> None:
        from ..simclock import CTT_EPOCH

        self.scheduler = Scheduler(
            SimClock(start=start_time if start_time is not None else CTT_EPOCH)
        )
        self.config = config or EcosystemConfig()
        self.db = self.config.build_store()
        #: The regional fan-in hub; None when dataports write directly.
        self.hub: RegionalHub | None = None
        if self.config.regional:
            self.hub = RegionalHub(
                self.db,
                self.scheduler,
                flush_interval_s=self.config.region_flush_interval_s,
                spill_dir=self.config.region_spill_dir,
            )
        self.cities: dict[str, CityEcosystem] = {}
        # A policy naming no deployment is a config error (typo'd city),
        # not a silent fall-back to defaults.
        deployed = {d.city for d in deployments}
        unmatched = [p.city for p in self.config.cities if p.city not in deployed]
        if unmatched:
            raise ValueError(
                f"city policies for undeployed cities: {unmatched}; "
                f"deployments are {sorted(deployed)}"
            )
        for deployment in deployments:
            ingest = None
            if self.hub is not None:
                ingest = self.hub.register_city(
                    self.config.city_policy(deployment.city)
                )
            self.cities[deployment.city] = CityEcosystem(
                deployment, self.scheduler, self.db, self.config, ingest=ingest
            )

    def start(self) -> None:
        for city in self.cities.values():
            city.start()
        if self.hub is not None:
            self.hub.start()

    def run(self, seconds: int) -> None:
        """Advance the whole simulation."""
        self.scheduler.run_for(seconds)

    def flush_region(self) -> int:
        """Drain every fan-in lane so all accepted points are queryable.

        No-op (returns 0) without a hub.  Call before reading the store
        when a run may have ended between hub flush ticks.
        """
        return self.hub.drain_all() if self.hub is not None else 0

    def city(self, name: str) -> CityEcosystem:
        return self.cities[name]

    @property
    def now(self) -> int:
        return self.scheduler.clock.now()
