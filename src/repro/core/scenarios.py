"""Demonstration scenarios (paper §3) and the historic archive.

The demo serves three audiences:

- **developers**: the building blocks and the streaming data flow;
- **city officials**: CO2-vs-traffic analysis, CityGML integration,
  synthetic pollution injection for planning what-ifs;
- **citizens**: live air-quality/traffic dashboards and historic
  browsing for anomalous emission levels.

This module also provides :func:`backfill_history`: the paper demos
against "historic data saved in our time-series database, collected
since January 2017".  Replaying months of radio traffic frame-by-frame
is pointless for that purpose, so the backfill writes hourly
measurements straight into the TSDB through the same channel error
models (bypassing only the radio hops) — the substitution is documented
in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analytics import anomalous_days, caqi, correlation_study, factor_attribution
from ..sensors import PollutionInjection
from ..simclock import HOUR
from ..tsdb import (
    METRIC_BATTERY,
    METRIC_CO2,
    METRIC_HUMIDITY,
    METRIC_JAM_FACTOR,
    METRIC_NO2,
    METRIC_PM10,
    METRIC_PM25,
    METRIC_PRESSURE,
    METRIC_TEMPERATURE,
    Query,
)
from ..viz import (
    AqiPanel,
    Dashboard,
    GaugePanel,
    TimeseriesPanel,
    WallDisplay,
    render_city_svg,
)
from .ecosystem import CityEcosystem

_CHANNEL_METRICS = {
    "co2_ppm": METRIC_CO2,
    "no2_ugm3": METRIC_NO2,
    "pm10_ugm3": METRIC_PM10,
    "pm25_ugm3": METRIC_PM25,
    "temperature_c": METRIC_TEMPERATURE,
    "pressure_hpa": METRIC_PRESSURE,
    "humidity_pct": METRIC_HUMIDITY,
}


def backfill_history(
    city: CityEcosystem, start: int, end: int, cadence_s: int = HOUR
) -> int:
    """Write the historic archive for one city directly into the TSDB.

    Measurements go through each node's real channel models (noise,
    drift, miscalibration) so downstream analytics see authentic
    low-cost-sensor data; only the radio/MQTT hops are skipped.
    Returns points written.
    """
    if end <= start:
        raise ValueError("end must be after start")
    written = 0
    tags_base = {"city": city.deployment.city}
    timestamps = np.arange(start, end, cadence_s, dtype=np.int64)
    for node_id, node in city.nodes.items():
        tags = {**tags_base, "node": node_id}
        # The channel models run per instant (sensor state is stateful),
        # but the TSDB sees one columnar write per metric per node.
        columns = {attr: np.empty(timestamps.shape[0]) for attr in _CHANNEL_METRICS}
        for i, ts in enumerate(timestamps.tolist()):
            readings = node.read_channels(ts)
            for attr in _CHANNEL_METRICS:
                columns[attr][i] = readings[attr]
        for attr, metric in _CHANNEL_METRICS.items():
            city.db.put_series(metric, timestamps, columns[attr], tags)
            written += timestamps.shape[0]
    # Traffic feed history at the same cadence.
    jam = np.array(
        [
            city.here.jam_factor(ts, city.here.segments[0])
            for ts in timestamps.tolist()
        ]
    )
    city.db.put_series(
        METRIC_JAM_FACTOR, timestamps, jam, {**tags_base, "segment": "main"}
    )
    written += timestamps.shape[0]
    return written


# ---------------------------------------------------------------------------
# The three demo points of view
# ---------------------------------------------------------------------------


@dataclass
class DeveloperView:
    """What the developers' walkthrough shows."""

    architecture: str
    flow_description: str
    pipeline_stats: dict


def developer_scenario(city: CityEcosystem) -> DeveloperView:
    """Architecture + building blocks + live pipeline stats."""
    d = city.deployment
    architecture = "\n".join(
        [
            f"CTT architecture — {d.city}",
            f"  sensor nodes ({len(city.nodes)}): "
            + ", ".join(sorted(city.nodes)),
            f"  gateways ({len(d.gateways)}): "
            + ", ".join(g.gateway_id for g in d.gateways),
            "  backbone: LoRaWAN -> network server -> MQTT -> dataport",
            "  storage: repro.tsdb (OpenTSDB role)",
            f"  external sources: "
            + ", ".join(c.name for c in city.catalog.connectors()),
            "  monitoring: digital twins + hierarchy + watchdog",
        ]
    )
    flow = (
        "uplink flow: node samples environment -> encodes 18-byte payload "
        "-> LoRa airtime/duty-cycle -> gateways (RSSI/SNR) -> dedup -> "
        "MQTT topic ctt/<city>/devices/<id>/up -> dataport decodes -> "
        "twins + TSDB + alarms"
    )
    return DeveloperView(
        architecture=architecture,
        flow_description=flow,
        pipeline_stats=city.delivery_stats(),
    )


@dataclass
class OfficialsView:
    """City officials' scenario artifacts."""

    co2_traffic_correlation: float
    co2_traffic_verdict: str
    factor_r2_traffic: float
    factor_r2_full: float
    city_svg: str
    suggested_injection_effect: dict


def officials_scenario(
    city: CityEcosystem,
    start: int,
    end: int,
    injection: PollutionInjection | None = None,
) -> OfficialsView:
    """CO2-dynamics analysis + CityGML view + what-if injection.

    Requires measurement and jam-factor history in the TSDB for
    [start, end] (live run or backfill).
    """
    cadence = HOUR
    co2_res = city.db.run(
        Query(
            METRIC_CO2,
            start,
            end,
            tags={"city": city.deployment.city},
            downsample=f"{cadence}s-avg-linear",
        )
    ).single()
    jam_res = city.db.run(
        Query(
            METRIC_JAM_FACTOR,
            start,
            end,
            tags={"city": city.deployment.city},
            downsample=f"{cadence}s-avg-linear",
        )
    ).single()
    n = min(len(co2_res), len(jam_res))
    study = correlation_study(
        co2_res.values[:n], jam_res.values[:n], cadence_s=cadence
    )
    weather = city.environment.weather
    ts = co2_res.timestamps[:n]
    attribution = factor_attribution(
        co2_res.values[:n],
        {
            "jam_factor": jam_res.values[:n],
            "wind": np.array([weather.wind_speed_ms(int(t)) for t in ts]),
            "temperature": np.array([weather.temperature_c(int(t)) for t in ts]),
            "humidity": np.array([weather.humidity_pct(int(t)) for t in ts]),
        },
        ts,
    )

    injection_effect: dict = {}
    if injection is not None:
        probe = injection.center
        before = city.environment.no2_ugm3(injection.start + 60, probe)
        city.inject_pollution(injection)
        after = city.environment.no2_ugm3(injection.start + 60, probe)
        injection_effect = {
            "no2_before": round(before, 1),
            "no2_after": round(after, 1),
            "caqi_before": caqi({"no2_ugm3": before}).band,
            "caqi_after": caqi({"no2_ugm3": after}).band,
        }

    sensor_values = city.sensor_values_latest(METRIC_NO2)
    svg = render_city_svg(
        city.city_model,
        sensor_values,
        title=f"{city.deployment.city}: NO2 in 3D city model",
    )
    verdict = (
        "no apparent correlation"
        if study.no_apparent_correlation
        else "correlated"
    )
    return OfficialsView(
        co2_traffic_correlation=study.pearson_r,
        co2_traffic_verdict=verdict,
        factor_r2_traffic=attribution.r2_traffic_only,
        factor_r2_full=attribution.r2_full,
        city_svg=svg,
        suggested_injection_effect=injection_effect,
    )


@dataclass
class CitizensView:
    """Citizens' scenario artifacts."""

    dashboard_text: str
    anomalous_day_count: int
    worst_day: int | None


def citizens_scenario(city: CityEcosystem, start: int, end: int) -> CitizensView:
    """Live dashboard + historic browsing for anomalous emission days."""
    dashboard = build_air_quality_dashboard(city, start, end)
    res = city.db.run(
        Query(
            METRIC_NO2,
            start,
            end,
            tags={"city": city.deployment.city},
            downsample=f"{HOUR}s-avg",
        )
    ).single()
    anomalies = (
        anomalous_days(res.values, res.timestamps) if len(res) else []
    )
    return CitizensView(
        dashboard_text=dashboard.render_text(),
        anomalous_day_count=len(anomalies),
        worst_day=anomalies[0].day_start if anomalies else None,
    )


# ---------------------------------------------------------------------------
# Dashboards (Fig. 6) and the wall (Fig. 8) for one city
# ---------------------------------------------------------------------------


def build_air_quality_dashboard(
    city: CityEcosystem, start: int, end: int
) -> Dashboard:
    """The Fig. 6 left panel: air quality per mapped sensor."""
    tags = {"city": city.deployment.city}
    return (
        Dashboard(f"Air quality — {city.deployment.city}", city.db)
        .add(AqiPanel("CAQI per node", city=city.deployment.city))
        .add(
            TimeseriesPanel(
                "CO2 (city mean)",
                Query(METRIC_CO2, start, end, tags=tags, downsample="1h-avg-linear"),
            )
        )
        .add(
            TimeseriesPanel(
                "NO2 per node",
                Query(
                    METRIC_NO2, start, end, tags=tags,
                    downsample="1h-avg", group_by=["node"],
                ),
            )
        )
        .add(GaugePanel("Battery", METRIC_BATTERY, tags=tags, vmax=4.2, unit="V"))
    )


def build_traffic_dashboard(city: CityEcosystem, start: int, end: int) -> Dashboard:
    """The Fig. 6 right panel: traffic flow."""
    tags = {"city": city.deployment.city}
    return (
        Dashboard(f"Traffic — {city.deployment.city}", city.db)
        .add(
            TimeseriesPanel(
                "Jam factor",
                Query(
                    METRIC_JAM_FACTOR, start, end, tags=tags,
                    downsample="1h-avg-linear",
                ),
            )
        )
        .add(
            GaugePanel(
                "Current jam factor", METRIC_JAM_FACTOR, tags=tags, vmax=10.0
            )
        )
    )


def build_wall_display(city: CityEcosystem, start: int, end: int) -> WallDisplay:
    """Fig. 8: network monitoring + data dashboards on one wall."""
    wall = WallDisplay(
        title=f"CTT wall — {city.deployment.city}",
        db=city.db,
        alarms=city.dataport.alarms,
        snapshot_provider=city.network_snapshot,
    )
    wall.add_dashboard(build_air_quality_dashboard(city, start, end))
    wall.add_dashboard(build_traffic_dashboard(city, start, end))
    return wall
