"""Decision support: intervention what-ifs (paper intro + future work).

The paper motivates high-granularity sensing with "impact assessment of
measures ranging from small-scale such as closing down certain streets
(and being able to observe spillover and evasion effects in surrounding
parts of the city) to large-scale such as changes in public transport";
"integration into decision support systems is a far goal."

This module implements that assessment loop against the simulated city:

1. define an intervention (street closure / traffic reduction);
2. apply it to the environment's road network (closed traffic partly
   *evades* onto the remaining roads — the spillover effect);
3. evaluate pollutant fields at the sensor locations before/after;
4. report per-location deltas so a policymaker sees both the local win
   and the spillover cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..geo import GeoPoint
from ..sensors.environment import RoadSegment, UrbanEnvironment


@dataclass(frozen=True)
class StreetClosure:
    """Close (or throttle) one road; traffic evades to the others.

    ``evasion_fraction`` of the removed traffic reappears spread over the
    remaining roads (weighted by their existing volume); the rest
    genuinely disappears (trips not taken, mode shift).
    """

    road_name: str
    reduction: float = 1.0  # 1.0 = full closure
    evasion_fraction: float = 0.6

    def __post_init__(self) -> None:
        if not 0.0 < self.reduction <= 1.0:
            raise ValueError(f"reduction must be in (0, 1]: {self.reduction}")
        if not 0.0 <= self.evasion_fraction <= 1.0:
            raise ValueError(
                f"evasion_fraction must be in [0, 1]: {self.evasion_fraction}"
            )


@dataclass(frozen=True)
class TransitImprovement:
    """Large-scale measure: all road traffic scales down uniformly."""

    traffic_reduction: float  # e.g. 0.15 = 15 % fewer vehicle-km

    def __post_init__(self) -> None:
        if not 0.0 < self.traffic_reduction < 1.0:
            raise ValueError(
                f"traffic_reduction must be in (0, 1): {self.traffic_reduction}"
            )


Intervention = StreetClosure | TransitImprovement


def apply_intervention(
    roads: list[RoadSegment], intervention: Intervention
) -> list[RoadSegment]:
    """New road list with the intervention's traffic redistribution."""
    if isinstance(intervention, TransitImprovement):
        factor = 1.0 - intervention.traffic_reduction
        return [replace(r, traffic_weight=r.traffic_weight * factor) for r in roads]

    target = next((r for r in roads if r.name == intervention.road_name), None)
    if target is None:
        raise ValueError(f"unknown road: {intervention.road_name!r}")
    removed = target.traffic_weight * intervention.reduction
    evaded = removed * intervention.evasion_fraction
    others = [r for r in roads if r.name != intervention.road_name]
    total_other = sum(r.traffic_weight for r in others)
    out = [replace(target, traffic_weight=target.traffic_weight - removed)]
    for r in others:
        share = (r.traffic_weight / total_other) if total_other > 0 else (
            1.0 / len(others) if others else 0.0
        )
        out.append(replace(r, traffic_weight=r.traffic_weight + evaded * share))
    # Preserve original ordering.
    by_name = {r.name: r for r in out}
    return [by_name[r.name] for r in roads]


@dataclass(frozen=True)
class LocationImpact:
    """Before/after pollutant levels at one probe location."""

    label: str
    location: GeoPoint
    no2_before: float
    no2_after: float
    pm10_before: float
    pm10_after: float

    @property
    def no2_delta(self) -> float:
        return self.no2_after - self.no2_before

    @property
    def improved(self) -> bool:
        return self.no2_delta < 0.0


@dataclass(frozen=True)
class ImpactAssessment:
    """The decision-support artifact: per-location deltas + the verdict."""

    intervention: Intervention
    impacts: tuple[LocationImpact, ...]

    @property
    def improved_locations(self) -> list[LocationImpact]:
        return [i for i in self.impacts if i.improved]

    @property
    def spillover_locations(self) -> list[LocationImpact]:
        """Locations that got *worse* — the evasion cost."""
        return [i for i in self.impacts if i.no2_delta > 0.25]

    @property
    def net_no2_delta(self) -> float:
        return float(np.mean([i.no2_delta for i in self.impacts]))

    def summary(self) -> str:
        lines = [f"intervention: {self.intervention}"]
        for i in sorted(self.impacts, key=lambda x: x.no2_delta):
            arrow = "improved " if i.improved else (
                "SPILLOVER" if i.no2_delta > 0.25 else "unchanged"
            )
            lines.append(
                f"  {i.label:<14} NO2 {i.no2_before:6.1f} -> {i.no2_after:6.1f} "
                f"({i.no2_delta:+5.1f})  {arrow}"
            )
        lines.append(
            f"  net mean NO2 change: {self.net_no2_delta:+.2f} ug/m3 over "
            f"{len(self.impacts)} locations "
            f"({len(self.spillover_locations)} spillover)"
        )
        return "\n".join(lines)


def assess_intervention(
    environment: UrbanEnvironment,
    intervention: Intervention,
    probes: dict[str, GeoPoint],
    timestamps: list[int],
) -> ImpactAssessment:
    """Evaluate an intervention over probe locations and times.

    Builds a counterfactual environment with the redistributed road
    network (same seed: weather and background identical, so deltas
    isolate the traffic effect) and averages pollutant fields over the
    given timestamps (pick rush hours for the strongest signal).
    """
    if not probes:
        raise ValueError("need at least one probe location")
    if not timestamps:
        raise ValueError("need at least one timestamp")
    counterfactual_roads = apply_intervention(
        list(environment.field.roads), intervention
    )
    counterfactual = UrbanEnvironment(
        environment.city,
        environment.center,
        seed=environment.seed,
        roads=counterfactual_roads,
        mean_temp_c=environment.weather.mean_temp_c,
    )
    impacts = []
    for label, loc in sorted(probes.items()):
        no2_b = float(np.mean([environment.no2_ugm3(t, loc) for t in timestamps]))
        no2_a = float(
            np.mean([counterfactual.no2_ugm3(t, loc) for t in timestamps])
        )
        pm_b = float(np.mean([environment.pm10_ugm3(t, loc) for t in timestamps]))
        pm_a = float(
            np.mean([counterfactual.pm10_ugm3(t, loc) for t in timestamps])
        )
        impacts.append(
            LocationImpact(
                label=label,
                location=loc,
                no2_before=no2_b,
                no2_after=no2_a,
                pm10_before=pm_b,
                pm10_after=pm_a,
            )
        )
    return ImpactAssessment(intervention=intervention, impacts=tuple(impacts))
