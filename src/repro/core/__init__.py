"""The CTT ecosystem facade: deployments, the Fig. 1 stack, demo scenarios."""

from .deployment import (
    CityDeployment,
    GatewayPlacement,
    NodePlacement,
    trondheim_deployment,
    vejle_deployment,
)
from .ecosystem import CityEcosystem, CttEcosystem, EcosystemConfig
from .interventions import (
    ImpactAssessment,
    LocationImpact,
    StreetClosure,
    TransitImprovement,
    apply_intervention,
    assess_intervention,
)
from .scenarios import (
    CitizensView,
    DeveloperView,
    OfficialsView,
    backfill_history,
    build_air_quality_dashboard,
    build_traffic_dashboard,
    build_wall_display,
    citizens_scenario,
    developer_scenario,
    officials_scenario,
)

__all__ = [
    "CitizensView",
    "CityDeployment",
    "CityEcosystem",
    "CttEcosystem",
    "DeveloperView",
    "EcosystemConfig",
    "GatewayPlacement",
    "ImpactAssessment",
    "LocationImpact",
    "NodePlacement",
    "OfficialsView",
    "StreetClosure",
    "TransitImprovement",
    "apply_intervention",
    "assess_intervention",
    "backfill_history",
    "build_air_quality_dashboard",
    "build_traffic_dashboard",
    "build_wall_display",
    "citizens_scenario",
    "developer_scenario",
    "officials_scenario",
    "trondheim_deployment",
    "vejle_deployment",
]
