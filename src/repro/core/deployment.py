"""Deployment descriptors for the two pilot cities.

Paper §3: "two use cases of deploying our systems in Vejle, Denmark and
Trondheim, Norway, where two and twelve sensors were deployed
respectively".  Descriptors are declarative — node/gateway placements,
road network, climate — and the ecosystem builder turns them into live
simulations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geo import GeoPoint, TRONDHEIM, VEJLE
from ..sensors.environment import RoadSegment


@dataclass(frozen=True)
class NodePlacement:
    node_id: str
    location: GeoPoint
    #: Co-located with the official reference station (calibration anchor).
    colocated_with_reference: bool = False


@dataclass(frozen=True)
class GatewayPlacement:
    gateway_id: str
    location: GeoPoint
    altitude_m: float = 25.0


@dataclass(frozen=True)
class CityDeployment:
    """Everything needed to instantiate one pilot city."""

    city: str
    center: GeoPoint
    nodes: tuple[NodePlacement, ...]
    gateways: tuple[GatewayPlacement, ...]
    roads: tuple[RoadSegment, ...]
    mean_temp_c: float
    environment_seed: int

    @property
    def reference_node(self) -> NodePlacement | None:
        for node in self.nodes:
            if node.colocated_with_reference:
                return node
        return None

    @property
    def reference_location(self) -> GeoPoint | None:
        node = self.reference_node
        return node.location if node else None


def _ring(center: GeoPoint, n: int, radius_m: float, start_bearing: float = 0.0):
    step = 360.0 / n
    return [center.destination(start_bearing + i * step, radius_m) for i in range(n)]


def trondheim_deployment(seed: int = 7) -> CityDeployment:
    """The 12-node Trondheim pilot.

    Placement mimics the real deployment's logic: a co-located anchor at
    the official station, nodes along the main road (E6 through the
    centre), and a ring covering residential districts.  Three gateways
    give overlapping coverage of the bowl-shaped city.
    """
    center = TRONDHEIM
    e6 = RoadSegment(
        "E6", center.destination(200.0, 1800.0), center.destination(20.0, 1800.0),
        traffic_weight=1.0,
    )
    ring_road = RoadSegment(
        "omkjoringsveien",
        center.destination(140.0, 2500.0),
        center.destination(60.0, 2500.0),
        traffic_weight=0.8,
    )
    station_loc = center.destination(110.0, 900.0)  # "the only station"
    nodes = [
        NodePlacement("ctt-tr-01", station_loc, colocated_with_reference=True),
        # Four along E6.
        NodePlacement("ctt-tr-02", center.destination(200.0, 1200.0)),
        NodePlacement("ctt-tr-03", center.destination(195.0, 500.0)),
        NodePlacement("ctt-tr-04", center.destination(15.0, 700.0)),
        NodePlacement("ctt-tr-05", center.destination(18.0, 1400.0)),
        # Ring of residential-district nodes.
        *[
            NodePlacement(f"ctt-tr-{6 + i:02d}", loc)
            for i, loc in enumerate(_ring(center, 7, 1900.0, start_bearing=30.0))
        ],
    ]
    gateways = [
        GatewayPlacement("gw-tr-sentrum", center.destination(45.0, 300.0), 40.0),
        GatewayPlacement("gw-tr-tyholt", center.destination(100.0, 2100.0), 90.0),
        GatewayPlacement("gw-tr-heimdal", center.destination(195.0, 2300.0), 60.0),
    ]
    return CityDeployment(
        city="trondheim",
        center=center,
        nodes=tuple(nodes),
        gateways=tuple(gateways),
        roads=(e6, ring_road),
        mean_temp_c=5.0,
        environment_seed=seed,
    )


def vejle_deployment(seed: int = 13) -> CityDeployment:
    """The 2-node Vejle pilot: a compact town-centre deployment."""
    center = VEJLE
    main_road = RoadSegment(
        "vejlevej", center.destination(250.0, 1200.0), center.destination(70.0, 1200.0),
        traffic_weight=0.9,
    )
    nodes = (
        NodePlacement(
            "ctt-vj-01",
            center.destination(80.0, 400.0),
            colocated_with_reference=True,
        ),
        NodePlacement("ctt-vj-02", center.destination(250.0, 800.0)),
    )
    gateways = (
        GatewayPlacement("gw-vj-centrum", center.destination(0.0, 200.0), 35.0),
    )
    return CityDeployment(
        city="vejle",
        center=center,
        nodes=nodes,
        gateways=gateways,
        roads=(main_road,),
        mean_temp_c=8.5,
        environment_seed=seed,
    )
