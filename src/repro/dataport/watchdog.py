"""External watchdog (the AppBeat role).

Paper §2.3: "If the dataport itself fails, it is detected by an external
watchdog service, in this case AppBeat."  The watchdog lives *outside*
the actor system: it pings the dataport's health endpoint on a schedule
and raises DATAPORT_DOWN after consecutive failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..simclock import Scheduler
from .alarms import Alarm, AlarmKind, AlarmLog, Severity

#: Returns True when the monitored service answered the ping.
PingFunction = Callable[[], bool]


@dataclass
class WatchdogStats:
    pings: int = 0
    failures: int = 0
    incidents: int = 0


class Watchdog:
    """Heartbeat checker for one service."""

    def __init__(
        self,
        name: str,
        ping: PingFunction,
        alarms: AlarmLog,
        *,
        interval_s: int = 60,
        failures_to_alarm: int = 3,
    ) -> None:
        if failures_to_alarm < 1:
            raise ValueError("failures_to_alarm must be >= 1")
        self.name = name
        self._ping = ping
        self._alarms = alarms
        self.interval_s = interval_s
        self.failures_to_alarm = failures_to_alarm
        self._consecutive_failures = 0
        self.down = False
        self.stats = WatchdogStats()

    def start(self, scheduler: Scheduler) -> None:
        scheduler.call_every(self.interval_s, self.check)

    def check(self, now: int) -> bool:
        """One ping cycle; returns the ping outcome."""
        self.stats.pings += 1
        try:
            ok = bool(self._ping())
        except Exception:
            ok = False
        if ok:
            self._consecutive_failures = 0
            if self.down:
                self.down = False
                self._alarms.clear(AlarmKind.DATAPORT_DOWN, self.name)
            return True
        self.stats.failures += 1
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failures_to_alarm and not self.down:
            self.down = True
            self.stats.incidents += 1
            self._alarms.raise_alarm(
                Alarm(
                    AlarmKind.DATAPORT_DOWN,
                    self.name,
                    Severity.CRITICAL,
                    f"{self.name} failed {self._consecutive_failures} "
                    "consecutive health checks",
                    now,
                )
            )
        return False
