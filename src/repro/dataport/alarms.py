"""Alarm model: what the dataport raises when the system misbehaves.

Alarms carry a severity, a machine-readable kind, and the emitting
source.  The :class:`AlarmLog` deduplicates repeated raises of the same
(kind, source) pair while the alarm stays active, supports explicit
clearing, and keeps history for the dashboards.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable


class Severity(enum.IntEnum):
    """Ordered severities; higher is worse."""

    INFO = 0
    WARNING = 1
    CRITICAL = 2


class AlarmKind(enum.Enum):
    """The failure classes the paper's monitoring distinguishes."""

    SENSOR_OVERDUE = "sensor_overdue"
    SENSOR_DECAY_SUSPECTED = "sensor_decay_suspected"
    BATTERY_LOW = "battery_low"
    BATTERY_CRITICAL = "battery_critical"
    GATEWAY_OUTAGE = "gateway_outage"
    BACKEND_DOWN = "backend_down"
    MQTT_DOWN = "mqtt_down"
    DATAPORT_DOWN = "dataport_down"
    DATA_ANOMALY = "data_anomaly"


@dataclass(frozen=True)
class Alarm:
    """One alarm occurrence."""

    kind: AlarmKind
    source: str
    severity: Severity
    message: str
    raised_at: int

    @property
    def key(self) -> tuple[AlarmKind, str]:
        return (self.kind, self.source)


AlarmListener = Callable[[Alarm], None]


class AlarmLog:
    """Active-alarm registry with dedup, clearing, and history.

    Raising the same (kind, source) while it is already active is
    suppressed (one notification per incident, not one per detection
    cycle — the alarm-storm control the paper's hierarchy exists for).
    """

    def __init__(self) -> None:
        self._active: dict[tuple[AlarmKind, str], Alarm] = {}
        self.history: list[Alarm] = []
        self.suppressed = 0
        self._listeners: list[AlarmListener] = []

    def on_alarm(self, listener: AlarmListener) -> None:
        self._listeners.append(listener)

    def raise_alarm(self, alarm: Alarm) -> bool:
        """Register an alarm; returns True when it is a *new* incident."""
        if alarm.key in self._active:
            self.suppressed += 1
            return False
        self._active[alarm.key] = alarm
        self.history.append(alarm)
        for listener in self._listeners:
            listener(alarm)
        return True

    def clear(self, kind: AlarmKind, source: str) -> bool:
        """Mark an incident resolved; returns True when it was active."""
        return self._active.pop((kind, source), None) is not None

    def clear_source(self, source: str) -> int:
        """Clear every active alarm of one source (e.g. node recovered)."""
        keys = [k for k in self._active if k[1] == source]
        for k in keys:
            del self._active[k]
        return len(keys)

    # -- views -----------------------------------------------------------
    def active(
        self,
        *,
        min_severity: Severity = Severity.INFO,
        kind: AlarmKind | None = None,
    ) -> list[Alarm]:
        alarms = [
            a
            for a in self._active.values()
            if a.severity >= min_severity and (kind is None or a.kind is kind)
        ]
        return sorted(alarms, key=lambda a: (-a.severity, a.raised_at))

    def is_active(self, kind: AlarmKind, source: str) -> bool:
        return (kind, source) in self._active

    def counts_by_kind(self) -> dict[AlarmKind, int]:
        out: dict[AlarmKind, int] = {}
        for a in self._active.values():
            out[a.kind] = out.get(a.kind, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self._active)
