"""The dataport: actor-based monitoring with digital twins (paper §2.3)."""

from .actors import (
    Actor,
    ActorRef,
    ActorSystem,
    DeadLetter,
    SupervisionDirective,
    SupervisorStrategy,
    Terminated,
)
from .alarms import Alarm, AlarmKind, AlarmLog, Severity
from .app import (
    BatchingTsdbWriter,
    Dataport,
    DataportStats,
    TtnMqttBridge,
    UPLINK_FILTER,
    UPLINK_TOPIC_FMT,
)
from .twins import (
    BackendTwin,
    FleetSupervisor,
    GatewayHeard,
    GatewayRecovered,
    GatewaySilent,
    GatewayTwin,
    HealthCheck,
    SensorOverdue,
    SensorRecovered,
    SensorTwin,
    TwinConfig,
    UplinkObserved,
)
from .watchdog import Watchdog, WatchdogStats

__all__ = [
    "Actor",
    "ActorRef",
    "ActorSystem",
    "Alarm",
    "AlarmKind",
    "AlarmLog",
    "BackendTwin",
    "BatchingTsdbWriter",
    "Dataport",
    "DataportStats",
    "DeadLetter",
    "FleetSupervisor",
    "GatewayHeard",
    "GatewayRecovered",
    "GatewaySilent",
    "GatewayTwin",
    "HealthCheck",
    "SensorOverdue",
    "SensorRecovered",
    "SensorTwin",
    "Severity",
    "SupervisionDirective",
    "SupervisorStrategy",
    "Terminated",
    "TtnMqttBridge",
    "TwinConfig",
    "UPLINK_FILTER",
    "UPLINK_TOPIC_FMT",
    "UplinkObserved",
    "Watchdog",
    "WatchdogStats",
]
