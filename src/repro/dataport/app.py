"""The dataport application: Fig. 2's protocol pipeline, assembled.

Wires the numbered hops of the paper's protocol diagram:

1. sensors → LoRaWAN → gateways            (radio plane, upstream of here)
2. gateways → network server (TTN)          (upstream of here)
3. TTN → MQTT broker                        (:class:`TtnMqttBridge`)
4. MQTT → dataport                          (subscription below)
5. dataport → databases                     (TSDB writer)
6. dataport → alarms                        (twin hierarchy)
7. dataport → CTT network visualization     (:meth:`network_snapshot`)
8. watchdog → dataport (IP ping)            (:class:`~.watchdog.Watchdog`)

The dataport also answers REST-style status queries (the "CTT Dataport"
HTTP box in the figure) via plain methods returning JSON-able dicts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..lorawan import (
    NetworkServer,
    ReceivedUplink,
    decode_measurements,
    uplink_from_json,
    uplink_to_json,
)
from ..mqtt import Broker, Client
from ..simclock import Scheduler
from ..tsdb import (
    METRIC_BATTERY,
    METRIC_CO2,
    METRIC_HUMIDITY,
    METRIC_NO2,
    METRIC_PM10,
    METRIC_PM25,
    METRIC_PRESSURE,
    METRIC_TEMPERATURE,
    BatchBuilder,
    TimeSeriesStore,
)
from .actors import ActorSystem
from .alarms import AlarmLog, Severity
from .twins import (
    BackendTwin,
    FleetSupervisor,
    GatewayHeard,
    TwinConfig,
    UplinkObserved,
)

#: MQTT topic layout mirroring TTN's application topics.
UPLINK_TOPIC_FMT = "ctt/{city}/devices/{dev_eui}/up"
UPLINK_FILTER = "ctt/+/devices/+/up"


@dataclass
class DataportStats:
    uplinks_processed: int = 0
    decode_errors: int = 0
    points_written: int = 0
    batch_flushes: int = 0


class BatchingTsdbWriter:
    """Hop 5 writer: accumulates decoded measurements, flushes columnar.

    Points buffer in a :class:`~repro.tsdb.BatchBuilder` (series keys
    interned once per series, values in growable columns) and reach the
    database as one :meth:`~repro.tsdb.TSDB.put_batch` per flush —
    either when the dataport's scheduler tick fires, or when the buffer
    hits ``max_pending`` under burst load.  ``db`` is any
    :class:`~repro.tsdb.TimeSeriesStore` — the single-process
    :class:`~repro.tsdb.TSDB` or a :class:`~repro.tsdb.ShardedTSDB`
    (the batch boundary is exactly the shard-routing boundary).

    ``wal`` optionally attaches a write-ahead log: each flushed batch is
    appended to the log *before* it reaches the store, so a crash
    between the two replays losslessly.  Any writer with a
    ``write_batch(batch)`` method fits — a
    :class:`~repro.tsdb.SegmentWriter` (binary columnar segments, the
    fast path: the batch is already columnar, so the append is a couple
    of ``tobytes`` calls) or a legacy :class:`~repro.tsdb.LogWriter`.
    """

    def __init__(
        self,
        db: TimeSeriesStore,
        *,
        max_pending: int = 10_000,
        on_flush=None,
        wal=None,
    ) -> None:
        if max_pending <= 0:
            raise ValueError("max_pending must be positive")
        self.db = db
        self.max_pending = max_pending
        self.wal = wal
        self._builder = BatchBuilder()
        self._on_flush = on_flush
        self.flushes = 0
        self.written = 0

    @property
    def pending(self) -> int:
        """Points buffered but not yet visible in the database."""
        return len(self._builder)

    def add(self, metric: str, timestamp: int, value: float, tags) -> None:
        self._builder.add(metric, timestamp, value, tags)
        if len(self._builder) >= self.max_pending:
            self.flush()

    def add_series(self, metric: str, timestamps, values, tags=None) -> None:
        """Columnar add: one series' parallel timestamp/value columns."""
        self._builder.add_series(metric, timestamps, values, tags)
        if len(self._builder) >= self.max_pending:
            self.flush()

    def flush(self) -> int:
        """Write all buffered points as one batch; returns points written.

        With a WAL attached, the batch hits the log first (write-ahead:
        durability precedes visibility).  The builder is only cleared
        once both writes succeed, so a failed WAL append (disk full,
        say) keeps the points buffered and a later flush() retries them
        — replay stays correct because re-appending the same rows is
        last-write-wins idempotent."""
        if not len(self._builder):
            return 0
        batch = self._builder.build(clear=False)
        if self.wal is not None:
            self.wal.write_batch(batch)
        n = self.db.put_batch(batch)
        self._builder = BatchBuilder()
        self.flushes += 1
        self.written += n
        if self._on_flush is not None:
            self._on_flush(n)
        return n


class TtnMqttBridge:
    """Hop 3: republishes network-server uplinks onto MQTT (as TTN does)."""

    def __init__(
        self, network_server: NetworkServer, broker: Broker, city: str
    ) -> None:
        self.city = city
        self._client = broker.connect(f"ttn-bridge-{city}")
        network_server.on_uplink(self._publish)
        self.published = 0

    def _publish(self, received: ReceivedUplink) -> None:
        topic = UPLINK_TOPIC_FMT.format(
            city=self.city, dev_eui=received.uplink.dev_eui
        )
        self._client.publish(topic, uplink_to_json(received), qos=1)
        self.published += 1


class Dataport:
    """Hops 4-7: MQTT → twins → TSDB → alarms → status APIs."""

    #: Mapping from decoded payload fields to TSDB metrics.
    METRIC_MAP = {
        "co2_ppm": METRIC_CO2,
        "no2_ugm3": METRIC_NO2,
        "pm10_ugm3": METRIC_PM10,
        "pm25_ugm3": METRIC_PM25,
        "temperature_c": METRIC_TEMPERATURE,
        "pressure_hpa": METRIC_PRESSURE,
        "humidity_pct": METRIC_HUMIDITY,
    }

    def __init__(
        self,
        broker: Broker,
        db: TimeSeriesStore,
        scheduler: Scheduler,
        *,
        config: TwinConfig | None = None,
        node_locations: dict[str, tuple[float, float]] | None = None,
        node_city: dict[str, str] | None = None,
        batch_window_s: int = 0,
        max_pending_points: int = 10_000,
    ) -> None:
        self.db = db
        self.config = config or TwinConfig()
        self.alarms = AlarmLog()
        self.system = ActorSystem(scheduler)
        self.stats = DataportStats()
        self.healthy = True  # flipped by failure-injection tests
        self.node_locations = dict(node_locations or {})
        self.node_city = dict(node_city or {})
        # Hop 5 write path: with batch_window_s == 0 every uplink flushes
        # its (columnar) batch immediately, so points are visible to
        # queries as soon as the uplink is processed; with a positive
        # window, uplinks accumulate and flush once per scheduler tick.
        self.writer = BatchingTsdbWriter(
            db, max_pending=max_pending_points, on_flush=self._record_flush
        )
        self.batch_window_s = int(batch_window_s)
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        if self.batch_window_s > 0:
            scheduler.call_every(
                self.batch_window_s, lambda now: self.flush_writes()
            )

        self._supervisor_ref = self.system.spawn(
            lambda: FleetSupervisor(self.config, self.alarms), "fleet"
        )
        self._backend_ref = self.system.spawn(
            lambda: BackendTwin(self.alarms), "backend"
        )
        self._client: Client = broker.connect("dataport")
        self._client.subscribe(UPLINK_FILTER, self._on_mqtt, qos=1)

    # -- twin management ---------------------------------------------------
    @property
    def fleet(self) -> FleetSupervisor:
        actor = self.system.actor_instance(self._supervisor_ref)
        assert isinstance(actor, FleetSupervisor)
        return actor

    def register_sensor(
        self,
        node_id: str,
        location: tuple[float, float] | None = None,
        city: str | None = None,
    ) -> None:
        self.fleet.register_sensor(node_id)
        if location is not None:
            self.node_locations[node_id] = location
        if city is not None:
            self.node_city[node_id] = city

    def register_gateway(
        self, gateway_id: str, location: tuple[float, float] | None = None
    ) -> None:
        self.fleet.register_gateway(gateway_id)
        if location is not None:
            self.node_locations[gateway_id] = location

    # -- hop 4: MQTT ingestion ----------------------------------------------
    def _on_mqtt(self, message) -> None:
        if not self.healthy:
            return
        try:
            received = uplink_from_json(message.text())
            measurements = decode_measurements(received.uplink.payload)
        except Exception:
            self.stats.decode_errors += 1
            return
        self.stats.uplinks_processed += 1
        node_id = received.uplink.dev_eui
        city = self.node_city.get(node_id, message.topic.split("/")[1])

        # Hop 6: feed the twin hierarchy.
        fleet = self.fleet
        sensor_ref = fleet.sensor_refs.get(node_id)
        if sensor_ref is None:
            sensor_ref = fleet.register_sensor(node_id)
            self.node_city.setdefault(node_id, city)
        sensor_ref.tell(UplinkObserved(node_id, received, measurements))
        for reception in received.receptions:
            gw_ref = fleet.gateway_refs.get(reception.gateway_id)
            if gw_ref is None:
                gw_ref = fleet.register_gateway(reception.gateway_id)
            gw_ref.tell(
                GatewayHeard(
                    reception.gateway_id,
                    received.received_at,
                    reception.rssi_dbm,
                )
            )
        self._backend_ref.tell(
            BackendTwin.Heartbeat("ttn", received.received_at)
        )
        self._backend_ref.tell(
            BackendTwin.Heartbeat("mqtt", received.received_at)
        )

        # Hop 5: buffer for the columnar TSDB write path.
        tags = {"node": node_id, "city": city}
        ts = received.received_at
        for attr, metric in self.METRIC_MAP.items():
            self.writer.add(metric, ts, getattr(measurements, attr), tags)
        self.writer.add(METRIC_BATTERY, ts, measurements.battery_v, tags)
        if self.batch_window_s == 0:
            self.flush_writes()

    def _record_flush(self, n: int) -> None:
        self.stats.points_written += n
        self.stats.batch_flushes += 1

    def flush_writes(self) -> int:
        """Flush buffered points to the TSDB; returns points written."""
        return self.writer.flush()

    # -- hop 8: watchdog ping target -----------------------------------------
    def ping(self) -> bool:
        """Health endpoint: True while the ingestion path is alive."""
        return self.healthy

    # -- hop 7 + REST API ------------------------------------------------------
    def sensor_status(self, node_id: str) -> dict | None:
        ref = self.fleet.sensor_refs.get(node_id)
        if ref is None:
            return None
        twin = self.system.actor_instance(ref)
        return twin.status() if twin is not None else None

    def gateway_status(self, gateway_id: str) -> dict | None:
        ref = self.fleet.gateway_refs.get(gateway_id)
        if ref is None:
            return None
        twin = self.system.actor_instance(ref)
        return twin.status() if twin is not None else None

    def network_snapshot(self) -> dict:
        """Everything the network visualization (Fig. 3) needs."""
        fleet = self.fleet
        sensors = {}
        for node_id in fleet.sensor_refs:
            status = self.sensor_status(node_id)
            if status is not None:
                status["location"] = self.node_locations.get(node_id)
                status["city"] = self.node_city.get(node_id)
                sensors[node_id] = status
        gateways = {}
        for gw_id in fleet.gateway_refs:
            status = self.gateway_status(gw_id)
            if status is not None:
                status["location"] = self.node_locations.get(gw_id)
                gateways[gw_id] = status
        return {
            "sensors": sensors,
            "gateways": gateways,
            "overdue_sensors": fleet.overdue_sensors(),
            "silent_gateways": fleet.silent_gateways(),
            "active_alarms": [
                {
                    "kind": a.kind.value,
                    "source": a.source,
                    "severity": int(a.severity),
                    "message": a.message,
                }
                for a in self.alarms.active()
            ],
        }

    def status_json(self) -> str:
        """The REST endpoint body (hop 4's HTTP answer)."""
        snapshot = self.network_snapshot()
        snapshot["stats"] = {
            "uplinks_processed": self.stats.uplinks_processed,
            "decode_errors": self.stats.decode_errors,
            "points_written": self.stats.points_written,
            "points_pending": self.writer.pending,
            "batch_flushes": self.stats.batch_flushes,
            "critical_alarms": len(
                self.alarms.active(min_severity=Severity.CRITICAL)
            ),
        }
        return json.dumps(snapshot, sort_keys=True)
