"""A deterministic actor runtime (the Akka role in the paper).

Paper §2.3: the dataport "is built with the Akka framework, which
facilitates the creation of fault-tolerant applications based on the
actor model.  Actors are independent, supervised processes that
encapsulate data and control logic and communicate via messages."

This module reproduces the parts the dataport depends on:

- actors with mailboxes and run-to-completion message processing;
- a parent/child hierarchy ("actors are organized hierarchically");
- supervision: a failing actor is restarted/stopped/escalated per its
  parent's strategy, with a restart budget;
- timers bound to the simulation scheduler.

Delivery is deterministic: one system-wide FIFO dispatch queue, drained
run-to-completion whenever a message enters from outside.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from ..simclock import EventHandle, Scheduler


class SupervisionDirective(enum.Enum):
    """What a supervisor does with a failed child."""

    RESTART = "restart"
    STOP = "stop"
    ESCALATE = "escalate"


@dataclass(frozen=True)
class SupervisorStrategy:
    """Restart budget: at most ``max_restarts`` within ``window_s``.

    When the budget is exhausted the directive degrades to STOP.
    """

    directive: SupervisionDirective = SupervisionDirective.RESTART
    max_restarts: int = 3
    window_s: int = 3600


@dataclass(frozen=True)
class DeadLetter:
    """A message that could not be delivered."""

    target: str
    message: Any
    reason: str


@dataclass(frozen=True)
class Terminated:
    """Sent to watchers when an actor stops."""

    ref: "ActorRef"


class Actor:
    """Base class; subclass and override :meth:`receive`.

    Lifecycle hooks: :meth:`pre_start` runs on spawn and after each
    restart; :meth:`post_stop` runs when the actor stops for good.
    """

    def __init__(self) -> None:
        # Populated by the system before pre_start.
        self.context: ActorContext = None  # type: ignore[assignment]

    # -- lifecycle -------------------------------------------------------
    def pre_start(self) -> None:  # pragma: no cover - default no-op
        pass

    def post_stop(self) -> None:  # pragma: no cover - default no-op
        pass

    # -- behaviour -------------------------------------------------------
    def receive(self, message: Any, sender: "ActorRef | None") -> None:
        raise NotImplementedError

    # -- supervision -----------------------------------------------------
    def supervisor_strategy(self) -> SupervisorStrategy:
        """Strategy applied to *children* of this actor."""
        return SupervisorStrategy()


@dataclass(frozen=True)
class ActorRef:
    """Location-transparent handle to an actor."""

    path: str
    _system: "ActorSystem" = field(repr=False, compare=False)

    def tell(self, message: Any, sender: "ActorRef | None" = None) -> None:
        self._system._enqueue(self, message, sender)

    @property
    def name(self) -> str:
        return self.path.rsplit("/", 1)[-1]


class ActorContext:
    """Per-actor view of the system, available as ``self.context``."""

    def __init__(self, system: "ActorSystem", cell: "_Cell") -> None:
        self._system = system
        self._cell = cell

    @property
    def self_ref(self) -> ActorRef:
        return self._cell.ref

    @property
    def parent(self) -> ActorRef | None:
        return self._cell.parent.ref if self._cell.parent else None

    @property
    def system(self) -> "ActorSystem":
        return self._system

    @property
    def now(self) -> int:
        return self._system.scheduler.clock.now()

    def spawn(self, factory: Callable[[], Actor], name: str) -> ActorRef:
        return self._system._spawn(factory, name, parent=self._cell)

    def children(self) -> list[ActorRef]:
        return [c.ref for c in self._cell.children.values()]

    def stop(self, ref: ActorRef | None = None) -> None:
        self._system.stop(ref or self.self_ref)

    def watch(self, ref: ActorRef) -> None:
        """Receive a :class:`Terminated` message when ``ref`` stops."""
        cell = self._system._cells.get(ref.path)
        if cell is not None:
            cell.watchers.append(self.self_ref)

    def schedule_tell(
        self, delay_s: int, message: Any, to: ActorRef | None = None
    ) -> EventHandle:
        """Deliver ``message`` to ``to`` (default self) after ``delay_s``."""
        target = to or self.self_ref
        handle = self._system.scheduler.call_after(
            delay_s, lambda now: target.tell(message)
        )
        self._cell.timers.append(handle)
        return handle

    def schedule_tell_every(
        self, interval_s: int, message: Any, to: ActorRef | None = None
    ) -> EventHandle:
        target = to or self.self_ref
        handle = self._system.scheduler.call_every(
            interval_s, lambda now: target.tell(message)
        )
        self._cell.timers.append(handle)
        return handle


class _Cell:
    """Internal actor bookkeeping."""

    __slots__ = (
        "ref",
        "factory",
        "actor",
        "parent",
        "children",
        "watchers",
        "stopped",
        "restart_times",
        "timers",
    )

    def __init__(
        self,
        ref: ActorRef,
        factory: Callable[[], Actor],
        parent: "_Cell | None",
    ) -> None:
        self.ref = ref
        self.factory = factory
        self.actor: Actor | None = None
        self.parent = parent
        self.children: dict[str, _Cell] = {}
        self.watchers: list[ActorRef] = []
        self.stopped = False
        self.restart_times: list[int] = []
        self.timers: list[EventHandle] = []


class ActorSystem:
    """The deterministic actor runtime.

    Messages are processed in FIFO order across the whole system, one at
    a time, run to completion.  A message sent while another is being
    processed is queued behind it — exactly the semantics tests need for
    reproducibility.
    """

    def __init__(self, scheduler: Scheduler | None = None, name: str = "dataport") -> None:
        self.name = name
        self.scheduler = scheduler if scheduler is not None else Scheduler()
        self._cells: dict[str, _Cell] = {}
        self._queue: deque[tuple[ActorRef, Any, ActorRef | None]] = deque()
        self._dispatching = False
        self.dead_letters: list[DeadLetter] = []
        self.processed = 0
        root_ref = ActorRef(f"{name}://", self)
        self._root = _Cell(root_ref, Actor, None)

    # -- spawning ----------------------------------------------------------
    def spawn(self, factory: Callable[[], Actor], name: str) -> ActorRef:
        """Create a top-level actor."""
        return self._spawn(factory, name, parent=self._root)

    def _spawn(
        self, factory: Callable[[], Actor], name: str, parent: _Cell
    ) -> ActorRef:
        if "/" in name:
            raise ValueError(f"actor name may not contain '/': {name!r}")
        path = f"{parent.ref.path}/{name}"  # root "name://" -> "name:///child"
        if name in parent.children:
            raise ValueError(f"duplicate child name {name!r} under {parent.ref.path}")
        ref = ActorRef(path, self)
        cell = _Cell(ref, factory, parent)
        parent.children[name] = cell
        self._cells[path] = cell
        self._start(cell)
        return ref

    def _start(self, cell: _Cell) -> None:
        actor = cell.factory()
        actor.context = ActorContext(self, cell)
        cell.actor = actor
        actor.pre_start()

    # -- messaging ---------------------------------------------------------
    def _enqueue(self, target: ActorRef, message: Any, sender: ActorRef | None) -> None:
        self._queue.append((target, message, sender))
        if not self._dispatching:
            self.dispatch_all()

    def dispatch_all(self) -> int:
        """Drain the dispatch queue; returns messages processed."""
        if self._dispatching:
            return 0
        self._dispatching = True
        n = 0
        try:
            while self._queue:
                target, message, sender = self._queue.popleft()
                self._deliver(target, message, sender)
                n += 1
        finally:
            self._dispatching = False
        self.processed += n
        return n

    def _deliver(self, target: ActorRef, message: Any, sender: ActorRef | None) -> None:
        cell = self._cells.get(target.path)
        if cell is None or cell.stopped or cell.actor is None:
            self.dead_letters.append(
                DeadLetter(target.path, message, "no such actor")
            )
            return
        try:
            cell.actor.receive(message, sender)
        except Exception as exc:  # supervision boundary
            self._handle_failure(cell, exc)

    # -- supervision ---------------------------------------------------------
    def _handle_failure(self, cell: _Cell, exc: Exception) -> None:
        parent = cell.parent
        strategy = (
            parent.actor.supervisor_strategy()
            if parent is not None and parent.actor is not None
            else SupervisorStrategy()
        )
        directive = strategy.directive
        if directive is SupervisionDirective.RESTART:
            now = self.scheduler.clock.now()
            cell.restart_times = [
                t for t in cell.restart_times if t >= now - strategy.window_s
            ]
            if len(cell.restart_times) >= strategy.max_restarts:
                directive = SupervisionDirective.STOP
            else:
                cell.restart_times.append(now)
                self._restart(cell, exc)
                return
        if directive is SupervisionDirective.STOP:
            self.stop(cell.ref)
            return
        # ESCALATE: treat the parent as failed.
        if parent is not None and parent is not self._root:
            self._handle_failure(parent, exc)
        else:
            self.stop(cell.ref)

    def _restart(self, cell: _Cell, exc: Exception) -> None:
        # Akka semantics: a restart replaces the actor instance and its
        # children; pre_start rebuilds the subtree from scratch.
        for child in list(cell.children.values()):
            self.stop(child.ref)
        for timer in cell.timers:
            timer.cancel()
        cell.timers.clear()
        old = cell.actor
        if old is not None:
            try:
                old.post_stop()
            except Exception:
                pass
        self._start(cell)

    # -- stopping --------------------------------------------------------------
    def stop(self, ref: ActorRef) -> None:
        cell = self._cells.get(ref.path)
        if cell is None or cell.stopped:
            return
        for child in list(cell.children.values()):
            self.stop(child.ref)
        cell.stopped = True
        for timer in cell.timers:
            timer.cancel()
        if cell.actor is not None:
            try:
                cell.actor.post_stop()
            except Exception:
                pass
        for watcher in cell.watchers:
            watcher.tell(Terminated(cell.ref))
        if cell.parent is not None:
            cell.parent.children.pop(cell.ref.name, None)
        del self._cells[ref.path]

    # -- introspection ------------------------------------------------------
    def actor_of(self, path: str) -> ActorRef | None:
        cell = self._cells.get(path)
        return cell.ref if cell else None

    def actor_instance(self, ref: ActorRef) -> Actor | None:
        """The live actor object (tests and status views only)."""
        cell = self._cells.get(ref.path)
        return cell.actor if cell and not cell.stopped else None

    def actor_count(self) -> int:
        return len(self._cells)

    def tree(self) -> dict:
        """Nested dict of the live hierarchy (for Fig. 3/8 renderers)."""

        def walk(cell: _Cell) -> dict:
            return {name: walk(child) for name, child in sorted(cell.children.items())}

        return walk(self._root)
