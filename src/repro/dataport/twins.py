"""Digital twins: one actor per physical device.

Paper §2.3: "Each device in the real world corresponds to a dedicated
actor that acts as its digital twin ... It keeps track of its state in
real-time, monitors all communication and triggers alarms if data is not
received as expected."  And crucially: "As sensor nodes can adapt their
frequency based on battery levels, a complex model of the sensor node
and its status is needed for detection" — the sensor twin therefore
mirrors the node's adaptive sampling policy to compute the *currently
expected* reporting interval before declaring data missing.

Hierarchy (paper: "Actors are organized hierarchically. On higher
levels, failures can be grouped so that for example a distinction can be
drawn between sensor failures versus a gateway outage"):

    FleetSupervisor
      +- sensor twins (one per node)
      +- gateway twins (one per gateway)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lorawan import Measurements, ReceivedUplink
from ..sensors.power import voltage_to_soc
from .actors import Actor, ActorRef
from .alarms import Alarm, AlarmKind, AlarmLog, Severity

# ---------------------------------------------------------------------------
# Messages
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class UplinkObserved:
    """A deduplicated uplink attributed to one sensor."""

    node_id: str
    received: ReceivedUplink
    measurements: Measurements


@dataclass(frozen=True)
class GatewayHeard:
    """One gateway appeared in an uplink's reception metadata."""

    gateway_id: str
    timestamp: int
    rssi_dbm: float


@dataclass(frozen=True)
class HealthCheck:
    """Periodic tick asking a twin to evaluate its liveness model."""


@dataclass(frozen=True)
class SensorOverdue:
    node_id: str
    last_seen: int | None
    overdue_cycles: float
    recent_gateways: frozenset[str]


@dataclass(frozen=True)
class SensorRecovered:
    node_id: str


@dataclass(frozen=True)
class GatewaySilent:
    gateway_id: str
    last_seen: int | None


@dataclass(frozen=True)
class GatewayRecovered:
    gateway_id: str


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TwinConfig:
    """Detection parameters shared by the twin actors.

    ``cycles_to_failure`` is the paper's "it takes some cycles to
    determine a failure with certainty".
    """

    nominal_interval_s: int = 300
    cycles_to_failure: float = 3.0
    check_interval_s: int = 300
    gateway_silence_s: int = 900
    battery_low_v: float = 3.55
    battery_critical_v: float = 3.30
    # Mirror of the node's BatteryAdaptive policy.
    low_soc: float = 0.25
    critical_soc: float = 0.08
    low_factor: int = 3
    critical_factor: int = 12


# ---------------------------------------------------------------------------
# Twins
# ---------------------------------------------------------------------------


class SensorTwin(Actor):
    """Virtual model of one sensor node."""

    def __init__(self, node_id: str, config: TwinConfig, alarms: AlarmLog) -> None:
        super().__init__()
        self.node_id = node_id
        self.config = config
        self.alarms = alarms
        self.last_seen: int | None = None
        self.last_battery_v: float | None = None
        self.last_measurements: Measurements | None = None
        self.last_rssi_dbm: float | None = None
        self.recent_gateways: set[str] = set()
        self.uplinks = 0
        self.overdue = False
        self._observed_intervals: list[int] = []

    def pre_start(self) -> None:
        self.context.schedule_tell_every(self.config.check_interval_s, HealthCheck())

    # -- the "complex model of the sensor node" -------------------------
    def expected_interval(self) -> float:
        """Currently expected reporting interval.

        Combines the adaptive-policy mirror (battery level implies a
        stretched interval) with the empirically observed cadence, taking
        the more forgiving of the two so a twin never flags a node that
        is merely slow by design.
        """
        policy = float(self.config.nominal_interval_s)
        if self.last_battery_v is not None:
            soc = voltage_to_soc(self.last_battery_v)
            if soc <= self.config.critical_soc:
                policy *= self.config.critical_factor
            elif soc <= self.config.low_soc:
                policy *= self.config.low_factor
        if self._observed_intervals:
            observed = sorted(self._observed_intervals)[
                len(self._observed_intervals) // 2
            ]
            return max(policy, float(observed))
        return policy

    # -- behaviour --------------------------------------------------------
    def receive(self, message, sender) -> None:
        if isinstance(message, UplinkObserved):
            self._on_uplink(message)
        elif isinstance(message, HealthCheck):
            self._check(self.context.now)

    def _on_uplink(self, msg: UplinkObserved) -> None:
        now = msg.received.received_at
        if self.last_seen is not None:
            interval = now - self.last_seen
            if interval > 0:
                self._observed_intervals.append(interval)
                if len(self._observed_intervals) > 24:
                    self._observed_intervals = self._observed_intervals[-24:]
        self.last_seen = now
        self.uplinks += 1
        self.last_measurements = msg.measurements
        self.last_battery_v = msg.measurements.battery_v
        self.last_rssi_dbm = msg.received.best_reception.rssi_dbm
        self.recent_gateways = set(msg.received.gateway_ids)

        if self.overdue:
            self.overdue = False
            self.alarms.clear(AlarmKind.SENSOR_OVERDUE, self.node_id)
            if self.context.parent:
                self.context.parent.tell(SensorRecovered(self.node_id))
        self._check_battery(now)

    def _check_battery(self, now: int) -> None:
        v = self.last_battery_v
        if v is None:
            return
        if v <= self.config.battery_critical_v:
            self.alarms.raise_alarm(
                Alarm(
                    AlarmKind.BATTERY_CRITICAL,
                    self.node_id,
                    Severity.CRITICAL,
                    f"battery critical: {v:.2f} V",
                    now,
                )
            )
        elif v <= self.config.battery_low_v:
            self.alarms.raise_alarm(
                Alarm(
                    AlarmKind.BATTERY_LOW,
                    self.node_id,
                    Severity.WARNING,
                    f"battery low: {v:.2f} V",
                    now,
                )
            )
        else:
            self.alarms.clear(AlarmKind.BATTERY_LOW, self.node_id)
            self.alarms.clear(AlarmKind.BATTERY_CRITICAL, self.node_id)

    def _check(self, now: int) -> None:
        if self.last_seen is None:
            return  # never joined; commissioning is not an outage
        cycles = (now - self.last_seen) / self.expected_interval()
        if cycles >= self.config.cycles_to_failure and not self.overdue:
            self.overdue = True
            if self.context.parent:
                self.context.parent.tell(
                    SensorOverdue(
                        node_id=self.node_id,
                        last_seen=self.last_seen,
                        overdue_cycles=cycles,
                        recent_gateways=frozenset(self.recent_gateways),
                    )
                )

    def status(self) -> dict:
        """Snapshot for the network visualization and wall display."""
        return {
            "node_id": self.node_id,
            "last_seen": self.last_seen,
            "uplinks": self.uplinks,
            "battery_v": self.last_battery_v,
            "rssi_dbm": self.last_rssi_dbm,
            "overdue": self.overdue,
            "gateways": sorted(self.recent_gateways),
            "expected_interval_s": self.expected_interval(),
        }


class GatewayTwin(Actor):
    """Virtual model of one gateway."""

    def __init__(self, gateway_id: str, config: TwinConfig, alarms: AlarmLog) -> None:
        super().__init__()
        self.gateway_id = gateway_id
        self.config = config
        self.alarms = alarms
        self.last_seen: int | None = None
        self.frames = 0
        self.silent = False
        self.last_rssi_dbm: float | None = None

    def pre_start(self) -> None:
        self.context.schedule_tell_every(self.config.check_interval_s, HealthCheck())

    def receive(self, message, sender) -> None:
        if isinstance(message, GatewayHeard):
            self.last_seen = message.timestamp
            self.frames += 1
            self.last_rssi_dbm = message.rssi_dbm
            if self.silent:
                self.silent = False
                if self.context.parent:
                    self.context.parent.tell(GatewayRecovered(self.gateway_id))
        elif isinstance(message, HealthCheck):
            self._check(self.context.now)

    def _check(self, now: int) -> None:
        if self.last_seen is None or self.silent:
            return
        if now - self.last_seen >= self.config.gateway_silence_s:
            self.silent = True
            if self.context.parent:
                self.context.parent.tell(
                    GatewaySilent(self.gateway_id, self.last_seen)
                )

    def status(self) -> dict:
        return {
            "gateway_id": self.gateway_id,
            "last_seen": self.last_seen,
            "frames": self.frames,
            "silent": self.silent,
        }


class FleetSupervisor(Actor):
    """Parent of all twins; groups failures hierarchically.

    The paper's example: "a distinction can be drawn between sensor
    failures versus a gateway outage that would make a set of sensors
    invisible".  When every gateway a set of overdue sensors relied on is
    silent, the supervisor raises one GATEWAY_OUTAGE alarm per gateway
    instead of an alarm storm of per-sensor incidents.
    """

    def __init__(self, config: TwinConfig, alarms: AlarmLog) -> None:
        super().__init__()
        self.config = config
        self.alarms = alarms
        self.sensor_refs: dict[str, ActorRef] = {}
        self.gateway_refs: dict[str, ActorRef] = {}
        self._overdue: dict[str, SensorOverdue] = {}
        self._silent_gateways: set[str] = set()

    # -- registration -----------------------------------------------------
    def register_sensor(self, node_id: str) -> ActorRef:
        ref = self.context.spawn(
            lambda: SensorTwin(node_id, self.config, self.alarms),
            f"sensor-{node_id}",
        )
        self.sensor_refs[node_id] = ref
        return ref

    def register_gateway(self, gateway_id: str) -> ActorRef:
        ref = self.context.spawn(
            lambda: GatewayTwin(gateway_id, self.config, self.alarms),
            f"gateway-{gateway_id}",
        )
        self.gateway_refs[gateway_id] = ref
        return ref

    # -- behaviour ----------------------------------------------------------
    def receive(self, message, sender) -> None:
        if isinstance(message, SensorOverdue):
            self._overdue[message.node_id] = message
            self._classify(message)
        elif isinstance(message, SensorRecovered):
            self._overdue.pop(message.node_id, None)
        elif isinstance(message, GatewaySilent):
            self._silent_gateways.add(message.gateway_id)
            self.alarms.raise_alarm(
                Alarm(
                    AlarmKind.GATEWAY_OUTAGE,
                    message.gateway_id,
                    Severity.CRITICAL,
                    f"gateway {message.gateway_id} silent "
                    f"(last frame at {message.last_seen})",
                    self.context.now,
                )
            )
            # Reclassify already-flagged sensors: they may be victims.
            for overdue in list(self._overdue.values()):
                self._classify(overdue)
        elif isinstance(message, GatewayRecovered):
            self._silent_gateways.discard(message.gateway_id)
            self.alarms.clear(AlarmKind.GATEWAY_OUTAGE, message.gateway_id)

    def _classify(self, overdue: SensorOverdue) -> None:
        """Per-sensor alarm only when the outage is not explained by
        a silent gateway the sensor depended on."""
        gateways = overdue.recent_gateways
        explained = bool(gateways) and gateways <= self._silent_gateways
        if explained:
            # Grouped under the gateway alarm; clear any per-sensor alarm.
            self.alarms.clear(AlarmKind.SENSOR_OVERDUE, overdue.node_id)
            return
        self.alarms.raise_alarm(
            Alarm(
                AlarmKind.SENSOR_OVERDUE,
                overdue.node_id,
                Severity.WARNING,
                f"sensor {overdue.node_id} overdue "
                f"({overdue.overdue_cycles:.1f} expected cycles missed)",
                self.context.now,
            )
        )

    # -- views ----------------------------------------------------------------
    def overdue_sensors(self) -> list[str]:
        return sorted(self._overdue)

    def silent_gateways(self) -> list[str]:
        return sorted(self._silent_gateways)


class BackendTwin(Actor):
    """Monitors the larger system: TTN backend and MQTT connection.

    Receives heartbeats from the bridge; silence beyond the timeout
    raises BACKEND_DOWN / MQTT_DOWN.
    """

    @dataclass(frozen=True)
    class Heartbeat:
        component: str  # "ttn" | "mqtt"
        timestamp: int

    def __init__(self, alarms: AlarmLog, timeout_s: int = 600, check_interval_s: int = 300) -> None:
        super().__init__()
        self.alarms = alarms
        self.timeout_s = timeout_s
        self.check_interval_s = check_interval_s
        self.last_heartbeat: dict[str, int] = {}

    def pre_start(self) -> None:
        self.context.schedule_tell_every(self.check_interval_s, HealthCheck())

    _KIND = {"ttn": AlarmKind.BACKEND_DOWN, "mqtt": AlarmKind.MQTT_DOWN}

    def receive(self, message, sender) -> None:
        if isinstance(message, BackendTwin.Heartbeat):
            self.last_heartbeat[message.component] = message.timestamp
            kind = self._KIND.get(message.component)
            if kind is not None:
                self.alarms.clear(kind, message.component)
        elif isinstance(message, HealthCheck):
            now = self.context.now
            for component, last in self.last_heartbeat.items():
                if now - last >= self.timeout_s:
                    kind = self._KIND.get(component, AlarmKind.BACKEND_DOWN)
                    self.alarms.raise_alarm(
                        Alarm(
                            kind,
                            component,
                            Severity.CRITICAL,
                            f"{component} heartbeat missing for {now - last} s",
                            now,
                        )
                    )
