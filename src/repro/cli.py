"""Command-line interface: ``python -m repro <command>``.

Small operational wrapper over the library so a city operator can poke
the system without writing code:

- ``demo``        — run the two-city EDBT demonstration;
- ``run``         — simulate one city for N hours and print pipeline stats;
- ``dashboard``   — render the Fig. 6 air-quality dashboard as text;
- ``table1``      — show the external-source catalog status;
- ``wall``        — render the Fig. 8 wall display once;
- ``query``       — batch-execute OpenTSDB-shape queries over a simulated
  city and print the JSON wire response; with ``--connect HOST:PORT``
  the queries go to a running query server instead;
- ``catalog``     — series-metadata lookups (metrics, tag keys, tag
  values, cardinality) against a simulated city or, with
  ``--connect``, a running query server;
- ``serve``       — simulate a city, then serve its store over the
  asyncio TCP query service (newline-delimited JSON wire requests);
  SIGTERM drains admitted requests before exiting, and
  ``--replicate-to HOST:PORT`` ships every committed write to a
  follower;
- ``follow``      — run a hot-standby replica: apply shipped segment
  blocks into a local store, promote to a read-write primary on
  SIGUSR1 (optionally serving queries), shut down cleanly on SIGTERM;
- ``convert-log`` — migrate a WAL/snapshot between the text line
  protocol and binary columnar segments.
"""

from __future__ import annotations

import argparse
import sys

from .core import (
    CttEcosystem,
    EcosystemConfig,
    build_air_quality_dashboard,
    build_wall_display,
    trondheim_deployment,
    vejle_deployment,
)
from .integration import render_table1
from .region import Backpressure, CityPolicy
from .simclock import HOUR


def _deployment(city: str):
    if city == "trondheim":
        return trondheim_deployment()
    if city == "vejle":
        return vejle_deployment()
    raise SystemExit(f"unknown city {city!r}; pick 'trondheim' or 'vejle'")


def _build(
    city: str, hours: int, seed: int, shards: int = 0
) -> tuple[CttEcosystem, object]:
    eco = CttEcosystem(
        [_deployment(city)],
        config=EcosystemConfig(seed=seed, tsdb_shards=shards),
    )
    eco.start()
    eco.run(hours * HOUR)
    return eco, eco.city(city)


def cmd_run(args: argparse.Namespace) -> int:
    if args.cities:
        return _run_region(args)
    eco, city = _build(args.city, args.hours, args.seed, args.shards)
    stats = city.delivery_stats()
    store = f"sharded tsdb ({args.shards} shards)" if args.shards else "tsdb"
    print(f"{args.city}: {args.hours} simulated hour(s), store: {store}")
    for key, value in stats.items():
        print(f"  {key:>22}: {value}")
    return 0


def _run_region(args: argparse.Namespace) -> int:
    """Multi-city fan-in run: N dataports → RegionalHub → one store."""
    import contextlib
    import tempfile

    names = [c.strip() for c in args.cities.split(",") if c.strip()]
    if len(names) != len(set(names)):
        raise SystemExit("--cities must not repeat a city")
    with contextlib.ExitStack() as stack:
        spill_dir = None
        if args.backpressure == Backpressure.SPILL.value:
            spill_dir = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-region-spill-")
            )
        return _run_region_inner(args, names, spill_dir)


def _run_region_inner(args, names: list[str], spill_dir: str | None) -> int:
    policies = tuple(
        CityPolicy(
            name,
            queue_capacity=args.queue_depth,
            backpressure=args.backpressure,
        )
        for name in names
    )
    eco = CttEcosystem(
        [_deployment(name) for name in names],
        config=EcosystemConfig(
            seed=args.seed,
            tsdb_shards=args.shards,
            cities=policies,
            region_spill_dir=spill_dir,
        ),
    )
    eco.start()
    eco.run(args.hours * HOUR)
    eco.flush_region()
    store = f"sharded tsdb ({args.shards} shards)" if args.shards else "tsdb"
    print(
        f"regional fan-in: {len(names)} cities, {args.hours} simulated "
        f"hour(s), store: {store}, backpressure: {args.backpressure}, "
        f"queue depth: {args.queue_depth}"
    )
    for name in names:
        stats = eco.city(name).delivery_stats()
        lane = eco.hub.city_stats(name)
        print(f"  [{name}]")
        for key in ("transmissions", "processed_dataport", "points_written"):
            print(f"    {key:>22}: {stats[key]}")
        for key in (
            "accepted_points",
            "dropped_points",
            "spilled_points",
            "flushed_points",
            "high_watermark",
            "refused_offers",
        ):
            print(f"    {key:>22}: {lane[key]}")
    hub = eco.hub.stats_snapshot()["hub"]
    print(f"  hub: {hub['flushed_points']} points over {hub['flushes']} flushes "
          f"({hub['ticks']} ticks)")
    return 0


def cmd_dashboard(args: argparse.Namespace) -> int:
    eco, city = _build(args.city, args.hours, args.seed, args.shards)
    start = eco.now - args.hours * HOUR
    dash = build_air_quality_dashboard(city, start, eco.now)
    print(dash.render_text())
    return 0


def cmd_wall(args: argparse.Namespace) -> int:
    eco, city = _build(args.city, args.hours, args.seed, args.shards)
    start = eco.now - args.hours * HOUR
    print(build_wall_display(city, start, eco.now).render_text())
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    eco = CttEcosystem([_deployment(args.city)],
                       config=EcosystemConfig(seed=args.seed))
    print(render_table1(eco.city(args.city).catalog))
    return 0


def _parse_tag_pairs(spec: str | None, *, context: str = "query") -> dict:
    tags: dict = {}
    for pair in (spec or "").split(","):
        if not pair.strip():
            continue
        if "=" not in pair:
            raise SystemExit(
                f"{context}: bad --tags entry {pair!r}; expected k=v"
            )
        k, v = pair.split("=", 1)
        tags[k.strip()] = v.strip()
    return tags


def _parse_tags(city: str, spec: str | None) -> dict:
    return {"city": city, **_parse_tag_pairs(spec)}


def _flag_queries(args: argparse.Namespace, start: int, end: int) -> list:
    from .tsdb import Query, QueryError

    tags = _parse_tags(args.city, args.tags)
    group_by = tuple(
        g.strip() for g in (args.group_by or "").split(",") if g.strip()
    )
    try:
        return [
            Query(
                metric.strip(),
                start,
                end,
                tags=tags,
                aggregator=args.agg,
                downsample=args.downsample,
                rate=args.rate,
                group_by=group_by,
            )
            for metric in args.metrics.split(",")
        ]
    except QueryError as exc:
        raise SystemExit(f"query: {exc}")


def _parse_connect(spec: str, *, flag: str = "--connect") -> tuple[str, int]:
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise SystemExit(f"bad {flag} {spec!r}; expected HOST:PORT")
    try:
        return host, int(port)
    except ValueError:
        raise SystemExit(f"bad {flag} port {port!r}")


def cmd_query(args: argparse.Namespace) -> int:
    """Batched queries as wire JSON, local or over the network.

    Two input modes, both executed through ``run_many`` as one batch:

    - flags: ``query air.co2.ppm,weather.temperature.c --downsample
      1h-avg --group-by node`` builds one query per metric over the
      simulated window;
    - ``--request FILE``: a versioned wire-format JSON request
      (``-`` = stdin) with absolute start/end, for exact replays.

    With ``--connect HOST:PORT`` nothing is simulated locally: the
    batch is shipped to a running ``repro serve`` endpoint through the
    client SDK and the server's raw JSON reply is printed.  Flag-built
    queries then need absolute ``--start``/``--end`` timestamps
    (the remote store's clock, not ours).
    """
    import json
    from pathlib import Path

    from .tsdb import WireError, wire

    # Validate the request before paying for the simulation: a bad wire
    # file should fail in milliseconds, not after N simulated hours.
    queries = None
    if args.request:
        text = sys.stdin.read() if args.request == "-" else Path(args.request).read_text()
        try:
            queries = wire.decode_request(text)
        except WireError as exc:
            raise SystemExit(f"query: bad request: {exc}")
    elif not args.metrics:
        raise SystemExit("query: give METRIC[,METRIC...] or --request FILE")

    if args.connect:
        from .serve import QueryClient

        host, port = _parse_connect(args.connect)
        if queries is None:
            if args.start is None or args.end is None:
                raise SystemExit(
                    "query: --connect with flag-built queries needs absolute "
                    "--start and --end (or use --request FILE)"
                )
            queries = _flag_queries(args, args.start, args.end)
        try:
            with QueryClient(host, port, tenant=args.tenant) as client:
                response = client.request(queries, refresh=args.refresh)
        except OSError as exc:
            raise SystemExit(f"query: cannot reach {host}:{port}: {exc}")
        print(json.dumps(response, indent=2))
        return 0 if "error" not in response else 1

    eco, city = _build(args.city, args.hours, args.seed, args.shards)
    if queries is None:
        end = eco.now
        queries = _flag_queries(args, end - args.hours * HOUR, end)
    results = city.db.run_many(queries)
    print(json.dumps(wire.encode_response(results), indent=2))
    return 0


def cmd_catalog(args: argparse.Namespace) -> int:
    """Series-metadata lookups as wire JSON, local or over the network.

    The op is inferred from the flags, mirroring OpenTSDB's
    ``/api/suggest`` family:

    - no flags              → ``metrics`` (every metric in the store);
    - ``--metric M``        → ``tag_keys`` (tag keys under ``M``);
    - ``--metric M --key K``→ ``tag_values`` (distinct values of ``K``);
    - ``--metric M --cardinality [--tags K=V,...]`` → matching-series
      count (tag values may use ``*`` and ``a|b`` patterns).

    Locally the lookup runs against a freshly simulated city; with
    ``--connect HOST:PORT`` it goes to a running ``repro serve``
    endpoint (where it is answered from the server's generation-
    validated catalog cache).  Exit status 1 on an in-band error reply
    — e.g. a guard-rail rejection.
    """
    import json

    from .tsdb import wire

    if args.key and args.cardinality:
        raise SystemExit("catalog: --key and --cardinality are exclusive")
    if (args.key or args.cardinality) and not args.metric:
        raise SystemExit("catalog: --key/--cardinality need --metric")
    if args.tags and not args.cardinality:
        raise SystemExit("catalog: --tags only applies to --cardinality")
    if args.cardinality:
        op = "cardinality"
    elif args.key:
        op = "tag_values"
    elif args.metric:
        op = "tag_keys"
    else:
        op = "metrics"
    tags = _parse_tag_pairs(args.tags, context="catalog") or None

    if args.connect:
        from .serve import QueryClient

        host, port = _parse_connect(args.connect)
        try:
            with QueryClient(host, port, tenant=args.tenant) as client:
                response = client.catalog_request(
                    op, metric=args.metric, key=args.key, tags=tags
                )
        except OSError as exc:
            raise SystemExit(f"catalog: cannot reach {host}:{port}: {exc}")
    else:
        eco, city = _build(args.city, args.hours, args.seed, args.shards)
        request = wire.encode_catalog_request(
            op, metric=args.metric, key=args.key, tags=tags
        )
        response = wire.handle_catalog_request(city.db, request)
    print(json.dumps(response, indent=2))
    return 0 if "error" not in response else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Simulate a city, then serve its store over asyncio TCP.

    The simulated window is the data set; clients query it with
    absolute timestamps (the bound window is printed on startup).
    Runs until SIGTERM/SIGINT, then *drains*: admitted requests are
    answered, new ones refused, and only then does the process exit.

    With ``--replicate-to HOST:PORT`` the store is wrapped in a
    :class:`~repro.replication.ReplicatedStore` and a shipper streams
    its history (bootstrapped from a binary snapshot of the simulated
    window) plus any later writes to a ``repro follow`` standby.

    With ``--wal PATH`` the store journals through a
    :class:`~repro.tsdb.tier.DurableStore` (the simulated window is
    snapshotted as the journal's base, later writes append); adding
    ``--compact-every SECONDS`` runs the tiered-storage compactor over
    the journal in the background, rewriting it whenever the trigger
    policy finds it fragmented.
    """
    import asyncio
    import io
    import signal

    from .serve import QueryServer, TenantPolicy

    if args.compact_every is not None and not args.wal:
        raise SystemExit("serve: --compact-every requires --wal PATH")

    eco, city = _build(args.city, args.hours, args.seed, args.shards)
    store = city.db
    replicate_to = None
    if args.replicate_to:
        from .replication import ReplicatedStore, ReplicationLog
        from .tsdb import dumps

        replicate_to = _parse_connect(args.replicate_to, flag="--replicate-to")
        log = ReplicationLog()
        # The simulated history predates the tee: bootstrap the log from
        # a binary snapshot so the follower converges on the full store.
        log.append_segment(io.BytesIO(dumps(store, format="binary")))
        store = ReplicatedStore(store, log)
    durable = None
    if args.wal:
        from .tsdb import snapshot
        from .tsdb.tier import DurableStore

        # The journal's base is the simulated window; every later write
        # appends, so replaying the file rebuilds the served store.
        snapshot(store, args.wal, format="binary")
        store = durable = DurableStore(store, args.wal)
    policy = TenantPolicy(
        max_pending=args.max_pending,
        backpressure=args.backpressure,
        parallelism=args.parallelism,
    )
    server = QueryServer(
        store,
        host=args.host,
        port=args.port,
        default_policy=policy,
        cache_capacity=args.cache_capacity,
        max_match_series=args.max_match_series,
    )

    async def _main() -> None:
        shipper = None
        if replicate_to is not None:
            from .replication import SegmentShipper

            shipper = SegmentShipper(store.log, *replicate_to)
            shipper.start()
        host, port = await server.start()
        start = eco.now - args.hours * HOUR
        print(f"serving {args.city} on {host}:{port} "
              f"(window {start}..{eco.now}, backpressure: "
              f"{policy.backpressure.value})", flush=True)
        if replicate_to is not None:
            print(f"replicating to {replicate_to[0]}:{replicate_to[1]}",
                  flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, stop.set)
        compact_task = None
        if durable is not None and args.compact_every is not None:
            from .tsdb.tier import Compactor

            compactor = Compactor(durable.wal_path)
            print(f"journaling to {durable.wal_path} "
                  f"(compacting every {args.compact_every:g}s)", flush=True)

            def _compact_once():
                # Quiesce the journal while the compactor swaps the file
                # out from under it; writers block on the store lock for
                # the (short) duration of the rewrite.
                with durable.suspend_wal():
                    return compactor.maybe_compact()

            async def _compact_loop() -> None:
                while True:
                    await asyncio.sleep(args.compact_every)
                    result = await loop.run_in_executor(None, _compact_once)
                    if result is not None:
                        print(
                            f"compacted {result.path}: "
                            f"{result.blocks_before} -> {result.blocks_after} "
                            f"blocks, {result.bytes_before} -> "
                            f"{result.bytes_after} bytes "
                            f"({result.bytes_ratio:.2f}x)",
                            flush=True,
                        )

            compact_task = loop.create_task(_compact_loop())
        elif durable is not None:
            print(f"journaling to {durable.wal_path}", flush=True)
        await stop.wait()
        print("draining...", flush=True)
        if compact_task is not None:
            compact_task.cancel()
            try:
                await compact_task
            except asyncio.CancelledError:
                pass
        await server.stop(timeout=10.0)
        if shipper is not None:
            await shipper.stop()
        if durable is not None:
            durable.close()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - pre-handler interrupt
        pass
    print("bye")
    return 0


def cmd_follow(args: argparse.Namespace) -> int:
    """Run a hot-standby replica of a replicating primary.

    Listens for shipper connections (``repro serve --replicate-to`` or
    any :class:`~repro.replication.SegmentShipper`) and applies records
    into a local single or sharded store.  Signals drive the lifecycle:

    - ``SIGUSR1`` — promote: stop replicating, optionally write a
      binary snapshot (``--snapshot-on-promote``), and, with
      ``--serve-port``, serve the store over the standard query
      endpoint — the failover path;
    - ``SIGTERM``/``SIGINT`` — shut down cleanly (draining the query
      server first when promoted).
    """
    import asyncio
    import signal

    from .replication import Follower

    host, port = _parse_connect(args.listen, flag="--listen")
    follower = Follower(host=host, port=port, shards=args.shards)

    async def _main() -> None:
        fh, fp = await follower.start()
        print(f"following on {fh}:{fp}", flush=True)
        loop = asyncio.get_running_loop()
        promote = asyncio.Event()
        term = asyncio.Event()
        loop.add_signal_handler(signal.SIGUSR1, promote.set)
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, term.set)
        promote_wait = asyncio.ensure_future(promote.wait())
        term_wait = asyncio.ensure_future(term.wait())
        try:
            await asyncio.wait(
                {promote_wait, term_wait}, return_when=asyncio.FIRST_COMPLETED
            )
            if not promote.is_set():
                await follower.stop()
                return
            store = follower.promote()
            await follower.stop()
            print(f"promoted at seq {follower.applied_seq} "
                  f"({follower.stats.points_applied} points applied)",
                  flush=True)
            if args.snapshot_on_promote:
                from .tsdb import snapshot

                n = snapshot(store, args.snapshot_on_promote, format="binary")
                print(f"snapshot: {n} points -> {args.snapshot_on_promote}",
                      flush=True)
            if args.serve_port is not None:
                from .serve import QueryServer

                server = QueryServer(store, host=fh, port=args.serve_port)
                sh, sp = await server.start()
                print(f"serving on {sh}:{sp}", flush=True)
                await term.wait()
                print("draining...", flush=True)
                await server.stop(timeout=10.0)
        finally:
            for waiter in (promote_wait, term_wait):
                waiter.cancel()

    asyncio.run(_main())
    print("bye")
    return 0


def cmd_convert_log(args: argparse.Namespace) -> int:
    """Migrate a WAL or snapshot between durability formats.

    The source format is auto-detected, so this upgrades pre-segment
    text logs to binary (``--to binary``, the default) and turns
    segments back into human-readable lines for debugging
    (``--to text``).  ``--lenient`` skips corrupt lines/blocks — the
    recovery path for a log damaged by an unclean shutdown.
    """
    from .tsdb import LogCorruption, SegmentCorruption, convert_log

    try:
        points, markers = convert_log(
            args.src, args.dst, format=args.to, strict=not args.lenient
        )
    except FileNotFoundError as exc:
        raise SystemExit(f"convert-log: {exc}")
    except (LogCorruption, SegmentCorruption) as exc:
        raise SystemExit(
            f"convert-log: {args.src} is corrupt ({exc}); rerun with --lenient "
            "to skip damaged entries"
        )
    except ValueError as exc:  # e.g. src == dst
        raise SystemExit(f"convert-log: {exc}")
    print(
        f"converted {args.src} -> {args.dst} [{args.to}]: "
        f"{points} points, {markers} retention markers"
    )
    return 0


def cmd_compact(args: argparse.Namespace) -> int:
    """Rewrite a WAL/snapshot (or a sharded snapshot directory) in place.

    Replays the log leniently, resolves retention markers against the
    data, and atomically swaps in a snapshot with few large sorted
    blocks — restoring the compacted file is byte-identical to replaying
    the original, just much cheaper.  With ``--max-blocks`` /
    ``--max-markers`` the rewrite is conditional on the trigger policy
    (files already compact are left untouched); by default it always
    runs.
    """
    from pathlib import Path

    from .tsdb import LogCorruption, SegmentCorruption
    from .tsdb.tier import CompactionPolicy, compact_dir, compact_log

    policy = None
    if args.max_blocks is not None or args.max_markers is not None:
        policy = CompactionPolicy(
            max_blocks=args.max_blocks if args.max_blocks is not None else 256,
            max_marker_blocks=(
                args.max_markers if args.max_markers is not None else 16
            ),
        )

    def _report(result) -> None:
        print(
            f"compacted {result.path}: {result.blocks_before} -> "
            f"{result.blocks_after} blocks, {result.bytes_before} -> "
            f"{result.bytes_after} bytes ({result.bytes_ratio:.2f}x), "
            f"{result.markers_resolved} markers resolved, "
            f"{result.points} points"
        )

    path = Path(args.path)
    try:
        if path.is_dir():
            results = compact_dir(path, policy=policy, strict=not args.lenient)
            if not results:
                print(f"{path}: all shards already compact")
            for _, result in sorted(results.items()):
                _report(result)
        else:
            if policy is not None:
                from .tsdb.tier import Compactor

                result = Compactor(
                    path, policy=policy, strict=not args.lenient
                ).maybe_compact()
                if result is None:
                    print(f"{path}: already compact")
                    return 0
            else:
                result = compact_log(path, strict=not args.lenient)
            _report(result)
    except FileNotFoundError as exc:
        raise SystemExit(f"compact: {exc}")
    except (LogCorruption, SegmentCorruption) as exc:
        raise SystemExit(
            f"compact: {args.path} is corrupt ({exc}); rerun with --lenient "
            "to skip damaged entries"
        )
    except ValueError as exc:
        raise SystemExit(f"compact: {exc}")
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    # The examples script is the canonical demo; reuse it.
    from pathlib import Path
    import runpy

    script = Path(__file__).resolve().parents[2] / "examples" / "two_city_demo.py"
    if script.exists():
        runpy.run_path(str(script), run_name="__main__")
        return 0
    print("examples/two_city_demo.py not found; run from a source checkout",
          file=sys.stderr)
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CTT smart-city air-quality ecosystem (EDBT 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--city", default="trondheim",
                       choices=("trondheim", "vejle"))
        p.add_argument("--hours", type=int, default=6)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--shards", type=int, default=0, metavar="N",
                       help="partition the TSDB across N shards (0 = single store)")

    p_run = sub.add_parser("run", help="simulate and print pipeline stats")
    common(p_run)
    p_run.add_argument(
        "--cities", default=None, metavar="A,B",
        help="comma-separated cities fanned into one RegionalHub "
             "(overrides --city)")
    p_run.add_argument(
        "--queue-depth", type=int, default=50_000, metavar="POINTS",
        help="per-city fan-in queue capacity in points (with --cities)")
    p_run.add_argument(
        "--backpressure", default="block",
        choices=tuple(p.value for p in Backpressure),
        help="full-queue policy for the fan-in lanes (with --cities)")
    p_run.set_defaults(func=cmd_run)

    p_dash = sub.add_parser("dashboard", help="render the air-quality dashboard")
    common(p_dash)
    p_dash.set_defaults(func=cmd_dashboard)

    p_wall = sub.add_parser("wall", help="render the wall display")
    common(p_wall)
    p_wall.set_defaults(func=cmd_wall)

    p_t1 = sub.add_parser("table1", help="external-source catalog status")
    common(p_t1)
    p_t1.set_defaults(func=cmd_table1)

    p_query = sub.add_parser(
        "query",
        help="batch-execute queries over a simulated city (wire JSON out)",
    )
    common(p_query)
    p_query.add_argument(
        "metrics", nargs="?", default=None, metavar="METRIC[,METRIC...]",
        help="metrics to query over the simulated window (one query each)")
    p_query.add_argument(
        "--tags", default=None, metavar="K=V[,K=V...]",
        help="extra tag filters (city=<--city> is implied)")
    p_query.add_argument(
        "--agg", default="avg", metavar="NAME",
        help="cross-series aggregator (default: avg)")
    p_query.add_argument(
        "--downsample", default=None, metavar="SPEC",
        help="downsample spec, e.g. 5m-avg or 1h-max-nan")
    p_query.add_argument(
        "--rate", action="store_true",
        help="emit per-second first derivative (counter metrics)")
    p_query.add_argument(
        "--group-by", default=None, metavar="K[,K...]",
        help="tag keys producing one series per value combination")
    p_query.add_argument(
        "--request", default=None, metavar="FILE",
        help="versioned wire-format JSON request ('-' = stdin); "
             "overrides the flag-built queries")
    p_query.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="send the batch to a running 'repro serve' endpoint instead "
             "of simulating locally")
    p_query.add_argument(
        "--start", type=int, default=None, metavar="TS",
        help="absolute window start for flag-built queries (with --connect)")
    p_query.add_argument(
        "--end", type=int, default=None, metavar="TS",
        help="absolute window end for flag-built queries (with --connect)")
    p_query.add_argument(
        "--tenant", default=None, metavar="NAME",
        help="admission-control lane on the server (with --connect)")
    p_query.add_argument(
        "--refresh", action="store_true",
        help="route through the server's incremental refresher "
             "(with --connect)")
    p_query.set_defaults(func=cmd_query)

    p_cat = sub.add_parser(
        "catalog",
        help="series-metadata lookups: metrics, tag keys/values, cardinality",
    )
    common(p_cat)
    p_cat.add_argument(
        "--metric", default=None, metavar="NAME",
        help="scope to one metric (alone: list its tag keys)")
    p_cat.add_argument(
        "--key", default=None, metavar="TAGKEY",
        help="list distinct values of this tag key (needs --metric)")
    p_cat.add_argument(
        "--cardinality", action="store_true",
        help="count matching series instead of listing (needs --metric)")
    p_cat.add_argument(
        "--tags", default=None, metavar="K=V[,K=V...]",
        help="tag filter for --cardinality ('*' and 'a|b' patterns allowed)")
    p_cat.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="ask a running 'repro serve' endpoint instead of simulating")
    p_cat.add_argument(
        "--tenant", default=None, metavar="NAME",
        help="admission-control lane on the server (with --connect)")
    p_cat.set_defaults(func=cmd_catalog)

    p_serve = sub.add_parser(
        "serve",
        help="simulate a city and serve its store over asyncio TCP",
    )
    common(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=4242,
        help="TCP port (0 = ephemeral; default: 4242)")
    p_serve.add_argument(
        "--cache-capacity", type=int, default=128, metavar="N",
        help="bounded-LRU result cache entries (default: 128)")
    p_serve.add_argument(
        "--max-pending", type=int, default=64, metavar="N",
        help="per-tenant admission queue depth (default: 64)")
    p_serve.add_argument(
        "--backpressure", default="block",
        choices=tuple(p.value for p in Backpressure),
        help="full-lane policy for tenant admission queues")
    p_serve.add_argument(
        "--parallelism", type=int, default=2, metavar="N",
        help="concurrent requests per tenant lane (default: 2)")
    p_serve.add_argument(
        "--max-match-series", type=int, default=None, metavar="N",
        help="reject queries whose tag filter matches more than N series "
             "(default: unlimited)")
    p_serve.add_argument(
        "--replicate-to", default=None, metavar="HOST:PORT",
        help="ship the store (snapshot bootstrap + live writes) to a "
             "'repro follow' hot standby at this address")
    p_serve.add_argument(
        "--wal", default=None, metavar="PATH",
        help="journal the store to a binary WAL at PATH (snapshot "
             "bootstrap + every later write)")
    p_serve.add_argument(
        "--compact-every", type=float, default=None, metavar="SECONDS",
        help="with --wal, run the compaction trigger policy over the "
             "journal at this interval")
    p_serve.set_defaults(func=cmd_serve)

    p_follow = sub.add_parser(
        "follow",
        help="run a hot-standby replica; SIGUSR1 promotes it to primary",
    )
    p_follow.add_argument(
        "--listen", default="127.0.0.1:4252", metavar="HOST:PORT",
        help="address to accept shipper connections on "
             "(port 0 = ephemeral; default: 127.0.0.1:4252)")
    p_follow.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="apply into a sharded store with N shards (0 = single store)")
    p_follow.add_argument(
        "--serve-port", type=int, default=None, metavar="PORT",
        help="after promotion, serve queries on this port (0 = ephemeral)")
    p_follow.add_argument(
        "--snapshot-on-promote", default=None, metavar="PATH",
        help="write a binary snapshot of the promoted store to PATH")
    p_follow.set_defaults(func=cmd_follow)

    p_conv = sub.add_parser(
        "convert-log",
        help="migrate a WAL/snapshot between text and binary segment formats",
    )
    p_conv.add_argument("src", help="source log (format auto-detected)")
    p_conv.add_argument("dst", help="destination file (truncated)")
    p_conv.add_argument(
        "--to", choices=("binary", "text"), default="binary",
        help="target format (default: binary columnar segments)")
    p_conv.add_argument(
        "--lenient", action="store_true",
        help="skip corrupt lines/blocks instead of failing")
    p_conv.set_defaults(func=cmd_convert_log)

    p_compact = sub.add_parser(
        "compact",
        help="rewrite a WAL/snapshot (or sharded snapshot dir) as its "
             "compacted form, in place",
    )
    p_compact.add_argument(
        "path",
        help="log file or snapshot directory (shard files found by name)")
    p_compact.add_argument(
        "--max-blocks", type=int, default=None, metavar="N",
        help="only compact files carrying more than N blocks "
             "(enables the trigger policy)")
    p_compact.add_argument(
        "--max-markers", type=int, default=None, metavar="N",
        help="only compact files carrying more than N retention markers "
             "(enables the trigger policy)")
    p_compact.add_argument(
        "--lenient", action="store_true",
        help="skip corrupt blocks instead of failing — compacts a "
             "damaged log down to its recoverable prefix")
    p_compact.set_defaults(func=cmd_compact)

    p_demo = sub.add_parser("demo", help="run the full EDBT demo")
    p_demo.set_defaults(func=cmd_demo)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
