"""Table 1 as code: the external-source catalog.

Each row of the paper's Table 1 ("Examples of external data
integration") becomes a :class:`SourceDescriptor`; the :class:`Catalog`
binds live connectors to descriptors and can verify that all source
classes are covered, and render the table itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import Connector, SourceType


@dataclass(frozen=True)
class SourceDescriptor:
    """One row of Table 1."""

    source_type: SourceType
    type_label: str
    example: str
    description: str


#: The six rows of the paper's Table 1.
TABLE1: tuple[SourceDescriptor, ...] = (
    SourceDescriptor(
        SourceType.OFFICIAL_AIR_QUALITY,
        "Official air quality measurements",
        "NILU data (Norwegian Air Quality Institute)",
        "Ground truth for certain pollution types, grounding and "
        "calibrating measurements to high-quality reference stations",
    ),
    SourceDescriptor(
        SourceType.REMOTE_SENSING,
        "Remote sensing",
        "NASA OCO-2 satellite CO2 measurements",
        "Ground truth top-down measurements for certain emission types, "
        "large-scale coverage, low spatial resolution, coupling to "
        "large-scale modeling and validation",
    ),
    SourceDescriptor(
        SourceType.TRAFFIC_FLOW,
        "Traffic data",
        "Traffic density from here.com",
        "Estimate traffic emissions by correlating continuous external "
        "traffic density to emission measurements",
    ),
    SourceDescriptor(
        SourceType.TRAFFIC_COUNT,
        "Traffic data",
        "Municipal traffic counts",
        "Validate traffic estimations, but only available for short periods",
    ),
    SourceDescriptor(
        SourceType.CITY_MODEL_3D,
        "3D city models",
        "Municipal 3D model of Vejle",
        "Integration into existing visualization tools. Use of city "
        "geometry in future emission modeling",
    ),
    SourceDescriptor(
        SourceType.NATIONAL_STATISTICS,
        "National statistics",
        "GHG emission estimates from national statistics office",
        "Down-scaled national GHG emission data, often with high uncertainties",
    ),
)


class Catalog:
    """Registry binding connectors to Table 1 rows."""

    def __init__(self) -> None:
        self._connectors: dict[SourceType, list[Connector]] = {}

    def register(self, connector: Connector) -> None:
        self._connectors.setdefault(connector.source_type, []).append(connector)

    def connectors(self, source_type: SourceType | None = None) -> list[Connector]:
        if source_type is not None:
            return list(self._connectors.get(source_type, []))
        return [c for group in self._connectors.values() for c in group]

    def covered_types(self) -> set[SourceType]:
        return {t for t, group in self._connectors.items() if group}

    def missing_types(self) -> set[SourceType]:
        """Table 1 rows with no live connector (3D models excluded from
        time-series coverage — they are static geometry)."""
        needed = {d.source_type for d in TABLE1}
        return needed - self.covered_types()

    def is_complete(self) -> bool:
        return not self.missing_types()


def render_table1(catalog: Catalog | None = None) -> str:
    """Render Table 1 as fixed-width text, optionally with live status."""
    rows = []
    header = ("Type", "Example", "Status" if catalog else "Description")
    for desc in TABLE1:
        if catalog is not None:
            n = len(catalog.connectors(desc.source_type))
            status = f"{n} connector(s)" if n else "NOT CONNECTED"
            rows.append((desc.type_label, desc.example, status))
        else:
            rows.append((desc.type_label, desc.example, desc.description[:48]))
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) for i in range(3)
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
        "  ".join("-" * w for w in widths),
    ]
    for r in rows:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(3)))
    return "\n".join(lines)
