"""NASA OCO-2 satellite CO2 (Table 1, row 2).

"Ground truth top-down measurements for certain emission types,
large-scale coverage, low spatial resolution."

OCO-2 flies a sun-synchronous orbit (98.8-minute period, ~13:36 local
overpass time) with a 16-day ground-track repeat.  Over one city this
yields a usable overpass every ~16 days, weather permitting: cloudy
scenes fail XCO2 retrieval.  Each pass produces a narrow swath of
footprints (~1.3 x 2.25 km) crossing the region roughly north-south,
reporting *column-averaged* CO2 (XCO2), where the urban surface
enhancement is diluted to ~1/30 of its surface magnitude.
"""

from __future__ import annotations

import numpy as np

from ..geo import BoundingBox, GeoPoint, Grid
from ..sensors.environment import UrbanEnvironment
from ..simclock import DAY, HOUR
from .base import Observation, SourceType

#: Ground-track repeat cycle.
REPEAT_CYCLE_S = 16 * DAY
#: Column dilution: surface enhancement / XCO2 enhancement.
COLUMN_DILUTION = 30.0
#: Single-sounding retrieval precision (1 sigma, ppm).
SOUNDING_SIGMA_PPM = 0.8
#: Along-track footprint spacing (m).
FOOTPRINT_SPACING_M = 2250.0


class Oco2Connector:
    """Synthetic OCO-2 XCO2 soundings over one city region."""

    source_type = SourceType.REMOTE_SENSING

    def __init__(
        self,
        region: BoundingBox,
        environment: UrbanEnvironment,
        seed: int = 0,
        first_overpass: int = 11 * DAY + 13 * HOUR,  # arbitrary epoch phase
        cloud_failure_limit: float = 0.55,
    ) -> None:
        self.name = "nasa:oco2"
        self.region = region
        self.environment = environment
        self._rng_seed = seed
        self.first_overpass = first_overpass
        self.cloud_failure_limit = cloud_failure_limit

    def cadence_s(self) -> None:
        return None  # irregular: overpasses +/- cloud losses

    def overpass_times(self, start: int, end: int) -> list[int]:
        """All overpass instants in [start, end] (before cloud screening)."""
        if end < start:
            return []
        n0 = max(0, (start - self.first_overpass + REPEAT_CYCLE_S - 1) // REPEAT_CYCLE_S)
        out = []
        t = self.first_overpass + n0 * REPEAT_CYCLE_S
        while t <= end:
            if t >= start:
                out.append(int(t))
            t += REPEAT_CYCLE_S
        return out

    def _swath(self, overpass: int) -> list[GeoPoint]:
        """Footprint centres of one pass: a near-N/S line across the box."""
        rng = np.random.default_rng([self._rng_seed, overpass & 0xFFFFFFFF])
        # Swath crosses at a random longitude within the region.
        lon = float(rng.uniform(self.region.west, self.region.east))
        n = max(2, int(self.region.height_m / FOOTPRINT_SPACING_M))
        lats = np.linspace(self.region.south, self.region.north, n)
        # Slight eastward tilt of the ground track.
        tilt = (self.region.east - self.region.west) * 0.05
        lons = lon + np.linspace(-tilt, tilt, n)
        lons = np.clip(lons, self.region.west, self.region.east)
        return [GeoPoint(float(a), float(o)) for a, o in zip(lats, lons)]

    def fetch(self, start: int, end: int) -> list[Observation]:
        out: list[Observation] = []
        for overpass in self.overpass_times(start, end):
            cloud = self.environment.weather.cloud_cover(overpass)
            if cloud > self.cloud_failure_limit:
                continue  # retrieval fails in cloudy scenes
            rng = np.random.default_rng(
                [self._rng_seed, 7, overpass & 0xFFFFFFFF]
            )
            background = self.environment.field.CO2_BACKGROUND_PPM
            for footprint in self._swath(overpass):
                surface = self.environment.co2_ppm(overpass, footprint)
                enhancement = (surface - background) / COLUMN_DILUTION
                xco2 = (
                    background
                    + enhancement
                    + float(rng.normal(0.0, SOUNDING_SIGMA_PPM))
                )
                out.append(
                    Observation(
                        source=self.name,
                        source_type=self.source_type,
                        quantity="xco2_ppm",
                        timestamp=overpass,
                        value=xco2,
                        unit="ppm",
                        location=footprint,
                        uncertainty=SOUNDING_SIGMA_PPM,
                        metadata={"cloud_cover": round(cloud, 3)},
                    )
                )
        return out

    def grid_overpass(self, overpass: int, rows: int = 8, cols: int = 8) -> Grid:
        """Rasterize one pass for large-scale model coupling (Table 1:
        "coupling to large-scale modeling and validation")."""
        grid = Grid(self.region, rows=rows, cols=cols)
        for obs in self.fetch(overpass, overpass):
            if obs.location is not None:
                grid.add(obs.location, obs.value)
        return grid
