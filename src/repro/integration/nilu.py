"""NILU official air-quality stations (Table 1, row 1).

"Ground truth for certain pollution types, grounding and calibrating
measurements to high-quality reference stations."  The paper co-locates
one CTT node with "the only station in the pilot area".

The connector models a reference-grade station: hourly averages of the
true field, measured through :data:`~repro.sensors.channels.REFERENCE_SPECS`
channels (an order of magnitude cleaner than the low-cost nodes, no
drift).  NILU publishes NO2/PM10/PM2.5 (not CO2 — national networks
rarely measure it), which is why satellite grounding exists as a
separate source.
"""

from __future__ import annotations

import numpy as np

from ..geo import GeoPoint
from ..sensors.channels import REFERENCE_SPECS, make_channels
from ..sensors.environment import UrbanEnvironment
from ..simclock import HOUR, floor_to
from .base import Observation, SourceType

#: Quantities a NILU station publishes, with units.
STATION_QUANTITIES = {
    "no2_ugm3": "ug/m3",
    "pm10_ugm3": "ug/m3",
    "pm25_ugm3": "ug/m3",
    "temperature_c": "C",
}


class NiluStation:
    """One reference station publishing hourly averages."""

    source_type = SourceType.OFFICIAL_AIR_QUALITY

    def __init__(
        self,
        station_id: str,
        location: GeoPoint,
        environment: UrbanEnvironment,
        seed: int = 0,
        averaging_samples: int = 12,
    ) -> None:
        self.name = f"nilu:{station_id}"
        self.station_id = station_id
        self.location = location
        self.environment = environment
        self._channels = make_channels(
            {k: REFERENCE_SPECS[k] for k in STATION_QUANTITIES},
            np.random.default_rng([seed, 0x11]),
        )
        self.averaging_samples = averaging_samples

    def cadence_s(self) -> int:
        return HOUR

    def _hourly_average(self, hour_start: int, quantity: str) -> float:
        """Average of sub-samples across the hour through the channel."""
        step = HOUR // self.averaging_samples
        total = 0.0
        for k in range(self.averaging_samples):
            ts = hour_start + k * step
            truth = self.environment.true_values(ts, self.location)[quantity]
            total += self._channels[quantity].measure(
                truth, elapsed_days=0.0, ambient_temp_c=truth
                if quantity == "temperature_c"
                else 20.0,
            )
        return total / self.averaging_samples

    def fetch(self, start: int, end: int) -> list[Observation]:
        """Hourly observations, timestamped at the hour start."""
        out: list[Observation] = []
        hour = floor_to(start, HOUR)
        if hour < start:
            hour += HOUR
        while hour <= end:
            for quantity, unit in STATION_QUANTITIES.items():
                value = self._hourly_average(hour, quantity)
                out.append(
                    Observation(
                        source=self.name,
                        source_type=self.source_type,
                        quantity=quantity,
                        timestamp=hour,
                        value=value,
                        unit=unit,
                        location=self.location,
                        uncertainty=REFERENCE_SPECS[quantity].noise_sigma,
                        metadata={"station_id": self.station_id},
                    )
                )
            hour += HOUR
        return out
