"""Common observation schema for external data integration.

Paper §2.2: "The sources contain highly heterogeneous data, with
different timescales, measurement frequencies, spatial distributions and
granularities, measurement technologies, and a complex set of related
uncertainties and inaccuracies."  Every connector normalizes its feed
into :class:`Observation` so the harmonization layer and the TSDB writer
can treat all six source classes uniformly — while keeping the
per-source cadence/geometry/uncertainty visible in the record.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Protocol

from ..geo import GeoPoint


class SourceType(enum.Enum):
    """Table 1's source taxonomy."""

    OFFICIAL_AIR_QUALITY = "official_air_quality"
    REMOTE_SENSING = "remote_sensing"
    TRAFFIC_FLOW = "traffic_flow"
    TRAFFIC_COUNT = "traffic_count"
    CITY_MODEL_3D = "city_model_3d"
    NATIONAL_STATISTICS = "national_statistics"
    MUNICIPAL_DATA = "municipal_data"


@dataclass(frozen=True)
class Observation:
    """One harmonized observation from any external source.

    ``uncertainty`` is a 1-sigma absolute uncertainty in the same unit as
    ``value``; sources with poorly characterized errors report generous
    values (the national statistics class especially).
    """

    source: str
    source_type: SourceType
    quantity: str  # e.g. "no2_ugm3", "xco2_ppm", "jam_factor"
    timestamp: int
    value: float
    unit: str
    location: GeoPoint | None = None
    uncertainty: float = 0.0
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.uncertainty < 0.0:
            raise ValueError(f"uncertainty must be >= 0: {self.uncertainty}")


class Connector(Protocol):
    """Anything that can be asked for observations over a time range."""

    name: str
    source_type: SourceType

    def fetch(self, start: int, end: int) -> list[Observation]:
        """Observations with ``start <= timestamp <= end``, time-ordered."""
        ...

    def cadence_s(self) -> int | None:
        """Nominal sampling period, or None for irregular sources."""
        ...


def validate_batch(observations: Iterable[Observation]) -> list[Observation]:
    """Check time-ordering and non-empty source names; returns the list."""
    out = list(observations)
    for i, obs in enumerate(out):
        if not obs.source:
            raise ValueError(f"observation {i} has an empty source name")
        if i > 0 and obs.timestamp < out[i - 1].timestamp:
            raise ValueError(
                f"observations out of order at index {i}: "
                f"{obs.timestamp} < {out[i - 1].timestamp}"
            )
    return out
