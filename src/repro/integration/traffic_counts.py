"""Municipal traffic counts (Table 1, row 4).

"Validate traffic estimations, but only available for short periods."
Cities deploy pneumatic-tube or radar counters for bounded campaigns
(typically 1-2 weeks per site), producing hourly vehicle counts.  The
connector models campaigns explicitly: outside a campaign window the
fetch returns nothing — the sparsity the harmonization layer must cope
with.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sensors.environment import RoadSegment, UrbanEnvironment
from ..simclock import HOUR, floor_to
from .base import Observation, SourceType


@dataclass(frozen=True)
class CountingCampaign:
    """One bounded deployment of a counter at one segment."""

    segment: RoadSegment
    start: int
    end: int
    capacity_vph: float = 1800.0  # vehicles/hour at intensity 1.0

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("campaign end must be after start")


class MunicipalCountsConnector:
    """Hourly vehicle counts from short counting campaigns."""

    source_type = SourceType.TRAFFIC_COUNT

    def __init__(
        self,
        environment: UrbanEnvironment,
        campaigns: list[CountingCampaign],
        seed: int = 0,
    ) -> None:
        self.name = "municipal:counts"
        self.environment = environment
        self.campaigns = sorted(campaigns, key=lambda c: c.start)
        self._seed = seed

    def cadence_s(self) -> int:
        return HOUR

    def expected_count(self, hour_start: int, campaign: CountingCampaign) -> float:
        """Mean hourly flow: intensity integrated over the hour x capacity."""
        samples = [
            self.environment.traffic(hour_start + k * (HOUR // 6)) for k in range(6)
        ]
        mean_intensity = sum(samples) / len(samples)
        return mean_intensity * campaign.segment.traffic_weight * campaign.capacity_vph

    def fetch(self, start: int, end: int) -> list[Observation]:
        out: list[Observation] = []
        for campaign in self.campaigns:
            lo = max(start, campaign.start)
            hi = min(end, campaign.end)
            if hi < lo:
                continue
            hour = floor_to(lo, HOUR)
            if hour < lo:
                hour += HOUR
            while hour <= hi:
                mean = self.expected_count(hour, campaign)
                rng = np.random.default_rng(
                    [self._seed, hash(campaign.segment.name) & 0xFFFFFFFF,
                     hour & 0xFFFFFFFF]
                )
                count = float(rng.poisson(max(0.0, mean)))
                out.append(
                    Observation(
                        source=self.name,
                        source_type=self.source_type,
                        quantity="vehicles_per_hour",
                        timestamp=hour,
                        value=count,
                        unit="veh/h",
                        location=campaign.segment.start,
                        uncertainty=max(1.0, count**0.5),
                        metadata={"segment": campaign.segment.name},
                    )
                )
                hour += HOUR
        out.sort(key=lambda o: o.timestamp)
        return out

    def coverage_fraction(self, start: int, end: int) -> float:
        """Fraction of [start, end] covered by at least one campaign."""
        if end <= start:
            return 0.0
        intervals = sorted(
            (max(start, c.start), min(end, c.end)) for c in self.campaigns
        )
        covered = 0
        cursor = start
        for lo, hi in intervals:
            if hi <= cursor:
                continue
            covered += hi - max(lo, cursor)
            cursor = max(cursor, hi)
        return covered / (end - start)
