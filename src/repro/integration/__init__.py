"""External data integration: connectors for every Table 1 source class."""

from .base import Connector, Observation, SourceType, validate_batch
from .catalog import TABLE1, Catalog, SourceDescriptor, render_table1
from .citygml import (
    Building,
    CityGmlError,
    CityModel,
    generate_city_model,
    parse_citygml,
    write_citygml,
)
from .harmonize import (
    AlignedFrame,
    EXT_PREFIX,
    Harmonizer,
    SyncReport,
    observation_metric,
    observation_tags,
)
from .here_traffic import (
    HereTrafficConnector,
    UPDATE_INTERVAL_S,
    intensity_to_jam_factor,
)
from .national_stats import (
    DEFAULT_SECTORS,
    Municipality,
    NationalStatsConnector,
)
from .nilu import NiluStation, STATION_QUANTITIES
from .oco2 import Oco2Connector, REPEAT_CYCLE_S, SOUNDING_SIGMA_PPM
from .traffic_counts import CountingCampaign, MunicipalCountsConnector

__all__ = [
    "AlignedFrame",
    "Building",
    "Catalog",
    "CityGmlError",
    "CityModel",
    "Connector",
    "CountingCampaign",
    "DEFAULT_SECTORS",
    "EXT_PREFIX",
    "Harmonizer",
    "HereTrafficConnector",
    "Municipality",
    "MunicipalCountsConnector",
    "NationalStatsConnector",
    "NiluStation",
    "Observation",
    "Oco2Connector",
    "REPEAT_CYCLE_S",
    "SOUNDING_SIGMA_PPM",
    "STATION_QUANTITIES",
    "SourceDescriptor",
    "SourceType",
    "SyncReport",
    "TABLE1",
    "UPDATE_INTERVAL_S",
    "generate_city_model",
    "intensity_to_jam_factor",
    "observation_metric",
    "observation_tags",
    "parse_citygml",
    "render_table1",
    "validate_batch",
    "write_citygml",
]
