"""National GHG emission statistics (Table 1, row 6).

"Down-scaled national GHG emission data, often with high uncertainties."
National inventories publish *annual* totals per sector; municipal
estimates are produced by proxy downscaling (population for heating,
vehicle-kilometres for transport, employment for industry), each proxy
adding uncertainty on top of the inventory's own.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simclock import from_datetime
from .base import Observation, SourceType
import datetime as _dt

#: Sector shares of a typical national inventory (fractions of total).
DEFAULT_SECTORS = {
    "road_transport": 0.19,
    "heating": 0.09,
    "industry": 0.27,
    "energy_supply": 0.28,
    "agriculture": 0.09,
    "waste": 0.04,
    "other": 0.04,
}

#: Relative 1-sigma uncertainty of the downscaled municipal estimate.
DOWNSCALE_RELATIVE_SIGMA = {
    "road_transport": 0.18,
    "heating": 0.30,
    "industry": 0.40,
    "energy_supply": 0.35,
    "agriculture": 0.45,
    "waste": 0.50,
    "other": 0.60,
}


@dataclass(frozen=True)
class Municipality:
    """Downscaling proxies for one municipality."""

    name: str
    population: int
    national_population: int
    vehicle_km_share: float | None = None  # overrides population share
    industry_share: float | None = None

    @property
    def population_share(self) -> float:
        return self.population / self.national_population


class NationalStatsConnector:
    """Annual sector emissions, downscaled to a municipality."""

    source_type = SourceType.NATIONAL_STATISTICS

    def __init__(
        self,
        municipality: Municipality,
        national_total_kt: float = 52_000.0,  # Norway-scale, kt CO2e/yr
        sectors: dict[str, float] | None = None,
        seed: int = 0,
    ) -> None:
        self.name = f"stats:{municipality.name}"
        self.municipality = municipality
        self.national_total_kt = national_total_kt
        self.sectors = dict(sectors or DEFAULT_SECTORS)
        total_share = sum(self.sectors.values())
        if not 0.99 <= total_share <= 1.01:
            raise ValueError(f"sector shares must sum to ~1, got {total_share}")
        self._seed = seed

    def cadence_s(self) -> int:
        return 365 * 86400

    def _sector_share(self, sector: str) -> float:
        m = self.municipality
        if sector == "road_transport" and m.vehicle_km_share is not None:
            return m.vehicle_km_share
        if sector == "industry" and m.industry_share is not None:
            return m.industry_share
        return m.population_share

    def downscale_year(self, year: int) -> dict[str, tuple[float, float]]:
        """Municipal estimate per sector: ``{sector: (kt, sigma_kt)}``.

        A small seeded perturbation models inventory revisions between
        years; the large relative sigmas are the headline point — the
        paper motivates ground sensing precisely because these numbers
        are too uncertain to steer street-level action.
        """
        rng = np.random.default_rng([self._seed, year])
        out: dict[str, tuple[float, float]] = {}
        for sector, national_share in self.sectors.items():
            national_kt = self.national_total_kt * national_share
            national_kt *= 1.0 + float(rng.normal(0.0, 0.02))
            municipal_kt = national_kt * self._sector_share(sector)
            sigma = municipal_kt * DOWNSCALE_RELATIVE_SIGMA[sector]
            out[sector] = (municipal_kt, sigma)
        return out

    def fetch(self, start: int, end: int) -> list[Observation]:
        """One observation per sector per inventory year in range."""
        out: list[Observation] = []
        first_year = _dt.datetime.fromtimestamp(start, _dt.timezone.utc).year
        last_year = _dt.datetime.fromtimestamp(end, _dt.timezone.utc).year
        for year in range(first_year, last_year + 1):
            ts = from_datetime(_dt.datetime(year, 1, 1))
            if not start <= ts <= end:
                continue
            for sector, (kt, sigma) in sorted(self.downscale_year(year).items()):
                out.append(
                    Observation(
                        source=self.name,
                        source_type=self.source_type,
                        quantity=f"ghg_{sector}_ktco2e",
                        timestamp=ts,
                        value=kt,
                        unit="kt CO2e/yr",
                        location=None,
                        uncertainty=sigma,
                        metadata={"year": year, "sector": sector},
                    )
                )
        return out

    def total_with_uncertainty(self, year: int) -> tuple[float, float]:
        """Municipal total and combined sigma (sectors independent)."""
        per_sector = self.downscale_year(year)
        total = sum(kt for kt, _ in per_sector.values())
        sigma = float(np.sqrt(sum(s**2 for _, s in per_sector.values())))
        return total, sigma
