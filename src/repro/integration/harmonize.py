"""Harmonization: heterogeneous feeds → one queryable store.

The integration challenge of paper §2.2 in executable form: connectors
deliver observations at wildly different cadences (5 min jam factors,
hourly station averages, 16-day satellite passes, annual statistics) and
geometries (points, swaths, city-wide aggregates).  The harmonizer
writes them all into the TSDB under a uniform ``ext.*`` metric namespace
with provenance tags, and can produce *aligned frames* — a common time
grid across chosen series — for cross-source analytics such as the
CO2-vs-traffic study (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..tsdb import Downsample, Query, TimeSeriesStore
from .base import Connector, Observation

#: External observations live under this metric prefix.
EXT_PREFIX = "ext."


def observation_metric(obs: Observation) -> str:
    """TSDB metric name for an observation (``ext.<quantity>``)."""
    return EXT_PREFIX + obs.quantity


def observation_tags(obs: Observation) -> dict[str, str]:
    """Provenance tags: source, source class, plus segment/station ids."""
    tags = {
        "source": obs.source.replace(":", "_"),
        "stype": obs.source_type.value,
    }
    for key in ("segment", "station_id", "sector"):
        if key in obs.metadata:
            tags[key] = str(obs.metadata[key]).replace(":", "_")
    return tags


@dataclass
class SyncReport:
    """Outcome of one harmonization pass."""

    observations: int = 0
    points_written: int = 0
    per_source: dict[str, int] = field(default_factory=dict)


class Harmonizer:
    """Pulls registered connectors and writes into a TSDB."""

    def __init__(self, db: TimeSeriesStore) -> None:
        self.db = db
        self._connectors: list[Connector] = []

    def register(self, connector: Connector) -> None:
        self._connectors.append(connector)

    @property
    def connectors(self) -> list[Connector]:
        return list(self._connectors)

    def sync(self, start: int, end: int) -> SyncReport:
        """Fetch every connector for [start, end] and persist."""
        report = SyncReport()
        for connector in self._connectors:
            observations = connector.fetch(start, end)
            for obs in observations:
                self.db.put(
                    observation_metric(obs),
                    obs.timestamp,
                    obs.value,
                    observation_tags(obs),
                )
            report.observations += len(observations)
            report.points_written += len(observations)
            report.per_source[connector.name] = len(observations)
        return report

    def aligned_frame(
        self,
        series: list[tuple[str, dict[str, str]]],
        start: int,
        end: int,
        cadence_s: int,
        aggregator: str = "avg",
    ) -> "AlignedFrame":
        """Resample several series onto one shared time grid.

        ``series`` is a list of ``(metric, tag_filters)``.  Each series is
        downsampled to ``cadence_s`` buckets with linear gap fill — the
        "standard methods" the paper applies to missing data before
        correlation analysis.
        """
        ds = Downsample(width=cadence_s, agg=aggregator)
        columns: list[np.ndarray] = []
        names: list[str] = []
        grid = None
        for metric, tags in series:
            result = self.db.run(
                Query(
                    metric,
                    start,
                    end,
                    tags=tags,
                    aggregator=aggregator,
                    downsample=f"{cadence_s}s-{aggregator}-linear",
                )
            )
            sl = result.single().slice
            if grid is None:
                grid = sl.timestamps
            values = sl.values
            if len(sl) != len(grid) or not np.array_equal(sl.timestamps, grid):
                # Align onto the first series' grid.
                values = np.interp(
                    grid.astype(float),
                    sl.timestamps.astype(float),
                    sl.values,
                    left=np.nan,
                    right=np.nan,
                ) if len(sl) else np.full(len(grid), np.nan)
            columns.append(values)
            names.append(metric)
        if grid is None:
            grid = np.empty(0, dtype=np.int64)
        return AlignedFrame(
            timestamps=grid,
            columns={n: c for n, c in zip(names, columns)},
        )


@dataclass
class AlignedFrame:
    """Several series on one time grid (a tiny dataframe)."""

    timestamps: np.ndarray
    columns: dict[str, np.ndarray]

    def __len__(self) -> int:
        return int(self.timestamps.shape[0])

    def column(self, name: str) -> np.ndarray:
        return self.columns[name]

    def complete_rows(self) -> np.ndarray:
        """Boolean mask of rows where every column is finite."""
        if not self.columns:
            return np.zeros(len(self), dtype=bool)
        mask = np.ones(len(self), dtype=bool)
        for col in self.columns.values():
            mask &= np.isfinite(col)
        return mask

    def correlation(self, a: str, b: str) -> float:
        """Pearson correlation between two columns over complete rows."""
        mask = np.isfinite(self.columns[a]) & np.isfinite(self.columns[b])
        if mask.sum() < 3:
            return float("nan")
        return float(np.corrcoef(self.columns[a][mask], self.columns[b][mask])[0, 1])
