"""here.com traffic flow feed (Table 1, row 3).

"Estimate traffic emissions by correlating continuous external traffic
density to emission measurements."  Fig. 5's right-hand panel is this
feed's *jam factor*: here.com's 0-10 congestion score per road segment.

The connector observes the ground-truth :class:`TrafficIntensity` and
converts it to a jam factor with the feed's real quirks: 5-minute
updates, a reporting latency, occasional missing updates, and a noisy
non-linear intensity→jam mapping (free flow stays near 0; congestion
saturates towards 10).
"""

from __future__ import annotations

import numpy as np

from ..sensors.environment import RoadSegment, UrbanEnvironment
from ..simclock import MINUTE, floor_to
from .base import Observation, SourceType

UPDATE_INTERVAL_S = 5 * MINUTE


def intensity_to_jam_factor(intensity: float) -> float:
    """Map utilization in [0, 1] to here.com's 0-10 jam factor.

    Congestion is super-linear in utilization: below ~60 % utilization
    roads flow freely (jam < 2); above ~85 % the score climbs steeply.
    """
    x = min(1.0, max(0.0, intensity))
    return 10.0 * x**2.2


class HereTrafficConnector:
    """Jam-factor feed for a set of monitored road segments."""

    source_type = SourceType.TRAFFIC_FLOW

    def __init__(
        self,
        environment: UrbanEnvironment,
        segments: list[RoadSegment],
        seed: int = 0,
        *,
        latency_s: int = 60,
        missing_probability: float = 0.02,
        jam_noise_sigma: float = 0.35,
    ) -> None:
        if not segments:
            raise ValueError("HereTrafficConnector needs at least one segment")
        self.name = "here:traffic"
        self.environment = environment
        self.segments = list(segments)
        self._seed = seed
        self.latency_s = latency_s
        self.missing_probability = missing_probability
        self.jam_noise_sigma = jam_noise_sigma

    def cadence_s(self) -> int:
        return UPDATE_INTERVAL_S

    def jam_factor(self, timestamp: int, segment: RoadSegment) -> float:
        """Noise-free jam factor of one segment at an instant."""
        intensity = self.environment.traffic(timestamp) * segment.traffic_weight
        return intensity_to_jam_factor(intensity)

    def fetch(self, start: int, end: int) -> list[Observation]:
        out: list[Observation] = []
        tick = floor_to(start, UPDATE_INTERVAL_S)
        if tick < start:
            tick += UPDATE_INTERVAL_S
        while tick <= end:
            # The update published at `tick` describes `tick - latency`.
            observed_at = tick - self.latency_s
            for i, segment in enumerate(self.segments):
                rng = np.random.default_rng(
                    [self._seed, i, tick & 0xFFFFFFFF]
                )
                if rng.random() < self.missing_probability:
                    continue  # feed hiccup: this segment skips this tick
                jam = self.jam_factor(observed_at, segment)
                jam = float(
                    np.clip(jam + rng.normal(0.0, self.jam_noise_sigma), 0.0, 10.0)
                )
                out.append(
                    Observation(
                        source=self.name,
                        source_type=self.source_type,
                        quantity="jam_factor",
                        timestamp=tick,
                        value=jam,
                        unit="0-10",
                        location=segment.start,
                        uncertainty=self.jam_noise_sigma,
                        metadata={"segment": segment.name},
                    )
                )
            tick += UPDATE_INTERVAL_S
        return out
