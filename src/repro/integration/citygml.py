"""3D city model: synthetic LOD1 CityGML (Table 1, row 5; paper Fig. 7).

The paper integrates sensor data "into a 3D CityGML model" of Vejle
provided by the municipality.  We cannot ship that proprietary model, so
this module (a) *generates* a statistically plausible LOD1 block model
(extruded rectangular footprints with building heights) around a city
centre, and (b) reads/writes a CityGML-flavoured XML so the Fig. 7
pipeline exercises real GML geometry handling rather than an in-memory
shortcut.
"""

from __future__ import annotations

import math
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field

import numpy as np

from ..geo import BoundingBox, GeoPoint
from .base import SourceType

GML_NS = "http://www.opengis.net/gml"
BLDG_NS = "http://www.opengis.net/citygml/building/2.0"
CORE_NS = "http://www.opengis.net/citygml/2.0"

ET.register_namespace("gml", GML_NS)
ET.register_namespace("bldg", BLDG_NS)
ET.register_namespace("core", CORE_NS)


@dataclass(frozen=True)
class Building:
    """One LOD1 building: footprint ring + extrusion height."""

    building_id: str
    footprint: tuple[GeoPoint, ...]  # closed implicitly
    height_m: float
    function: str = "residential"

    def __post_init__(self) -> None:
        if len(self.footprint) < 3:
            raise ValueError("footprint needs at least 3 vertices")
        if self.height_m <= 0:
            raise ValueError("height must be positive")

    @property
    def centroid(self) -> GeoPoint:
        lat = sum(p.lat for p in self.footprint) / len(self.footprint)
        lon = sum(p.lon for p in self.footprint) / len(self.footprint)
        return GeoPoint(lat, lon)

    def footprint_area_m2(self) -> float:
        """Shoelace area on a local tangent plane."""
        lat0 = math.radians(self.centroid.lat)
        mx = 111_320.0 * math.cos(lat0)
        my = 110_540.0
        pts = [(p.lon * mx, p.lat * my) for p in self.footprint]
        area = 0.0
        for i in range(len(pts)):
            x1, y1 = pts[i]
            x2, y2 = pts[(i + 1) % len(pts)]
            area += x1 * y2 - x2 * y1
        return abs(area) / 2.0


@dataclass
class CityModel:
    """A set of buildings with provenance metadata."""

    name: str
    buildings: list[Building] = field(default_factory=list)
    source_type: SourceType = SourceType.CITY_MODEL_3D

    def __len__(self) -> int:
        return len(self.buildings)

    def bounds(self) -> BoundingBox:
        points = [p for b in self.buildings for p in b.footprint]
        return BoundingBox.of_points(points)

    def nearest_building(self, point: GeoPoint) -> Building:
        if not self.buildings:
            raise ValueError("empty city model")
        return min(
            self.buildings, key=lambda b: b.centroid.distance_to(point)
        )

    def buildings_within(self, point: GeoPoint, radius_m: float) -> list[Building]:
        return [
            b
            for b in self.buildings
            if b.centroid.distance_to(point) <= radius_m
        ]


def generate_city_model(
    name: str,
    center: GeoPoint,
    seed: int = 0,
    *,
    blocks: int = 8,
    buildings_per_block: int = 6,
    block_pitch_m: float = 140.0,
) -> CityModel:
    """Generate a plausible LOD1 block model around ``center``.

    A ``blocks x blocks`` street grid; each block holds a few rectangular
    buildings with log-normal heights (median ~9 m, occasional towers) —
    enough structure for Fig. 7's "sites of air quality monitoring
    according to ... building density" discussion.
    """
    rng = np.random.default_rng(seed)
    model = CityModel(name=name)
    half = blocks / 2.0
    for bx in range(blocks):
        for by in range(blocks):
            # Block origin relative to centre.
            east = (bx - half) * block_pitch_m
            north = (by - half) * block_pitch_m
            for i in range(buildings_per_block):
                off_e = east + float(rng.uniform(10.0, block_pitch_m - 40.0))
                off_n = north + float(rng.uniform(10.0, block_pitch_m - 40.0))
                w = float(rng.uniform(10.0, 28.0))
                d = float(rng.uniform(8.0, 22.0))
                origin = center.destination(90.0, off_e).destination(0.0, off_n)
                corners = (
                    origin,
                    origin.destination(90.0, w),
                    origin.destination(90.0, w).destination(0.0, d),
                    origin.destination(0.0, d),
                )
                height = float(np.exp(rng.normal(2.2, 0.45)))
                model.buildings.append(
                    Building(
                        building_id=f"{name}-b{bx}{by}-{i}",
                        footprint=corners,
                        height_m=round(height, 1),
                        function="commercial" if height > 18.0 else "residential",
                    )
                )
    return model


# ---------------------------------------------------------------------------
# GML serialization
# ---------------------------------------------------------------------------


def write_citygml(model: CityModel) -> str:
    """Serialize a model to CityGML-flavoured XML."""
    root = ET.Element(f"{{{CORE_NS}}}CityModel", {"name": model.name})
    for b in model.buildings:
        member = ET.SubElement(root, f"{{{CORE_NS}}}cityObjectMember")
        bldg = ET.SubElement(
            member, f"{{{BLDG_NS}}}Building", {f"{{{GML_NS}}}id": b.building_id}
        )
        ET.SubElement(bldg, f"{{{BLDG_NS}}}function").text = b.function
        ET.SubElement(bldg, f"{{{BLDG_NS}}}measuredHeight").text = f"{b.height_m}"
        solid = ET.SubElement(bldg, f"{{{BLDG_NS}}}lod1Solid")
        ring = ET.SubElement(solid, f"{{{GML_NS}}}posList")
        coords = []
        for p in b.footprint:
            coords.append(f"{p.lat:.7f} {p.lon:.7f}")
        coords.append(f"{b.footprint[0].lat:.7f} {b.footprint[0].lon:.7f}")
        ring.text = " ".join(coords)
    return ET.tostring(root, encoding="unicode")


class CityGmlError(ValueError):
    """Document is not a readable CityGML model."""


def parse_citygml(text: str) -> CityModel:
    """Inverse of :func:`write_citygml`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise CityGmlError(f"malformed XML: {exc}") from None
    if root.tag != f"{{{CORE_NS}}}CityModel":
        raise CityGmlError(f"not a CityModel document: {root.tag}")
    model = CityModel(name=root.get("name", "unnamed"))
    for bldg in root.iter(f"{{{BLDG_NS}}}Building"):
        bid = bldg.get(f"{{{GML_NS}}}id") or "unknown"
        height_el = bldg.find(f"{{{BLDG_NS}}}measuredHeight")
        func_el = bldg.find(f"{{{BLDG_NS}}}function")
        pos_el = bldg.find(f".//{{{GML_NS}}}posList")
        if height_el is None or pos_el is None or not pos_el.text:
            raise CityGmlError(f"building {bid} missing height or geometry")
        values = [float(v) for v in pos_el.text.split()]
        if len(values) % 2 != 0 or len(values) < 8:
            raise CityGmlError(f"building {bid} has a bad posList")
        points = [
            GeoPoint(values[i], values[i + 1]) for i in range(0, len(values), 2)
        ]
        if points[0] == points[-1]:
            points = points[:-1]  # drop the closing vertex
        model.buildings.append(
            Building(
                building_id=bid,
                footprint=tuple(points),
                height_m=float(height_el.text),
                function=func_el.text if func_el is not None and func_el.text else "unknown",
            )
        )
    return model
