"""Outlier and malfunctioning-sensor identification.

Paper §2.4: "In connection with the network monitoring, it also allows
the identification of outliers and malfunctioning sensors."  Three
complementary detectors:

- :func:`rolling_mad_outliers` — point anomalies against a robust
  rolling baseline (spikes);
- :func:`stuck_values` — channels repeating the same reading (stuck-at
  faults);
- :func:`drift_against_peers` — slow divergence from the fleet median
  (decaying sensors).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class OutlierReport:
    """Indices (into the input arrays) judged anomalous, with scores."""

    indices: np.ndarray
    scores: np.ndarray
    threshold: float

    def __len__(self) -> int:
        return int(self.indices.shape[0])


def rolling_mad_outliers(
    values: np.ndarray, window: int = 24, threshold: float = 5.0
) -> OutlierReport:
    """Robust z-score against a centred rolling median/MAD.

    MAD-based scores stay meaningful in the presence of the outliers
    themselves (unlike mean/std).  Values with |z| >= threshold are
    flagged.  NaNs never flag and never poison the baseline.
    """
    if window < 3:
        raise ValueError("window must be >= 3")
    v = np.asarray(values, dtype=float)
    n = v.size
    scores = np.zeros(n)
    half = window // 2
    for i in range(n):
        if not np.isfinite(v[i]):
            continue
        lo = max(0, i - half)
        hi = min(n, i + half + 1)
        neighbourhood = np.delete(v[lo:hi], i - lo)
        neighbourhood = neighbourhood[np.isfinite(neighbourhood)]
        if neighbourhood.size < 3:
            continue
        med = np.median(neighbourhood)
        mad = np.median(np.abs(neighbourhood - med))
        sigma = 1.4826 * mad  # MAD -> std for Gaussian data
        if sigma < 1e-9:
            # Flat baseline: any departure is infinitely surprising;
            # use a small floor instead of dividing by ~0.
            sigma = max(1e-9, 0.01 * max(1.0, abs(med)))
        scores[i] = abs(v[i] - med) / sigma
    idx = np.nonzero(scores >= threshold)[0]
    return OutlierReport(indices=idx, scores=scores[idx], threshold=threshold)


@dataclass(frozen=True)
class StuckRun:
    """A run of identical values long enough to be suspicious."""

    start_index: int
    length: int
    value: float


def stuck_values(
    values: np.ndarray, min_run: int = 6, tolerance: float = 0.0
) -> list[StuckRun]:
    """Find runs of (near-)identical consecutive readings.

    Natural signals at 5-minute cadence essentially never repeat exactly
    for an hour; ``min_run=6`` therefore catches stuck-at faults with a
    negligible false-positive rate.
    """
    if min_run < 2:
        raise ValueError("min_run must be >= 2")
    v = np.asarray(values, dtype=float)
    runs: list[StuckRun] = []
    start = 0
    for i in range(1, v.size + 1):
        boundary = (
            i == v.size
            or not np.isfinite(v[i])
            or not np.isfinite(v[start])
            or abs(v[i] - v[start]) > tolerance
        )
        if boundary:
            length = i - start
            if length >= min_run and np.isfinite(v[start]):
                runs.append(StuckRun(start, length, float(v[start])))
            start = i
    return runs


@dataclass(frozen=True)
class DriftReport:
    """Per-node divergence from the fleet median."""

    node_id: str
    drift_per_day: float
    final_offset: float
    suspicious: bool


def drift_against_peers(
    node_series: dict[str, np.ndarray],
    timestamps: np.ndarray,
    *,
    max_drift_per_day: float = 1.0,
) -> list[DriftReport]:
    """Estimate each node's divergence trend from the fleet median.

    All nodes see the same city background, so ``node - median(fleet)``
    should be a flat offset; a significant slope marks a decaying
    sensor.  The slope is fit by least squares over days.
    """
    if len(node_series) < 3:
        raise ValueError("need >= 3 nodes for a meaningful fleet median")
    names = sorted(node_series)
    matrix = np.vstack([np.asarray(node_series[n], dtype=float) for n in names])
    fleet_median = np.nanmedian(matrix, axis=0)
    days = (np.asarray(timestamps, dtype=float) - float(timestamps[0])) / 86400.0

    reports: list[DriftReport] = []
    for name, row in zip(names, matrix):
        delta = row - fleet_median
        mask = np.isfinite(delta)
        if mask.sum() < 5 or np.ptp(days[mask]) < 0.5:
            reports.append(DriftReport(name, 0.0, 0.0, False))
            continue
        slope, intercept = np.polyfit(days[mask], delta[mask], 1)
        final = slope * days[mask][-1] + intercept
        reports.append(
            DriftReport(
                node_id=name,
                drift_per_day=float(slope),
                final_offset=float(final),
                suspicious=abs(slope) > max_drift_per_day,
            )
        )
    return reports
