"""Satellite measurement grounding (paper §2.1: "satellite measurement
grounding" is one of the analyses connected to the data processing).

OCO-2 provides sparse, column-averaged XCO2; the ground network provides
dense surface CO2.  Grounding means reconciling the two: at each usable
overpass, compare the network's surface *enhancement* over background
with the satellite's column enhancement, estimate the effective column
dilution factor, and flag overpasses where the two disagree beyond their
combined uncertainty (either a network calibration problem or a
retrieval outlier).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..integration.oco2 import Oco2Connector
from ..tsdb import METRIC_CO2, TimeSeriesStore


@dataclass(frozen=True)
class OverpassComparison:
    """Network vs satellite at one overpass."""

    overpass: int
    network_surface_ppm: float
    network_enhancement_ppm: float
    satellite_xco2_ppm: float
    satellite_enhancement_ppm: float
    n_soundings: int
    implied_dilution: float  # surface enhancement / column enhancement
    consistent: bool


@dataclass(frozen=True)
class GroundingReport:
    """All usable overpasses in a window."""

    comparisons: tuple[OverpassComparison, ...]
    background_ppm: float
    mean_implied_dilution: float
    consistent_fraction: float

    def __len__(self) -> int:
        return len(self.comparisons)


def ground_against_satellite(
    db: TimeSeriesStore,
    satellite: Oco2Connector,
    city_tag: str,
    start: int,
    end: int,
    *,
    background_ppm: float | None = None,
    window_s: int = 3600,
    consistency_sigma: float = 3.0,
) -> GroundingReport:
    """Compare the stored network CO2 with satellite soundings.

    For each cloud-free overpass in [start, end], the network surface
    value is the city-mean CO2 within ±``window_s`` of the overpass.
    Background defaults to the 10th percentile of the whole network
    series over the window (a standard enhancement baseline).
    """
    res = (
        db.select(METRIC_CO2).where(city=city_tag).range(start, end).run().single()
    )
    if len(res) < 10:
        raise ValueError("not enough network CO2 data in the window")
    if background_ppm is None:
        background_ppm = float(np.percentile(res.values, 10.0))

    comparisons: list[OverpassComparison] = []
    for overpass in satellite.overpass_times(start, end):
        soundings = satellite.fetch(overpass, overpass)
        if not soundings:
            continue  # cloud-screened
        xco2 = float(np.mean([o.value for o in soundings]))
        xco2_sigma = float(
            np.mean([o.uncertainty for o in soundings])
            / max(1.0, np.sqrt(len(soundings)))
        )
        mask = (res.timestamps >= overpass - window_s) & (
            res.timestamps <= overpass + window_s
        )
        if not mask.any():
            continue
        surface = float(np.mean(res.values[mask]))
        surf_enh = surface - background_ppm
        sat_enh = xco2 - satellite.environment.field.CO2_BACKGROUND_PPM
        implied = surf_enh / sat_enh if abs(sat_enh) > 1e-9 else float("inf")
        # Consistency: the column enhancement must be small and of the
        # same sign region as the surface enhancement within noise.
        expected_sat_enh = surf_enh / 30.0  # nominal column dilution
        consistent = abs(sat_enh - expected_sat_enh) <= consistency_sigma * max(
            xco2_sigma, 0.1
        )
        comparisons.append(
            OverpassComparison(
                overpass=overpass,
                network_surface_ppm=surface,
                network_enhancement_ppm=surf_enh,
                satellite_xco2_ppm=xco2,
                satellite_enhancement_ppm=sat_enh,
                n_soundings=len(soundings),
                implied_dilution=implied,
                consistent=consistent,
            )
        )
    finite_dilutions = [
        c.implied_dilution
        for c in comparisons
        if np.isfinite(c.implied_dilution) and c.implied_dilution > 0
    ]
    return GroundingReport(
        comparisons=tuple(comparisons),
        background_ppm=background_ppm,
        mean_implied_dilution=float(np.mean(finite_dilutions))
        if finite_dilutions
        else float("nan"),
        consistent_fraction=(
            sum(c.consistent for c in comparisons) / len(comparisons)
            if comparisons
            else float("nan")
        ),
    )
