"""Sensor grounding and calibration against a reference station.

Paper §2.4: "to support the grounding and calibration, we have
co-located one of our sensor units to the only station in the pilot
area.  This allows to compare both absolute and relative accuracy and
calibrate the local sensor and, through larger-scale correlated trends,
the network, but with lower certainty."

The model is a linear transfer ``reference ≈ gain * raw + offset`` fit
by least squares on time-aligned co-location pairs; network propagation
re-uses the co-located node's gain (city-wide trends are shared) while
refitting only the per-node offset against the city median — the
"lower certainty" second tier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class CalibrationError(ValueError):
    """Not enough (or degenerate) co-location data."""


@dataclass(frozen=True)
class AccuracyReport:
    """Absolute + relative accuracy of one series against a reference."""

    rmse: float
    bias: float  # mean(sensor - reference): absolute accuracy
    correlation: float  # relative accuracy (tracking the dynamics)
    n: int


def accuracy(sensor: np.ndarray, reference: np.ndarray) -> AccuracyReport:
    """Compare aligned sensor and reference arrays."""
    sensor = np.asarray(sensor, dtype=float)
    reference = np.asarray(reference, dtype=float)
    if sensor.shape != reference.shape:
        raise CalibrationError("sensor and reference must be aligned")
    mask = np.isfinite(sensor) & np.isfinite(reference)
    s, r = sensor[mask], reference[mask]
    if s.size < 3:
        raise CalibrationError(f"need >= 3 aligned pairs, got {s.size}")
    resid = s - r
    corr = float(np.corrcoef(s, r)[0, 1]) if s.std() > 0 and r.std() > 0 else 0.0
    return AccuracyReport(
        rmse=float(np.sqrt(np.mean(resid**2))),
        bias=float(np.mean(resid)),
        correlation=corr,
        n=int(s.size),
    )


@dataclass(frozen=True)
class LinearCalibration:
    """``corrected = gain * raw + offset``."""

    gain: float
    offset: float
    residual_sigma: float  # 1-sigma of post-fit residuals
    n: int

    def apply(self, raw: np.ndarray | float):
        return self.gain * np.asarray(raw, dtype=float) + self.offset


def fit_colocation(
    raw: np.ndarray, reference: np.ndarray, min_pairs: int = 24
) -> LinearCalibration:
    """Fit the linear transfer from co-location pairs.

    ``min_pairs`` defaults to a day of hourly pairs — fitting on less
    yields transfers that do not generalize past the fit window.
    """
    raw = np.asarray(raw, dtype=float)
    reference = np.asarray(reference, dtype=float)
    if raw.shape != reference.shape:
        raise CalibrationError("raw and reference must be aligned")
    mask = np.isfinite(raw) & np.isfinite(reference)
    x, y = raw[mask], reference[mask]
    if x.size < min_pairs:
        raise CalibrationError(
            f"need >= {min_pairs} co-location pairs, got {x.size}"
        )
    if float(np.std(x)) < 1e-9:
        raise CalibrationError("raw series is constant; cannot fit a gain")
    gain, offset = np.polyfit(x, y, 1)
    resid = y - (gain * x + offset)
    return LinearCalibration(
        gain=float(gain),
        offset=float(offset),
        residual_sigma=float(np.std(resid)),
        n=int(x.size),
    )


@dataclass(frozen=True)
class NetworkCalibration:
    """Per-node calibrations propagated from one co-located anchor."""

    anchor_node: str
    anchor: LinearCalibration
    per_node: dict[str, LinearCalibration]

    def for_node(self, node_id: str) -> LinearCalibration:
        return self.per_node.get(node_id, self.anchor)


def propagate_network(
    anchor_node: str,
    anchor_cal: LinearCalibration,
    node_series: dict[str, np.ndarray],
    *,
    min_overlap: int = 24,
) -> NetworkCalibration:
    """Second-tier calibration via "larger-scale correlated trends".

    All nodes observe the same city-scale background, so the anchor's
    *gain* transfers; each node's *offset* is chosen so its corrected
    median matches the corrected anchor median over the same window.
    The residual sigma is inflated (x2) to encode the paper's "lower
    certainty".
    """
    if anchor_node not in node_series:
        raise CalibrationError(f"anchor node {anchor_node!r} missing from series")
    anchor_raw = np.asarray(node_series[anchor_node], dtype=float)
    anchor_corrected = anchor_cal.apply(anchor_raw)
    target_median = float(np.nanmedian(anchor_corrected))

    per_node: dict[str, LinearCalibration] = {anchor_node: anchor_cal}
    for node, raw in node_series.items():
        if node == anchor_node:
            continue
        raw = np.asarray(raw, dtype=float)
        finite = raw[np.isfinite(raw)]
        if finite.size < min_overlap:
            continue  # not enough data; falls back to the anchor transfer
        offset = target_median - anchor_cal.gain * float(np.median(finite))
        per_node[node] = LinearCalibration(
            gain=anchor_cal.gain,
            offset=offset,
            residual_sigma=anchor_cal.residual_sigma * 2.0,
            n=int(finite.size),
        )
    return NetworkCalibration(
        anchor_node=anchor_node, anchor=anchor_cal, per_node=per_node
    )
