"""Air-quality index (CAQI) for the dashboards.

Fig. 6 shows "air quality ... indicators" per mapped sensor.  We use the
European Common Air Quality Index (CAQI, hourly, background variant):
each pollutant maps to a 0-100+ sub-index through piecewise-linear
breakpoints; the overall index is the worst sub-index; bands name the
colour the dashboard tile shows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: CAQI hourly background breakpoints: (concentration, index) knots.
_BREAKPOINTS: dict[str, list[tuple[float, float]]] = {
    "no2_ugm3": [(0, 0), (50, 25), (100, 50), (200, 75), (400, 100)],
    "pm10_ugm3": [(0, 0), (25, 25), (50, 50), (90, 75), (180, 100)],
    "pm25_ugm3": [(0, 0), (15, 25), (30, 50), (55, 75), (110, 100)],
}

BANDS = (
    (25.0, "very_low"),
    (50.0, "low"),
    (75.0, "medium"),
    (100.0, "high"),
    (float("inf"), "very_high"),
)


def sub_index(quantity: str, concentration: float) -> float:
    """CAQI sub-index for one pollutant concentration.

    Above the last breakpoint the index extrapolates linearly — CAQI is
    open-ended at the top.
    """
    try:
        knots = _BREAKPOINTS[quantity]
    except KeyError:
        raise ValueError(
            f"no CAQI breakpoints for {quantity!r}; "
            f"supported: {sorted(_BREAKPOINTS)}"
        ) from None
    c = max(0.0, float(concentration))
    xs = [k[0] for k in knots]
    ys = [k[1] for k in knots]
    if c >= xs[-1]:
        slope = (ys[-1] - ys[-2]) / (xs[-1] - xs[-2])
        return ys[-1] + slope * (c - xs[-1])
    return float(np.interp(c, xs, ys))


def band(index: float) -> str:
    """CAQI band name for an index value."""
    for limit, name in BANDS:
        if index <= limit:
            return name
    return BANDS[-1][1]


@dataclass(frozen=True)
class AqiResult:
    """Overall CAQI with per-pollutant detail."""

    index: float
    band: str
    dominant: str
    sub_indices: dict[str, float]


def caqi(concentrations: dict[str, float]) -> AqiResult:
    """Overall CAQI from pollutant concentrations.

    Unknown quantities are ignored (dashboards pass whole measurement
    dicts); at least one CAQI pollutant must be present.
    """
    subs = {
        q: sub_index(q, v)
        for q, v in concentrations.items()
        if q in _BREAKPOINTS and v is not None and np.isfinite(v)
    }
    if not subs:
        raise ValueError("no CAQI-relevant pollutant present")
    dominant = max(subs, key=lambda q: subs[q])
    overall = subs[dominant]
    return AqiResult(
        index=round(overall, 1),
        band=band(overall),
        dominant=dominant,
        sub_indices={k: round(v, 1) for k, v in subs.items()},
    )
