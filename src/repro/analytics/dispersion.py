"""Emission distribution and dispersion modelling (paper future work).

"with more data collected, we will be able to tune models for emission
distribution and dispersion to overcome some of the issues and provide
improved analysis with better models."

Two pieces:

- :class:`GaussianPlume` — the standard steady-state Gaussian plume for a
  point source (construction site, factory — the demo's what-if objects),
  with Pasquill-Gifford-style stability-dependent dispersion coefficients;
- :func:`interpolate_field` — city-wide concentration surface estimated
  from the sparse sensor network by inverse-distance weighting with a
  background floor, the "emission distribution" half.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..geo import BoundingBox, GeoPoint, Grid


class StabilityClass:
    """Pasquill-Gifford stability classes A (very unstable) .. F (stable).

    Coefficients are the standard rural power-law fits
    ``sigma = a * x^b`` with x in km, sigma in m.
    """

    _SIGMA_Y = {
        "A": (213.0, 0.894), "B": (156.0, 0.894), "C": (104.0, 0.894),
        "D": (68.0, 0.894), "E": (50.5, 0.894), "F": (34.0, 0.894),
    }
    _SIGMA_Z = {
        "A": (440.8, 1.941), "B": (106.6, 1.149), "C": (61.0, 0.911),
        "D": (33.2, 0.725), "E": (22.8, 0.678), "F": (14.35, 0.740),
    }

    @classmethod
    def validate(cls, stability: str) -> str:
        if stability not in cls._SIGMA_Y:
            raise ValueError(
                f"stability must be one of {sorted(cls._SIGMA_Y)}: {stability!r}"
            )
        return stability

    @classmethod
    def sigma_y_m(cls, stability: str, downwind_m: float) -> float:
        a, b = cls._SIGMA_Y[cls.validate(stability)]
        return a * max(1e-3, downwind_m / 1000.0) ** b

    @classmethod
    def sigma_z_m(cls, stability: str, downwind_m: float) -> float:
        a, b = cls._SIGMA_Z[cls.validate(stability)]
        return min(5000.0, a * max(1e-3, downwind_m / 1000.0) ** b)

    @classmethod
    def from_weather(cls, wind_speed_ms: float, irradiance_wm2: float) -> str:
        """Rough class from wind and insolation (daytime Turner scheme)."""
        if irradiance_wm2 > 500.0:
            return "A" if wind_speed_ms < 2.0 else ("B" if wind_speed_ms < 5.0 else "C")
        if irradiance_wm2 > 100.0:
            return "B" if wind_speed_ms < 2.0 else ("C" if wind_speed_ms < 5.0 else "D")
        # Night / overcast: stable unless windy.
        return "F" if wind_speed_ms < 2.0 else ("E" if wind_speed_ms < 5.0 else "D")


@dataclass(frozen=True)
class GaussianPlume:
    """Steady-state Gaussian plume from one point source.

    Parameters
    ----------
    source:
        Source location.
    emission_rate_gs:
        Emission rate in g/s.
    wind_speed_ms, wind_direction_deg:
        Transporting wind; direction is meteorological (the direction the
        wind blows *from*, degrees clockwise from north).
    stack_height_m:
        Effective release height.
    stability:
        Pasquill-Gifford class A-F.
    """

    source: GeoPoint
    emission_rate_gs: float
    wind_speed_ms: float
    wind_direction_deg: float
    stack_height_m: float = 5.0
    stability: str = "D"

    def __post_init__(self) -> None:
        if self.emission_rate_gs < 0:
            raise ValueError("emission_rate_gs must be >= 0")
        if self.wind_speed_ms <= 0:
            raise ValueError("wind_speed_ms must be > 0")
        StabilityClass.validate(self.stability)

    def _downwind_crosswind(self, receptor: GeoPoint) -> tuple[float, float]:
        """Receptor position in plume coordinates (x downwind, y crosswind)."""
        distance = self.source.distance_to(receptor)
        if distance == 0.0:
            return 0.0, 0.0
        bearing = self.source.bearing_to(receptor)
        # Wind FROM wd blows TOWARD wd+180; that's the plume axis.
        axis = (self.wind_direction_deg + 180.0) % 360.0
        theta = math.radians(bearing - axis)
        return distance * math.cos(theta), distance * math.sin(theta)

    def concentration_ugm3(self, receptor: GeoPoint, height_m: float = 2.0) -> float:
        """Ground-level-ish concentration at a receptor, µg/m³.

        Standard plume equation with ground reflection; zero upwind.
        """
        x, y = self._downwind_crosswind(receptor)
        if x <= 0.0:
            return 0.0
        sy = StabilityClass.sigma_y_m(self.stability, x)
        sz = StabilityClass.sigma_z_m(self.stability, x)
        q = self.emission_rate_gs * 1e6  # g/s -> µg/s
        u = self.wind_speed_ms
        h = self.stack_height_m
        z = height_m
        lateral = math.exp(-(y**2) / (2.0 * sy**2))
        vertical = math.exp(-((z - h) ** 2) / (2.0 * sz**2)) + math.exp(
            -((z + h) ** 2) / (2.0 * sz**2)
        )
        return q / (2.0 * math.pi * u * sy * sz) * lateral * vertical

    def footprint(self, region: BoundingBox, rows: int = 24, cols: int = 24) -> Grid:
        """Rasterized concentration field over a region."""
        grid = Grid(region, rows=rows, cols=cols)
        for r in range(rows):
            for c in range(cols):
                center = grid.cell_center(r, c)
                grid.add(center, self.concentration_ugm3(center))
        return grid

    def max_impact_distance_m(
        self, threshold_ugm3: float, max_search_m: float = 20_000.0
    ) -> float:
        """Farthest downwind distance where the centreline exceeds the
        threshold (0 when never exceeded)."""
        axis = (self.wind_direction_deg + 180.0) % 360.0
        farthest = 0.0
        for x in np.geomspace(10.0, max_search_m, 120):
            receptor = self.source.destination(axis, float(x))
            if self.concentration_ugm3(receptor) >= threshold_ugm3:
                farthest = float(x)
        return farthest


def interpolate_field(
    sensor_values: dict[str, tuple[GeoPoint, float]],
    region: BoundingBox,
    *,
    rows: int = 24,
    cols: int = 24,
    power: float = 2.0,
    background: float | None = None,
    background_range_m: float = 1500.0,
) -> Grid:
    """Estimate the city-wide concentration surface from sparse sensors.

    Inverse-distance weighting with a pull towards the network median as
    ``background`` far from any sensor — the sensible prior when 12
    sensors must describe a whole city (the paper's density trade-off).
    """
    if not sensor_values:
        raise ValueError("need at least one sensor value")
    if power <= 0:
        raise ValueError("power must be positive")
    values = [v for _, (_, v) in sensor_values.items()]
    bg = background if background is not None else float(np.median(values))
    grid = Grid(region, rows=rows, cols=cols)
    for r in range(rows):
        for c in range(cols):
            center = grid.cell_center(r, c)
            num, den = 0.0, 0.0
            for _, (loc, value) in sensor_values.items():
                d = max(1.0, center.distance_to(loc))
                w = 1.0 / d**power
                num += w * value
                den += w
            # Background prior weighted as a virtual sensor at range.
            w_bg = 1.0 / background_range_m**power
            num += w_bg * bg
            den += w_bg
            grid.add(center, num / den)
    return grid


def field_uncertainty(
    sensor_values: dict[str, tuple[GeoPoint, float]],
    region: BoundingBox,
    *,
    rows: int = 24,
    cols: int = 24,
) -> Grid:
    """Leave-one-out cross-validation error mapped over the region.

    Each cell's uncertainty is the LOO prediction error of its nearest
    sensor — a practical "how much can I trust the map here" layer for
    the decision-support dashboards.
    """
    if len(sensor_values) < 3:
        raise ValueError("need >= 3 sensors for leave-one-out uncertainty")
    loo_errors: dict[str, float] = {}
    for name, (loc, value) in sensor_values.items():
        others = {k: v for k, v in sensor_values.items() if k != name}
        est_grid = interpolate_field(others, BoundingBox.around(loc, 10.0), rows=1, cols=1)
        est = float(est_grid.mean_field()[0, 0])
        loo_errors[name] = abs(est - value)
    grid = Grid(region, rows=rows, cols=cols)
    for r in range(rows):
        for c in range(cols):
            center = grid.cell_center(r, c)
            nearest = min(
                sensor_values.items(),
                key=lambda kv: center.distance_to(kv[1][0]),
            )[0]
            grid.add(center, loo_errors[nearest])
    return grid
