"""CO2-dynamics study (paper Fig. 5).

The paper's finding: "we can conclude for this sensor location that
traffic is not the only factor that accounts for the dynamics of the CO2
emission as they exhibit different patterns, and have no apparent
correlation.  In fact, CO2 emission dynamic is a more complex issue that
may be affected by many factors, including traffic, wind speed,
temperature, humidity and other weather conditions, as well as daily and
seasonal patterns."

This module runs that study end-to-end: correlation between CO2 and the
jam factor (expected: low), plus a multi-factor linear attribution that
shows adding weather covariates explains far more variance than traffic
alone — the quantitative version of "a more complex issue".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class CorrelationStudy:
    """Fig. 5's headline numbers."""

    pearson_r: float
    pearson_p: float
    spearman_rho: float
    best_lag_s: int
    best_lag_r: float
    n: int

    @property
    def no_apparent_correlation(self) -> bool:
        """The paper's qualitative claim, operationalized: |r| < 0.5 at
        every lag tested (traffic never becomes a strong predictor)."""
        return abs(self.pearson_r) < 0.5 and abs(self.best_lag_r) < 0.5


def correlation_study(
    co2: np.ndarray,
    jam: np.ndarray,
    cadence_s: int,
    max_lag_s: int = 7200,
) -> CorrelationStudy:
    """Correlate CO2 against the traffic jam factor, scanning lags.

    Lags are scanned in both directions (traffic leading or trailing) so
    a delayed response cannot masquerade as "no correlation".
    """
    co2 = np.asarray(co2, dtype=float)
    jam = np.asarray(jam, dtype=float)
    if co2.shape != jam.shape:
        raise ValueError("series must be aligned")
    mask = np.isfinite(co2) & np.isfinite(jam)
    x, y = co2[mask], jam[mask]
    if x.size < 10:
        raise ValueError(f"need >= 10 aligned samples, got {x.size}")
    pearson_r, pearson_p = stats.pearsonr(x, y)
    spearman_rho = stats.spearmanr(x, y).statistic

    max_lag = max_lag_s // cadence_s
    best_lag, best_r = 0, float(pearson_r)
    for lag in range(-max_lag, max_lag + 1):
        if lag == 0:
            continue
        if lag > 0:
            a, b = co2[lag:], jam[: co2.size - lag]
        else:
            a, b = co2[:lag], jam[-lag:]
        m = np.isfinite(a) & np.isfinite(b)
        if m.sum() < 10:
            continue
        r = float(np.corrcoef(a[m], b[m])[0, 1])
        if abs(r) > abs(best_r):
            best_lag, best_r = lag, r
    return CorrelationStudy(
        pearson_r=float(pearson_r),
        pearson_p=float(pearson_p),
        spearman_rho=float(spearman_rho),
        best_lag_s=best_lag * cadence_s,
        best_lag_r=best_r,
        n=int(x.size),
    )


@dataclass(frozen=True)
class FactorAttribution:
    """Variance explained by nested factor sets."""

    r2_traffic_only: float
    r2_full: float
    coefficients: dict[str, float]
    n: int

    @property
    def complex_dynamics(self) -> bool:
        """The paper's conclusion: weather and daily patterns add a lot
        of explanatory power beyond traffic alone."""
        return self.r2_full > self.r2_traffic_only + 0.2


def _ols_r2(design: np.ndarray, target: np.ndarray) -> tuple[np.ndarray, float]:
    coef, *_ = np.linalg.lstsq(design, target, rcond=None)
    pred = design @ coef
    ss_res = float(np.sum((target - pred) ** 2))
    ss_tot = float(np.sum((target - target.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0
    return coef, r2


def factor_attribution(
    co2: np.ndarray,
    factors: dict[str, np.ndarray],
    timestamps: np.ndarray,
) -> FactorAttribution:
    """Fit CO2 against traffic alone, then against the full factor set.

    ``factors`` must include ``"jam_factor"``; other keys (wind,
    temperature, humidity, ...) join the full model, as do sin/cos
    harmonics of the hour of day (the "daily patterns").
    """
    if "jam_factor" not in factors:
        raise ValueError('factors must include "jam_factor"')
    co2 = np.asarray(co2, dtype=float)
    ts = np.asarray(timestamps, dtype=np.int64)

    columns = {name: np.asarray(col, dtype=float) for name, col in factors.items()}
    mask = np.isfinite(co2)
    for col in columns.values():
        mask &= np.isfinite(col)
    if mask.sum() < 20:
        raise ValueError("need >= 20 complete rows")
    y = co2[mask]
    n = int(mask.sum())

    def standardize(col: np.ndarray) -> np.ndarray:
        sd = col.std()
        return (col - col.mean()) / sd if sd > 0 else col * 0.0

    ones = np.ones(n)
    jam = standardize(columns["jam_factor"][mask])
    _, r2_traffic = _ols_r2(np.column_stack([ones, jam]), y)

    names = ["jam_factor"] + sorted(k for k in columns if k != "jam_factor")
    cols = [standardize(columns[k][mask]) for k in names]
    hod = (ts[mask] % 86400) / 86400.0 * 2.0 * np.pi
    design = np.column_stack(
        [ones, *cols, np.sin(hod), np.cos(hod)]
    )
    coef, r2_full = _ols_r2(design, y)
    coefficients = {name: float(c) for name, c in zip(names, coef[1 : 1 + len(names)])}
    coefficients["sin_hod"] = float(coef[-2])
    coefficients["cos_hod"] = float(coef[-1])
    return FactorAttribution(
        r2_traffic_only=float(max(0.0, r2_traffic)),
        r2_full=float(max(0.0, r2_full)),
        coefficients=coefficients,
        n=n,
    )


@dataclass(frozen=True)
class DiurnalComparison:
    """Fig. 5's visual core: the two normalized daily patterns differ."""

    co2_profile: np.ndarray  # 24 normalized hourly means
    jam_profile: np.ndarray
    profile_correlation: float
    co2_peak_hour: int
    jam_peak_hour: int


def diurnal_comparison(
    co2: np.ndarray,
    jam: np.ndarray,
    timestamps: np.ndarray,
) -> DiurnalComparison:
    """Hourly mean profiles of both series, normalized to [0, 1]."""
    from .imputation import diurnal_profile

    ts = np.asarray(timestamps, dtype=np.int64)
    co2_prof = diurnal_profile(np.asarray(co2, float), ts, bins=24)
    jam_prof = diurnal_profile(np.asarray(jam, float), ts, bins=24)

    def norm(p: np.ndarray) -> np.ndarray:
        lo, hi = np.nanmin(p), np.nanmax(p)
        return (p - lo) / (hi - lo) if hi > lo else p * 0.0

    co2_n, jam_n = norm(co2_prof), norm(jam_prof)
    mask = np.isfinite(co2_n) & np.isfinite(jam_n)
    r = (
        float(np.corrcoef(co2_n[mask], jam_n[mask])[0, 1])
        if mask.sum() >= 3
        else float("nan")
    )
    return DiurnalComparison(
        co2_profile=co2_n,
        jam_profile=jam_n,
        profile_correlation=r,
        co2_peak_hour=int(np.nanargmax(co2_prof)),
        jam_peak_hour=int(np.nanargmax(jam_prof)),
    )
