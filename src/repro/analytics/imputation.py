"""Missing-data handling.

Paper §2.2: "The sensor network has the usual issues of missing data
that is ... being handled by standard methods in the analyses."  Two
imputers plus a gap auditor:

- :func:`interpolate_gaps` — linear interpolation for short gaps;
- :func:`diurnal_impute` — long gaps filled from the series' own mean
  diurnal profile (air quality is strongly daily-periodic, so the
  profile is a far better prior than a straight line across a day);
- :func:`gap_report` — where data is missing and how badly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Gap:
    """One contiguous run of missing samples."""

    start_index: int
    length: int
    duration_s: int


@dataclass(frozen=True)
class GapReport:
    gaps: tuple[Gap, ...]
    missing_fraction: float
    longest_gap_s: int

    def __len__(self) -> int:
        return len(self.gaps)


def gap_report(values: np.ndarray, cadence_s: int) -> GapReport:
    """Audit NaN runs in a regular-cadence series."""
    v = np.asarray(values, dtype=float)
    missing = ~np.isfinite(v)
    gaps: list[Gap] = []
    start = None
    for i, m in enumerate(missing):
        if m and start is None:
            start = i
        elif not m and start is not None:
            gaps.append(Gap(start, i - start, (i - start) * cadence_s))
            start = None
    if start is not None:
        gaps.append(Gap(start, len(v) - start, (len(v) - start) * cadence_s))
    return GapReport(
        gaps=tuple(gaps),
        missing_fraction=float(missing.mean()) if v.size else 0.0,
        longest_gap_s=max((g.duration_s for g in gaps), default=0),
    )


def interpolate_gaps(
    values: np.ndarray, max_gap: int = 3
) -> np.ndarray:
    """Linearly fill NaN runs of length <= ``max_gap`` samples.

    Longer gaps are left as NaN — bridging a whole day with a line
    invents dynamics that are not there.
    """
    v = np.asarray(values, dtype=float).copy()
    report = gap_report(v, cadence_s=1)
    idx = np.arange(v.size, dtype=float)
    known = np.isfinite(v)
    if known.sum() < 2:
        return v
    for gap in report.gaps:
        if gap.length > max_gap:
            continue
        lo, hi = gap.start_index, gap.start_index + gap.length
        if lo == 0 or hi >= v.size:
            continue  # edge gaps have no bracketing values
        v[lo:hi] = np.interp(idx[lo:hi], idx[known], v[known])
    return v


def diurnal_profile(
    values: np.ndarray, timestamps: np.ndarray, bins: int = 24
) -> np.ndarray:
    """Mean value per time-of-day bin (NaN-aware)."""
    v = np.asarray(values, dtype=float)
    ts = np.asarray(timestamps, dtype=np.int64)
    seconds_per_bin = 86400 // bins
    bin_idx = (ts % 86400) // seconds_per_bin
    profile = np.full(bins, np.nan)
    for b in range(bins):
        bucket = v[bin_idx == b]
        bucket = bucket[np.isfinite(bucket)]
        if bucket.size:
            profile[b] = bucket.mean()
    return profile


def diurnal_impute(
    values: np.ndarray, timestamps: np.ndarray, bins: int = 24
) -> np.ndarray:
    """Fill all remaining NaNs from the series' mean diurnal profile.

    The profile is level-shifted to the nearest finite neighbourhood so
    imputed stretches join the observed data without steps.
    """
    v = np.asarray(values, dtype=float).copy()
    ts = np.asarray(timestamps, dtype=np.int64)
    profile = diurnal_profile(v, ts, bins)
    if np.all(~np.isfinite(profile)):
        return v
    profile_mean = float(np.nanmean(profile))
    seconds_per_bin = 86400 // bins
    missing = ~np.isfinite(v)
    finite_idx = np.nonzero(~missing)[0]
    if finite_idx.size == 0:
        return v
    for i in np.nonzero(missing)[0]:
        b = int((ts[i] % 86400) // seconds_per_bin)
        base = profile[b]
        if not np.isfinite(base):
            base = profile_mean
        # Level anchor: nearest observed sample.
        nearest = finite_idx[np.argmin(np.abs(finite_idx - i))]
        nearest_bin = int((ts[nearest] % 86400) // seconds_per_bin)
        anchor_profile = profile[nearest_bin]
        if not np.isfinite(anchor_profile):
            anchor_profile = profile_mean
        level_shift = v[nearest] - anchor_profile
        v[i] = base + level_shift
    return v
