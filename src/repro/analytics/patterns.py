"""Pattern understanding: profiles, trends, anomalous periods.

Paper §2.4 lists "understanding of patterns" among the ongoing analyses,
and the citizens' demo lets attendees "browse historic data in the
system to investigate anomalous emission levels".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from .imputation import diurnal_profile


@dataclass(frozen=True)
class WeeklyProfile:
    """Mean value per (day-of-week, hour) cell; Monday = row 0."""

    matrix: np.ndarray  # shape (7, 24)

    def weekday_vs_weekend_ratio(self) -> float:
        weekday = np.nanmean(self.matrix[:5])
        weekend = np.nanmean(self.matrix[5:])
        return float(weekday / weekend) if weekend else float("nan")


def weekly_profile(values: np.ndarray, timestamps: np.ndarray) -> WeeklyProfile:
    v = np.asarray(values, dtype=float)
    ts = np.asarray(timestamps, dtype=np.int64)
    # Epoch (1970-01-01) was a Thursday = ISO weekday 3.
    dow = ((ts // 86400) + 3) % 7
    hod = (ts % 86400) // 3600
    # One bincount per statistic instead of 168 boolean-mask scans: each
    # sample lands in its (day, hour) cell index in a single pass.
    cell = (dow * 24 + hod).astype(np.intp)
    finite = np.isfinite(v)
    sums = np.bincount(cell[finite], weights=v[finite], minlength=168)
    counts = np.bincount(cell[finite], minlength=168)
    matrix = np.full(168, np.nan)
    occupied = counts > 0
    matrix[occupied] = sums[occupied] / counts[occupied]
    return WeeklyProfile(matrix.reshape(7, 24))


@dataclass(frozen=True)
class TrendEstimate:
    """Robust long-term trend (Theil-Sen)."""

    slope_per_day: float
    intercept: float
    significant: bool


def trend(values: np.ndarray, timestamps: np.ndarray, alpha: float = 0.05) -> TrendEstimate:
    """Theil-Sen slope with Mann-Kendall-style significance.

    Robust to the spikes and gaps a low-cost network produces.
    """
    v = np.asarray(values, dtype=float)
    ts = np.asarray(timestamps, dtype=float)
    mask = np.isfinite(v)
    if mask.sum() < 8:
        raise ValueError("need >= 8 finite samples for a trend")
    days = (ts[mask] - ts[mask][0]) / 86400.0
    slope, intercept, lo, hi = stats.theilslopes(v[mask], days, alpha=alpha)
    return TrendEstimate(
        slope_per_day=float(slope),
        intercept=float(intercept),
        significant=not (lo <= 0.0 <= hi),
    )


@dataclass(frozen=True)
class AnomalousPeriod:
    """A day whose mean sits far from the typical day."""

    day_start: int
    mean_value: float
    z_score: float


def anomalous_days(
    values: np.ndarray,
    timestamps: np.ndarray,
    threshold: float = 2.5,
) -> list[AnomalousPeriod]:
    """Days whose daily mean deviates > ``threshold`` robust sigmas.

    This is the "investigate anomalous emission levels" browsing aid:
    it returns candidate days, most anomalous first.
    """
    v = np.asarray(values, dtype=float)
    ts = np.asarray(timestamps, dtype=np.int64)
    day_keys = ts // 86400
    # Daily means via one inverse-index bincount pass (no per-day scans).
    days, inverse = np.unique(day_keys, return_inverse=True)
    finite = np.isfinite(v)
    sums = np.bincount(inverse[finite], weights=v[finite], minlength=days.size)
    counts = np.bincount(inverse[finite], minlength=days.size)
    means_arr = np.full(days.size, np.nan)
    occupied = counts > 0
    means_arr[occupied] = sums[occupied] / counts[occupied]
    finite = means_arr[np.isfinite(means_arr)]
    if finite.size < 3:
        return []
    med = np.median(finite)
    mad = np.median(np.abs(finite - med))
    sigma = max(1.4826 * mad, 1e-9)
    out = [
        AnomalousPeriod(
            day_start=int(d * 86400),
            mean_value=float(m),
            z_score=float((m - med) / sigma),
        )
        for d, m in zip(days, means_arr)
        if np.isfinite(m) and abs((m - med) / sigma) >= threshold
    ]
    out.sort(key=lambda a: -abs(a.z_score))
    return out


def pattern_summary(values: np.ndarray, timestamps: np.ndarray) -> dict:
    """One-call bundle for dashboard "pattern" panels."""
    prof = diurnal_profile(np.asarray(values, float), np.asarray(timestamps), 24)
    weekly = weekly_profile(values, timestamps)
    try:
        t = trend(values, timestamps)
        trend_dict = {
            "slope_per_day": t.slope_per_day,
            "significant": t.significant,
        }
    except ValueError:
        trend_dict = {"slope_per_day": float("nan"), "significant": False}
    return {
        "diurnal_peak_hour": int(np.nanargmax(prof)) if np.isfinite(prof).any() else None,
        "diurnal_amplitude": float(np.nanmax(prof) - np.nanmin(prof))
        if np.isfinite(prof).any()
        else None,
        "weekday_weekend_ratio": weekly.weekday_vs_weekend_ratio(),
        "trend": trend_dict,
        "anomalous_days": len(anomalous_days(values, timestamps)),
    }
