"""Battery-level analysis (paper Fig. 4).

Fig. 4 has two panels:

- left: "battery level as a function of time" — per-node voltage series;
- right: "the difference in battery-level from previous sent package
  versus time of day, and where red indicates whether the nodes could
  have been charged by sunlight since the previous package" — the
  scatter this module's :func:`battery_deltas` reproduces, including the
  could-have-charged flag from the solar model.

Plus the operational question behind the figure: "This allows to
estimate battery depletion" — :func:`estimate_depletion`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simclock import hour_of_day
from ..simclock.sun import solar_elevation_deg


@dataclass(frozen=True)
class BatteryDelta:
    """One point of Fig. 4's right panel."""

    timestamp: int
    hour_of_day: float
    delta_v: float
    could_have_charged: bool  # sun above horizon since previous package


def _sun_was_up_between(t0: int, t1: int, lat: float, lon: float) -> bool:
    """Was the sun above the horizon at any point in [t0, t1]?

    Sampled at <= 15-minute resolution, which cannot miss a daylight
    window at 5-minute..hour packet cadences.
    """
    if t1 <= t0:
        return solar_elevation_deg(t0, lat, lon) > 0.0
    step = max(60, min(900, (t1 - t0) // 8 or 60))
    for t in range(t0, t1 + 1, step):
        if solar_elevation_deg(t, lat, lon) > 0.0:
            return True
    return solar_elevation_deg(t1, lat, lon) > 0.0


def battery_deltas(
    timestamps: np.ndarray,
    voltages: np.ndarray,
    lat: float,
    lon: float,
) -> list[BatteryDelta]:
    """Fig. 4 right panel: Δbattery vs time of day with sunlight flag."""
    ts = np.asarray(timestamps, dtype=np.int64)
    v = np.asarray(voltages, dtype=float)
    if ts.shape != v.shape:
        raise ValueError("timestamps and voltages must be aligned")
    out: list[BatteryDelta] = []
    for i in range(1, ts.size):
        if not (np.isfinite(v[i]) and np.isfinite(v[i - 1])):
            continue
        out.append(
            BatteryDelta(
                timestamp=int(ts[i]),
                hour_of_day=hour_of_day(int(ts[i])),
                delta_v=float(v[i] - v[i - 1]),
                could_have_charged=_sun_was_up_between(
                    int(ts[i - 1]), int(ts[i]), lat, lon
                ),
            )
        )
    return out


@dataclass(frozen=True)
class ChargeBalance:
    """Summary statistics of the Fig. 4 scatter."""

    mean_delta_sunlit_v: float
    mean_delta_dark_v: float
    n_sunlit: int
    n_dark: int

    @property
    def charging_works(self) -> bool:
        """The qualitative Fig. 4 claim: charging happens in daylight."""
        return self.mean_delta_sunlit_v > self.mean_delta_dark_v


def charge_balance(deltas: list[BatteryDelta]) -> ChargeBalance:
    sunlit = [d.delta_v for d in deltas if d.could_have_charged]
    dark = [d.delta_v for d in deltas if not d.could_have_charged]
    return ChargeBalance(
        mean_delta_sunlit_v=float(np.mean(sunlit)) if sunlit else float("nan"),
        mean_delta_dark_v=float(np.mean(dark)) if dark else float("nan"),
        n_sunlit=len(sunlit),
        n_dark=len(dark),
    )


@dataclass(frozen=True)
class DepletionEstimate:
    """Projected time-to-empty from the overnight discharge slope."""

    discharge_v_per_day: float  # dark-hours slope (negative = draining)
    days_to_empty: float  # inf when net-positive
    current_voltage: float
    empty_voltage: float = 3.3  # brown-out threshold used operationally


def estimate_depletion(
    timestamps: np.ndarray,
    voltages: np.ndarray,
    lat: float,
    lon: float,
    empty_voltage: float = 3.3,
) -> DepletionEstimate:
    """Estimate depletion (the purpose the paper states for Fig. 4).

    Fits the discharge slope on dark-period deltas only (solar input
    masks the true drain), then projects the *net* daily balance —
    dark drain plus sunlit recharge — forward to the brown-out voltage.
    """
    deltas = battery_deltas(timestamps, voltages, lat, lon)
    if not deltas:
        raise ValueError("need at least two samples")
    balance = charge_balance(deltas)
    v_now = float(np.asarray(voltages, dtype=float)[-1])

    # Net change per day: sum of all deltas / elapsed days.
    elapsed_days = (int(timestamps[-1]) - int(timestamps[0])) / 86400.0
    net_per_day = (
        sum(d.delta_v for d in deltas) / elapsed_days if elapsed_days > 0 else 0.0
    )
    dark_per_day = (
        balance.mean_delta_dark_v
        * balance.n_dark
        / elapsed_days
        if elapsed_days > 0 and balance.n_dark
        else 0.0
    )
    if net_per_day >= -1e-6:
        days = float("inf")
    else:
        days = max(0.0, (v_now - empty_voltage) / -net_per_day)
    return DepletionEstimate(
        discharge_v_per_day=dark_per_day,
        days_to_empty=days,
        current_voltage=v_now,
        empty_voltage=empty_voltage,
    )
