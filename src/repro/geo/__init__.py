"""Geodesic primitives: points, boxes, grids, GeoJSON export."""

from .bbox import BoundingBox
from .geojson import (
    dumps,
    feature_collection,
    line_feature,
    point_feature,
    polygon_feature,
)
from .grid import Grid
from .points import (
    EARTH_RADIUS_M,
    TRONDHEIM,
    VEJLE,
    GeoPoint,
    destination_point,
    haversine_m,
    initial_bearing_deg,
)

__all__ = [
    "BoundingBox",
    "EARTH_RADIUS_M",
    "GeoPoint",
    "Grid",
    "TRONDHEIM",
    "VEJLE",
    "destination_point",
    "dumps",
    "feature_collection",
    "haversine_m",
    "initial_bearing_deg",
    "line_feature",
    "point_feature",
    "polygon_feature",
]
