"""Geodesic primitives on the WGS84 sphere.

The CTT deployments live in Trondheim (63.43 N, 10.40 E) and Vejle
(55.71 N, 9.54 E).  At city scale a spherical earth model is accurate to
well under 0.5 %, which is far below the placement uncertainty of a
low-cost sensor node, so we use great-circle (haversine) geometry
throughout instead of a full ellipsoidal model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Mean earth radius in metres (IUGG).
EARTH_RADIUS_M = 6_371_008.8


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """A WGS84 latitude/longitude pair, optionally with altitude.

    Latitude and longitude are in decimal degrees, altitude in metres
    above mean sea level.  Instances are immutable and hashable so they
    can key dictionaries (e.g. sensor-location indexes).
    """

    lat: float
    lon: float
    alt: float = 0.0

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon}")

    def distance_to(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in metres."""
        return haversine_m(self.lat, self.lon, other.lat, other.lon)

    def bearing_to(self, other: "GeoPoint") -> float:
        """Initial bearing towards ``other`` in degrees [0, 360)."""
        return initial_bearing_deg(self.lat, self.lon, other.lat, other.lon)

    def destination(self, bearing_deg: float, distance_m: float) -> "GeoPoint":
        """Point reached travelling ``distance_m`` along ``bearing_deg``."""
        lat, lon = destination_point(self.lat, self.lon, bearing_deg, distance_m)
        return GeoPoint(lat, lon, self.alt)

    def as_lonlat(self) -> tuple[float, float]:
        """GeoJSON-ordered ``(lon, lat)`` tuple."""
        return (self.lon, self.lat)


def haversine_m(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two lat/lon pairs, in metres."""
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_M * math.asin(math.sqrt(min(1.0, a)))


def initial_bearing_deg(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Initial great-circle bearing from point 1 to point 2, degrees [0, 360)."""
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dlam = math.radians(lon2 - lon1)
    y = math.sin(dlam) * math.cos(phi2)
    x = math.cos(phi1) * math.sin(phi2) - math.sin(phi1) * math.cos(phi2) * math.cos(dlam)
    return (math.degrees(math.atan2(y, x)) + 360.0) % 360.0


def destination_point(
    lat: float, lon: float, bearing_deg: float, distance_m: float
) -> tuple[float, float]:
    """Destination lat/lon after travelling along a great circle."""
    delta = distance_m / EARTH_RADIUS_M
    theta = math.radians(bearing_deg)
    phi1 = math.radians(lat)
    lam1 = math.radians(lon)
    phi2 = math.asin(
        math.sin(phi1) * math.cos(delta)
        + math.cos(phi1) * math.sin(delta) * math.cos(theta)
    )
    lam2 = lam1 + math.atan2(
        math.sin(theta) * math.sin(delta) * math.cos(phi1),
        math.cos(delta) - math.sin(phi1) * math.sin(phi2),
    )
    lon2 = (math.degrees(lam2) + 540.0) % 360.0 - 180.0
    return math.degrees(phi2), lon2


#: City centre anchors used by deployment descriptors and examples.
TRONDHEIM = GeoPoint(63.4305, 10.3951)
VEJLE = GeoPoint(55.7113, 9.5357)
