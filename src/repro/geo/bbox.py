"""Axis-aligned geographic bounding boxes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .points import GeoPoint, haversine_m


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """A lat/lon axis-aligned box ``[south, north] x [west, east]``.

    Boxes never wrap the antimeridian; the CTT pilot regions are far from
    it, and refusing wrap keeps containment checks trivial.
    """

    south: float
    west: float
    north: float
    east: float

    def __post_init__(self) -> None:
        if self.south > self.north:
            raise ValueError("south must be <= north")
        if self.west > self.east:
            raise ValueError("west must be <= east (no antimeridian wrap)")

    @classmethod
    def around(cls, center: GeoPoint, radius_m: float) -> "BoundingBox":
        """Smallest box containing the circle of ``radius_m`` around ``center``."""
        north = center.destination(0.0, radius_m)
        east = center.destination(90.0, radius_m)
        south = center.destination(180.0, radius_m)
        west = center.destination(270.0, radius_m)
        return cls(south=south.lat, west=west.lon, north=north.lat, east=east.lon)

    @classmethod
    def of_points(cls, points: Iterable[GeoPoint], pad_deg: float = 0.0) -> "BoundingBox":
        """Tight box around ``points``, optionally padded by ``pad_deg``."""
        pts = list(points)
        if not pts:
            raise ValueError("cannot bound an empty point set")
        lats = [p.lat for p in pts]
        lons = [p.lon for p in pts]
        return cls(
            south=min(lats) - pad_deg,
            west=min(lons) - pad_deg,
            north=max(lats) + pad_deg,
            east=max(lons) + pad_deg,
        )

    @property
    def center(self) -> GeoPoint:
        return GeoPoint((self.south + self.north) / 2.0, (self.west + self.east) / 2.0)

    @property
    def width_m(self) -> float:
        """East-west extent measured along the box's central latitude."""
        mid = (self.south + self.north) / 2.0
        return haversine_m(mid, self.west, mid, self.east)

    @property
    def height_m(self) -> float:
        return haversine_m(self.south, self.west, self.north, self.west)

    def contains(self, point: GeoPoint) -> bool:
        return (
            self.south <= point.lat <= self.north
            and self.west <= point.lon <= self.east
        )

    def intersects(self, other: "BoundingBox") -> bool:
        return not (
            other.north < self.south
            or other.south > self.north
            or other.east < self.west
            or other.west > self.east
        )

    def expanded(self, pad_deg: float) -> "BoundingBox":
        return BoundingBox(
            south=self.south - pad_deg,
            west=self.west - pad_deg,
            north=self.north + pad_deg,
            east=self.east + pad_deg,
        )
