"""Minimal GeoJSON builders.

The network visualization (paper Fig. 3) and dashboard maps export
features for web maps; we emit plain ``dict`` structures that
``json.dumps`` serializes to valid GeoJSON.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping

from .points import GeoPoint


def point_feature(point: GeoPoint, properties: Mapping[str, Any] | None = None) -> dict:
    """A GeoJSON Point feature at ``point``."""
    return {
        "type": "Feature",
        "geometry": {"type": "Point", "coordinates": [point.lon, point.lat]},
        "properties": dict(properties or {}),
    }


def line_feature(
    points: Iterable[GeoPoint], properties: Mapping[str, Any] | None = None
) -> dict:
    """A GeoJSON LineString feature through ``points`` (at least two)."""
    coords = [[p.lon, p.lat] for p in points]
    if len(coords) < 2:
        raise ValueError("a LineString needs at least two points")
    return {
        "type": "Feature",
        "geometry": {"type": "LineString", "coordinates": coords},
        "properties": dict(properties or {}),
    }


def polygon_feature(
    ring: Iterable[GeoPoint], properties: Mapping[str, Any] | None = None
) -> dict:
    """A GeoJSON Polygon feature; the ring is closed automatically."""
    coords = [[p.lon, p.lat] for p in ring]
    if len(coords) < 3:
        raise ValueError("a Polygon ring needs at least three points")
    if coords[0] != coords[-1]:
        coords.append(coords[0])
    return {
        "type": "Feature",
        "geometry": {"type": "Polygon", "coordinates": [coords]},
        "properties": dict(properties or {}),
    }


def feature_collection(features: Iterable[dict]) -> dict:
    return {"type": "FeatureCollection", "features": list(features)}


def dumps(collection: Mapping[str, Any], indent: int | None = None) -> str:
    """Serialize a GeoJSON structure to a string."""
    return json.dumps(collection, indent=indent, sort_keys=False)
