"""Regular lat/lon analysis grids.

Satellite grounding (NASA OCO-2 footprints), emission-field evaluation and
heat-map rendering all need a common "rasterize the city" primitive: a
regular grid over a bounding box with cell-center geometry and
value accumulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .bbox import BoundingBox
from .points import GeoPoint


@dataclass
class Grid:
    """A ``rows x cols`` regular grid over a bounding box.

    Cell (0, 0) is the south-west corner.  Values are accumulated into a
    float array together with a count array so means can be computed for
    unevenly sampled cells (the satellite-grounding use case).
    """

    bbox: BoundingBox
    rows: int
    cols: int
    values: np.ndarray = field(init=False)
    counts: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("grid must have at least one row and column")
        self.values = np.zeros((self.rows, self.cols), dtype=float)
        self.counts = np.zeros((self.rows, self.cols), dtype=int)

    @property
    def cell_height_deg(self) -> float:
        return (self.bbox.north - self.bbox.south) / self.rows

    @property
    def cell_width_deg(self) -> float:
        return (self.bbox.east - self.bbox.west) / self.cols

    def cell_of(self, point: GeoPoint) -> tuple[int, int] | None:
        """Grid cell containing ``point``, or ``None`` if outside the box."""
        if not self.bbox.contains(point):
            return None
        r = int((point.lat - self.bbox.south) / self.cell_height_deg)
        c = int((point.lon - self.bbox.west) / self.cell_width_deg)
        # Points exactly on the north/east edge belong to the last cell.
        return (min(r, self.rows - 1), min(c, self.cols - 1))

    def cell_center(self, row: int, col: int) -> GeoPoint:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(f"cell out of range: ({row}, {col})")
        lat = self.bbox.south + (row + 0.5) * self.cell_height_deg
        lon = self.bbox.west + (col + 0.5) * self.cell_width_deg
        return GeoPoint(lat, lon)

    def add(self, point: GeoPoint, value: float) -> bool:
        """Accumulate ``value`` into the cell containing ``point``.

        Returns ``False`` (and discards the sample) when the point lies
        outside the grid.
        """
        cell = self.cell_of(point)
        if cell is None:
            return False
        self.values[cell] += value
        self.counts[cell] += 1
        return True

    def mean_field(self) -> np.ndarray:
        """Per-cell mean; cells with no samples are NaN."""
        with np.errstate(invalid="ignore"):
            out = np.where(self.counts > 0, self.values / np.maximum(self.counts, 1), np.nan)
        return out

    def coverage(self) -> float:
        """Fraction of cells holding at least one sample."""
        return float((self.counts > 0).mean())

    def nonempty_cells(self) -> list[tuple[int, int]]:
        rows, cols = np.nonzero(self.counts)
        return list(zip(rows.tolist(), cols.tolist()))
