"""The shipper: streams replication-log records to a follower over TCP.

Wire protocol (all integers little-endian), one TCP connection at a
time, shipper dials the follower::

    shipper  → follower   magic  = b"RREP\\x00\\x01"          (6 bytes)
    follower → shipper    u64 applied_seq                     (handshake)
    shipper  → follower   record = u32 len · u64 seq · framed block
    follower → shipper    u64 ack (applied high-water mark)   (repeated)

Delivery is **at-least-once**: the shipper resumes from the follower's
handshake-reported high-water mark after any disconnect (catch-up
replay), so records can arrive duplicated — the follower's
sequence-based dedup makes apply idempotent.  Reliability mechanics:

- **bounded in-flight window** — at most ``window`` unacknowledged
  records on the wire; the sender parks until acks advance;
- **exponential backoff + jitter on reconnect** — seeded, so failover
  tests replay deterministically;
- **acked trimming** — every ack frees log memory via
  :meth:`ReplicationLog.ack`.

The framed block inside each record is byte-identical to what the WAL
writer puts on disk, CRC and all; the follower re-validates it before
applying, so wire corruption is caught by the same checksum that
catches disk corruption.
"""

from __future__ import annotations

import asyncio
import contextlib
import random
import struct
from dataclasses import dataclass, field

from .log import DEFAULT_FOLLOWER, ReplicationLog

#: First bytes of every replication connection (includes the version).
REPLICATION_MAGIC = b"RREP\x00\x01"

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

#: Records above this size are refused by the follower — a corrupted
#: length prefix must not trigger a multi-GB read.
MAX_RECORD_BYTES = 256 << 20


def encode_record(seq: int, frame: bytes) -> bytes:
    """One wire record: length prefix, sequence number, framed block."""
    return _U32.pack(8 + len(frame)) + _U64.pack(seq) + frame


@dataclass
class ShipperStats:
    connects: int = 0
    connect_failures: int = 0
    reconnects: int = 0
    records_shipped: int = 0
    records_resent: int = 0
    acks_received: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class SegmentShipper:
    """Ships a :class:`ReplicationLog` to one follower, forever.

    Run :meth:`run` inside an event loop (or :meth:`start` to spawn it
    as a task).  The shipper never blocks the write path: writers append
    to the log and return; shipping is asynchronous by construction —
    the paper's sensor ingest must not stall on a WAN hiccup.

    ``follower`` names this shipper's ack cursor in the log: give each
    shipper on a shared log a distinct name and the log fans out to all
    of them, trimming only below the slowest follower's cursor.
    """

    log: ReplicationLog
    host: str
    port: int
    window: int = 64
    backoff: float = 0.05
    max_backoff: float = 2.0
    jitter: float = 0.25
    connect_timeout: float = 5.0
    seed: int | None = None
    follower: str = DEFAULT_FOLLOWER
    stats: ShipperStats = field(default_factory=ShipperStats)

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        self._rng = random.Random(self.seed)
        self._stopping = False
        self._task: asyncio.Task | None = None
        self._wake: asyncio.Event | None = None
        self._cursor = 0  # highest seq written to the current connection
        self._max_shipped = 0  # highest seq ever put on any connection
        # Hold records from the moment the shipper exists: without the
        # cursor registered, a faster sibling's acks could trim records
        # this follower has not seen yet.
        self.log.register_follower(self.follower)

    # -- lifecycle -------------------------------------------------------
    def start(self) -> asyncio.Task:
        """Spawn :meth:`run` as a task on the running loop."""
        self._task = asyncio.get_running_loop().create_task(self.run())
        return self._task

    async def stop(self) -> None:
        """Stop shipping; in-flight but unacked records stay in the log."""
        self._stopping = True
        if self._wake is not None:
            self._wake.set()
        if self._task is not None:
            self._task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._task
            self._task = None

    async def run(self) -> None:
        """Connect-ship-reconnect loop; returns only via :meth:`stop`."""
        loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self.log.subscribe(loop, self._wake)
        failures = 0
        try:
            while not self._stopping:
                try:
                    reader, writer = await asyncio.wait_for(
                        asyncio.open_connection(self.host, self.port),
                        self.connect_timeout,
                    )
                except (OSError, asyncio.TimeoutError):
                    self.stats.connect_failures += 1
                    await self._sleep_backoff(failures)
                    failures += 1
                    continue
                try:
                    await self._session(reader, writer)
                    failures = 0  # handshake + some traffic succeeded
                except (ConnectionError, asyncio.IncompleteReadError, OSError):
                    failures += 1
                finally:
                    writer.close()
                    with contextlib.suppress(Exception):
                        await writer.wait_closed()
                if not self._stopping:
                    self.stats.reconnects += 1
                    await self._sleep_backoff(failures)
        finally:
            self.log.unsubscribe(loop, self._wake)

    async def _sleep_backoff(self, attempt: int) -> None:
        delay = min(self.max_backoff, self.backoff * (2 ** min(attempt, 16)))
        # Full +/- jitter so a fleet of shippers spreads its reconnects.
        delay *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        await asyncio.sleep(max(0.0, delay))

    # -- one connection --------------------------------------------------
    async def _session(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        writer.write(REPLICATION_MAGIC)
        await writer.drain()
        (applied,) = _U64.unpack(await reader.readexactly(8))
        # Catch-up replay starts exactly at the follower's high-water
        # mark: everything at or below it is already applied over there.
        self.log.ack(applied, follower=self.follower)
        self._cursor = applied
        self.stats.connects += 1
        sender = asyncio.create_task(self._send_loop(writer))
        acker = asyncio.create_task(self._ack_loop(reader))
        try:
            done, _ = await asyncio.wait(
                {sender, acker}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            for task in (sender, acker):
                task.cancel()
            await asyncio.gather(sender, acker, return_exceptions=True)
        for task in done:
            if not task.cancelled() and task.exception() is not None:
                raise task.exception()

    async def _send_loop(self, writer: asyncio.StreamWriter) -> None:
        assert self._wake is not None
        while not self._stopping:
            free = self.window - (self._cursor - self.log.acked_for(self.follower))
            records = (
                self.log.pending_after(self._cursor, limit=free) if free > 0 else []
            )
            if not records:
                await self._wake.wait()
                self._wake.clear()
                continue
            chunk = bytearray()
            for seq, frame in records:
                chunk += encode_record(seq, frame)
                if seq <= self._max_shipped:
                    self.stats.records_resent += 1
                self._cursor = seq
                self._max_shipped = max(self._max_shipped, seq)
                self.stats.records_shipped += 1
            writer.write(bytes(chunk))
            await writer.drain()

    async def _ack_loop(self, reader: asyncio.StreamReader) -> None:
        assert self._wake is not None
        while True:
            (seq,) = _U64.unpack(await reader.readexactly(8))
            self.log.ack(seq, follower=self.follower)
            self.stats.acks_received += 1
            self._wake.set()  # acks free window slots for the sender

    # -- synchronization helpers ----------------------------------------
    @property
    def lag_records(self) -> int:
        """Records appended but not yet acknowledged by *this* follower."""
        return self.log.last_seq - self.log.acked_for(self.follower)

    async def wait_caught_up(self, timeout: float | None = None) -> None:
        """Await full acknowledgment by this follower of everything
        currently in the log."""
        loop = asyncio.get_running_loop()
        deadline = None if timeout is None else loop.time() + timeout
        while self.log.acked_for(self.follower) < self.log.last_seq:
            if deadline is not None and loop.time() >= deadline:
                raise TimeoutError(
                    f"follower {self.lag_records} records behind after {timeout}s"
                )
            await asyncio.sleep(0.005)


__all__ = [
    "MAX_RECORD_BYTES",
    "REPLICATION_MAGIC",
    "SegmentShipper",
    "ShipperStats",
    "encode_record",
]
