"""The follower: applies shipped records into its own store, idempotently.

A :class:`Follower` is the hot standby half of the pair: it listens for
shipper connections, answers the handshake with its applied high-water
mark (so the shipper resumes exactly where the follower left off), and
applies records **strictly in sequence**:

- ``seq <= applied``  → duplicate from an at-least-once resend: ack it
  again, apply nothing (the dedup that makes replay idempotent —
  re-applying a batch after a later ``delete_before`` would resurrect
  deleted points, so "apply once, in order" is the only safe rule);
- ``seq == applied+1`` → validate the framed block (same CRC the WAL
  reader uses), apply it, advance, ack;
- ``seq >  applied+1`` → a gap: something upstream reordered or dropped
  a record.  The follower drops the connection; the shipper reconnects
  and catch-up replay heals the hole.  Likewise for a corrupt frame.

``promote()`` turns the standby into a primary: the listener closes,
in-flight connections stop applying, and the store — byte-identical to
the acknowledged prefix of the primary's history — is handed to the
caller to serve reads and writes (``python -m repro follow`` wires it
straight into a :class:`~repro.serve.server.QueryServer`).
"""

from __future__ import annotations

import asyncio
import contextlib
import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..tsdb.batch import PointBatch
from ..tsdb.database import TSDB
from ..tsdb.segments import (
    DeleteBefore,
    DeleteSeriesBefore,
    SegmentCorruption,
    decode_block,
    decode_frame,
)
from ..tsdb.sharded import ShardedTSDB
from .shipper import MAX_RECORD_BYTES, REPLICATION_MAGIC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..tsdb.interface import TimeSeriesStore

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


@dataclass
class FollowerStats:
    connections: int = 0
    bad_handshakes: int = 0
    records_applied: int = 0
    points_applied: int = 0
    duplicates: int = 0
    gaps: int = 0
    corrupt_frames: int = 0
    torn_tails: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class Follower:
    """Hot-standby replica: one listening socket, one store, one cursor.

    ``store`` defaults to a fresh single :class:`TSDB`; pass ``shards``
    to build a :class:`ShardedTSDB` instead (the follower applies the
    same blocks either way — the store protocol hides the layout, and
    the equivalence suite pins both byte-identical to the primary).
    """

    store: "TimeSeriesStore | None" = None
    host: str = "127.0.0.1"
    port: int = 0
    shards: int = 0
    stats: FollowerStats = field(default_factory=FollowerStats)

    def __post_init__(self) -> None:
        if self.store is None:
            self.store = ShardedTSDB(self.shards) if self.shards else TSDB()
        elif self.shards:
            raise ValueError("pass store= or shards=, not both")
        self.applied_seq = 0
        self._server: asyncio.base_events.Server | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._handlers: set[asyncio.Task] = set()
        self._promoted = False
        self._applied_wake: asyncio.Event | None = None

    @property
    def promoted(self) -> bool:
        return self._promoted

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and listen; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("follower already started")
        self._applied_wake = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def stop(self) -> None:
        """Close the listener and every live replication connection."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
            with contextlib.suppress(Exception):
                await server.wait_closed()
        for writer in list(self._writers):
            writer.close()
        # Closing the transports unblocks any pending read; wait for the
        # handlers so no task outlives the follower into loop teardown.
        if self._handlers:
            await asyncio.gather(*list(self._handlers), return_exceptions=True)

    def promote(self) -> "TimeSeriesStore":
        """Become the primary: stop accepting replication traffic and
        hand back the store.

        Synchronous and idempotent on purpose — it must be callable from
        a signal handler.  Connections mid-record finish their socket
        reads but apply nothing further; the store stops changing the
        moment this returns.
        """
        self._promoted = True
        if self._server is not None:
            self._server.close()
        for writer in list(self._writers):
            writer.close()
        assert self.store is not None
        return self.store

    async def wait_applied(self, seq: int, timeout: float | None = None) -> None:
        """Await the applied high-water mark reaching ``seq``."""
        assert self._applied_wake is not None, "follower not started"
        loop = asyncio.get_running_loop()
        deadline = None if timeout is None else loop.time() + timeout
        while self.applied_seq < seq:
            if deadline is not None and loop.time() >= deadline:
                raise TimeoutError(
                    f"applied {self.applied_seq} < {seq} after {timeout}s"
                )
            self._applied_wake.clear()
            if self.applied_seq >= seq:
                break
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self._applied_wake.wait(), 0.05)

    # -- one replication connection --------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        self._writers.add(writer)
        try:
            try:
                magic = await reader.readexactly(len(REPLICATION_MAGIC))
            except asyncio.IncompleteReadError:
                self.stats.bad_handshakes += 1
                return
            if magic != REPLICATION_MAGIC or self._promoted:
                self.stats.bad_handshakes += 1
                return
            self.stats.connections += 1
            writer.write(_U64.pack(self.applied_seq))
            await writer.drain()
            await self._apply_loop(reader, writer)
        except (ConnectionError, OSError):
            pass  # peer vanished; the shipper will reconnect
        finally:
            self._writers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _apply_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while not self._promoted:
            try:
                (length,) = _U32.unpack(await reader.readexactly(4))
                if length < 8 or length > MAX_RECORD_BYTES:
                    self.stats.corrupt_frames += 1
                    return  # framing is unrecoverable; force a reconnect
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                if exc.partial:
                    # A record cut mid-frame: the torn-tail of the wire.
                    self.stats.torn_tails += 1
                return
            (seq,) = _U64.unpack_from(body, 0)
            frame = body[8:]
            if seq <= self.applied_seq:
                # At-least-once resend; ack so the shipper's window and
                # retained log advance even when nothing applies.
                self.stats.duplicates += 1
                writer.write(_U64.pack(self.applied_seq))
                await writer.drain()
                continue
            if seq != self.applied_seq + 1:
                # A gap: never apply out of order — drop the connection
                # and let catch-up replay refill from applied_seq.
                self.stats.gaps += 1
                return
            try:
                block_type, payload = decode_frame(frame)
                item = decode_block(block_type, payload)
            except (SegmentCorruption, ValueError):
                self.stats.corrupt_frames += 1
                return  # same healing path as a gap
            if self._promoted:  # promotion raced the decode: apply nothing
                return
            self._apply(item)
            self.applied_seq = seq
            self.stats.records_applied += 1
            if self._applied_wake is not None:
                self._applied_wake.set()
            writer.write(_U64.pack(self.applied_seq))
            await writer.drain()

    def _apply(self, item) -> None:
        assert self.store is not None
        if isinstance(item, PointBatch):
            self.store.put_batch(item)
            self.stats.points_applied += len(item)
        elif isinstance(item, DeleteSeriesBefore):
            self.store.delete_series_before(item.key, item.cutoff)
        elif isinstance(item, DeleteBefore):
            self.store.delete_before(
                item.cutoff, exclude_suffix=item.exclude_suffix
            )
        # Comments decode to None and apply as nothing (but still ack).


__all__ = ["Follower", "FollowerStats"]
