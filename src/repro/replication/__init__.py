"""Hot-standby replication: segment shipping, catch-up, failover.

The geo-redundancy half of ROADMAP item 2.  A primary wraps its store
in a :class:`ReplicatedStore`, which tees every committed mutation into
a :class:`ReplicationLog` as framed binary segment blocks (the PR 4
durability format doubles as the wire format).  An asyncio
:class:`SegmentShipper` streams the log to a :class:`Follower` over a
length-prefixed TCP protocol — at-least-once delivery, sequence-based
dedup, bounded in-flight window, exponential backoff + jitter on
reconnect, catch-up replay from the follower's acked high-water mark
after any disconnect.  The follower applies blocks idempotently into
its own single or sharded store and can be promoted into a read-write
primary (``python -m repro follow``).

:mod:`repro.replication.faults` is the deterministic fault-injection
harness that proves the equivalence bar: under seeded schedules of
drops, duplicates, reorders, torn tails, and corruption, the promoted
follower's ``dumps()`` stays byte-identical to a from-scratch build of
the acknowledged input.
"""

from .follower import Follower, FollowerStats
from .log import DEFAULT_FOLLOWER, ReplicatedStore, ReplicationLog
from .shipper import (
    MAX_RECORD_BYTES,
    REPLICATION_MAGIC,
    SegmentShipper,
    ShipperStats,
    encode_record,
)

__all__ = [
    "DEFAULT_FOLLOWER",
    "Follower",
    "FollowerStats",
    "MAX_RECORD_BYTES",
    "REPLICATION_MAGIC",
    "ReplicatedStore",
    "ReplicationLog",
    "SegmentShipper",
    "ShipperStats",
    "encode_record",
]
