"""Deterministic fault injection for the replication wire.

The equivalence bar for replication ("promoted follower byte-identical
to a from-scratch build of the acknowledged input") only means
something if the suite can *manufacture* the failures a WAN delivers:
dropped connections, duplicated and reordered records, torn tails,
flipped bytes.  This module supplies them on schedule:

- :class:`FaultPlan` — a seeded, replayable schedule.  Every decision
  for record event *i* (which action, where to cut a truncation, which
  byte to flip) derives from ``crc32(f"{seed}:{i}")``, so a plan is a
  pure function of its parameters: the same seed replays the same
  faults regardless of timing, and a failing example shrinks and
  re-runs exactly.  ``max_faults`` bounds total injections so every
  schedule eventually delivers (liveness, not just safety).
- :class:`FaultProxy` — a record-aware TCP proxy inserted between
  shipper and follower.  It parses the replication protocol (magic,
  then ``u32 len``-prefixed records) and applies the plan per record:

  =========== ========================================================
  ``pass``     forward verbatim
  ``cut``      close both directions mid-stream (connection drop)
  ``truncate`` forward a *prefix* of the record, then close (torn tail)
  ``corrupt``  flip one payload byte (CRC must catch it downstream)
  ``dup``      forward the record twice (at-least-once resend)
  ``swap``     hold the record, emit it after the next one (reorder →
               the follower sees a gap and forces catch-up); a held
               record with no successor flushes after ``hold_flush_s``
               of idle so a swap on the last record cannot stall the
               stream forever
  ``delay``    sleep before forwarding (lag spike)
  =========== ========================================================

  Follower→shipper bytes (handshake reply, acks) pass through
  untouched; connection attempts listed in ``refuse_connects`` are
  refused outright to exercise reconnect backoff.
"""

from __future__ import annotations

import asyncio
import contextlib
import random
import struct
import zlib
from dataclasses import dataclass, field

from .shipper import REPLICATION_MAGIC

_U32 = struct.Struct("<I")

#: Everything a plan can do to one record event.
FAULT_ACTIONS = ("cut", "truncate", "corrupt", "dup", "swap", "delay")


@dataclass
class FaultPlan:
    """A seeded schedule of per-record fault decisions.

    ``p_*`` are independent probabilities summing to at most 1; the
    remainder is ``pass``.  Decisions are memoized per record index, so
    querying them twice (or out of order) cannot change the schedule.
    """

    seed: int = 0
    p_cut: float = 0.0
    p_truncate: float = 0.0
    p_corrupt: float = 0.0
    p_dup: float = 0.0
    p_swap: float = 0.0
    p_delay: float = 0.0
    delay_s: float = 0.002
    refuse_connects: tuple[int, ...] = ()
    max_faults: int | None = None
    _decisions: dict[int, str] = field(default_factory=dict, repr=False)
    _faults: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        total = (
            self.p_cut
            + self.p_truncate
            + self.p_corrupt
            + self.p_dup
            + self.p_swap
            + self.p_delay
        )
        if total > 1.0 + 1e-9:
            raise ValueError(f"fault probabilities sum to {total} > 1")

    @classmethod
    def chaos(
        cls, seed: int, *, intensity: float = 0.3, max_faults: int | None = 16
    ) -> "FaultPlan":
        """An even mixture of every fault type at ``intensity`` total."""
        p = intensity / len(FAULT_ACTIONS)
        return cls(
            seed=seed,
            p_cut=p,
            p_truncate=p,
            p_corrupt=p,
            p_dup=p,
            p_swap=p,
            p_delay=p,
            max_faults=max_faults,
        )

    def _rng_for(self, kind: str, index: int) -> random.Random:
        # crc32 of a stable string: independent of PYTHONHASHSEED, so a
        # plan replays identically across processes.
        return random.Random(zlib.crc32(f"{self.seed}:{kind}:{index}".encode()))

    def action(self, index: int) -> str:
        """The (memoized) action for record event ``index``."""
        decided = self._decisions.get(index)
        if decided is not None:
            return decided
        roll = self._rng_for("action", index).random()
        action = "pass"
        cumulative = 0.0
        for name, p in (
            ("cut", self.p_cut),
            ("truncate", self.p_truncate),
            ("corrupt", self.p_corrupt),
            ("dup", self.p_dup),
            ("swap", self.p_swap),
            ("delay", self.p_delay),
        ):
            cumulative += p
            if roll < cumulative:
                action = name
                break
        if action != "pass":
            if self.max_faults is not None and self._faults >= self.max_faults:
                action = "pass"
            else:
                self._faults += 1
        self._decisions[index] = action
        return action

    def refuse_connect(self, conn_index: int) -> bool:
        return conn_index in self.refuse_connects

    def truncate_at(self, index: int, record_len: int) -> int:
        """Byte offset (>=1, < record_len) to cut record ``index`` at."""
        return self._rng_for("truncate", index).randrange(1, max(2, record_len))

    def corrupt_at(self, index: int, record_len: int) -> int:
        """Byte offset to flip, past the length prefix and the sequence
        number so the damage lands in the framed block — the follower
        must catch it by CRC, not by framing accident."""
        lo = min(12, record_len - 1)
        return self._rng_for("corrupt", index).randrange(lo, record_len)


class _SessionCut(Exception):
    """Internal: the plan asked for this connection to die now."""


class FaultProxy:
    """A record-aware TCP proxy applying a :class:`FaultPlan`.

    Point the shipper at the proxy's ``(host, port)`` and the proxy at
    the real follower; every shipper→follower record passes through the
    plan.  Record event indexes are global across connections, so a
    schedule spans reconnects deterministically.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        plan: FaultPlan,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        hold_flush_s: float = 0.05,
    ) -> None:
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.plan = plan
        self.host = host
        self.port = port
        self.hold_flush_s = hold_flush_s
        self._server: asyncio.base_events.Server | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._handlers: set[asyncio.Task] = set()
        self._conn_index = 0
        self._record_index = 0
        self.connections = 0
        self.refused = 0
        self.injected: dict[str, int] = {}

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def stop(self) -> None:
        server, self._server = self._server, None
        if server is not None:
            server.close()
            with contextlib.suppress(Exception):
                await server.wait_closed()
        for writer in list(self._writers):
            writer.close()
        if self._handlers:
            await asyncio.gather(*list(self._handlers), return_exceptions=True)

    async def _handle(
        self, c_reader: asyncio.StreamReader, c_writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        conn = self._conn_index
        self._conn_index += 1
        u_writer: asyncio.StreamWriter | None = None
        try:
            if self.plan.refuse_connect(conn):
                self.refused += 1
                return
            try:
                u_reader, u_writer = await asyncio.open_connection(
                    self.upstream_host, self.upstream_port
                )
            except OSError:
                return
            self.connections += 1
            self._writers.add(c_writer)
            self._writers.add(u_writer)
            down = asyncio.create_task(self._pipe_verbatim(u_reader, c_writer))
            up = asyncio.create_task(self._pipe_records(c_reader, u_writer))
            try:
                await asyncio.wait({down, up}, return_when=asyncio.FIRST_COMPLETED)
            finally:
                for task in (down, up):
                    task.cancel()
                await asyncio.gather(down, up, return_exceptions=True)
        finally:
            self._writers.discard(c_writer)
            c_writer.close()
            with contextlib.suppress(Exception):
                await c_writer.wait_closed()
            if u_writer is not None:
                self._writers.discard(u_writer)
                u_writer.close()
                with contextlib.suppress(Exception):
                    await u_writer.wait_closed()

    @staticmethod
    async def _pipe_verbatim(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Follower→shipper direction: handshake replies and acks are
        never faulted (the plan models an unreliable *forward* path)."""
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    return
                writer.write(data)
                await writer.drain()
        except (ConnectionError, OSError):
            return

    async def _pipe_records(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        held: bytes | None = None
        try:
            magic = await reader.readexactly(len(REPLICATION_MAGIC))
            writer.write(magic)
            await writer.drain()
            while True:
                if held is not None:
                    # Liveness: a swapped record whose successor never
                    # arrives (it was the last one) flushes after a
                    # short idle — delayed delivery, not silent loss.
                    # readexactly extracts nothing until all 4 bytes
                    # are buffered, so a timeout here loses no bytes.
                    try:
                        head = await asyncio.wait_for(
                            reader.readexactly(4), self.hold_flush_s
                        )
                    except asyncio.TimeoutError:
                        writer.write(held)
                        await writer.drain()
                        held = None
                        continue
                else:
                    head = await reader.readexactly(4)
                (length,) = _U32.unpack(head)
                body = await reader.readexactly(length)
                record = head + body
                index = self._record_index
                self._record_index += 1
                action = self.plan.action(index)
                if action != "pass":
                    self.injected[action] = self.injected.get(action, 0) + 1
                if action == "cut":
                    raise _SessionCut
                if action == "truncate":
                    writer.write(record[: self.plan.truncate_at(index, len(record))])
                    await writer.drain()
                    raise _SessionCut
                if action == "corrupt":
                    damaged = bytearray(record)
                    damaged[self.plan.corrupt_at(index, len(record))] ^= 0xFF
                    writer.write(bytes(damaged))
                elif action == "dup":
                    writer.write(record + record)
                elif action == "swap":
                    if held is None:
                        held = record
                        continue  # emitted after the next record
                    writer.write(record + held)
                    held = None
                else:
                    if action == "delay":
                        await asyncio.sleep(self.plan.delay_s)
                    writer.write(record)
                await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            return
        except _SessionCut:
            return
        # A held swap record at stream end is simply dropped — the
        # follower never acked it, so catch-up replay re-ships it.


__all__ = ["FAULT_ACTIONS", "FaultPlan", "FaultProxy"]
