"""The replication log: a sequence-numbered tee on the durability path.

Every committed write — ``put_batch``, ``delete_before``,
``delete_series_before`` — appends one *framed segment block* (the
exact bytes :mod:`repro.tsdb.segments` would put on disk) tagged with a
monotonically increasing sequence number.  The log is the single source
of truth for the shipper: records are retained until the follower
acknowledges them, so any disconnect can be healed by re-sending from
the follower's acked high-water mark.

Two pieces live here:

- :class:`ReplicationLog` — the thread-safe record buffer itself, with
  ``ack``/``pending_after`` for the shipper and a listener hook so a
  synchronous writer thread can wake the asyncio shipper loop;
- :class:`ReplicatedStore` — a store wrapper (same idiom as
  :class:`~repro.serve.cache.CachingStore`) that commits each mutation
  to the wrapped store first, then appends the matching block, under
  one lock so log order always equals commit order.

Using framed blocks as the record payload means the wire format *is*
the durability format: the follower validates each record with the same
CRC the WAL reader uses, and a drained region spill segment
(``spill-<seq>.seg``) can be teed wholesale via :meth:`append_segment`.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

from ..tsdb.batch import PointBatch
from ..tsdb.interface import StoreApi
from ..tsdb.model import DataPoint, SeriesKey
from ..tsdb.segments import (
    BLOCK_BATCH,
    BLOCK_MARKER,
    DeleteBefore,
    DeleteSeriesBefore,
    encode_batch,
    encode_marker,
    frame_block,
    iter_segments,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    import asyncio

    from ..tsdb.interface import TimeSeriesStore


#: Cursor name used when ``ack`` is called without a follower — the
#: single-follower deployments' implicit subscriber.
DEFAULT_FOLLOWER = "default"


class ReplicationLog:
    """Thread-safe buffer of ``(seq, framed-block)`` records.

    Sequence numbers start at 1 and are contiguous; ``pending_after``
    serves the shipper's cursor reads in O(result) thanks to the
    contiguity (seq → list index is arithmetic, not a scan).

    Acknowledgment is **per follower**: each subscriber acks under its
    own cursor name, and records are dropped only below the *minimum*
    acked sequence across every known follower — so one log can feed N
    shippers (fan-out) without a fast follower's acks releasing records
    a slow one still needs.  ``ack`` without a follower name uses the
    :data:`DEFAULT_FOLLOWER` cursor, preserving the single-follower
    behaviour exactly.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list[tuple[int, bytes]] = []
        self._next = 1
        self._cursors: dict[str, int] = {}
        self._listeners: list[tuple["asyncio.AbstractEventLoop", "asyncio.Event"]] = []
        self.appended_records = 0
        self.appended_points = 0

    def _trimmed_locked(self) -> int:
        """Highest seq already dropped from the buffer (0 = none):
        records are contiguous, so it is everything before the first
        retained record — or everything, when the buffer drained."""
        return self._records[0][0] - 1 if self._records else self._next - 1

    # -- introspection ---------------------------------------------------
    @property
    def last_seq(self) -> int:
        """Highest sequence number ever appended (0 when empty)."""
        return self._next - 1

    @property
    def acked_seq(self) -> int:
        """Highest sequence acknowledged by *every* known follower —
        the trim floor (0 until any follower acks)."""
        with self._lock:
            return min(self._cursors.values(), default=0)

    def acked_for(self, follower: str) -> int:
        """One follower's own acked high-water mark.

        An unknown follower reads as the trim floor at registration
        time semantics: 0 if nothing was ever trimmed, else whatever
        was already dropped (those records can never be shipped to it).
        """
        with self._lock:
            return self._cursors.get(follower, self._trimmed_locked())

    @property
    def follower_cursors(self) -> Mapping[str, int]:
        """Snapshot of every registered follower's acked cursor."""
        with self._lock:
            return dict(self._cursors)

    def register_follower(self, follower: str) -> None:
        """Make a follower's cursor count toward the trim floor *before*
        its first ack — otherwise records acked by faster followers in
        the meantime would be dropped out from under it.  Idempotent.
        New cursors start at the current trim floor: anything already
        dropped can never be shipped to this follower anyway.
        """
        with self._lock:
            self._cursors.setdefault(follower, self._trimmed_locked())

    def forget_follower(self, follower: str) -> None:
        """Drop a follower's cursor (it no longer holds records back)
        and trim to the remaining followers' floor."""
        with self._lock:
            if self._cursors.pop(follower, None) is not None:
                self._trim_locked()

    def __len__(self) -> int:
        """Records retained (appended but not yet acknowledged)."""
        return len(self._records)

    # -- append side (called from writer threads) ------------------------
    def append_block(self, block_type: int, payload: bytes) -> int:
        """Frame and append one block; returns its sequence number."""
        return self._append(frame_block(block_type, payload))

    def append_batch(self, batch: PointBatch) -> int:
        """Append a batch block; empty batches append nothing (returns
        the current ``last_seq``) so replay stays free of no-op records."""
        if not len(batch):
            return self.last_seq
        seq = self.append_block(BLOCK_BATCH, encode_batch(batch))
        self.appended_points += len(batch)
        return seq

    def append_delete_before(
        self, cutoff: int, *, exclude_suffix: str | None = None
    ) -> int:
        return self.append_block(
            BLOCK_MARKER, encode_marker(DeleteBefore(int(cutoff), exclude_suffix))
        )

    def append_delete_series_before(self, key: SeriesKey, cutoff: int) -> int:
        return self.append_block(
            BLOCK_MARKER, encode_marker(DeleteSeriesBefore(key, int(cutoff)))
        )

    def append_segment(self, source, *, strict: bool = True) -> int:
        """Tee an existing segment file (e.g. a region lane's
        ``spill-<seq>.seg``) into the log, block by block; returns the
        number of records appended.  Blocks are re-framed from their
        decoded form, so a legacy text spill replays identically and a
        lenient read (``strict=False``) skips damaged blocks exactly as
        a local drain would.
        """
        appended = 0
        for item in iter_segments(source, strict=strict):
            if isinstance(item, PointBatch):
                self.append_batch(item)
            elif isinstance(item, DeleteSeriesBefore):
                self.append_delete_series_before(item.key, item.cutoff)
            else:
                self.append_delete_before(
                    item.cutoff, exclude_suffix=item.exclude_suffix
                )
            appended += 1
        return appended

    def _append(self, frame: bytes) -> int:
        with self._lock:
            seq = self._next
            self._next += 1
            self._records.append((seq, frame))
            self.appended_records += 1
            listeners = list(self._listeners)
        for loop, event in listeners:
            loop.call_soon_threadsafe(event.set)
        return seq

    # -- ship side (called from the shipper's event loop) ----------------
    def ack(self, seq: int, *, follower: str = DEFAULT_FOLLOWER) -> None:
        """Record ``follower``'s acknowledgment of every record up to
        ``seq``; records are dropped only once *every* known follower's
        cursor has passed them (trim to the minimum, not the maximum)."""
        with self._lock:
            if seq <= self._cursors.get(follower, -1):
                return
            self._cursors[follower] = max(seq, self._cursors.get(follower, 0))
            self._trim_locked()

    def _trim_locked(self) -> None:
        if not self._records:
            return
        floor = min(self._cursors.values(), default=0)
        drop = min(len(self._records), floor + 1 - self._records[0][0])
        if drop > 0:
            del self._records[:drop]

    def pending_after(
        self, seq: int, *, limit: int | None = None
    ) -> list[tuple[int, bytes]]:
        """Records with sequence number > ``seq``, oldest first."""
        with self._lock:
            if not self._records:
                return []
            first = self._records[0][0]
            start = max(0, seq + 1 - first)
            end = len(self._records) if limit is None else start + limit
            return self._records[start:end]

    # -- wakeups ---------------------------------------------------------
    def subscribe(
        self, loop: "asyncio.AbstractEventLoop", event: "asyncio.Event"
    ) -> None:
        """Register an asyncio event to be set (thread-safely) on every
        append — how the synchronous write path wakes the shipper."""
        with self._lock:
            self._listeners.append((loop, event))

    def unsubscribe(
        self, loop: "asyncio.AbstractEventLoop", event: "asyncio.Event"
    ) -> None:
        with self._lock:
            try:
                self._listeners.remove((loop, event))
            except ValueError:
                pass


class ReplicatedStore(StoreApi):
    """Store wrapper teeing every committed mutation into a
    :class:`ReplicationLog`.

    Reads and introspection delegate untouched to the wrapped store;
    each write commits there first and then appends its block, under one
    lock so the log's record order equals the store's commit order (the
    property the follower's sequential replay relies on).  Failed writes
    append nothing — an unacknowledged write is allowed to be lost, and
    logging it would instead *invent* it on the follower.

    Wrap the innermost real store (single or sharded).  Note the
    at-ingest cardinality guard-rail is the one write surface that can
    fail *mid-batch* (rows admitted before the rejected series stay
    written); run replicated primaries without ``max_tag_values`` or
    accept that a guard-rail rejection leaves those rows primary-only.
    """

    def __init__(
        self, store: "TimeSeriesStore", log: ReplicationLog | None = None
    ) -> None:
        self._store = store
        self.log = log if log is not None else ReplicationLog()
        self._write_lock = threading.Lock()

    @property
    def wrapped(self) -> "TimeSeriesStore":
        """The underlying store (escape hatch, mirrors CachingStore)."""
        return self._store

    def __getattr__(self, name: str):
        # Only called for attributes not found on this class: the whole
        # read/introspection surface passes straight through.
        return getattr(self._store, name)

    # -- teed writes -----------------------------------------------------
    def put(
        self,
        metric: str,
        timestamp: int,
        value: float,
        tags: Mapping[str, str] | None = None,
    ) -> SeriesKey:
        with self._write_lock:
            key = self._store.put(metric, timestamp, value, tags)
            self.log.append_batch(
                PointBatch.from_points([DataPoint(key, int(timestamp), float(value))])
            )
        return key

    def put_point(self, point: DataPoint) -> SeriesKey:
        with self._write_lock:
            key = self._store.put_point(point)
            self.log.append_batch(PointBatch.from_points([point]))
        return key

    def put_batch(self, batch: PointBatch) -> int:
        with self._write_lock:
            n = self._store.put_batch(batch)
            self.log.append_batch(batch)
        return n

    def put_series(
        self,
        metric: str,
        timestamps,
        values,
        tags: Mapping[str, str] | None = None,
    ) -> SeriesKey:
        batch = PointBatch.for_series(metric, timestamps, values, tags)
        self.put_batch(batch)
        return batch.keys[0]

    def put_many(self, points: Iterable[DataPoint]) -> int:
        # StoreApi.put_many chunks through self.put_batch, which tees.
        return StoreApi.put_many(self, points)

    def delete_before(
        self, cutoff: int, *, exclude_suffix: str | None = None
    ) -> int:
        with self._write_lock:
            n = self._store.delete_before(cutoff, exclude_suffix=exclude_suffix)
            self.log.append_delete_before(cutoff, exclude_suffix=exclude_suffix)
        return n

    def delete_series_before(self, key: SeriesKey, cutoff: int) -> int:
        with self._write_lock:
            n = self._store.delete_series_before(key, cutoff)
            self.log.append_delete_series_before(key, cutoff)
        return n


__all__ = ["DEFAULT_FOLLOWER", "ReplicatedStore", "ReplicationLog"]
