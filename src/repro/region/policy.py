"""Per-city lifecycle policies for the regional fan-in layer.

The paper's ecosystem federates independent city deployments (Trondheim
and Vejle) into shared storage; each city brings its own operational
envelope.  A :class:`CityPolicy` bundles that envelope: how much ingest
the region will buffer for the city, what happens when the buffer fills,
how fast the hub flushes it, and how long the city's raw history lives
before rolling up.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..tsdb.model import validate_name
from ..tsdb.retention import RetentionPolicy
from ..tsdb.tier import TierPolicy
from .queue import Backpressure


@dataclass(frozen=True)
class CityPolicy:
    """One city's contract with the regional hub.

    ``queue_capacity`` bounds the city's in-memory queue (points);
    ``backpressure`` picks the overflow behaviour; ``max_flush_points``
    throttles how much one hub tick moves into the regional store (None
    = unbounded — drain everything each tick); ``retention`` (with
    ``retention_interval_s``) drives per-city retention/rollup scoped to
    series tagged ``city=<name>``; ``tiers`` instead cascades the city's
    aging data down through resolutions (raw → 5m → 1h, see
    :class:`~repro.tsdb.tier.TierPolicy`) on the same interval —
    mutually exclusive with ``retention``, which is single-stage.
    """

    city: str
    queue_capacity: int = 50_000
    backpressure: Backpressure | str = Backpressure.BLOCK
    max_flush_points: int | None = None
    retention: RetentionPolicy | None = None
    retention_interval_s: int = 3600
    tiers: TierPolicy | None = None

    def __post_init__(self) -> None:
        validate_name(self.city, "city")
        if self.queue_capacity <= 0:
            raise ValueError("queue_capacity must be positive")
        if self.max_flush_points is not None and self.max_flush_points <= 0:
            raise ValueError("max_flush_points must be positive (or None)")
        if self.retention_interval_s <= 0:
            raise ValueError("retention_interval_s must be positive")
        if self.retention is not None and self.tiers is not None:
            raise ValueError(
                "retention and tiers are mutually exclusive: a TierPolicy "
                "already owns the city's whole aging cascade"
            )
        object.__setattr__(
            self, "backpressure", Backpressure.coerce(self.backpressure)
        )
