"""Bounded batch queues with explicit backpressure policies.

The decoupling point of the regional fan-in layer: each city's dataport
enqueues :class:`~repro.tsdb.batch.PointBatch` traffic into an
:class:`AsyncBatchQueue`, and the :class:`~repro.region.hub.RegionalHub`
drains queues into the regional store on simulation-clock ticks.  The
queue is the *only* buffer between MQTT ingestion (hop 4) and TSDB
flushes (hop 5), so a slow regional store shows up here as measurable
depth — never as a stalled ingestion path.

Three policies govern what happens when the queue is full:

- ``block``       — the offer is refused; the producer holds the batch
  and retries (no data loss, producer-side buffering grows);
- ``drop-oldest`` — the oldest queued rows are evicted to make room,
  with exact drop accounting (newest data always wins);
- ``spill``       — the oldest queued batches overflow to disk as
  binary columnar segments (:mod:`repro.tsdb.segments`; whole-column
  encode, no per-point objects) and are recovered, in order, on drain.
  Legacy line-protocol spill files from older processes are still
  adopted and replayed on restart.

All transitions are synchronous and deterministic: there are no threads,
only scheduler ticks, so queue behaviour replays identically run-to-run.
"""

from __future__ import annotations

import enum
import re
from collections import deque
from dataclasses import asdict, dataclass
from pathlib import Path

from ..tsdb.batch import PointBatch
from ..tsdb.persistence import SegmentWriter, detect_format, iter_batches
from ..tsdb.segments import segment_point_count


class Backpressure(enum.Enum):
    """What a full queue does with the overflow."""

    BLOCK = "block"
    DROP_OLDEST = "drop-oldest"
    SPILL = "spill"

    @classmethod
    def coerce(cls, value: "Backpressure | str") -> "Backpressure":
        if isinstance(value, Backpressure):
            return value
        try:
            return cls(value)
        except ValueError:
            options = ", ".join(p.value for p in cls)
            raise ValueError(
                f"unknown backpressure policy {value!r}; pick one of {options}"
            ) from None


@dataclass
class QueueStats:
    """Cumulative per-queue accounting (all counts are points/rows).

    Conservation invariant (enforced by the property suite)::

        accepted_points == drained_points + dropped_points
                           + depth_points + spill_pending_points
    """

    offered_points: int = 0
    accepted_points: int = 0
    refused_offers: int = 0
    refused_points: int = 0
    dropped_batches: int = 0
    dropped_points: int = 0
    spilled_batches: int = 0
    spilled_points: int = 0
    recovered_points: int = 0
    drained_batches: int = 0
    drained_points: int = 0
    flushes: int = 0
    high_watermark: int = 0
    last_drain_at: int | None = None

    def as_dict(self) -> dict:
        return asdict(self)


#: Spill segments this queue owns: ``spill-<seq>.seg`` (binary) or the
#: legacy ``spill-<seq>.log`` (text, pre-segment processes).
_SPILL_FILE_RE = re.compile(r"^spill-(\d+)\.(seg|log)$")


class AsyncBatchQueue:
    """Bounded FIFO of :class:`PointBatch` between ingestion and flushes.

    ``capacity`` bounds the *in-memory* depth in points; the invariant
    ``depth_points <= capacity`` holds after every operation, for every
    policy.  Under ``spill`` the overflow lives on disk (oldest first)
    and :meth:`drain` recovers it ahead of the in-memory batches, so
    global FIFO order is preserved across the spill boundary.
    """

    def __init__(
        self,
        capacity: int,
        policy: Backpressure | str = Backpressure.BLOCK,
        *,
        spill_dir: str | Path | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.policy = Backpressure.coerce(policy)
        self.stats = QueueStats()
        self._batches: deque[PointBatch] = deque()
        self._depth = 0
        self._spill_dir: Path | None = None
        self._spill_segments: deque[tuple[Path, int]] = deque()
        self._spill_seq = 0
        self._spill_pending = 0
        if self.policy is Backpressure.SPILL:
            if spill_dir is None:
                raise ValueError("spill backpressure requires spill_dir=")
            self._spill_dir = Path(spill_dir)
            self._spill_dir.mkdir(parents=True, exist_ok=True)
            self._adopt_leftover_segments()

    def _adopt_leftover_segments(self) -> None:
        """Crash recovery: segments a previous process left in the spill
        directory become pending spill (oldest first) rather than being
        appended to under reused names and replayed as phantom data.
        Both binary ``.seg`` segments and legacy line-protocol ``.log``
        segments (spilled before the columnar format landed) are
        adopted — the read side auto-detects per file.  Only files
        matching the exact ``spill-<seq>`` naming are touched; anything
        else in the directory (an operator's backup copy, say) is left
        alone rather than crashing lane construction.  Adopted rows
        count as offered+accepted+spilled so the conservation invariant
        keeps holding exactly.
        """
        leftovers = sorted(
            (p for p in self._spill_dir.iterdir() if _SPILL_FILE_RE.match(p.name)),
            key=lambda p: int(p.stem.split("-")[1]),
        )
        for path in leftovers:
            # strict=False: a segment torn by the very crash we are
            # recovering from must yield its clean prefix, not kill the
            # lane at construction time.  Binary segments count rows by
            # a framing walk (no columnar decode — that happens once, at
            # drain); only legacy text files need a full parse.
            if detect_format(path) == "binary":
                n = segment_point_count(path, strict=False, mmap=True)
            else:
                n = sum(
                    len(b)
                    for b in iter_batches(path, strict=False)
                    if isinstance(b, PointBatch)
                )
            if n == 0:
                path.unlink()
                continue
            self._spill_segments.append((path, n))
            self._spill_pending += n
            self.stats.offered_points += n
            self.stats.accepted_points += n
            self.stats.spilled_batches += 1
            self.stats.spilled_points += n
        if leftovers:
            self._spill_seq = (
                max(int(p.stem.split("-")[1]) for p in leftovers) + 1
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def depth_points(self) -> int:
        """Points currently buffered in memory (always <= capacity)."""
        return self._depth

    @property
    def depth_batches(self) -> int:
        return len(self._batches)

    @property
    def spill_pending_points(self) -> int:
        """Points parked on disk, not yet recovered by a drain."""
        return self._spill_pending

    @property
    def backlog_points(self) -> int:
        """Everything a drain could still deliver (memory + spill)."""
        return self._depth + self._spill_pending

    def spill_files(self) -> tuple[Path, ...]:
        """Paths of pending spill segments, oldest first.

        Spill segments are ordinary segment files, so they double as a
        replication source: a
        :meth:`~repro.replication.ReplicationLog.append_segment` per
        path ships a lane's parked backlog to a follower without
        draining it locally first.  The paths remain owned by this
        queue — a later drain still consumes (and deletes) them.
        """
        return tuple(path for path, _ in self._spill_segments)

    def is_empty(self) -> bool:
        return self.backlog_points == 0

    # ------------------------------------------------------------------
    # Enqueue side
    # ------------------------------------------------------------------
    def offer(self, batch: PointBatch) -> bool:
        """Enqueue a batch; returns False only under ``block`` when full.

        ``drop-oldest`` and ``spill`` always accept: the policy decides
        which *older* rows make room (eviction with exact accounting, or
        overflow to disk).  A batch larger than the whole capacity is
        handled per policy too — trimmed to its newest ``capacity`` rows
        under ``drop-oldest``, spilled wholesale under ``spill``.
        """
        n = len(batch)
        self.stats.offered_points += n
        if n == 0:
            return True
        if self._depth + n <= self.capacity:
            self._accept(batch)
            return True
        if self.policy is Backpressure.BLOCK:
            self.stats.refused_offers += 1
            self.stats.refused_points += n
            return False
        if self.policy is Backpressure.DROP_OLDEST:
            self._make_room_by_dropping(n)
            if n > self.capacity:
                # The batch alone exceeds the bound: keep its newest rows.
                self.stats.accepted_points += n
                self.stats.dropped_batches += 1
                self.stats.dropped_points += n - self.capacity
                batch = batch.rows(n - self.capacity, n)
                self._push(batch)
                return True
            self._accept(batch)
            return True
        # SPILL: oldest in-memory batches overflow to disk until it fits.
        while self._batches and self._depth + n > self.capacity:
            victim = self._batches.popleft()
            self._depth -= len(victim)
            self._spill_out(victim)
        if n > self.capacity:
            self.stats.accepted_points += n
            self._spill_out(batch)
            return True
        self._accept(batch)
        return True

    def _accept(self, batch: PointBatch) -> None:
        self.stats.accepted_points += len(batch)
        self._push(batch)

    def _push(self, batch: PointBatch) -> None:
        self._batches.append(batch)
        self._depth += len(batch)
        if self._depth > self.stats.high_watermark:
            self.stats.high_watermark = self._depth

    def _make_room_by_dropping(self, incoming: int) -> None:
        """Evict exactly the oldest rows needed to fit ``incoming``.

        Whole batches go first; the boundary batch is row-trimmed (via
        :meth:`PointBatch.rows`) so eviction never over-drops by up to a
        batch of retainable data.
        """
        needed = self._depth + incoming - self.capacity
        while self._batches and needed > 0:
            head = self._batches[0]
            if len(head) <= needed:
                self._batches.popleft()
                self._depth -= len(head)
                needed -= len(head)
                self.stats.dropped_batches += 1
                self.stats.dropped_points += len(head)
            else:
                self._batches[0] = head.rows(needed, len(head))
                self._depth -= needed
                self.stats.dropped_points += needed
                needed = 0

    def _spill_out(self, batch: PointBatch) -> None:
        assert self._spill_dir is not None
        path = self._spill_dir / f"spill-{self._spill_seq:08d}.seg"
        self._spill_seq += 1
        with SegmentWriter(path, append=False) as writer:
            writer.write_batch(batch)
        self._spill_segments.append((path, len(batch)))
        self._spill_pending += len(batch)
        self.stats.spilled_batches += 1
        self.stats.spilled_points += len(batch)

    # ------------------------------------------------------------------
    # Drain side
    # ------------------------------------------------------------------
    def drain(
        self, max_points: int | None = None, *, now: int | None = None
    ) -> PointBatch:
        """Dequeue up to ``max_points`` in FIFO order as one batch.

        Spilled segments (the oldest data) recover first.  Granularity is
        whole batches: at least one pending batch is always taken, so a
        tiny limit still makes progress, and the returned batch may
        overshoot the limit by at most one enqueued batch.
        """
        if max_points is not None and max_points <= 0:
            raise ValueError("max_points must be positive (or None)")
        parts: list[PointBatch] = []
        taken = 0
        while self._spill_segments and (max_points is None or taken < max_points):
            path, n = self._spill_segments.popleft()
            parts.append(self._read_segment(path))
            self._spill_pending -= n
            self.stats.recovered_points += n
            taken += n
        while self._batches and (max_points is None or taken < max_points):
            batch = self._batches.popleft()
            self._depth -= len(batch)
            parts.append(batch)
            taken += len(batch)
        if not parts:
            return PointBatch.empty()
        self.stats.drained_batches += len(parts)
        self.stats.drained_points += taken
        self.stats.flushes += 1
        if now is not None:
            self.stats.last_drain_at = int(now)
        return PointBatch.concat(parts)

    @staticmethod
    def _read_segment(path: Path) -> PointBatch:
        """Recover one spill segment as a batch (format auto-detected,
        so legacy text segments replay alongside binary ones; lenient,
        so a crash-torn tail yields the clean prefix).  Binary segments
        decode zero-copy via mmap; ``concat`` copies the columns out
        before the file is unlinked, so no view outlives the map."""
        batches = [
            b
            for b in iter_batches(path, strict=False, mmap=True)
            if isinstance(b, PointBatch)
        ]
        path.unlink()
        return PointBatch.concat(batches)
