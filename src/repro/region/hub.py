"""The regional hub: N city dataports fanning into one store.

The paper's flagship scenario is an *ecosystem*: multiple city
deployments stream into shared storage that regional dashboards and
analytics consume.  :class:`RegionalHub` is that fan-in point.  Each
registered city gets a :class:`CityIngress` — a store-shaped enqueue
endpoint its dataport's ``BatchingTsdbWriter`` writes to — backed by a
bounded :class:`~repro.region.queue.AsyncBatchQueue`.  The hub drains
queues into the regional :class:`~repro.tsdb.TimeSeriesStore` (single
or sharded) on scheduler ticks and enforces each city's retention
policy scoped to its ``city=<name>`` series.

Semantics are pinned to the direct path: the ingress preserves per-city
batch order and the store's last-write-wins merge is order-based within
one series, and a series belongs to exactly one city — so a fan-in run
produces *byte-identical* store contents to a single dataport ingesting
the same traffic (the equivalence suite in ``tests/test_region_hub.py``
asserts this at 4 cities over a sharded store).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from pathlib import Path

from ..simclock import Scheduler
from ..tsdb.batch import PointBatch
from ..tsdb.interface import TimeSeriesStore
from ..tsdb.model import SeriesKey
from ..tsdb.query import Query, QueryResult
from ..tsdb.retention import RolledUp
from .policy import CityPolicy
from .queue import AsyncBatchQueue, Backpressure


class CityIngress:
    """Store-shaped enqueue side of one city's fan-in lane.

    Quacks like the write surface of a :class:`TimeSeriesStore` (``put``
    / ``put_point`` / ``put_batch`` / ``put_many``), so the dataport's
    ``BatchingTsdbWriter`` — and any other producer — plugs in
    unchanged.  Every accepted series is namespaced to the city: keys
    missing a ``city`` tag gain ``city=<name>`` (keys that already carry
    one, e.g. stamped by the dataport, pass through untouched), which
    layers cleanly on the CRC-32 shard routing because the tag is part
    of the canonical key string.

    Under ``block`` backpressure a refused batch is *stalled* here (in
    producer territory, outside the bounded queue) and retried on hub
    ticks, so nothing is ever lost and hop 4 never blocks.
    """

    def __init__(self, city: str, queue: AsyncBatchQueue) -> None:
        self.city = city
        self.queue = queue
        self._stalled: deque[PointBatch] = deque()
        self._stalled_points = 0
        self._stamp_cache: dict[SeriesKey, SeriesKey] = {}

    # -- write surface ---------------------------------------------------
    def put_batch(self, batch: PointBatch) -> int:
        """Enqueue a columnar batch; returns rows accepted (always all).

        Under ``block``, oversized batches split into capacity-sized
        slices before hitting the queue, so the bounded-depth invariant
        can be honoured by stalling regardless of producer burst size.
        The lossy policies take the batch whole: the queue's own
        oversized handling (trim-to-newest / spill wholesale) keeps
        strictly more of the newest data than slice-by-slice eviction
        would.
        """
        n = len(batch)
        if n == 0:
            return 0
        batch = self._stamp(batch)
        cap = self.queue.capacity
        if n > cap and self.queue.policy is Backpressure.BLOCK:
            for lo in range(0, n, cap):
                self._enqueue(batch.rows(lo, lo + cap))
        else:
            self._enqueue(batch)
        return n

    def put(self, metric, timestamp, value, tags=None) -> SeriesKey:
        batch = PointBatch.for_series(metric, [timestamp], [value], tags)
        self.put_batch(batch)
        return self._stamp_key(batch.keys[0])

    def put_point(self, point) -> SeriesKey:
        return self.put(
            point.key.metric, point.timestamp, point.value, point.key.tag_dict()
        )

    def put_many(self, points) -> int:
        return self.put_batch(PointBatch.from_points(points))

    # -- backpressure ----------------------------------------------------
    @property
    def backpressured(self) -> bool:
        """True while refused batches are stalled upstream of the queue."""
        return bool(self._stalled)

    @property
    def stalled_points(self) -> int:
        return self._stalled_points

    def retry_stalled(self) -> int:
        """Re-offer stalled batches (oldest first); returns points moved."""
        moved = 0
        while self._stalled:
            if not self.queue.offer(self._stalled[0]):
                break
            batch = self._stalled.popleft()
            self._stalled_points -= len(batch)
            moved += len(batch)
        return moved

    def _enqueue(self, batch: PointBatch) -> None:
        # FIFO discipline: never let fresh data overtake stalled data.
        if self._stalled:
            self.retry_stalled()
        if self._stalled or not self.queue.offer(batch):
            self._stalled.append(batch)
            self._stalled_points += len(batch)

    # -- namespacing -----------------------------------------------------
    def _stamp(self, batch: PointBatch) -> PointBatch:
        if all(key.tag("city") is not None for key in batch.keys):
            return batch
        keys = tuple(self._stamp_key(key) for key in batch.keys)
        return PointBatch(keys, batch.key_idx, batch.timestamps, batch.values)

    def _stamp_key(self, key: SeriesKey) -> SeriesKey:
        if key.tag("city") is not None:
            return key
        stamped = self._stamp_cache.get(key)
        if stamped is None:
            tags = key.tag_dict()
            tags["city"] = self.city
            stamped = SeriesKey.make(key.metric, tags)
            self._stamp_cache[key] = stamped
        return stamped


@dataclass
class _CityLane:
    """Hub-internal state for one registered city."""

    policy: CityPolicy
    queue: AsyncBatchQueue
    ingress: CityIngress
    flushed_points: int = 0
    flushes: int = 0
    last_retention_at: int | None = None
    last_retention: RolledUp | None = None
    retention_dropped: int = 0
    retention_rolled: int = 0


@dataclass
class HubStats:
    """Hub-level aggregate counters (points are rows)."""

    flushed_points: int = 0
    flushes: int = 0
    ticks: int = 0
    retention_runs: int = 0


class RegionalHub:
    """Absorbs N city lanes into one regional time-series store."""

    def __init__(
        self,
        store: TimeSeriesStore,
        scheduler: Scheduler,
        *,
        flush_interval_s: int = 60,
        spill_dir: str | Path | None = None,
    ) -> None:
        if flush_interval_s <= 0:
            raise ValueError("flush_interval_s must be positive")
        self.store = store
        self.scheduler = scheduler
        self.flush_interval_s = int(flush_interval_s)
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self.stats = HubStats()
        self._lanes: dict[str, _CityLane] = {}
        self._started = False

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def cities(self) -> list[str]:
        """Registered city names, in registration order."""
        return list(self._lanes)

    def register_city(self, policy: CityPolicy) -> CityIngress:
        """Open a fan-in lane for a city; returns its enqueue endpoint."""
        if policy.city in self._lanes:
            raise ValueError(f"city {policy.city!r} already registered")
        spill_dir = None
        if policy.backpressure is Backpressure.SPILL:
            if self.spill_dir is None:
                raise ValueError(
                    "spill backpressure requires RegionalHub(spill_dir=...)"
                )
            spill_dir = self.spill_dir / policy.city
        queue = AsyncBatchQueue(
            policy.queue_capacity, policy.backpressure, spill_dir=spill_dir
        )
        ingress = CityIngress(policy.city, queue)
        self._lanes[policy.city] = _CityLane(policy, queue, ingress)
        return ingress

    def ingress(self, city: str) -> CityIngress:
        return self._lanes[city].ingress

    def queue(self, city: str) -> AsyncBatchQueue:
        return self._lanes[city].queue

    def policy(self, city: str) -> CityPolicy:
        return self._lanes[city].policy

    # ------------------------------------------------------------------
    # The simclock-driven pump
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the recurring flush/retention tick (idempotent)."""
        if self._started:
            return
        self._started = True
        self.scheduler.call_every(self.flush_interval_s, self._tick)

    def _tick(self, now: int) -> None:
        self.stats.ticks += 1
        self.pump(now=now)
        for lane in self._lanes.values():
            policy = lane.policy
            if policy.retention is None and policy.tiers is None:
                continue
            due = (
                lane.last_retention_at is None
                or now - lane.last_retention_at >= policy.retention_interval_s
            )
            if due:
                self._enforce_lane_retention(lane, now)

    def pump(self, *, now: int | None = None) -> int:
        """One drain pass over every lane; returns points written."""
        return sum(
            self.pump_city(city, now=now) for city in self._lanes
        )

    def pump_city(
        self, city: str, *, now: int | None = None, limit: int | None = ...
    ) -> int:
        """Drain one lane into the regional store.

        ``limit`` defaults to the lane policy's ``max_flush_points``
        (the regional store's per-tick bandwidth for this city); pass
        ``None`` to drain without throttle.
        """
        lane = self._lanes[city]
        if limit is ...:
            limit = lane.policy.max_flush_points
        lane.ingress.retry_stalled()
        batch = lane.queue.drain(limit, now=now)
        if len(batch):
            self.store.put_batch(batch)
            lane.flushed_points += len(batch)
            lane.flushes += 1
            self.stats.flushed_points += len(batch)
            self.stats.flushes += 1
        # Freed capacity may unblock stalled producers immediately.
        lane.ingress.retry_stalled()
        return len(batch)

    def drain_all(self) -> int:
        """Flush every lane to empty, ignoring per-tick throttles.

        The shutdown/inspection path: after this, every accepted point
        is visible in the regional store and no lane is backpressured.
        """
        total = 0
        while True:
            moved = sum(
                self.pump_city(city, limit=None) for city in self._lanes
            )
            if moved == 0:
                break
            total += moved
        return total

    # ------------------------------------------------------------------
    # Regional queries
    # ------------------------------------------------------------------
    def query_cities(
        self,
        metric: str,
        start: int,
        end: int,
        *,
        aggregator: str = "avg",
        downsample: str | None = None,
        rate: bool = False,
        group_by: tuple[str, ...] = (),
        parallel: bool | None = None,
    ) -> dict[str, QueryResult]:
        """One query per registered city, planned as a single batch.

        The regional ops convenience: N city-scoped queries over the
        same metric go through ``store.run_many`` together — shared
        series matching and scans, one thread-pooled fan-out on a
        sharded store — instead of N independent ``run()`` calls.
        (Dashboard *panels* batch separately via
        ``Dashboard.prefetch_results``, which also covers non-per-city
        panels.)  Returns city → result in registration order.
        """
        queries = [
            Query(
                metric,
                start,
                end,
                tags={"city": city},
                aggregator=aggregator,
                downsample=downsample,
                rate=rate,
                group_by=tuple(group_by),
            )
            for city in self.cities
        ]
        results = self.store.run_many(queries, parallel=parallel)
        return dict(zip(self.cities, results))

    # ------------------------------------------------------------------
    # Per-city retention
    # ------------------------------------------------------------------
    def enforce_retention(self, now: int) -> dict[str, RolledUp]:
        """Run every lane's retention (or tier) policy now; returns
        per-city results."""
        out: dict[str, RolledUp] = {}
        for city, lane in self._lanes.items():
            if lane.policy.retention is None and lane.policy.tiers is None:
                continue
            out[city] = self._enforce_lane_retention(lane, now)
        return out

    def _enforce_lane_retention(self, lane: _CityLane, now: int) -> RolledUp:
        # Flush the lane first (throttle suspended): enforcing while
        # pre-cutoff stragglers sit in the queue would roll the stored
        # points now and the stragglers on the *next* pass, whose
        # re-rolled bucket would overwrite the correct average
        # (last-write-wins on the rollup series' bucket timestamps).
        city = lane.policy.city
        while lane.queue.backlog_points or lane.ingress.backpressured:
            if self.pump_city(city, now=now, limit=None) == 0:
                break
        if lane.policy.tiers is not None:
            report = lane.policy.tiers.enforce(
                self.store, now, tags={"city": lane.policy.city}
            )
            # Lane stats track totals; the final stage's cutoff is the
            # oldest horizon the pass touched.
            result = RolledUp(
                dropped_points=report.dropped_points,
                rolled_points=report.rolled_points,
                cutoff=report.stages[-1].cutoff,
            )
        else:
            result = lane.policy.retention.enforce_scoped(
                self.store, now, tags={"city": lane.policy.city}
            )
        lane.last_retention_at = int(now)
        lane.last_retention = result
        lane.retention_dropped += result.dropped_points
        lane.retention_rolled += result.rolled_points
        self.stats.retention_runs += 1
        return result

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def city_stats(self, city: str) -> dict:
        lane = self._lanes[city]
        q = lane.queue.stats
        return {
            "policy": lane.policy.backpressure.value,
            "queue_capacity": lane.queue.capacity,
            "queue_depth_points": lane.queue.depth_points,
            "spill_pending_points": lane.queue.spill_pending_points,
            "stalled_points": lane.ingress.stalled_points,
            "backpressured": lane.ingress.backpressured,
            "accepted_points": q.accepted_points,
            "dropped_points": q.dropped_points,
            "spilled_points": q.spilled_points,
            "drained_points": q.drained_points,
            "refused_offers": q.refused_offers,
            "high_watermark": q.high_watermark,
            "flushed_points": lane.flushed_points,
            "flushes": lane.flushes,
            "retention_dropped": lane.retention_dropped,
            "retention_rolled": lane.retention_rolled,
        }

    def stats_snapshot(self) -> dict:
        """Everything the regional dashboard panel renders."""
        return {
            "cities": {city: self.city_stats(city) for city in self._lanes},
            "hub": {
                "flushed_points": self.stats.flushed_points,
                "flushes": self.stats.flushes,
                "ticks": self.stats.ticks,
                "retention_runs": self.stats.retention_runs,
                "flush_interval_s": self.flush_interval_s,
            },
        }

    def __repr__(self) -> str:
        lanes = ",".join(
            f"{c}:{lane.queue.depth_points}" for c, lane in self._lanes.items()
        )
        return f"RegionalHub(cities=[{lanes}], flushed={self.stats.flushed_points})"
