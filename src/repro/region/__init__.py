"""Regional fan-in layer: async multi-city ingestion into one store.

The paper's ecosystem runs multiple city deployments (Trondheim, Vejle)
against shared storage and analytics.  This package generalizes that:
a :class:`RegionalHub` absorbs columnar batch traffic from N city
dataports through bounded :class:`AsyncBatchQueue` lanes with explicit
backpressure (block / drop-oldest / spill-to-disk) and per-city
:class:`CityPolicy` lifecycle rules (queue depth, flush throttle,
retention/rollup), all driven by the deterministic simulation clock.
"""

from .hub import CityIngress, HubStats, RegionalHub
from .policy import CityPolicy
from .queue import AsyncBatchQueue, Backpressure, QueueStats

__all__ = [
    "AsyncBatchQueue",
    "Backpressure",
    "CityIngress",
    "CityPolicy",
    "HubStats",
    "QueueStats",
    "RegionalHub",
]
