"""The time-series database engine.

A from-scratch reproduction of the OpenTSDB role in the CTT stack: series
are keyed by metric + tags, an inverted tag index accelerates filtered
lookups, and queries combine scan → (optional) rate → group-by →
cross-series aggregation → (optional) downsample.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Mapping

import numpy as np

from . import aggregators
from .batch import PointBatch
from .downsample import apply as apply_downsample
from .interface import StoreApi
from .model import DataPoint, SeriesKey, validate_name
from .query import Query, QueryResult, ResultSeries, compute_rate
from .series import SeriesSlice, SeriesStore


class TSDB(StoreApi):
    """In-memory time-series database with tag-indexed queries.

    The public surface is deliberately OpenTSDB-shaped:

    - :meth:`put` writes one point (out-of-order tolerated),
    - :meth:`put_batch` / :meth:`put_series` move whole columnar batches
      (the hot ingest path; :meth:`put` is the degenerate single-point
      case of the same store machinery),
    - :meth:`run` executes a :class:`Query`,
    - :meth:`suggest_metrics` / :meth:`suggest_tag_values` back dashboard
      autocomplete,
    - :meth:`last` serves "current value" dashboard panels.
    """

    def __init__(self) -> None:
        self._stores: dict[SeriesKey, SeriesStore] = {}
        # metric -> set of series keys
        self._by_metric: dict[str, set[SeriesKey]] = defaultdict(set)
        # (tagk, tagv) -> set of series keys
        self._by_tag: dict[tuple[str, str], set[SeriesKey]] = defaultdict(set)
        self._puts = 0

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def _store_for(self, key: SeriesKey) -> SeriesStore:
        """Store for a series, creating it (and indexing it) on first sight."""
        store = self._stores.get(key)
        if store is None:
            store = SeriesStore()
            self._stores[key] = store
            self._by_metric[key.metric].add(key)
            for pair in key.tags:
                self._by_tag[pair].add(key)
        return store

    def put(
        self,
        metric: str,
        timestamp: int,
        value: float,
        tags: Mapping[str, str] | None = None,
    ) -> SeriesKey:
        """Write one data point, creating the series on first sight."""
        key = SeriesKey.make(metric, tags)
        self._store_for(key).append(timestamp, value)
        self._puts += 1
        return key

    def put_point(self, point: DataPoint) -> SeriesKey:
        self._store_for(point.key).append(point.timestamp, point.value)
        self._puts += 1
        return point.key

    def put_batch(self, batch: PointBatch) -> int:
        """Write a columnar batch: group by series key, one sorted merge
        per touched series, index maintenance once per new series.

        Equivalent to ``put`` called per row (same out-of-order tolerance
        and last-write-wins dedup); returns points written.
        """
        for key, ts, vals in batch.by_series():
            self.put_column(key, ts, vals)
        return len(batch)

    def put_column(self, key: SeriesKey, timestamps, values) -> int:
        """Bulk-write one series' parallel columns under a prebuilt key.

        The primitive under :meth:`put_batch`; shard routers call it
        directly so a regrouped batch lands without re-encoding.
        """
        n = self._store_for(key).extend_batch(timestamps, values)
        self._puts += n
        return n

    def put_series(
        self,
        metric: str,
        timestamps,
        values,
        tags: Mapping[str, str] | None = None,
    ) -> SeriesKey:
        """Bulk-write parallel timestamp/value columns into one series."""
        batch = PointBatch.for_series(metric, timestamps, values, tags)
        self.put_batch(batch)
        return batch.keys[0]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def series_count(self) -> int:
        return len(self._stores)

    @property
    def point_count(self) -> int:
        return sum(s.approximate_size for s in self._stores.values())

    def exact_point_count(self) -> int:
        """Point count with duplicates resolved (forces compaction)."""
        return sum(len(s) for s in self._stores.values())

    @property
    def write_count(self) -> int:
        """Total puts accepted (includes overwritten duplicates)."""
        return self._puts

    def metrics(self) -> list[str]:
        return sorted(m for m, keys in self._by_metric.items() if keys)

    def series_for_metric(self, metric: str) -> list[SeriesKey]:
        return sorted(self._by_metric.get(metric, ()), key=str)

    def suggest_tag_values(self, metric: str, tag_key: str) -> list[str]:
        validate_name(tag_key, "tag key")
        values = {
            key.tag(tag_key)
            for key in self._by_metric.get(metric, ())
            if key.tag(tag_key) is not None
        }
        return sorted(v for v in values if v is not None)

    def last(
        self, metric: str, tags: Mapping[str, str] | None = None
    ) -> dict[SeriesKey, tuple[int, float]]:
        """Latest point per matching series (dashboards' live tiles)."""
        out: dict[SeriesKey, tuple[int, float]] = {}
        for key in self._match(metric, tags or {}):
            latest = self._stores[key].latest()
            if latest is not None:
                out[key] = latest
        return out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def run(self, query: Query) -> QueryResult:
        """Execute a query; see :class:`~repro.tsdb.query.Query`."""
        matched = self._match(query.metric, query.tags)
        return execute_query(
            query,
            matched,
            lambda key: self._stores[key].scan(query.start, query.end),
        )

    def series_slice(
        self, key: SeriesKey, start: int | None = None, end: int | None = None
    ) -> SeriesSlice:
        """Raw sorted slice of one series; empty for unknown keys."""
        store = self._stores.get(key)
        if store is None:
            return SeriesSlice(np.empty(0, np.int64), np.empty(0, np.float64))
        return store.scan(start, end)

    def _match(self, metric: str, tags: Mapping[str, str]) -> list[SeriesKey]:
        candidates = self._by_metric.get(metric)
        if not candidates:
            return []
        # Narrow with the tag index for exact-value filters, then apply
        # the full (wildcard/alternation-aware) match.
        narrowed: set[SeriesKey] | None = None
        for k, v in tags.items():
            if v == "*" or "|" in v:
                continue
            bucket = self._by_tag.get((k, v), set())
            narrowed = bucket.copy() if narrowed is None else narrowed & bucket
        pool = candidates if narrowed is None else (candidates & narrowed)
        return [key for key in pool if key.matches(tags)]

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def delete_before(self, cutoff: int, *, exclude_suffix: str | None = None) -> int:
        """Apply retention: drop all points older than ``cutoff``.

        Series whose metric ends with ``exclude_suffix`` are spared —
        retention rollups live in the same database and must outlive the
        raw data they summarize.
        """
        dropped = 0
        dead: list[SeriesKey] = []
        for key, store in self._stores.items():
            if exclude_suffix is not None and key.metric.endswith(exclude_suffix):
                continue
            dropped += store.delete_before(cutoff)
            if len(store) == 0:
                dead.append(key)
        for key in dead:
            self._unindex(key)
        return dropped

    def delete_series_before(self, key: SeriesKey, cutoff: int) -> int:
        """Retention for one series: drop its points older than ``cutoff``.

        The primitive under tag-scoped retention (the regional hub
        applies per-city horizons to ``city=<name>`` series only).
        Returns points dropped; unknown keys drop nothing.
        """
        store = self._stores.get(key)
        if store is None:
            return 0
        dropped = store.delete_before(cutoff)
        if len(store) == 0:
            self._unindex(key)
        return dropped

    def _unindex(self, key: SeriesKey) -> None:
        """Remove an emptied series and prune its index buckets.

        Under retention churn, dead series would otherwise leave their
        index entries behind forever.
        """
        del self._stores[key]
        metric_bucket = self._by_metric[key.metric]
        metric_bucket.discard(key)
        if not metric_bucket:
            del self._by_metric[key.metric]
        for pair in key.tags:
            tag_bucket = self._by_tag.get(pair)
            if tag_bucket is not None:
                tag_bucket.discard(key)
                if not tag_bucket:
                    del self._by_tag[pair]


def execute_query(
    query: Query,
    matched: list[SeriesKey],
    scan: Callable[[SeriesKey], SeriesSlice],
) -> QueryResult:
    """The group-by → aggregate → downsample plan over scanned slices.

    ``matched`` is the set of series the query touches and ``scan``
    produces each one's time-sorted slice; everything downstream of the
    scan is store-layout-independent.  Both :class:`TSDB` and the
    sharded engine run queries through this one function, so results
    are bit-identical regardless of how series are partitioned: groups
    form from the key set alone and slices always aggregate in sorted
    key order.
    """
    ds = query.parsed_downsample()
    agg = aggregators.get_columnar(query.aggregator)

    groups: dict[tuple[tuple[str, str], ...], list[SeriesKey]] = defaultdict(list)
    for key in matched:
        label = tuple(
            (g, key.tag(g, "")) for g in sorted(query.group_by)
        )
        groups[label].append(key)

    scanned = 0
    series_out: list[ResultSeries] = []
    for label, keys in sorted(groups.items()):
        slices: list[SeriesSlice] = []
        for key in sorted(keys, key=str):
            sl = scan(key)
            scanned += len(sl)
            if query.rate:
                sl = compute_rate(sl)
            slices.append(sl)
        combined = _aggregate_across(slices, agg)
        if ds is not None:
            combined = apply_downsample(combined, ds, query.start, query.end)
        series_out.append(
            ResultSeries(
                metric=query.metric,
                group_tags=dict(label),
                slice=combined,
                source_series=tuple(sorted(keys, key=str)),
            )
        )
    if not series_out:
        empty = SeriesSlice(np.empty(0, np.int64), np.empty(0, np.float64))
        series_out.append(ResultSeries(query.metric, {}, empty, ()))
    return QueryResult(query=query, series=tuple(series_out), scanned_points=scanned)


def _aggregate_across(slices: list[SeriesSlice], agg) -> SeriesSlice:
    """Combine several series into one by aggregating per timestamp.

    Timestamps are the union of all input timestamps; at each instant the
    aggregator sees the values of every series that has a point exactly
    there.  (OpenTSDB interpolates; our feeds are bucket-aligned by the
    ingest pipeline, so exact alignment is the common case and
    interpolation is left to downsample fill policies.)

    ``agg`` is a *columnar* aggregator (see
    :func:`~repro.tsdb.aggregators.get_columnar`): the whole
    series×instant matrix reduces in one numpy pass instead of a Python
    loop per timestamp.
    """
    slices = [s for s in slices if len(s) > 0]
    if not slices:
        return SeriesSlice(np.empty(0, np.int64), np.empty(0, np.float64))
    if len(slices) == 1:
        return slices[0]
    all_ts = np.unique(np.concatenate([s.timestamps for s in slices]))
    stacked = np.full((len(slices), all_ts.shape[0]), np.nan)
    for i, s in enumerate(slices):
        idx = np.searchsorted(all_ts, s.timestamps)
        stacked[i, idx] = s.values
    return SeriesSlice(all_ts, agg(stacked))
