"""The time-series database engine.

A from-scratch reproduction of the OpenTSDB role in the CTT stack: series
are keyed by metric + tags, an inverted tag index accelerates filtered
lookups, and queries combine scan → (optional) rate → group-by →
cross-series aggregation → (optional) downsample.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Mapping

import numpy as np

from . import aggregators
from .downsample import apply as apply_downsample
from .model import DataPoint, SeriesKey, validate_name
from .query import Query, QueryResult, ResultSeries, compute_rate
from .series import SeriesSlice, SeriesStore


class TSDB:
    """In-memory time-series database with tag-indexed queries.

    The public surface is deliberately OpenTSDB-shaped:

    - :meth:`put` writes one point (out-of-order tolerated),
    - :meth:`run` executes a :class:`Query`,
    - :meth:`suggest_metrics` / :meth:`suggest_tag_values` back dashboard
      autocomplete,
    - :meth:`last` serves "current value" dashboard panels.
    """

    def __init__(self) -> None:
        self._stores: dict[SeriesKey, SeriesStore] = {}
        # metric -> set of series keys
        self._by_metric: dict[str, set[SeriesKey]] = defaultdict(set)
        # (tagk, tagv) -> set of series keys
        self._by_tag: dict[tuple[str, str], set[SeriesKey]] = defaultdict(set)
        self._puts = 0

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(
        self,
        metric: str,
        timestamp: int,
        value: float,
        tags: Mapping[str, str] | None = None,
    ) -> SeriesKey:
        """Write one data point, creating the series on first sight."""
        key = SeriesKey.make(metric, tags)
        store = self._stores.get(key)
        if store is None:
            store = SeriesStore()
            self._stores[key] = store
            self._by_metric[key.metric].add(key)
            for pair in key.tags:
                self._by_tag[pair].add(key)
        store.append(timestamp, value)
        self._puts += 1
        return key

    def put_point(self, point: DataPoint) -> SeriesKey:
        return self.put(point.key.metric, point.timestamp, point.value, point.key.tag_dict())

    def put_many(self, points: Iterable[DataPoint]) -> int:
        n = 0
        for p in points:
            self.put_point(p)
            n += 1
        return n

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def series_count(self) -> int:
        return len(self._stores)

    @property
    def point_count(self) -> int:
        return sum(s.approximate_size for s in self._stores.values())

    @property
    def write_count(self) -> int:
        """Total puts accepted (includes overwritten duplicates)."""
        return self._puts

    def metrics(self) -> list[str]:
        return sorted(m for m, keys in self._by_metric.items() if keys)

    def series_for_metric(self, metric: str) -> list[SeriesKey]:
        return sorted(self._by_metric.get(metric, ()), key=str)

    def suggest_metrics(self, prefix: str = "") -> list[str]:
        return [m for m in self.metrics() if m.startswith(prefix)]

    def suggest_tag_values(self, metric: str, tag_key: str) -> list[str]:
        validate_name(tag_key, "tag key")
        values = {
            key.tag(tag_key)
            for key in self._by_metric.get(metric, ())
            if key.tag(tag_key) is not None
        }
        return sorted(v for v in values if v is not None)

    def last(
        self, metric: str, tags: Mapping[str, str] | None = None
    ) -> dict[SeriesKey, tuple[int, float]]:
        """Latest point per matching series (dashboards' live tiles)."""
        out: dict[SeriesKey, tuple[int, float]] = {}
        for key in self._match(metric, tags or {}):
            latest = self._stores[key].latest()
            if latest is not None:
                out[key] = latest
        return out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def run(self, query: Query) -> QueryResult:
        """Execute a query; see :class:`~repro.tsdb.query.Query`."""
        matched = self._match(query.metric, query.tags)
        ds = query.parsed_downsample()
        agg = aggregators.get(query.aggregator)

        groups: dict[tuple[tuple[str, str], ...], list[SeriesKey]] = defaultdict(list)
        for key in matched:
            label = tuple(
                (g, key.tag(g, "")) for g in sorted(query.group_by)
            )
            groups[label].append(key)

        scanned = 0
        series_out: list[ResultSeries] = []
        for label, keys in sorted(groups.items()):
            slices: list[SeriesSlice] = []
            for key in sorted(keys, key=str):
                sl = self._stores[key].scan(query.start, query.end)
                scanned += len(sl)
                if query.rate:
                    sl = compute_rate(sl)
                slices.append(sl)
            combined = _aggregate_across(slices, agg)
            if ds is not None:
                combined = apply_downsample(combined, ds, query.start, query.end)
            series_out.append(
                ResultSeries(
                    metric=query.metric,
                    group_tags=dict(label),
                    slice=combined,
                    source_series=tuple(sorted(keys, key=str)),
                )
            )
        if not series_out:
            empty = SeriesSlice(np.empty(0, np.int64), np.empty(0, np.float64))
            series_out.append(ResultSeries(query.metric, {}, empty, ()))
        return QueryResult(query=query, series=tuple(series_out), scanned_points=scanned)

    def _match(self, metric: str, tags: Mapping[str, str]) -> list[SeriesKey]:
        candidates = self._by_metric.get(metric)
        if not candidates:
            return []
        # Narrow with the tag index for exact-value filters, then apply
        # the full (wildcard/alternation-aware) match.
        narrowed: set[SeriesKey] | None = None
        for k, v in tags.items():
            if v == "*" or "|" in v:
                continue
            bucket = self._by_tag.get((k, v), set())
            narrowed = bucket.copy() if narrowed is None else narrowed & bucket
        pool = candidates if narrowed is None else (candidates & narrowed)
        return [key for key in pool if key.matches(tags)]

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def delete_before(self, cutoff: int, *, exclude_suffix: str | None = None) -> int:
        """Apply retention: drop all points older than ``cutoff``.

        Series whose metric ends with ``exclude_suffix`` are spared —
        retention rollups live in the same database and must outlive the
        raw data they summarize.
        """
        dropped = 0
        dead: list[SeriesKey] = []
        for key, store in self._stores.items():
            if exclude_suffix is not None and key.metric.endswith(exclude_suffix):
                continue
            dropped += store.delete_before(cutoff)
            if len(store) == 0:
                dead.append(key)
        for key in dead:
            del self._stores[key]
            self._by_metric[key.metric].discard(key)
            for pair in key.tags:
                self._by_tag[pair].discard(key)
        return dropped


def _aggregate_across(slices: list[SeriesSlice], agg) -> SeriesSlice:
    """Combine several series into one by aggregating per timestamp.

    Timestamps are the union of all input timestamps; at each instant the
    aggregator sees the values of every series that has a point exactly
    there.  (OpenTSDB interpolates; our feeds are bucket-aligned by the
    ingest pipeline, so exact alignment is the common case and
    interpolation is left to downsample fill policies.)
    """
    slices = [s for s in slices if len(s) > 0]
    if not slices:
        return SeriesSlice(np.empty(0, np.int64), np.empty(0, np.float64))
    if len(slices) == 1:
        return slices[0]
    all_ts = np.unique(np.concatenate([s.timestamps for s in slices]))
    stacked = np.full((len(slices), all_ts.shape[0]), np.nan)
    for i, s in enumerate(slices):
        idx = np.searchsorted(all_ts, s.timestamps)
        stacked[i, idx] = s.values
    out = np.empty(all_ts.shape[0], dtype=np.float64)
    for j in range(all_ts.shape[0]):
        out[j] = agg(stacked[:, j])
    return SeriesSlice(all_ts, out)
