"""The time-series database engine.

A from-scratch reproduction of the OpenTSDB role in the CTT stack: series
are keyed by metric + tags, an inverted tag index accelerates filtered
lookups, and queries combine scan → (optional) rate → group-by →
cross-series aggregation → (optional) downsample.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Mapping, Sequence

import numpy as np

from . import plan as planner
from .batch import PointBatch
from .catalog import SeriesCatalog
from .interface import StoreApi
from .model import DataPoint, SeriesKey
from .query import Query, QueryResult
from .series import SeriesSlice, SeriesStore


class TSDB(StoreApi):
    """In-memory time-series database with tag-indexed queries.

    The public surface is deliberately OpenTSDB-shaped:

    - :meth:`put` writes one point (out-of-order tolerated),
    - :meth:`put_batch` / :meth:`put_series` move whole columnar batches
      (the hot ingest path; :meth:`put` is the degenerate single-point
      case of the same store machinery),
    - :meth:`run` executes a :class:`Query`,
    - :meth:`suggest_metrics` / :meth:`suggest_tag_values` /
      :meth:`tag_keys` / :meth:`tag_values` / :meth:`cardinality` back
      dashboard autocomplete and capacity planning (the
      :class:`~repro.tsdb.catalog.SeriesCatalog` metadata surface),
    - :meth:`last` serves "current value" dashboard panels.

    ``max_tag_values`` arms the catalog's cardinality guard-rail: a
    write that would create more distinct values of one tag key under
    one metric is rejected with
    :class:`~repro.tsdb.catalog.CardinalityLimitError` before any state
    changes (within a batch, rows of series admitted earlier stay
    written — the same at-least-once boundary a WAL replay has).
    """

    def __init__(self, *, max_tag_values: int | None = None) -> None:
        self._stores: dict[SeriesKey, SeriesStore] = {}
        # The inverted tag index: metric -> tag key -> tag value ->
        # series postings, maintained on every index/unindex path, so
        # matching and the metadata API are O(result), not O(series).
        self.catalog = SeriesCatalog(max_tag_values)
        # metric -> count of series created/removed under it; a cached
        # match set for the metric is valid only while this holds still.
        self._metric_gen: dict[str, int] = defaultdict(int)
        self._puts = 0

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def _store_for(self, key: SeriesKey) -> SeriesStore:
        """Store for a series, creating it (and indexing it) on first sight."""
        store = self._stores.get(key)
        if store is None:
            # Index first: the catalog's guard may reject the series,
            # and a rejected series must leave no trace anywhere.
            self.catalog.add(key)
            store = SeriesStore()
            self._stores[key] = store
            self._metric_gen[key.metric] += 1
        return store

    def put(
        self,
        metric: str,
        timestamp: int,
        value: float,
        tags: Mapping[str, str] | None = None,
    ) -> SeriesKey:
        """Write one data point, creating the series on first sight."""
        key = SeriesKey.make(metric, tags)
        self._store_for(key).append(timestamp, value)
        self._puts += 1
        return key

    def put_point(self, point: DataPoint) -> SeriesKey:
        self._store_for(point.key).append(point.timestamp, point.value)
        self._puts += 1
        return point.key

    def put_batch(self, batch: PointBatch) -> int:
        """Write a columnar batch: group by series key, one sorted merge
        per touched series, index maintenance once per new series.

        Equivalent to ``put`` called per row (same out-of-order tolerance
        and last-write-wins dedup); returns points written.
        """
        for key, ts, vals in batch.by_series():
            self.put_column(key, ts, vals)
        return len(batch)

    def put_column(self, key: SeriesKey, timestamps, values) -> int:
        """Bulk-write one series' parallel columns under a prebuilt key.

        The primitive under :meth:`put_batch`; shard routers call it
        directly so a regrouped batch lands without re-encoding.
        """
        n = self._store_for(key).extend_batch(timestamps, values)
        self._puts += n
        return n

    def put_series(
        self,
        metric: str,
        timestamps,
        values,
        tags: Mapping[str, str] | None = None,
    ) -> SeriesKey:
        """Bulk-write parallel timestamp/value columns into one series."""
        batch = PointBatch.for_series(metric, timestamps, values, tags)
        self.put_batch(batch)
        return batch.keys[0]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def series_count(self) -> int:
        return len(self._stores)

    @property
    def point_count(self) -> int:
        return sum(s.approximate_size for s in self._stores.values())

    def exact_point_count(self) -> int:
        """Point count with duplicates resolved (forces compaction)."""
        return sum(len(s) for s in self._stores.values())

    @property
    def write_count(self) -> int:
        """Total puts accepted (includes overwritten duplicates)."""
        return self._puts

    def metrics(self) -> list[str]:
        return self.catalog.metrics()

    def series_for_metric(self, metric: str) -> list[SeriesKey]:
        return self.catalog.series(metric)

    def tag_keys(self, metric: str) -> list[str]:
        """Tag keys appearing on any live series of ``metric``, sorted."""
        return self.catalog.tag_keys(metric)

    def tag_values(self, metric: str, tag_key: str) -> list[str]:
        """Distinct live values of one tag key under ``metric``, sorted."""
        return self.catalog.tag_values(metric, tag_key)

    def suggest_tag_values(self, metric: str, tag_key: str) -> list[str]:
        return self.catalog.tag_values(metric, tag_key)

    def cardinality(
        self, metric: str, tags: Mapping[str, str] | None = None
    ) -> int:
        """Number of live series matching ``(metric, tags)`` — O(result)."""
        return self.catalog.cardinality(metric, tags)

    def last(
        self, metric: str, tags: Mapping[str, str] | None = None
    ) -> dict[SeriesKey, tuple[int, float]]:
        """Latest point per matching series (dashboards' live tiles)."""
        out: dict[SeriesKey, tuple[int, float]] = {}
        for key in self._match(metric, tags or {}):
            latest = self._stores[key].latest()
            if latest is not None:
                out[key] = latest
        return out

    # ------------------------------------------------------------------
    # Write-generation tracking (serving-layer cache/refresh validity)
    # ------------------------------------------------------------------
    def series_generation(self, key: SeriesKey) -> int:
        """Mutation counter of one series; 0 for unknown keys.

        Monotonic per live series: any write or retention delete bumps
        it, so a cached query result is exactly as fresh as the
        generations of the series it touched.  (A removed-and-recreated
        series restarts at small values — :meth:`metric_generation`
        changes on both events, which is what cache validators check
        alongside this.)
        """
        store = self._stores.get(key)
        return 0 if store is None else store.generation

    def series_reshape_generation(self, key: SeriesKey) -> int:
        """Counter of non-append mutations of one series; 0 if unknown.

        While it holds still, the series only grew past its previous
        maximum timestamp — the invariant that makes incremental
        dashboard refresh (splice new buckets onto cached ones) exact.
        """
        store = self._stores.get(key)
        return 0 if store is None else store.reshape_generation

    def metric_generation(self, metric: str) -> int:
        """Counter of series created/removed under ``metric``.

        A cached match set (and therefore grouping) for any filter on
        this metric is valid only while this value holds still.
        """
        return self._metric_gen.get(metric, 0)

    def catalog_generation(self) -> int:
        """Counter of series created/removed anywhere in the store.

        Whole-catalog answers (``metrics()``) are valid while it holds
        still; metric-scoped answers use :meth:`metric_generation`.
        """
        return self.catalog.generation

    def series_latest(self, key: SeriesKey) -> tuple[int, float] | None:
        """Latest ``(timestamp, value)`` of one series, or None if unknown."""
        store = self._stores.get(key)
        return None if store is None else store.latest()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def run(self, query: Query) -> QueryResult:
        """Execute a query; see :class:`~repro.tsdb.query.Query`.

        A thin shim over the planner: a single query is a batch of one
        (``run_many``), so every entry point — one-shot, batched, wire —
        executes through the same plan and returns identical results.
        """
        return self.run_many([query])[0]

    def _run_unique_batch(
        self, queries: Sequence[Query], parallel: bool | None = None
    ) -> list[QueryResult]:
        """Execution hook behind ``run_many``: shared matching + scans.

        Each distinct (metric, tags) filter matches once and each
        touched series is scanned once over the covering range of every
        query that needs it; per-query sub-ranges come from the shared
        :class:`~repro.tsdb.plan.ScanPlan`.  ``parallel`` is accepted
        for interface symmetry with the sharded engine; a single
        in-process store has no fan-out to parallelize.
        """
        matches = planner.match_batch(self._match, queries)
        scans = planner.ScanPlan()
        for q, keys in zip(queries, matches):
            for key in keys:
                scans.need(key, q.start, q.end)
        scans.resolve(lambda key, lo, hi: self._stores[key].scan(lo, hi))
        stack_cache: dict = {}  # shared union+stack across the batch
        return [
            planner.execute_plan(
                q,
                keys,
                lambda key, q=q: scans.slice_for(key, q.start, q.end),
                stack_cache=stack_cache,
            )
            for q, keys in zip(queries, matches)
        ]

    def series_slice(
        self, key: SeriesKey, start: int | None = None, end: int | None = None
    ) -> SeriesSlice:
        """Raw sorted slice of one series; empty for unknown keys."""
        store = self._stores.get(key)
        if store is None:
            return SeriesSlice(np.empty(0, np.int64), np.empty(0, np.float64))
        return store.scan(start, end)

    def _match(self, metric: str, tags: Mapping[str, str]) -> list[SeriesKey]:
        """Series matching a filter, in canonical sorted order.

        Resolved entirely in the catalog's postings: exact values
        intersect, ``"a|b"`` alternations union, ``"*"`` uses has-key
        postings, and ``key.matches`` runs only over the narrowed pool
        as a final exactness check — O(result), not O(series-under-
        metric), and deterministic regardless of set iteration order.
        """
        return self.catalog.match(metric, tags)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def delete_before(self, cutoff: int, *, exclude_suffix: str | None = None) -> int:
        """Apply retention: drop all points older than ``cutoff``.

        Series whose metric ends with ``exclude_suffix`` are spared —
        retention rollups live in the same database and must outlive the
        raw data they summarize.
        """
        dropped = 0
        dead: list[SeriesKey] = []
        for key, store in self._stores.items():
            if exclude_suffix is not None and key.metric.endswith(exclude_suffix):
                continue
            dropped += store.delete_before(cutoff)
            if len(store) == 0:
                dead.append(key)
        for key in dead:
            self._unindex(key)
        return dropped

    def delete_series_before(self, key: SeriesKey, cutoff: int) -> int:
        """Retention for one series: drop its points older than ``cutoff``.

        The primitive under tag-scoped retention (the regional hub
        applies per-city horizons to ``city=<name>`` series only).
        Returns points dropped; unknown keys drop nothing.
        """
        store = self._stores.get(key)
        if store is None:
            return 0
        dropped = store.delete_before(cutoff)
        if len(store) == 0:
            self._unindex(key)
        return dropped

    def _unindex(self, key: SeriesKey) -> None:
        """Remove an emptied series and prune its index buckets.

        Under retention churn, dead series would otherwise leave their
        index entries behind forever.
        """
        del self._stores[key]
        self._metric_gen[key.metric] += 1
        self.catalog.discard(key)


def execute_query(
    query: Query,
    matched: list[SeriesKey],
    scan: Callable[[SeriesKey], SeriesSlice],
) -> QueryResult:
    """The group-by → aggregate → downsample plan over scanned slices.

    Kept as the stable name for the store-layout-independent execution
    plan; the implementation lives in :mod:`~repro.tsdb.plan`, factored
    into reusable stages so the batched executor and the per-shard
    pushdown run the very same code.  See
    :func:`~repro.tsdb.plan.execute_plan`.
    """
    return planner.execute_plan(query, matched, scan)
