"""Columnar point batches: the unit of flow through the ingest pipeline.

A :class:`PointBatch` holds many data points as parallel numpy arrays
(timestamps, values) plus a dictionary-encoded series-key column, so the
whole sensor→TSDB hot path can move measurements in bulk instead of one
Python call per point.  :class:`BatchBuilder` is the accumulation side:
decoders and writers add points (scalar or columnar) and periodically
``build()`` a batch for :meth:`~repro.tsdb.database.TSDB.put_batch`.

Series keys are interned once per distinct (metric, tags) combination,
so the per-point cost of name validation and tag sorting is paid once
per series per batch, not once per point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from .model import DataPoint, SeriesKey


def _as_timestamps(values) -> np.ndarray:
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"timestamps must be 1-D, got shape {arr.shape}")
    return arr


def _as_values(values) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"values must be 1-D, got shape {arr.shape}")
    return arr


def run_boundaries(column: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Start/end offsets of contiguous equal-value runs in a column.

    The workhorse of every grouping pass in the columnar pipeline
    (series grouping, downsample buckets, window closes): one
    ``np.diff`` finds all run edges at once.
    """
    n = column.shape[0]
    if n == 0:
        return np.empty(0, np.intp), np.empty(0, np.intp)
    cuts = np.nonzero(np.diff(column))[0] + 1
    starts = np.concatenate([[0], cuts])
    ends = np.concatenate([cuts, [n]])
    return starts, ends


@dataclass(frozen=True)
class PointBatch:
    """Many data points in columnar form.

    ``keys`` is the dictionary of distinct series keys; ``key_idx`` maps
    each row to its key.  Rows preserve write order: within one series,
    a later row overwrites an earlier row at the same timestamp
    (last-write-wins, matching the per-point API).
    """

    keys: tuple[SeriesKey, ...]
    key_idx: np.ndarray  # intp, parallel to timestamps
    timestamps: np.ndarray  # int64
    values: np.ndarray  # float64

    def __post_init__(self) -> None:
        object.__setattr__(self, "key_idx", np.asarray(self.key_idx, dtype=np.intp))
        object.__setattr__(self, "timestamps", _as_timestamps(self.timestamps))
        object.__setattr__(self, "values", _as_values(self.values))
        n = self.timestamps.shape[0]
        if self.values.shape[0] != n or self.key_idx.shape[0] != n:
            raise ValueError(
                "parallel columns disagree: "
                f"{self.key_idx.shape[0]} key rows, {n} timestamps, "
                f"{self.values.shape[0]} values"
            )
        if n and self.keys:
            lo, hi = self.key_idx.min(), self.key_idx.max()
            if lo < 0 or hi >= len(self.keys):
                raise ValueError(f"key_idx out of range [0, {len(self.keys)})")
        elif n:
            raise ValueError("non-empty batch with an empty key dictionary")

    def __len__(self) -> int:
        return int(self.timestamps.shape[0])

    def is_empty(self) -> bool:
        return len(self) == 0

    @classmethod
    def empty(cls) -> "PointBatch":
        return cls((), np.empty(0, np.intp), np.empty(0, np.int64), np.empty(0, np.float64))

    @classmethod
    def for_series(
        cls,
        metric: str,
        timestamps,
        values,
        tags: Mapping[str, str] | None = None,
    ) -> "PointBatch":
        """A batch where every point belongs to one series."""
        ts = _as_timestamps(timestamps)
        key = SeriesKey.make(metric, tags)
        return cls((key,), np.zeros(ts.shape[0], np.intp), ts, _as_values(values))

    @classmethod
    def from_points(cls, points: Iterable[DataPoint]) -> "PointBatch":
        builder = BatchBuilder()
        for p in points:
            builder.add_point(p)
        return builder.build()

    def by_series(self) -> Iterator[tuple[SeriesKey, np.ndarray, np.ndarray]]:
        """Yield ``(key, timestamps, values)`` per distinct series.

        Row order within each series is preserved (stable grouping), so
        last-write-wins semantics survive the regrouping.
        """
        if len(self) == 0:
            return
        if len(self.keys) == 1:
            yield self.keys[0], self.timestamps, self.values
            return
        order = np.argsort(self.key_idx, kind="stable")
        idx_sorted = self.key_idx[order]
        starts, ends = run_boundaries(idx_sorted)
        ts = self.timestamps[order]
        vals = self.values[order]
        for s, e in zip(starts, ends):
            yield self.keys[int(idx_sorted[s])], ts[s:e], vals[s:e]

    def rows(self, lo: int, hi: int) -> "PointBatch":
        """Row-range view ``[lo, hi)`` sharing the key dictionary.

        Row order (and therefore last-write-wins semantics within the
        kept range) is preserved; used by the regional fan-in layer to
        split oversized batches and trim drop-oldest overflow.
        """
        lo = max(0, int(lo))
        hi = min(len(self), int(hi))
        if lo >= hi:
            return PointBatch.empty()
        if lo == 0 and hi == len(self):
            return self
        return PointBatch(
            self.keys,
            self.key_idx[lo:hi],
            self.timestamps[lo:hi],
            self.values[lo:hi],
        )

    def iter_points(self) -> Iterator[DataPoint]:
        """Row-wise view (the per-point shim over the columnar data)."""
        for i in range(len(self)):
            yield DataPoint(
                self.keys[int(self.key_idx[i])],
                int(self.timestamps[i]),
                float(self.values[i]),
            )

    @classmethod
    def concat(cls, batches: Sequence["PointBatch"]) -> "PointBatch":
        """Concatenate batches, re-encoding the key dictionaries."""
        batches = [b for b in batches if len(b) > 0]
        if not batches:
            return cls.empty()
        if len(batches) == 1:
            return batches[0]
        keys: list[SeriesKey] = []
        index: dict[SeriesKey, int] = {}
        idx_parts = []
        for b in batches:
            remap = np.empty(len(b.keys), dtype=np.intp)
            for i, key in enumerate(b.keys):
                if key not in index:
                    index[key] = len(keys)
                    keys.append(key)
                remap[i] = index[key]
            idx_parts.append(remap[b.key_idx])
        return cls(
            tuple(keys),
            np.concatenate(idx_parts),
            np.concatenate([b.timestamps for b in batches]),
            np.concatenate([b.values for b in batches]),
        )


class BatchBuilder:
    """Accumulates points (scalar or columnar) into a :class:`PointBatch`.

    Scalar adds go to growable Python lists; columnar adds are kept as
    numpy chunks; ``build()`` concatenates everything once.
    """

    __slots__ = ("_keys", "_index", "_pend_idx", "_pend_ts", "_pend_vals", "_chunks")

    def __init__(self) -> None:
        self._keys: list[SeriesKey] = []
        self._index: dict = {}
        self._pend_idx: list[int] = []
        self._pend_ts: list[int] = []
        self._pend_vals: list[float] = []
        self._chunks: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []

    def __len__(self) -> int:
        return len(self._pend_ts) + sum(c[1].shape[0] for c in self._chunks)

    def _intern(self, metric: str, tags: Mapping[str, str] | None) -> int:
        cache_key = (metric, tuple(sorted((tags or {}).items())))
        idx = self._index.get(cache_key)
        if idx is None:
            idx = self._intern_key(SeriesKey.make(metric, tags))
            self._index[cache_key] = idx
        return idx

    def _intern_key(self, key: SeriesKey) -> int:
        idx = self._index.get(key)
        if idx is None:
            idx = len(self._keys)
            self._keys.append(key)
            self._index[key] = idx
        return idx

    def add(
        self,
        metric: str,
        timestamp: int,
        value: float,
        tags: Mapping[str, str] | None = None,
    ) -> None:
        """Add one point; key validation is amortized per distinct series."""
        self._pend_idx.append(self._intern(metric, tags))
        self._pend_ts.append(int(timestamp))
        self._pend_vals.append(float(value))

    def add_point(self, point: DataPoint) -> None:
        self._pend_idx.append(self._intern_key(point.key))
        self._pend_ts.append(point.timestamp)
        self._pend_vals.append(point.value)

    def add_series(
        self,
        metric: str,
        timestamps,
        values,
        tags: Mapping[str, str] | None = None,
    ) -> None:
        """Add a whole column of points for one series."""
        ts = _as_timestamps(timestamps)
        vals = _as_values(values)
        if ts.shape[0] != vals.shape[0]:
            raise ValueError(
                f"timestamps/values disagree: {ts.shape[0]} vs {vals.shape[0]}"
            )
        if ts.shape[0] == 0:
            return
        self._flush_pending()
        idx = np.full(ts.shape[0], self._intern(metric, tags), dtype=np.intp)
        self._chunks.append((idx, ts, vals))

    def _flush_pending(self) -> None:
        if not self._pend_ts:
            return
        self._chunks.append(
            (
                np.asarray(self._pend_idx, dtype=np.intp),
                np.asarray(self._pend_ts, dtype=np.int64),
                np.asarray(self._pend_vals, dtype=np.float64),
            )
        )
        self._pend_idx = []
        self._pend_ts = []
        self._pend_vals = []

    def build(self, *, clear: bool = True) -> PointBatch:
        """Assemble the accumulated points; optionally reset the builder."""
        self._flush_pending()
        if not self._chunks:
            return PointBatch.empty()
        batch = PointBatch(
            tuple(self._keys),
            np.concatenate([c[0] for c in self._chunks]),
            np.concatenate([c[1] for c in self._chunks]),
            np.concatenate([c[2] for c in self._chunks]),
        )
        if clear:
            self._keys = []
            self._index = {}
            self._chunks = []
        return batch
