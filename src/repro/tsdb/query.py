"""Query specification and results.

A :class:`Query` mirrors the OpenTSDB HTTP query shape the paper's
Zeppelin dashboards issue: time range + metric + tag filters + cross-series
aggregator + optional downsample + optional rate, with optional group-by
tag keys producing one output series per distinct tag value combination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from . import aggregators
from .downsample import Downsample, InvalidDownsampleSpec
from .model import SeriesKey
from .series import SeriesSlice


class QueryError(ValueError):
    """Malformed query specification."""


@dataclass(frozen=True)
class Query:
    """Declarative query against the TSDB.

    Parameters
    ----------
    metric:
        Metric name to read.
    start, end:
        Inclusive epoch-second range.
    tags:
        Tag filters; values support ``"*"`` and ``"a|b"`` alternation.
    aggregator:
        How to combine multiple matched series at each instant.
    downsample:
        Optional spec string like ``"5m-avg"`` or a parsed
        :class:`Downsample`.
    rate:
        Emit the per-second first derivative instead of raw values
        (used for counter metrics such as cumulative traffic counts).
    group_by:
        Tag keys whose distinct value combinations each produce their
        own output series instead of being merged together.
    """

    metric: str
    start: int
    end: int
    tags: Mapping[str, str] = field(default_factory=dict)
    aggregator: str = "avg"
    downsample: str | Downsample | None = None
    rate: bool = False
    group_by: Sequence[str] = ()

    def __post_init__(self) -> None:
        # Fail fast: a malformed query should die where it was written,
        # not deep inside plan execution (or worse, inside a batch that
        # interleaves it with eleven healthy dashboard panels).
        if not isinstance(self.metric, str) or not self.metric:
            raise QueryError(f"metric must be a non-empty string: {self.metric!r}")
        if self.end < self.start:
            raise QueryError(f"end ({self.end}) precedes start ({self.start})")
        try:
            aggregators.get(self.aggregator)
        except aggregators.UnknownAggregator as exc:
            raise QueryError(str(exc)) from None
        if isinstance(self.downsample, str):
            try:
                Downsample.parse(self.downsample)
            except InvalidDownsampleSpec as exc:
                raise QueryError(str(exc)) from None

    def parsed_downsample(self) -> Downsample | None:
        if self.downsample is None:
            return None
        if isinstance(self.downsample, Downsample):
            return self.downsample
        return Downsample.parse(self.downsample)


@dataclass(frozen=True)
class ResultSeries:
    """One output series of a query."""

    metric: str
    group_tags: Mapping[str, str]
    slice: SeriesSlice
    source_series: tuple[SeriesKey, ...] = ()

    @property
    def timestamps(self) -> np.ndarray:
        return self.slice.timestamps

    @property
    def values(self) -> np.ndarray:
        return self.slice.values

    def __len__(self) -> int:
        return len(self.slice)

    def label(self) -> str:
        if not self.group_tags:
            return self.metric
        inner = ",".join(f"{k}={v}" for k, v in sorted(self.group_tags.items()))
        return f"{self.metric}{{{inner}}}"


@dataclass(frozen=True)
class QueryResult:
    """All series produced by one query, plus bookkeeping."""

    query: Query
    series: tuple[ResultSeries, ...]
    scanned_points: int

    def __len__(self) -> int:
        return len(self.series)

    def __iter__(self):
        return iter(self.series)

    def single(self) -> ResultSeries:
        """The only series of an ungrouped query; raises if ambiguous."""
        if len(self.series) != 1:
            raise QueryError(
                f"expected exactly one result series, got {len(self.series)}"
            )
        return self.series[0]

    def is_empty(self) -> bool:
        return all(len(s) == 0 for s in self.series)


def compute_rate(slice_: SeriesSlice, counter_reset_as_zero: bool = True) -> SeriesSlice:
    """Per-second first derivative of a sorted slice.

    Emits one point per consecutive pair, timestamped at the later point.
    Negative deltas (counter resets) become 0 when
    ``counter_reset_as_zero`` is set, mirroring OpenTSDB's counter
    handling; otherwise they pass through.
    """
    if len(slice_) < 2:
        return SeriesSlice(np.empty(0, np.int64), np.empty(0, np.float64))
    dt = np.diff(slice_.timestamps).astype(np.float64)
    dv = np.diff(slice_.values)
    valid = dt > 0
    rate = np.full(dv.shape, np.nan)
    rate[valid] = dv[valid] / dt[valid]
    if counter_reset_as_zero:
        rate = np.where(rate < 0, 0.0, rate)
    return SeriesSlice(slice_.timestamps[1:][valid], rate[valid])
