"""Downsampling: collapsing raw points into fixed-width time buckets.

A downsample spec is written OpenTSDB-style as ``"<width>-<agg>[-<fill>]"``,
e.g. ``"5m-avg"``, ``"1h-max-nan"``, ``"15m-avg-linear"``.  Buckets are
aligned to multiples of the width from the epoch; the bucket timestamp is
its *start*.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum

import numpy as np

from . import aggregators
from .batch import run_boundaries
from .series import SeriesSlice

_SPEC_RE = re.compile(r"^(\d+)(s|m|h|d)-([a-z0-9]+)(?:-([a-z]+))?$")
_UNIT_SECONDS = {"s": 1, "m": 60, "h": 3600, "d": 86400}

#: Gap-filling materializes every bucket in the range; cap it so a typo'd
#: query fails fast instead of exhausting memory (10M buckets ≈ 160 MB).
MAX_FILLED_BUCKETS = 10_000_000


class FillPolicy(Enum):
    """What to emit for buckets containing no raw points."""

    NONE = "none"  # omit the bucket entirely
    NAN = "nan"  # emit NaN
    ZERO = "zero"  # emit 0.0
    PREVIOUS = "previous"  # carry the last seen bucket value forward
    LINEAR = "linear"  # linearly interpolate between neighbours


class InvalidDownsampleSpec(ValueError):
    """Downsample spec string does not parse."""


@dataclass(frozen=True, slots=True)
class Downsample:
    """Parsed downsample: bucket width (s), aggregator name, fill policy."""

    width: int
    agg: str
    fill: FillPolicy = FillPolicy.NONE

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise InvalidDownsampleSpec(f"width must be positive: {self.width}")
        try:
            aggregators.get(self.agg)  # validate eagerly
        except aggregators.UnknownAggregator as exc:
            raise InvalidDownsampleSpec(str(exc)) from None

    @classmethod
    def parse(cls, spec: str) -> "Downsample":
        """Parse ``"5m-avg"`` / ``"1h-max-nan"`` style specs."""
        m = _SPEC_RE.match(spec.strip().lower())
        if not m:
            raise InvalidDownsampleSpec(
                f"bad downsample spec {spec!r}; expected e.g. '5m-avg' or '1h-max-nan'"
            )
        number, unit, agg, fill = m.groups()
        width = int(number) * _UNIT_SECONDS[unit]
        policy = FillPolicy(fill) if fill else FillPolicy.NONE
        return cls(width=width, agg=agg, fill=policy)

    def spec(self) -> str:
        base = f"{self.width}s-{self.agg}"
        if self.fill is not FillPolicy.NONE:
            base += f"-{self.fill.value}"
        return base


def apply(
    slice_: SeriesSlice,
    ds: Downsample,
    start: int | None = None,
    end: int | None = None,
) -> SeriesSlice:
    """Downsample a sorted slice.

    ``start``/``end`` bound the emitted bucket range; when given with a
    gap-filling policy, empty leading/trailing buckets are emitted too,
    which dashboards rely on for fixed-width windows.

    Bucket aggregation is vectorized via ``reduceat`` when the
    aggregator supports it; order statistics (median, percentiles) fall
    back to a per-bucket loop.
    """
    w = ds.width

    if len(slice_) == 0 and (start is None or end is None):
        return SeriesSlice(np.empty(0, np.int64), np.empty(0, np.float64))

    if ds.fill is FillPolicy.NONE:
        # No gap filling: only occupied buckets are emitted, so work is
        # proportional to the number of points, not the time span.
        return _sparse_buckets(slice_, w, ds.agg, start, end)

    lo = slice_.timestamps[0] if start is None else start
    hi = slice_.timestamps[-1] if end is None else end
    first_bucket = int(lo // w) * w
    last_bucket = int(hi // w) * w
    n_buckets = (last_bucket - first_bucket) // w + 1
    if n_buckets <= 0:
        return SeriesSlice(np.empty(0, np.int64), np.empty(0, np.float64))
    if n_buckets > MAX_FILLED_BUCKETS:
        raise InvalidDownsampleSpec(
            f"gap-filled downsample would materialize {n_buckets} buckets "
            f"(limit {MAX_FILLED_BUCKETS}); narrow the range or widen the "
            "bucket"
        )

    bucket_ts = first_bucket + w * np.arange(n_buckets, dtype=np.int64)
    bucket_vals = np.full(n_buckets, np.nan, dtype=np.float64)

    if len(slice_) > 0:
        idx = (slice_.timestamps - first_bucket) // w
        in_range = (idx >= 0) & (idx < n_buckets)
        idx = idx[in_range]
        vals = slice_.values[in_range]
        # Group contiguous runs of equal bucket index (timestamps sorted).
        if idx.size > 0:
            starts, _ = run_boundaries(idx)
            bucket_vals[idx[starts]] = _reduce_segments(ds.agg, vals, starts)

    empty = np.isnan(bucket_vals)
    if ds.fill is FillPolicy.ZERO:
        bucket_vals[empty] = 0.0
    elif ds.fill is FillPolicy.PREVIOUS:
        bucket_vals = _fill_previous(bucket_vals)
    elif ds.fill is FillPolicy.LINEAR:
        bucket_vals = _fill_linear(bucket_ts, bucket_vals)
    # FillPolicy.NAN leaves NaNs in place.
    return SeriesSlice(bucket_ts, bucket_vals)


def _reduce_segments(agg_name: str, vals: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Aggregate contiguous non-empty segments of ``vals``.

    Uses the vectorized reduceat form when the aggregator has one; order
    statistics fall back to a per-segment loop over numpy slices.
    """
    gagg = aggregators.grouped(agg_name)
    if gagg is not None:
        return gagg(vals, starts)
    agg = aggregators.get(agg_name)
    ends = np.concatenate([starts[1:], [vals.shape[0]]])
    return np.array([agg(vals[s:e]) for s, e in zip(starts, ends)])


def _sparse_buckets(
    slice_: SeriesSlice,
    w: int,
    agg_name: str,
    start: int | None,
    end: int | None,
) -> SeriesSlice:
    """Downsample emitting only buckets that contain points."""
    ts = slice_.timestamps
    vals = slice_.values
    if start is not None or end is not None:
        lo = ts[0] if start is None else start
        hi = ts[-1] if end is None else end
        mask = (ts >= int(lo // w) * w) & (ts <= hi)
        ts, vals = ts[mask], vals[mask]
    if ts.shape[0] == 0:
        return SeriesSlice(np.empty(0, np.int64), np.empty(0, np.float64))
    bucket_of = (ts // w) * w
    starts, _ = run_boundaries(bucket_of)
    out_ts = bucket_of[starts]
    out_vals = _reduce_segments(agg_name, vals, starts)
    keep = ~np.isnan(out_vals)
    return SeriesSlice(out_ts[keep].astype(np.int64), out_vals[keep])


def _fill_previous(vals: np.ndarray) -> np.ndarray:
    known = ~np.isnan(vals)
    # Forward-fill: index of the most recent known bucket at each slot.
    # Slots before the first known bucket point at slot 0, which is NaN
    # there by construction, so they stay NaN.
    idx = np.where(known, np.arange(vals.shape[0]), 0)
    np.maximum.accumulate(idx, out=idx)
    return vals[idx]


def _fill_linear(ts: np.ndarray, vals: np.ndarray) -> np.ndarray:
    out = vals.copy()
    known = ~np.isnan(vals)
    if known.sum() >= 2:
        out[~known] = np.interp(ts[~known], ts[known], vals[known])
        # np.interp extrapolates flat beyond the ends; mask those back to NaN
        lo, hi = ts[known][0], ts[known][-1]
        outside = (~known) & ((ts < lo) | (ts > hi))
        out[outside] = np.nan
    return out
