"""A from-scratch time-series database standing in for OpenTSDB.

Data model: points are ``(metric, timestamp, value, tags)``; a series is
one metric + tag combination.  Queries support tag filtering (exact,
``*``, ``a|b``), cross-series aggregation, group-by, rate, and
downsampling with gap-fill policies; the declarative :class:`Query`
surface (plus the fluent :func:`select` builder and :func:`expr`
arithmetic expression queries) executes through a batched planner
(:mod:`~repro.tsdb.plan`) with per-shard pushdown, and speaks a
versioned OpenTSDB-style JSON wire format (:mod:`~repro.tsdb.wire`).
Persistence is an append-only WAL
with snapshot compaction in two interchangeable formats — a
human-readable line protocol and binary columnar segments (the fast
path; see :mod:`~repro.tsdb.segments`) — and retention optionally rolls
old raw data up into coarser series.
"""

from . import aggregators
from .batch import BatchBuilder, PointBatch, run_boundaries
from .catalog import CardinalityLimitError, MergedCatalog, SeriesCatalog
from .database import TSDB, execute_query
from .downsample import Downsample, FillPolicy, InvalidDownsampleSpec
from .interface import TimeSeriesStore
from .model import (
    ALL_AIR_METRICS,
    ALL_WEATHER_METRICS,
    METRIC_BATTERY,
    METRIC_CO2,
    METRIC_HUMIDITY,
    METRIC_JAM_FACTOR,
    METRIC_NO2,
    METRIC_PM10,
    METRIC_PM25,
    METRIC_PRESSURE,
    METRIC_TEMPERATURE,
    METRIC_TRAFFIC_COUNT,
    DataPoint,
    InvalidName,
    SeriesKey,
    validate_name,
)
from .persistence import (
    DeleteBefore,
    DeleteSeriesBefore,
    LogCorruption,
    LogWriter,
    convert_log,
    detect_format,
    dumps,
    format_delete_before,
    format_delete_series_before,
    format_point,
    iter_batches,
    iter_entries,
    iter_log,
    load,
    parse_entry,
    parse_line,
    snapshot,
)
from .segments import (
    SegmentCorruption,
    SegmentStats,
    SegmentWriter,
    decode_block,
    decode_frame,
    frame_block,
    iter_segments,
    parse_series_key,
    segment_point_count,
    segment_stats,
)
from .tier import (
    ColdShardPager,
    CompactionPolicy,
    CompactionResult,
    Compactor,
    DurableStore,
    Tier,
    TierPolicy,
    TierReport,
    compact_dir,
    compact_log,
)
from .plan import (
    ExprQuery,
    ExprResult,
    QueryBuilder,
    expr,
    run_batch,
    select,
)
from .query import Query, QueryError, QueryResult, ResultSeries, compute_rate
from .retention import PerShardRetention, RetentionPolicy, RolledUp
from .wire import (
    WIRE_VERSION,
    CatalogRequest,
    RemoteQueryError,
    WireError,
    WireResult,
    WireSeries,
    encode_catalog_request,
    encode_error,
    handle_catalog_request,
    handle_request,
)
from .series import SeriesSlice, SeriesStore, merge_slices
from .sharded import ShardedTSDB, scatter_batch, shard_for_key

__all__ = [
    "ALL_AIR_METRICS",
    "ALL_WEATHER_METRICS",
    "BatchBuilder",
    "CardinalityLimitError",
    "CatalogRequest",
    "ColdShardPager",
    "CompactionPolicy",
    "CompactionResult",
    "Compactor",
    "DataPoint",
    "DeleteBefore",
    "DeleteSeriesBefore",
    "Downsample",
    "DurableStore",
    "ExprQuery",
    "ExprResult",
    "FillPolicy",
    "InvalidDownsampleSpec",
    "InvalidName",
    "LogCorruption",
    "LogWriter",
    "METRIC_BATTERY",
    "METRIC_CO2",
    "METRIC_HUMIDITY",
    "METRIC_JAM_FACTOR",
    "METRIC_NO2",
    "METRIC_PM10",
    "METRIC_PM25",
    "METRIC_PRESSURE",
    "METRIC_TEMPERATURE",
    "METRIC_TRAFFIC_COUNT",
    "MergedCatalog",
    "PerShardRetention",
    "PointBatch",
    "Query",
    "QueryBuilder",
    "RemoteQueryError",
    "QueryError",
    "QueryResult",
    "ResultSeries",
    "RetentionPolicy",
    "RolledUp",
    "SegmentCorruption",
    "SegmentStats",
    "SegmentWriter",
    "SeriesCatalog",
    "SeriesKey",
    "SeriesSlice",
    "SeriesStore",
    "ShardedTSDB",
    "TSDB",
    "Tier",
    "TierPolicy",
    "TierReport",
    "TimeSeriesStore",
    "WIRE_VERSION",
    "WireError",
    "WireResult",
    "WireSeries",
    "aggregators",
    "compact_dir",
    "compact_log",
    "compute_rate",
    "convert_log",
    "decode_block",
    "decode_frame",
    "detect_format",
    "dumps",
    "frame_block",
    "encode_catalog_request",
    "encode_error",
    "execute_query",
    "expr",
    "handle_catalog_request",
    "handle_request",
    "format_delete_before",
    "format_delete_series_before",
    "format_point",
    "iter_batches",
    "iter_entries",
    "iter_log",
    "iter_segments",
    "load",
    "merge_slices",
    "parse_entry",
    "parse_line",
    "parse_series_key",
    "run_batch",
    "run_boundaries",
    "scatter_batch",
    "select",
    "segment_point_count",
    "segment_stats",
    "shard_for_key",
    "snapshot",
    "validate_name",
]
