"""A from-scratch time-series database standing in for OpenTSDB.

Data model: points are ``(metric, timestamp, value, tags)``; a series is
one metric + tag combination.  Queries support tag filtering (exact,
``*``, ``a|b``), cross-series aggregation, group-by, rate, and
downsampling with gap-fill policies.  Persistence is an append-only line
protocol with snapshot compaction; retention optionally rolls old raw
data up into coarser series.
"""

from . import aggregators
from .batch import BatchBuilder, PointBatch, run_boundaries
from .database import TSDB
from .downsample import Downsample, FillPolicy, InvalidDownsampleSpec
from .model import (
    ALL_AIR_METRICS,
    ALL_WEATHER_METRICS,
    METRIC_BATTERY,
    METRIC_CO2,
    METRIC_HUMIDITY,
    METRIC_JAM_FACTOR,
    METRIC_NO2,
    METRIC_PM10,
    METRIC_PM25,
    METRIC_PRESSURE,
    METRIC_TEMPERATURE,
    METRIC_TRAFFIC_COUNT,
    DataPoint,
    InvalidName,
    SeriesKey,
    validate_name,
)
from .persistence import (
    LogCorruption,
    LogWriter,
    dumps,
    format_point,
    iter_log,
    load,
    parse_line,
    snapshot,
)
from .query import Query, QueryError, QueryResult, ResultSeries, compute_rate
from .retention import RetentionPolicy, RolledUp
from .series import SeriesSlice, SeriesStore, merge_slices

__all__ = [
    "ALL_AIR_METRICS",
    "ALL_WEATHER_METRICS",
    "BatchBuilder",
    "DataPoint",
    "Downsample",
    "FillPolicy",
    "InvalidDownsampleSpec",
    "InvalidName",
    "LogCorruption",
    "LogWriter",
    "METRIC_BATTERY",
    "METRIC_CO2",
    "METRIC_HUMIDITY",
    "METRIC_JAM_FACTOR",
    "METRIC_NO2",
    "METRIC_PM10",
    "METRIC_PM25",
    "METRIC_PRESSURE",
    "METRIC_TEMPERATURE",
    "METRIC_TRAFFIC_COUNT",
    "PointBatch",
    "Query",
    "QueryError",
    "QueryResult",
    "ResultSeries",
    "RetentionPolicy",
    "RolledUp",
    "SeriesKey",
    "SeriesSlice",
    "SeriesStore",
    "TSDB",
    "aggregators",
    "compute_rate",
    "dumps",
    "format_point",
    "iter_log",
    "load",
    "merge_slices",
    "parse_line",
    "run_boundaries",
    "snapshot",
    "validate_name",
]
