"""Data model of the time-series store.

The paper stores measurements in OpenTSDB; we reproduce its data model:
a *data point* is ``(metric, timestamp, value, tags)`` where tags are a
small string→string map (e.g. ``{"node": "ctt-07", "city": "trondheim"}``)
and a *series* is the unique combination of metric name and tag set.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Mapping

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._\-/]*$")


class InvalidName(ValueError):
    """Metric or tag name violates the allowed character set."""


def validate_name(name: str, what: str = "name") -> str:
    """Validate a metric/tag identifier (OpenTSDB-style character set)."""
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise InvalidName(f"invalid {what}: {name!r}")
    return name


@dataclass(frozen=True, slots=True)
class SeriesKey:
    """Canonical identity of one time series: metric + sorted tag pairs."""

    metric: str
    tags: tuple[tuple[str, str], ...]

    @classmethod
    def make(cls, metric: str, tags: Mapping[str, str] | None = None) -> "SeriesKey":
        validate_name(metric, "metric")
        items = []
        for k, v in sorted((tags or {}).items()):
            validate_name(k, "tag key")
            validate_name(str(v), "tag value")
            items.append((k, str(v)))
        return cls(metric=metric, tags=tuple(items))

    def tag_dict(self) -> dict[str, str]:
        return dict(self.tags)

    def tag(self, key: str, default: str | None = None) -> str | None:
        for k, v in self.tags:
            if k == key:
                return v
        return default

    def matches(self, tag_filters: Mapping[str, str]) -> bool:
        """True when every filter matches this series' tags.

        Filter values support OpenTSDB-flavoured syntax:

        - ``"*"`` — any value, but the tag key must be present;
        - ``"a|b|c"`` — value must be one of the alternatives;
        - plain string — exact match.
        """
        mine = self.tag_dict()
        for key, pattern in tag_filters.items():
            value = mine.get(key)
            if value is None:
                return False
            if pattern == "*":
                continue
            if "|" in pattern:
                if value not in pattern.split("|"):
                    return False
            elif value != pattern:
                return False
        return True

    def __str__(self) -> str:  # e.g. air.co2{city=trondheim,node=ctt-07}
        inner = ",".join(f"{k}={v}" for k, v in self.tags)
        return f"{self.metric}{{{inner}}}" if inner else self.metric


@dataclass(frozen=True, slots=True)
class DataPoint:
    """One observation: where/what (key), when (epoch s), and the value."""

    key: SeriesKey
    timestamp: int
    value: float

    @classmethod
    def make(
        cls,
        metric: str,
        timestamp: int,
        value: float,
        tags: Mapping[str, str] | None = None,
    ) -> "DataPoint":
        return cls(SeriesKey.make(metric, tags), int(timestamp), float(value))


#: Canonical CTT metric names used across the ecosystem.
METRIC_CO2 = "air.co2.ppm"
METRIC_NO2 = "air.no2.ugm3"
METRIC_PM10 = "air.pm10.ugm3"
METRIC_PM25 = "air.pm25.ugm3"
METRIC_TEMPERATURE = "weather.temperature.c"
METRIC_PRESSURE = "weather.pressure.hpa"
METRIC_HUMIDITY = "weather.humidity.pct"
METRIC_BATTERY = "node.battery.v"
METRIC_JAM_FACTOR = "traffic.jam_factor"
METRIC_TRAFFIC_COUNT = "traffic.count.vehicles"

ALL_AIR_METRICS = (METRIC_CO2, METRIC_NO2, METRIC_PM10, METRIC_PM25)
ALL_WEATHER_METRICS = (METRIC_TEMPERATURE, METRIC_PRESSURE, METRIC_HUMIDITY)
