"""Cold-shard paging: restore shards on first touch, not at startup.

``ShardedTSDB.restore_from_dir`` replays every shard file before the
process can answer anything — cold-start latency and RAM both track the
*whole* archive.  :class:`ColdShardPager` wraps the same snapshot
directory but replays a shard only the first time an operation actually
touches it:

- **keyed operations** (``series_slice``, ``put``/``put_batch``,
  ``delete_series_before``, generation reads) hash-route exactly like
  the store does, so they page in only the owning shard — an exact
  read of one series costs one shard's replay, not N;
- **global operations** (queries, ``metrics``, wildcard matching,
  snapshots) page in everything on first use — tag filters are subset
  matches, so no shard can be ruled out without its key set.

Replays run through the mmap zero-copy reader by default, so paging a
cold shard is a page-cache walk rather than a read-and-copy pass.
Once a shard is resident it is exactly the shard ``restore_from_dir``
would have built (including the routing validation), so a fully paged
pager is byte-identical to an eager restore — pinned in
``tests/test_tsdb_tier.py``.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Mapping

from ..batch import PointBatch
from ..model import DataPoint, SeriesKey
from ..persistence import load
from ..sharded import (
    ShardedTSDB,
    scan_snapshot_dir,
    shard_for_key,
    validate_shard_routing,
)

__all__ = ["ColdShardPager"]


class ColdShardPager:
    """A :class:`ShardedTSDB` whose shards replay lazily from disk.

    Satisfies the ``TimeSeriesStore`` protocol by delegation: anything
    not intercepted below pages in *all* remaining shards and then
    passes through, so semantics never diverge from the eager store —
    laziness only ever changes *when* a shard's file is read.
    """

    def __init__(self, directory: str | os.PathLike[str], *, mmap: bool = True) -> None:
        self._directory = Path(directory)
        num_shards, files = scan_snapshot_dir(self._directory)
        self._files = files
        self._mmap = mmap
        self._db = ShardedTSDB(num_shards)
        self._resident = [False] * num_shards
        self._lock = threading.Lock()

    # -- paging ----------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self._db.num_shards

    @property
    def resident_shards(self) -> tuple[int, ...]:
        """Indices of shards already paged in (stable snapshot)."""
        return tuple(i for i, r in enumerate(self._resident) if r)

    @property
    def resident_points(self) -> int:
        """Points held in RAM right now — the pager's footprint metric
        (deterministic, unlike RSS: unloaded shards contribute zero)."""
        with self._lock:
            return sum(
                sum(len(sl) for _, sl in self._db.shards[i].iter_series())
                for i, r in enumerate(self._resident)
                if r
            )

    def _page_in(self, index: int) -> None:
        with self._lock:
            if self._resident[index]:
                return
            shard = self._db.shards[index]
            load(self._files[index], into=shard, mmap=self._mmap)
            validate_shard_routing(shard, index, self._db.num_shards)
            self._resident[index] = True

    def _page_all(self) -> None:
        for i in range(self._db.num_shards):
            self._page_in(i)

    def shard_of(self, key: SeriesKey) -> int:
        return shard_for_key(key, self._db.num_shards)

    # -- keyed fast paths: page exactly the owning shard -----------------
    def series_slice(self, key: SeriesKey, start=None, end=None):
        self._page_in(self.shard_of(key))
        return self._db.series_slice(key, start, end)

    def series_generation(self, key: SeriesKey) -> int:
        self._page_in(self.shard_of(key))
        return self._db.series_generation(key)

    def put(
        self,
        metric: str,
        timestamp: int,
        value: float,
        tags: Mapping[str, str] | None = None,
    ) -> SeriesKey:
        # Page the owning shard *before* writing: replaying the snapshot
        # after a live write would resurrect snapshotted values over it
        # (replay is last-write-wins at equal timestamps).
        key = SeriesKey.make(metric, tags)
        self._page_in(self.shard_of(key))
        return self._db.put(metric, timestamp, value, tags)

    def put_point(self, point: DataPoint) -> SeriesKey:
        self._page_in(self.shard_of(point.key))
        return self._db.put_point(point)

    def put_batch(self, batch: PointBatch) -> int:
        for key in batch.keys:
            self._page_in(self.shard_of(key))
        return self._db.put_batch(batch)

    def delete_series_before(self, key: SeriesKey, cutoff: int) -> int:
        self._page_in(self.shard_of(key))
        return self._db.delete_series_before(key, cutoff)

    # -- everything else: correctness needs the full key set -------------
    def _match(self, metric: str, tags: Mapping[str, str]) -> list[SeriesKey]:
        # Wildcard/alternation filters are subset matches over the key
        # set — no shard can be ruled out, so matching pages everything.
        # Named explicitly because __getattr__ refuses private names.
        self._page_all()
        return self._db._match(metric, tags)

    def __getattr__(self, name: str):
        # Only reached for attributes not defined above.  Private/dunder
        # lookups never page (pickling, repr machinery, hasattr probes).
        if name.startswith("_"):
            raise AttributeError(name)
        self._page_all()
        return getattr(self._db, name)

    def __repr__(self) -> str:
        return (
            f"ColdShardPager({str(self._directory)!r}, "
            f"resident={len(self.resident_shards)}/{self._db.num_shards})"
        )
