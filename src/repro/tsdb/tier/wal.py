"""A write-through WAL tee with a compaction-safe pause protocol.

:class:`DurableStore` wraps any ``TimeSeriesStore`` and appends every
mutation to a segment/log WAL *before* committing it to the store —
durability precedes visibility, the same ordering the writers
themselves promise (a flushed block precedes the in-memory write).
Replaying the WAL rebuilds the store; compacting it (see
:mod:`.compact`) keeps that replay proportional to live data.

Compacting a *live* WAL needs the writer out of the way: the compactor
replaces the file under ``os.replace``, and an open append handle would
keep writing to the unlinked original.  :meth:`suspend_wal` is that
handshake — flush and close the writer, hand the path to the caller
(who compacts), and reopen in append mode on exit.  Writes arriving
during the window block on the same lock the tee holds, so no mutation
can slip between "closed" and "reopened" un-journaled.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping

from ..batch import PointBatch
from ..interface import StoreApi
from ..model import DataPoint, SeriesKey
from ..persistence import LogWriter, SegmentWriter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..interface import TimeSeriesStore

__all__ = ["DurableStore"]


class DurableStore(StoreApi):
    """Store wrapper journaling every mutation to a WAL file.

    Reads and introspection delegate untouched; each write appends its
    block/line first, then commits, under one lock so the WAL's order
    equals the store's commit order.  ``format`` picks the journal
    format ("binary" = the segment fast path).
    """

    def __init__(
        self,
        store: "TimeSeriesStore",
        path: str | os.PathLike[str],
        *,
        format: str = "binary",
    ) -> None:
        self._store = store
        self._path = Path(path)
        self._format = format
        self._lock = threading.RLock()
        self._writer = self._open_writer()

    def _open_writer(self) -> SegmentWriter | LogWriter:
        cls = SegmentWriter if self._format == "binary" else LogWriter
        return cls(self._path, append=True)

    @property
    def wal_path(self) -> Path:
        return self._path

    @property
    def wrapped(self) -> "TimeSeriesStore":
        """The underlying store (escape hatch, mirrors CachingStore)."""
        return self._store

    def __getattr__(self, name: str):
        # Only called for attributes not found on this class: the whole
        # read/introspection surface passes straight through.
        return getattr(self._store, name)

    # -- journaled writes ------------------------------------------------
    def put(
        self,
        metric: str,
        timestamp: int,
        value: float,
        tags: Mapping[str, str] | None = None,
    ) -> SeriesKey:
        key = SeriesKey.make(metric, tags)
        with self._lock:
            self._writer.write(DataPoint(key, int(timestamp), float(value)))
            self._writer.flush()
            return self._store.put(metric, timestamp, value, tags)

    def put_point(self, point: DataPoint) -> SeriesKey:
        with self._lock:
            self._writer.write(point)
            self._writer.flush()
            return self._store.put_point(point)

    def put_batch(self, batch: PointBatch) -> int:
        with self._lock:
            self._writer.write_batch(batch)
            return self._store.put_batch(batch)

    def put_series(
        self,
        metric: str,
        timestamps,
        values,
        tags: Mapping[str, str] | None = None,
    ) -> SeriesKey:
        batch = PointBatch.for_series(metric, timestamps, values, tags)
        self.put_batch(batch)
        return batch.keys[0]

    def put_many(self, points: Iterable[DataPoint]) -> int:
        # StoreApi.put_many chunks through self.put_batch, which journals.
        return StoreApi.put_many(self, points)

    def delete_before(
        self, cutoff: int, *, exclude_suffix: str | None = None
    ) -> int:
        with self._lock:
            self._writer.delete_before(cutoff, exclude_suffix=exclude_suffix)
            return self._store.delete_before(cutoff, exclude_suffix=exclude_suffix)

    def delete_series_before(self, key: SeriesKey, cutoff: int) -> int:
        with self._lock:
            self._writer.delete_series_before(key, cutoff)
            return self._store.delete_series_before(key, cutoff)

    # -- compaction handshake --------------------------------------------
    @contextmanager
    def suspend_wal(self) -> Iterator[Path]:
        """Close the writer, yield the WAL path, reopen on exit.

        The critical section for in-place WAL maintenance (compaction,
        conversion): concurrent writers block until the journal is back
        in append mode, so every mutation is journaled exactly once.
        """
        with self._lock:
            self._writer.close()
            try:
                yield self._path
            finally:
                self._writer = self._open_writer()

    def close(self) -> None:
        with self._lock:
            self._writer.close()
