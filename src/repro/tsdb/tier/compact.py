"""Segment compaction: fold a WAL's write history down to its live data.

A WAL's replay cost tracks *write history* — every small append, every
overwritten duplicate, every point a retention marker later deleted is
read, CRC-checked, and decoded again on restart.  Compaction rewrites
the log as what a snapshot of its replayed state would be: few large
sorted batch blocks, duplicates collapsed, markers *resolved* (their
deletions applied and the markers themselves gone), so replay cost
tracks live data instead.

The rewrite generalizes the lenient-read/clean-write pass of
:func:`~repro.tsdb.persistence.convert_log`: replay the log into a
fresh store (leniently by default — a torn tail makes a WAL *more*
worth compacting, not un-compactable), snapshot that store in the same
format, and atomically swap the snapshot in.

Crash safety is the snapshot ``.tmp`` protocol: the replacement is
written to ``<name>.compact.tmp``, flushed and fsynced, then
``os.replace``d over the original — a crash at any point leaves either
the intact original (plus a stale ``.tmp`` the next run removes) or the
intact replacement, never a half-written log.  Equivalence is the
subsystem's contract, pinned by hypothesis in
``tests/test_tsdb_tier.py``: restoring the compacted file is
byte-identical to replaying the original.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

from ..database import TSDB
from ..persistence import detect_format, load, snapshot
from ..segments import SegmentStats, segment_stats

__all__ = [
    "CompactionPolicy",
    "CompactionResult",
    "Compactor",
    "compact_log",
    "compact_dir",
]

#: Suffix of the crash-safe staging file next to the log being compacted.
COMPACT_TMP_SUFFIX = ".compact.tmp"


@dataclass(frozen=True)
class CompactionPolicy:
    """When is a WAL fragmented enough to be worth rewriting?

    A log triggers when it carries more than ``max_blocks`` blocks or
    more than ``max_marker_blocks`` unresolved retention markers —
    block count measures append fragmentation (replay overhead per
    point), markers measure dead data a rewrite would drop.  Logs
    smaller than ``min_bytes`` never trigger: rewriting a tiny file
    buys nothing.
    """

    max_blocks: int = 256
    max_marker_blocks: int = 16
    min_bytes: int = 0

    def __post_init__(self) -> None:
        if self.max_blocks < 1:
            raise ValueError("max_blocks must be positive")
        if self.max_marker_blocks < 1:
            raise ValueError("max_marker_blocks must be positive")
        if self.min_bytes < 0:
            raise ValueError("min_bytes must be non-negative")

    def should_compact(self, stats: SegmentStats) -> bool:
        if stats.size_bytes < self.min_bytes:
            return False
        return (
            stats.blocks > self.max_blocks
            or stats.marker_blocks > self.max_marker_blocks
        )


@dataclass(frozen=True)
class CompactionResult:
    """Before/after accounting of one compaction pass."""

    path: Path
    bytes_before: int
    bytes_after: int
    blocks_before: int
    blocks_after: int
    markers_resolved: int
    points: int

    @property
    def bytes_ratio(self) -> float:
        """Size reduction factor (>1 = the rewrite shrank the log)."""
        if self.bytes_after == 0:
            return float("inf") if self.bytes_before else 1.0
        return self.bytes_before / self.bytes_after


def _stage_path(path: Path) -> Path:
    return path.with_name(path.name + COMPACT_TMP_SUFFIX)


def _fsync_path(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: Path) -> None:
    # The rename itself must survive a crash, not just the file bytes.
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - directories not fsyncable here
        pass
    finally:
        os.close(fd)


def compact_log(
    path: str | os.PathLike[str],
    *,
    format: str = "auto",
    strict: bool = False,
    mmap: bool = True,
) -> CompactionResult:
    """Rewrite one WAL/snapshot file in place as its compacted form.

    The output is exactly what :func:`~repro.tsdb.persistence.snapshot`
    of the replayed store produces — sorted canonical series order,
    deduplicated, retention markers applied and dropped — in the same
    format as the source unless ``format`` forces one (compacting a
    text log to ``format="binary"`` doubles as the upgrade migration).
    Lenient by default: a damaged block or torn tail compacts to the
    recoverable prefix, same as restart recovery would read.  Binary
    sources replay via mmap (``mmap=False`` opts out, e.g. for files on
    filesystems that cannot map).

    Crash-safe: stages into ``<name>.compact.tmp`` (fsynced), then
    atomically ``os.replace``s it over the source; stale staging files
    from an earlier crash are removed first, never trusted.
    """
    path = Path(path)
    src_format = detect_format(path)
    out_format = src_format if format == "auto" else format
    before = segment_stats(path, strict=False) if src_format == "binary" else None
    size_before = path.stat().st_size
    db = TSDB()
    load(path, strict=strict, into=db, mmap=mmap and src_format == "binary")

    stage = _stage_path(path)
    stage.unlink(missing_ok=True)  # a crashed predecessor's leftovers
    try:
        points = snapshot(db, stage, format=out_format)
        _fsync_path(stage)
        os.replace(stage, path)
    except BaseException:
        stage.unlink(missing_ok=True)
        raise
    _fsync_dir(path.parent)

    after = segment_stats(path, strict=True) if out_format == "binary" else None
    return CompactionResult(
        path=path,
        bytes_before=size_before,
        bytes_after=path.stat().st_size,
        blocks_before=before.blocks if before is not None else 0,
        blocks_after=after.blocks if after is not None else 0,
        markers_resolved=before.marker_blocks if before is not None else 0,
        points=points,
    )


@dataclass
class Compactor:
    """Trigger-policy wrapper around :func:`compact_log` for one WAL.

    The background-maintenance unit: poll :meth:`maybe_compact` (cheap —
    a framing walk, no column decodes) from a timer loop and the WAL
    gets rewritten only when the policy says it is worth it.  Only
    meaningful for binary logs; text logs report no stats and never
    trigger (compact them explicitly via :func:`compact_log`).
    """

    path: Path
    policy: CompactionPolicy = field(default_factory=CompactionPolicy)
    strict: bool = False
    mmap: bool = True
    runs: int = field(default=0, init=False)
    last_result: CompactionResult | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        self.path = Path(self.path)

    def stats(self) -> SegmentStats | None:
        """Current fragmentation stats; ``None`` when the file is
        missing or not a binary segment (nothing to walk)."""
        if not self.path.exists() or detect_format(self.path) != "binary":
            return None
        return segment_stats(self.path, strict=False)

    def should_compact(self) -> bool:
        stats = self.stats()
        return stats is not None and self.policy.should_compact(stats)

    def compact(self) -> CompactionResult:
        """Compact unconditionally (same-format rewrite)."""
        result = compact_log(self.path, strict=self.strict, mmap=self.mmap)
        self.runs += 1
        self.last_result = result
        return result

    def maybe_compact(self) -> CompactionResult | None:
        """Compact only if the trigger policy fires; ``None`` otherwise."""
        if not self.should_compact():
            return None
        return self.compact()


def compact_dir(
    directory: str | os.PathLike[str],
    *,
    policy: CompactionPolicy | None = None,
    strict: bool = False,
    mmap: bool = True,
) -> dict[int, CompactionResult]:
    """Compact every shard file of a ``snapshot_to_dir`` layout.

    With a ``policy``, each shard is checked independently and only
    fragmented ones rewrite (the background-maintenance mode); without
    one, every shard compacts.  Returns per-shard results keyed by
    shard index (policy-skipped shards absent).
    """
    from ..sharded import scan_snapshot_dir

    _, files = scan_snapshot_dir(directory)
    out: dict[int, CompactionResult] = {}
    for index, path in sorted(files.items()):
        if policy is not None:
            if detect_format(path) != "binary":
                continue
            if not policy.should_compact(segment_stats(path, strict=False)):
                continue
        out[index] = compact_log(path, strict=strict, mmap=mmap)
    return out
