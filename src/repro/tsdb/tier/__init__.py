"""Tiered storage: compaction, cold-shard paging, age-based rollup tiers.

The three mechanisms that make history *cheap to keep* (ROADMAP item 3),
layered on the CRC-framed segment format:

- :mod:`.compact` — rewrite a fragmented WAL as its live data
  (sorted, deduplicated, retention markers resolved), atomically and
  crash-safely, with a trigger policy for background maintenance;
- :mod:`.pager` — replay cold shards from a snapshot directory on
  first touch via the mmap zero-copy reader, instead of eagerly at
  startup;
- :mod:`.rollup` — cascade aging data down through resolutions
  (raw → 5m → 1h), journaled through both durability formats so the
  tiered state survives restart and replicates;
- :mod:`.wal` — the write-through journal wrapper that gives a live
  store a compactable WAL.
"""

from .compact import (
    CompactionPolicy,
    CompactionResult,
    Compactor,
    compact_dir,
    compact_log,
)
from .pager import ColdShardPager
from .rollup import Tier, TierPolicy, TierReport
from .wal import DurableStore

__all__ = [
    "ColdShardPager",
    "CompactionPolicy",
    "CompactionResult",
    "Compactor",
    "DurableStore",
    "Tier",
    "TierPolicy",
    "TierReport",
    "compact_dir",
    "compact_log",
]
