"""Age-based resolution tiers: raw → 5m → 1h as data gets old.

A single :class:`~repro.tsdb.retention.RetentionPolicy` rolls raw data
into *one* coarser metric before deleting it.  A :class:`TierPolicy`
chains that idea: each :class:`Tier` says how long data may stay at the
previous resolution before it is downsampled into this tier's series
and the finer points deleted, e.g.::

    TierPolicy.parse("1d:5m-avg:.5m", "30d:1h-avg:.1h")

keeps raw points for a day, five-minute averages (``<metric>.5m``) for
a month, and hour averages (``<metric>.1h``) forever.

Mechanics reuse the retention machinery wholesale: downsampling via
:func:`~repro.tsdb.downsample.apply`, per-series deletion through
``delete_series_before`` (shard-safe, scope-safe), WAL journaling with
the same put-tee + marker protocol as
:meth:`RetentionPolicy.enforce_scoped` — so a replayed log reproduces
the tiered state in either durability format, and a store wrapped in
:class:`~repro.replication.ReplicatedStore` replicates tiering to its
standby for free (the puts and scoped deletes *are* the replication
stream's vocabulary).

Two deliberate choices:

- **Bucket-aligned cutoffs.**  Each tier's cutoff rounds *down* to its
  bucket width, so only complete buckets ever roll.  Rolling a partial
  bucket and deleting its raw points would make the next pass recompute
  that bucket from the surviving half — silently wrong averages.
- **Fine before coarse.**  Stages run raw→5m first, then 5m→1h, so a
  freshly produced 5m point that is already older than the 1h horizon
  cascades all the way down in a single enforcement pass.

Late-arriving raw points older than their tier cutoff share the
pre-existing rollup limitation: they land in raw, and the next pass
rolls them into a bucket that may already exist — last-write-wins on
the bucket timestamp replaces the earlier average with one computed
only from the stragglers.  Upstream flushing (the regional hub drains
queues before enforcing) keeps this from occurring in practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from ..downsample import Downsample, apply as apply_downsample
from ..model import SeriesKey
from ..retention import RolledUp, _WalPutTee

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..interface import TimeSeriesStore
    from ..persistence import LogWriter, SegmentWriter

__all__ = ["Tier", "TierPolicy", "TierReport"]


@dataclass(frozen=True)
class Tier:
    """One resolution stage of a :class:`TierPolicy`.

    ``max_age`` is how long points may stay at the *previous* (finer)
    resolution; once older, they aggregate by ``downsample`` into
    ``<base metric><suffix>`` series carrying the same tags, and the
    finer points are deleted.
    """

    max_age: int
    downsample: Downsample
    suffix: str

    def __post_init__(self) -> None:
        if self.max_age <= 0:
            raise ValueError("max_age must be positive")
        if not self.suffix.startswith("."):
            raise ValueError(f"tier suffix must start with '.': {self.suffix!r}")

    @classmethod
    def parse(cls, spec: str) -> "Tier":
        """Parse ``"<max_age_s>:<downsample>:<suffix>"``, e.g.
        ``"86400:300s-avg:.5m"`` (age also accepts ``1d``/``2h`` forms)."""
        parts = spec.split(":")
        if len(parts) != 3:
            raise ValueError(
                f"bad tier spec {spec!r}; expected '<age>:<downsample>:<suffix>'"
            )
        age_s, ds_s, suffix = parts
        return cls(_parse_age(age_s), Downsample.parse(ds_s), suffix)


_AGE_UNITS = {"s": 1, "m": 60, "h": 3600, "d": 86400}


def _parse_age(text: str) -> int:
    text = text.strip().lower()
    if text and text[-1] in _AGE_UNITS:
        return int(text[:-1]) * _AGE_UNITS[text[-1]]
    return int(text)


@dataclass(frozen=True)
class TierReport:
    """Outcome of one :meth:`TierPolicy.enforce` pass."""

    stages: tuple[RolledUp, ...]

    @property
    def rolled_points(self) -> int:
        return sum(s.rolled_points for s in self.stages)

    @property
    def dropped_points(self) -> int:
        return sum(s.dropped_points for s in self.stages)


@dataclass(frozen=True)
class TierPolicy:
    """An ordered cascade of :class:`Tier` stages, finest first."""

    tiers: tuple[Tier, ...]

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ValueError("a TierPolicy needs at least one tier")
        ages = [t.max_age for t in self.tiers]
        if ages != sorted(ages) or len(set(ages)) != len(ages):
            raise ValueError(f"tier max_ages must strictly increase: {ages}")
        suffixes = [t.suffix for t in self.tiers]
        if len(set(suffixes)) != len(suffixes):
            raise ValueError(f"tier suffixes must be distinct: {suffixes}")

    @classmethod
    def parse(cls, *specs: str) -> "TierPolicy":
        return cls(tuple(Tier.parse(s) for s in specs))

    def _tier_of(self, metric: str) -> int:
        """Index of the tier whose suffix ``metric`` carries, or -1 for
        raw.  Longest-match so ``.5m`` never claims a ``.15m`` metric."""
        best = -1
        best_len = 0
        for i, tier in enumerate(self.tiers):
            if metric.endswith(tier.suffix) and len(tier.suffix) > best_len:
                best = i
                best_len = len(tier.suffix)
        return best

    def enforce(
        self,
        db: "TimeSeriesStore",
        now: int,
        *,
        tags: Mapping[str, str] | None = None,
        wal: "LogWriter | SegmentWriter | None" = None,
    ) -> TierReport:
        """Run every stage once, finest tier first.

        ``tags`` scopes the pass to matching series (the regional hub's
        per-city horizons); ``wal`` journals every rollup put as a point
        write and every deletion as a ``!delete_series_before`` marker,
        so replaying the log reproduces the tiered state exactly.
        """
        target_store: "TimeSeriesStore" = db if wal is None else _WalPutTee(db, wal)  # type: ignore[assignment]
        stages: list[RolledUp] = []
        for stage_idx, tier in enumerate(self.tiers):
            source_tier = stage_idx - 1  # -1 = raw
            # Complete buckets only: a bucket straddling the cutoff
            # stays at the finer resolution until it can never grow.
            cutoff = ((now - tier.max_age) // tier.downsample.width) * (
                tier.downsample.width
            )
            rolled = 0
            dropped = 0
            for metric in list(db.metrics()):
                if self._tier_of(metric) != source_tier:
                    continue
                base = (
                    metric
                    if source_tier < 0
                    else metric[: -len(self.tiers[source_tier].suffix)]
                )
                target_metric = base + tier.suffix
                for key in list(db.series_for_metric(metric)):
                    if tags is not None and not key.matches(tags):
                        continue
                    old = db.series_slice(key, end=cutoff - 1)
                    if len(old) == 0:
                        continue
                    buckets = apply_downsample(old, tier.downsample)
                    target = SeriesKey.make(target_metric, key.tag_dict())
                    for ts, val in zip(
                        buckets.timestamps.tolist(), buckets.values.tolist()
                    ):
                        target_store.put(
                            target.metric, int(ts), float(val), target.tag_dict()
                        )
                        rolled += 1
                    dropped_here = db.delete_series_before(key, cutoff)
                    if dropped_here and wal is not None:
                        wal.delete_series_before(key, cutoff)
                    dropped += dropped_here
            stages.append(
                RolledUp(dropped_points=dropped, rolled_points=rolled, cutoff=cutoff)
            )
        return TierReport(tuple(stages))
