"""The store interface: what it means to "be a TSDB" in this codebase.

PR 1 made :class:`~repro.tsdb.batch.PointBatch` the unit of flow through
the ingest pipeline; this module makes the *store* pluggable.  Everything
downstream of the dataport — persistence, retention, dashboards,
analytics — talks to a :class:`TimeSeriesStore`, so the single-process
:class:`~repro.tsdb.database.TSDB` and the hash-partitioned
:class:`~repro.tsdb.sharded.ShardedTSDB` are interchangeable.

:class:`StoreApi` is the concrete half: convenience methods every store
gets for free, implemented purely in terms of the protocol surface.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Protocol, Sequence, runtime_checkable

from .batch import BatchBuilder, PointBatch
from .downsample import Downsample
from .model import DataPoint, SeriesKey
from .plan import ExprQuery, ExprResult, QueryBuilder, run_batch, select as _select
from .query import Query, QueryResult, ResultSeries
from .series import SeriesSlice


@runtime_checkable
class TimeSeriesStore(Protocol):
    """Structural interface shared by :class:`TSDB` and :class:`ShardedTSDB`.

    The dataport's :class:`~repro.dataport.app.BatchingTsdbWriter`,
    persistence (``snapshot``/``dumps``/``load(into=...)``), retention
    policies, dashboards, and analytics entry points all accept any
    object satisfying this protocol.
    """

    # -- writes ----------------------------------------------------------
    def put(
        self,
        metric: str,
        timestamp: int,
        value: float,
        tags: Mapping[str, str] | None = None,
    ) -> SeriesKey: ...

    def put_point(self, point: DataPoint) -> SeriesKey: ...

    def put_batch(self, batch: PointBatch) -> int: ...

    def put_series(
        self,
        metric: str,
        timestamps,
        values,
        tags: Mapping[str, str] | None = None,
    ) -> SeriesKey: ...

    def put_many(self, points: Iterable[DataPoint]) -> int: ...

    # -- introspection ---------------------------------------------------
    @property
    def series_count(self) -> int: ...

    @property
    def point_count(self) -> int: ...

    def exact_point_count(self) -> int: ...

    def metrics(self) -> list[str]: ...

    def series_for_metric(self, metric: str) -> list[SeriesKey]: ...

    def suggest_metrics(self, prefix: str = "") -> list[str]: ...

    def suggest_tag_values(self, metric: str, tag_key: str) -> list[str]: ...

    # -- catalog metadata (the /api/suggest surface; see tsdb.catalog) ---
    def tag_keys(self, metric: str) -> list[str]: ...

    def tag_values(self, metric: str, tag_key: str) -> list[str]: ...

    def cardinality(
        self, metric: str, tags: Mapping[str, str] | None = None
    ) -> int: ...

    def catalog_generation(self) -> int: ...

    def last(
        self, metric: str, tags: Mapping[str, str] | None = None
    ) -> dict[SeriesKey, tuple[int, float]]: ...

    # -- write-generation tracking (serving-layer cache validity) --------
    def series_generation(self, key: SeriesKey) -> int: ...

    def series_reshape_generation(self, key: SeriesKey) -> int: ...

    def metric_generation(self, metric: str) -> int: ...

    def series_latest(self, key: SeriesKey) -> tuple[int, float] | None: ...

    # -- reads -----------------------------------------------------------
    def run(self, query: Query) -> QueryResult: ...

    def run_many(
        self,
        queries: Sequence[Query | QueryBuilder | ExprQuery],
        *,
        parallel: bool | None = None,
    ) -> list[QueryResult | ExprResult]: ...

    def select(self, metric: str) -> QueryBuilder: ...

    def series_slice(
        self, key: SeriesKey, start: int | None = None, end: int | None = None
    ) -> SeriesSlice: ...

    def iter_series(
        self, start: int | None = None, end: int | None = None
    ) -> Iterator[tuple[SeriesKey, SeriesSlice]]: ...

    def iter_points(self) -> Iterator[DataPoint]: ...

    # -- maintenance -----------------------------------------------------
    def delete_before(
        self, cutoff: int, *, exclude_suffix: str | None = None
    ) -> int: ...

    def delete_series_before(self, key: SeriesKey, cutoff: int) -> int: ...


class StoreApi:
    """Store-agnostic convenience surface, mixed into every store.

    Implemented entirely against :class:`TimeSeriesStore` methods, so a
    new store implementation only provides the primitive operations.
    """

    def suggest_metrics(self, prefix: str = "") -> list[str]:
        return [m for m in self.metrics() if m.startswith(prefix)]

    #: put_many flushes its builder at this size so streaming a huge
    #: iterable stays bounded-memory while keeping batch overhead tiny.
    _PUT_MANY_CHUNK = 65_536

    def put_many(self, points: Iterable[DataPoint]) -> int:
        builder = BatchBuilder()
        n = 0
        for p in points:
            builder.add_point(p)
            if len(builder) >= self._PUT_MANY_CHUNK:
                n += self.put_batch(builder.build())
        return n + self.put_batch(builder.build())

    def run_many(
        self,
        queries: Sequence[Query | QueryBuilder | ExprQuery],
        *,
        parallel: bool | None = None,
    ) -> list[QueryResult | ExprResult]:
        """Plan and execute a batch of queries together.

        The dashboard entry point: all queries plan as one batch —
        duplicate queries execute once, distinct queries share series
        matching and physical scans, and on the sharded engine the
        per-shard fan-out runs on a thread pool with group-by /
        aggregate / downsample pushed down where that is bit-exact.
        Accepts :class:`Query`, fluent builders, and :func:`expr`
        expression queries; results align with the input order.
        """
        return run_batch(self, queries, parallel=parallel)

    def select(self, metric: str) -> QueryBuilder:
        """Start a fluent query builder bound to this store:
        ``store.select("air.co2.ppm").where(node="*").range(t0, t1).run()``.
        """
        return _select(metric, store=self)

    def query(
        self,
        metric: str,
        start: int,
        end: int,
        *,
        tags: Mapping[str, str] | None = None,
        aggregator: str = "avg",
        downsample: str | Downsample | None = None,
        rate: bool = False,
        group_by: Sequence[str] = (),
    ) -> QueryResult:
        """Build and run a :class:`Query` in one call (planner shim)."""
        return self.run(
            Query(
                metric,
                start,
                end,
                tags=dict(tags or {}),
                aggregator=aggregator,
                downsample=downsample,
                rate=rate,
                group_by=tuple(group_by),
            )
        )

    def query_range(
        self,
        metric: str,
        start: int,
        end: int,
        *,
        tags: Mapping[str, str] | None = None,
        aggregator: str = "avg",
        downsample: str | Downsample | None = None,
        rate: bool = False,
    ) -> ResultSeries:
        """Ungrouped range query returning the single merged series."""
        return self.query(
            metric,
            start,
            end,
            tags=tags,
            aggregator=aggregator,
            downsample=downsample,
            rate=rate,
        ).single()

    def iter_series(
        self, start: int | None = None, end: int | None = None
    ) -> Iterator[tuple[SeriesKey, SeriesSlice]]:
        """All series in canonical order (metric, then key string).

        The iteration order is a function of the *data*, not of the
        store layout, so snapshots of a sharded store are byte-identical
        to snapshots of a single store holding the same points.
        """
        for metric in self.metrics():
            for key in self.series_for_metric(metric):
                yield key, self.series_slice(key, start, end)

    def iter_points(self) -> Iterator[DataPoint]:
        """Every stored point, series by series, time-sorted within each."""
        for key, sl in self.iter_series():
            for ts, val in zip(sl.timestamps.tolist(), sl.values.tolist()):
                yield DataPoint(key, int(ts), float(val))
