"""Durability: append-only line-protocol log and snapshot/restore.

The cloud storage tier of the paper persists every measurement.  We
reproduce it with a human-readable, append-only *line protocol*::

    <metric> <timestamp> <value> [tagk=tagv ...]

plus ``#``-prefixed comments.  A write-ahead writer appends lines as
points arrive; ``load`` replays a log into a fresh :class:`TSDB`.  This is
deliberately simple (the dataset is city-scale, not hyperscale) but
covers the real failure mode the dataport cares about: process restarts
must not lose the historic archive.
"""

from __future__ import annotations

import io
import os
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from .database import TSDB
from .model import DataPoint


class LogCorruption(ValueError):
    """A log line failed to parse."""

    def __init__(self, lineno: int, line: str, reason: str) -> None:
        super().__init__(f"line {lineno}: {reason}: {line!r}")
        self.lineno = lineno
        self.line = line
        self.reason = reason


def format_point(point: DataPoint) -> str:
    """Render one point as a log line."""
    tags = " ".join(f"{k}={v}" for k, v in point.key.tags)
    base = f"{point.key.metric} {point.timestamp} {point.value!r}"
    return f"{base} {tags}" if tags else base


def parse_line(line: str, lineno: int = 0) -> DataPoint | None:
    """Parse one log line; returns None for blanks and comments."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    parts = stripped.split()
    if len(parts) < 3:
        raise LogCorruption(lineno, line, "expected 'metric ts value [tags...]'")
    metric, ts_s, val_s, *tag_parts = parts
    try:
        ts = int(ts_s)
    except ValueError:
        raise LogCorruption(lineno, line, f"bad timestamp {ts_s!r}") from None
    try:
        value = float(val_s)
    except ValueError:
        raise LogCorruption(lineno, line, f"bad value {val_s!r}") from None
    tags: dict[str, str] = {}
    for part in tag_parts:
        if "=" not in part:
            raise LogCorruption(lineno, line, f"bad tag {part!r}")
        k, _, v = part.partition("=")
        tags[k] = v
    try:
        return DataPoint.make(metric, ts, value, tags)
    except ValueError as exc:
        raise LogCorruption(lineno, line, str(exc)) from None


class LogWriter:
    """Append-only writer; flushes per batch, not per point."""

    def __init__(self, path: str | os.PathLike[str] | TextIO) -> None:
        if isinstance(path, (str, os.PathLike)):
            self._path = Path(path)
            self._fh: TextIO = open(self._path, "a", encoding="utf-8")
            self._owns = True
        else:
            self._path = None
            self._fh = path
            self._owns = False
        self._written = 0

    @property
    def written(self) -> int:
        return self._written

    def write(self, point: DataPoint) -> None:
        self._fh.write(format_point(point) + "\n")
        self._written += 1

    def write_many(self, points: Iterable[DataPoint]) -> int:
        n = 0
        for p in points:
            self.write(p)
            n += 1
        self.flush()
        return n

    def comment(self, text: str) -> None:
        for line in text.splitlines() or [""]:
            self._fh.write(f"# {line}\n")

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        self.flush()
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "LogWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def iter_log(
    source: str | os.PathLike[str] | TextIO, *, strict: bool = True
) -> Iterator[DataPoint]:
    """Yield points from a log file or open text handle.

    With ``strict=False`` corrupt lines are skipped instead of raising —
    the recovery path after an unclean shutdown that truncated the tail.
    """
    if isinstance(source, (str, os.PathLike)):
        fh: TextIO = open(source, "r", encoding="utf-8")
        owns = True
    else:
        fh = source
        owns = False
    try:
        for lineno, line in enumerate(fh, start=1):
            try:
                point = parse_line(line, lineno)
            except LogCorruption:
                if strict:
                    raise
                continue
            if point is not None:
                yield point
    finally:
        if owns:
            fh.close()


def load(source: str | os.PathLike[str] | TextIO, *, strict: bool = True) -> TSDB:
    """Replay a log into a fresh database (chunked columnar batches)."""
    db = TSDB()
    db.put_many(iter_log(source, strict=strict))
    return db


def snapshot(db: TSDB, path: str | os.PathLike[str]) -> int:
    """Write the whole database as a sorted, deduplicated log.

    Returns the number of points written.  Snapshots are normal logs, so
    ``load`` restores them; they are smaller than the raw WAL because
    overwritten duplicates are gone.
    """
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        writer = LogWriter(fh)
        writer.comment("repro.tsdb snapshot")
        for metric in db.metrics():
            for key in db.series_for_metric(metric):
                sl = db._stores[key].scan()
                for ts, val in zip(sl.timestamps.tolist(), sl.values.tolist()):
                    writer.write(DataPoint(key, int(ts), float(val)))
                    n += 1
        writer.flush()
    return n


def dumps(db: TSDB) -> str:
    """Snapshot to a string (round-trips through ``load``)."""
    buf = io.StringIO()
    writer = LogWriter(buf)
    for metric in db.metrics():
        for key in db.series_for_metric(metric):
            sl = db._stores[key].scan()
            for ts, val in zip(sl.timestamps.tolist(), sl.values.tolist()):
                writer.write(DataPoint(key, int(ts), float(val)))
    return buf.getvalue()
