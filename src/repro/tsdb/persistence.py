"""Durability: WAL and snapshot/restore in two interchangeable formats.

The cloud storage tier of the paper persists every measurement.  We
reproduce it with two on-disk formats behind one API:

**Text** — a human-readable, append-only *line protocol*::

    <metric> <timestamp> <value> [tagk=tagv ...]

plus ``#``-prefixed comments and ``!``-prefixed control markers.  The
control markers are retention, store-wide and per-series::

    !delete_before <cutoff> [exclude=<suffix>]
    !delete_series_before <cutoff> <metric{k=v,...}>

so a replayed log reproduces the post-retention state, not just the
union of every point ever written.

**Binary** — the columnar segment format of
:mod:`~repro.tsdb.segments`: whole :class:`PointBatch` columns per
CRC-checked block, markers as typed control blocks, no per-point Python
objects on either side.  This is the fast path — durability at the same
granularity as ingest.

``load``, ``snapshot``, ``dumps``, and ``convert_log`` take a
``format="text"|"binary"`` switch; reads auto-detect from the segment
magic, so a restore never needs to be told what it is replaying.  Both
formats restore byte-identical store state (the equivalence suite in
``tests/test_tsdb_segments.py`` pins this), including interleaved
retention markers and lenient truncated-tail recovery.  ``load`` replays
into a fresh :class:`TSDB` (or, via ``into=``, any
:class:`~repro.tsdb.interface.TimeSeriesStore`, e.g. one shard of a
:class:`~repro.tsdb.sharded.ShardedTSDB`).
"""

from __future__ import annotations

import io
import os
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, TextIO

from .batch import BatchBuilder, PointBatch
from .database import TSDB
from .model import DataPoint
from .segments import (
    DeleteBefore,
    DeleteSeriesBefore,
    SegmentCorruption,
    SegmentWriter,
    SEGMENT_MAGIC,
    iter_segments,
    parse_series_key,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .interface import TimeSeriesStore

__all__ = [
    "DeleteBefore",
    "DeleteSeriesBefore",
    "LogCorruption",
    "LogWriter",
    "SegmentCorruption",
    "SegmentWriter",
    "convert_log",
    "detect_format",
    "dumps",
    "format_delete_before",
    "format_delete_series_before",
    "format_point",
    "iter_batches",
    "iter_entries",
    "iter_log",
    "iter_segments",
    "load",
    "parse_entry",
    "parse_line",
    "snapshot",
]

#: Control lines start with this character (vs. ``#`` for comments).
MARKER_PREFIX = "!"
_MARKER_DELETE_BEFORE = "!delete_before"
_MARKER_DELETE_SERIES_BEFORE = "!delete_series_before"


class LogCorruption(ValueError):
    """A log line failed to parse."""

    def __init__(self, lineno: int, line: str, reason: str) -> None:
        super().__init__(f"line {lineno}: {reason}: {line!r}")
        self.lineno = lineno
        self.line = line
        self.reason = reason


def format_point(point: DataPoint) -> str:
    """Render one point as a log line."""
    tags = " ".join(f"{k}={v}" for k, v in point.key.tags)
    base = f"{point.key.metric} {point.timestamp} {point.value!r}"
    return f"{base} {tags}" if tags else base


def format_delete_before(marker: DeleteBefore) -> str:
    """Render a retention marker as a control line."""
    line = f"{_MARKER_DELETE_BEFORE} {marker.cutoff}"
    if marker.exclude_suffix is not None:
        line += f" exclude={marker.exclude_suffix}"
    return line


def format_delete_series_before(marker: DeleteSeriesBefore) -> str:
    """Render a scoped-retention marker as a control line.

    The canonical key form contains no whitespace, so the line splits
    back unambiguously.
    """
    return f"{_MARKER_DELETE_SERIES_BEFORE} {marker.cutoff} {marker.key}"


def _parse_marker(
    stripped: str, line: str, lineno: int
) -> DeleteBefore | DeleteSeriesBefore:
    parts = stripped.split()
    if parts[0] == _MARKER_DELETE_SERIES_BEFORE:
        if len(parts) != 3:
            raise LogCorruption(
                lineno, line, "expected '!delete_series_before <cutoff> <key>'"
            )
        try:
            cutoff = int(parts[1])
        except ValueError:
            raise LogCorruption(lineno, line, f"bad cutoff {parts[1]!r}") from None
        try:
            key = parse_series_key(parts[2])
        except ValueError:
            raise LogCorruption(
                lineno, line, f"bad series key {parts[2]!r}"
            ) from None
        return DeleteSeriesBefore(key, cutoff)
    if parts[0] != _MARKER_DELETE_BEFORE:
        raise LogCorruption(lineno, line, f"unknown marker {parts[0]!r}")
    if len(parts) not in (2, 3):
        raise LogCorruption(
            lineno, line, "expected '!delete_before <cutoff> [exclude=<suffix>]'"
        )
    try:
        cutoff = int(parts[1])
    except ValueError:
        raise LogCorruption(lineno, line, f"bad cutoff {parts[1]!r}") from None
    exclude: str | None = None
    if len(parts) == 3:
        field, _, value = parts[2].partition("=")
        if field != "exclude" or not value:
            raise LogCorruption(lineno, line, f"bad marker option {parts[2]!r}")
        exclude = value
    return DeleteBefore(cutoff, exclude)


def parse_entry(
    line: str, lineno: int = 0
) -> DataPoint | DeleteBefore | DeleteSeriesBefore | None:
    """Parse one log line into a point or a control marker.

    Returns None for blanks and comments; raises :class:`LogCorruption`
    for anything else unparseable.
    """
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    if stripped.startswith(MARKER_PREFIX):
        return _parse_marker(stripped, line, lineno)
    return parse_line(line, lineno)


def parse_line(line: str, lineno: int = 0) -> DataPoint | None:
    """Parse one data-point log line; returns None for blanks and comments."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    parts = stripped.split()
    if len(parts) < 3:
        raise LogCorruption(lineno, line, "expected 'metric ts value [tags...]'")
    metric, ts_s, val_s, *tag_parts = parts
    try:
        ts = int(ts_s)
    except ValueError:
        raise LogCorruption(lineno, line, f"bad timestamp {ts_s!r}") from None
    try:
        value = float(val_s)
    except ValueError:
        raise LogCorruption(lineno, line, f"bad value {val_s!r}") from None
    tags: dict[str, str] = {}
    for part in tag_parts:
        if "=" not in part:
            raise LogCorruption(lineno, line, f"bad tag {part!r}")
        k, _, v = part.partition("=")
        tags[k] = v
    try:
        return DataPoint.make(metric, ts, value, tags)
    except ValueError as exc:
        raise LogCorruption(lineno, line, str(exc)) from None


class LogWriter:
    """Append-only writer; flushes per batch, not per point."""

    def __init__(
        self, path: str | os.PathLike[str] | TextIO, *, append: bool = True
    ) -> None:
        if isinstance(path, (str, os.PathLike)):
            self._path = Path(path)
            self._fh: TextIO = open(self._path, "a" if append else "w", encoding="utf-8")
            self._owns = True
        else:
            self._path = None
            self._fh = path
            self._owns = False
        self._written = 0

    @property
    def written(self) -> int:
        return self._written

    def write(self, point: DataPoint) -> None:
        self._fh.write(format_point(point) + "\n")
        self._written += 1

    def write_many(self, points: Iterable[DataPoint]) -> int:
        """Append many points: format all lines, then one ``writelines``.

        Building the whole line list first keeps the I/O layer out of
        the per-point loop — one buffered write per call, not per point.
        """
        lines = [format_point(p) + "\n" for p in points]
        self._fh.writelines(lines)
        self._written += len(lines)
        self.flush()
        return len(lines)

    def write_batch(self, batch: PointBatch) -> int:
        """Append a columnar batch (row order, and thus last-write-wins
        semantics, preserved).  The text twin of
        :meth:`SegmentWriter.write_batch`, so WAL hooks accept either."""
        return self.write_many(batch.iter_points())

    def delete_before(
        self, cutoff: int, *, exclude_suffix: str | None = None
    ) -> None:
        """Append a retention marker so replay reproduces the deletion.

        Markers don't count toward :attr:`written` (that tracks points).
        Flushes immediately: the in-memory deletion is destructive, so a
        buffered marker lost in a crash would resurrect the deleted
        points on replay.
        """
        self._fh.write(
            format_delete_before(DeleteBefore(int(cutoff), exclude_suffix)) + "\n"
        )
        self.flush()

    def delete_series_before(self, key, cutoff: int) -> None:
        """Append a scoped-retention marker (flushed immediately, like
        :meth:`delete_before` — same resurrect-on-replay hazard)."""
        self._fh.write(
            format_delete_series_before(DeleteSeriesBefore(key, int(cutoff))) + "\n"
        )
        self.flush()

    def comment(self, text: str) -> None:
        for line in text.splitlines() or [""]:
            self._fh.write(f"# {line}\n")

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        self.flush()
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "LogWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def iter_entries(
    source: str | os.PathLike[str] | TextIO, *, strict: bool = True
) -> Iterator[DataPoint | DeleteBefore | DeleteSeriesBefore]:
    """Yield points and control markers from a log, in file order.

    With ``strict=False`` corrupt lines are skipped instead of raising —
    the recovery path after an unclean shutdown that truncated the tail.
    Input decodes with ``errors="replace"`` (binary-mode handles are
    wrapped the same way) so binary garbage — e.g. a segment file whose
    magic was damaged, mis-detected as text — surfaces as
    :class:`LogCorruption` per line — loud under ``strict``, skippable
    under recovery — never as a raw ``UnicodeDecodeError``/``TypeError``.
    """
    wrapper: io.TextIOWrapper | None = None
    if isinstance(source, (str, os.PathLike)):
        fh: TextIO = open(source, "r", encoding="utf-8", errors="replace")
        owns = True
    else:
        fh = source
        owns = False
        if isinstance(fh.read(0), bytes):  # binary-mode handle
            wrapper = io.TextIOWrapper(fh, encoding="utf-8", errors="replace")
            fh = wrapper
    try:
        for lineno, line in enumerate(fh, start=1):
            try:
                entry = parse_entry(line, lineno)
            except LogCorruption:
                if strict:
                    raise
                continue
            if entry is not None:
                yield entry
    finally:
        if owns:
            fh.close()
        elif wrapper is not None:
            wrapper.detach()  # hand the caller's handle back intact


def iter_log(
    source: str | os.PathLike[str] | TextIO, *, strict: bool = True
) -> Iterator[DataPoint]:
    """Yield only the data points of a log (control markers skipped)."""
    for entry in iter_entries(source, strict=strict):
        if isinstance(entry, DataPoint):
            yield entry


#: ``load`` flushes its batch builder at this size (bounded memory).
_LOAD_CHUNK = 65_536


def detect_format(source) -> str:
    """``"binary"`` when the source starts with the segment magic, else
    ``"text"``.  Paths and seekable binary handles are probed; text
    handles are text by construction."""
    if isinstance(source, (str, os.PathLike)):
        with open(source, "rb") as fh:
            head = fh.read(len(SEGMENT_MAGIC))
        return "binary" if head == SEGMENT_MAGIC else "text"
    if isinstance(source, io.TextIOBase):
        return "text"
    if hasattr(source, "seekable") and source.seekable():
        pos = source.tell()
        head = source.read(len(SEGMENT_MAGIC))
        source.seek(pos)
        return "binary" if head == SEGMENT_MAGIC else "text"
    raise ValueError(
        "cannot auto-detect the format of a non-seekable handle; "
        'pass format="text" or format="binary"'
    )


def _coerce_format(source, format: str) -> str:
    if format == "auto":
        return detect_format(source)
    if format not in ("text", "binary"):
        raise ValueError(f'unknown format {format!r}; pick "text", "binary" or "auto"')
    return format


def _write_format(format: str) -> str:
    """Validate a format for a *write* path, where auto-detection has
    nothing to detect."""
    if format not in ("text", "binary"):
        raise ValueError(
            f'unknown format {format!r}; pick "text" or "binary" '
            '("auto" is only valid when reading)'
        )
    return format


def iter_batches(
    source,
    *,
    strict: bool = True,
    format: str = "auto",
    mmap: bool = False,
) -> Iterator[PointBatch | DeleteBefore | DeleteSeriesBefore]:
    """Yield a log's contents as columnar batches plus control markers.

    The format-independent replay stream: binary segments yield their
    blocks as decoded; text logs accumulate points into
    :class:`BatchBuilder` chunks (flushed at marker boundaries so the
    interleaving of data and retention is preserved exactly).

    ``mmap=True`` applies only to binary path sources: batch columns
    decode zero-copy out of the page cache (see
    :func:`~repro.tsdb.segments.iter_segments`); text logs and handles
    fall back to the streaming read.
    """
    fmt = _coerce_format(source, format)
    if fmt == "binary":
        yield from iter_segments(
            source, strict=strict, mmap=mmap and isinstance(source, (str, os.PathLike))
        )
        return
    builder = BatchBuilder()
    for entry in iter_entries(source, strict=strict):
        if isinstance(entry, (DeleteBefore, DeleteSeriesBefore)):
            if len(builder):
                yield builder.build()
            yield entry
        else:
            builder.add_point(entry)
            if len(builder) >= _LOAD_CHUNK:
                yield builder.build()
    if len(builder):
        yield builder.build()


def load(
    source,
    *,
    strict: bool = True,
    into: "TimeSeriesStore | None" = None,
    format: str = "auto",
    mmap: bool = False,
) -> "TimeSeriesStore":
    """Replay a WAL or snapshot — either format — into a store.

    The format is auto-detected from the segment magic unless forced.
    Replay is batch-at-a-time in both formats; a ``delete_before``
    marker applies its deletion at its position in the stream, so replay
    interleaves batch blocks and retention exactly as the live process
    did — including the index pruning of series the deletion emptied.
    ``into`` defaults to a fresh single-store :class:`TSDB`; pass any
    store (e.g. a :class:`~repro.tsdb.sharded.ShardedTSDB`) to replay
    into it.  ``mmap=True`` makes binary path sources decode zero-copy
    out of the page cache (the store copies columns on ingest, so the
    mapping is released as soon as replay finishes).
    """
    db: "TimeSeriesStore" = into if into is not None else TSDB()
    for item in iter_batches(source, strict=strict, format=format, mmap=mmap):
        if isinstance(item, DeleteBefore):
            db.delete_before(item.cutoff, exclude_suffix=item.exclude_suffix)
        elif isinstance(item, DeleteSeriesBefore):
            db.delete_series_before(item.key, item.cutoff)
        else:
            db.put_batch(item)
    return db


#: Binary snapshots flush a batch block at this many rows.
_SNAPSHOT_CHUNK = 65_536


def snapshot(
    db: "TimeSeriesStore", path: str | os.PathLike[str], *, format: str = "text"
) -> int:
    """Write a whole store as a sorted, deduplicated log or segment.

    Returns the number of points written.  Snapshots are normal WALs, so
    ``load`` restores them; they are smaller than the raw WAL because
    overwritten duplicates are gone.  Works on any store — the iteration
    order is canonical (metric, then key), so a sharded store snapshots
    byte-identically to a single store with the same contents.  With
    ``format="binary"`` whole series columns stream into segment blocks
    and no per-point objects are created.
    """
    if _write_format(format) == "binary":
        with SegmentWriter(path, append=False) as writer:
            writer.comment("repro.tsdb snapshot")
            _snapshot_columns(db, writer)
            return writer.written
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        writer = LogWriter(fh)
        writer.comment("repro.tsdb snapshot")
        for point in db.iter_points():
            writer.write(point)
            n += 1
        writer.flush()
    return n


def _snapshot_columns(db: "TimeSeriesStore", writer: SegmentWriter) -> None:
    """Stream every series' columns into chunked batch blocks, keeping
    the canonical (metric, then key) order of ``iter_series``."""
    builder = BatchBuilder()
    for key, sl in db.iter_series():
        if len(sl) == 0:
            continue
        builder.add_series(key.metric, sl.timestamps, sl.values, key.tag_dict())
        if len(builder) >= _SNAPSHOT_CHUNK:
            writer.write_batch(builder.build())
    if len(builder):
        writer.write_batch(builder.build())


def dumps(db: "TimeSeriesStore", *, format: str = "text") -> str | bytes:
    """Snapshot to a string (text) or bytes (binary); round-trips
    through ``load`` either way."""
    if _write_format(format) == "binary":
        buf = io.BytesIO()
        writer = SegmentWriter(buf)
        _snapshot_columns(db, writer)
        writer.flush()
        return buf.getvalue()
    sbuf = io.StringIO()
    text_writer = LogWriter(sbuf)
    for point in db.iter_points():
        text_writer.write(point)
    return sbuf.getvalue()


def convert_log(
    src,
    dst: str | os.PathLike[str],
    *,
    format: str = "binary",
    strict: bool = True,
) -> tuple[int, int]:
    """Migrate a WAL/snapshot between formats; returns (points, markers).

    The source format is auto-detected, so this converts text→binary
    (the upgrade path for pre-segment logs), binary→text (debugging:
    segments become human-readable), or same→same (which compacts a
    lenient read of a damaged file into a clean one).  The destination
    is truncated, not appended to.
    """
    fmt = _write_format(format)
    if isinstance(src, (str, os.PathLike)):
        if Path(src).resolve() == Path(dst).resolve():
            raise ValueError(
                f"convert_log source and destination are the same file ({src}); "
                "truncating the destination would destroy the source"
            )
        detect_format(src)  # probe src first: a missing/unreadable source
        # must not leave a truncated stub behind at dst.
    points = markers = 0
    writer: SegmentWriter | LogWriter = (
        SegmentWriter(dst, append=False)
        if fmt == "binary"
        else LogWriter(dst, append=False)
    )
    with writer:
        for item in iter_batches(src, strict=strict):
            if isinstance(item, DeleteBefore):
                writer.delete_before(item.cutoff, exclude_suffix=item.exclude_suffix)
                markers += 1
            elif isinstance(item, DeleteSeriesBefore):
                writer.delete_series_before(item.key, item.cutoff)
                markers += 1
            else:
                points += writer.write_batch(item)
    return points, markers
