"""Durability: append-only line-protocol log and snapshot/restore.

The cloud storage tier of the paper persists every measurement.  We
reproduce it with a human-readable, append-only *line protocol*::

    <metric> <timestamp> <value> [tagk=tagv ...]

plus ``#``-prefixed comments and ``!``-prefixed control markers.  The
one control marker is retention::

    !delete_before <cutoff> [exclude=<suffix>]

so a replayed log reproduces the post-retention state, not just the
union of every point ever written.  A write-ahead writer appends lines
as points arrive; ``load`` replays a log into a fresh :class:`TSDB` (or,
via ``into=``, any :class:`~repro.tsdb.interface.TimeSeriesStore`, e.g.
one shard of a :class:`~repro.tsdb.sharded.ShardedTSDB`).  This is
deliberately simple (the dataset is city-scale, not hyperscale) but
covers the real failure mode the dataport cares about: process restarts
must not lose the historic archive.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, TextIO

from .batch import BatchBuilder
from .database import TSDB
from .model import DataPoint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .interface import TimeSeriesStore


@dataclass(frozen=True, slots=True)
class DeleteBefore:
    """Replayable retention marker: drop points older than ``cutoff``."""

    cutoff: int
    exclude_suffix: str | None = None


#: Control lines start with this character (vs. ``#`` for comments).
MARKER_PREFIX = "!"
_MARKER_DELETE_BEFORE = "!delete_before"


class LogCorruption(ValueError):
    """A log line failed to parse."""

    def __init__(self, lineno: int, line: str, reason: str) -> None:
        super().__init__(f"line {lineno}: {reason}: {line!r}")
        self.lineno = lineno
        self.line = line
        self.reason = reason


def format_point(point: DataPoint) -> str:
    """Render one point as a log line."""
    tags = " ".join(f"{k}={v}" for k, v in point.key.tags)
    base = f"{point.key.metric} {point.timestamp} {point.value!r}"
    return f"{base} {tags}" if tags else base


def format_delete_before(marker: DeleteBefore) -> str:
    """Render a retention marker as a control line."""
    line = f"{_MARKER_DELETE_BEFORE} {marker.cutoff}"
    if marker.exclude_suffix is not None:
        line += f" exclude={marker.exclude_suffix}"
    return line


def _parse_marker(stripped: str, line: str, lineno: int) -> DeleteBefore:
    parts = stripped.split()
    if parts[0] != _MARKER_DELETE_BEFORE:
        raise LogCorruption(lineno, line, f"unknown marker {parts[0]!r}")
    if len(parts) not in (2, 3):
        raise LogCorruption(
            lineno, line, "expected '!delete_before <cutoff> [exclude=<suffix>]'"
        )
    try:
        cutoff = int(parts[1])
    except ValueError:
        raise LogCorruption(lineno, line, f"bad cutoff {parts[1]!r}") from None
    exclude: str | None = None
    if len(parts) == 3:
        field, _, value = parts[2].partition("=")
        if field != "exclude" or not value:
            raise LogCorruption(lineno, line, f"bad marker option {parts[2]!r}")
        exclude = value
    return DeleteBefore(cutoff, exclude)


def parse_entry(line: str, lineno: int = 0) -> DataPoint | DeleteBefore | None:
    """Parse one log line into a point or a control marker.

    Returns None for blanks and comments; raises :class:`LogCorruption`
    for anything else unparseable.
    """
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    if stripped.startswith(MARKER_PREFIX):
        return _parse_marker(stripped, line, lineno)
    return parse_line(line, lineno)


def parse_line(line: str, lineno: int = 0) -> DataPoint | None:
    """Parse one data-point log line; returns None for blanks and comments."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    parts = stripped.split()
    if len(parts) < 3:
        raise LogCorruption(lineno, line, "expected 'metric ts value [tags...]'")
    metric, ts_s, val_s, *tag_parts = parts
    try:
        ts = int(ts_s)
    except ValueError:
        raise LogCorruption(lineno, line, f"bad timestamp {ts_s!r}") from None
    try:
        value = float(val_s)
    except ValueError:
        raise LogCorruption(lineno, line, f"bad value {val_s!r}") from None
    tags: dict[str, str] = {}
    for part in tag_parts:
        if "=" not in part:
            raise LogCorruption(lineno, line, f"bad tag {part!r}")
        k, _, v = part.partition("=")
        tags[k] = v
    try:
        return DataPoint.make(metric, ts, value, tags)
    except ValueError as exc:
        raise LogCorruption(lineno, line, str(exc)) from None


class LogWriter:
    """Append-only writer; flushes per batch, not per point."""

    def __init__(self, path: str | os.PathLike[str] | TextIO) -> None:
        if isinstance(path, (str, os.PathLike)):
            self._path = Path(path)
            self._fh: TextIO = open(self._path, "a", encoding="utf-8")
            self._owns = True
        else:
            self._path = None
            self._fh = path
            self._owns = False
        self._written = 0

    @property
    def written(self) -> int:
        return self._written

    def write(self, point: DataPoint) -> None:
        self._fh.write(format_point(point) + "\n")
        self._written += 1

    def write_many(self, points: Iterable[DataPoint]) -> int:
        n = 0
        for p in points:
            self.write(p)
            n += 1
        self.flush()
        return n

    def delete_before(
        self, cutoff: int, *, exclude_suffix: str | None = None
    ) -> None:
        """Append a retention marker so replay reproduces the deletion.

        Markers don't count toward :attr:`written` (that tracks points).
        Flushes immediately: the in-memory deletion is destructive, so a
        buffered marker lost in a crash would resurrect the deleted
        points on replay.
        """
        self._fh.write(
            format_delete_before(DeleteBefore(int(cutoff), exclude_suffix)) + "\n"
        )
        self.flush()

    def comment(self, text: str) -> None:
        for line in text.splitlines() or [""]:
            self._fh.write(f"# {line}\n")

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        self.flush()
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "LogWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def iter_entries(
    source: str | os.PathLike[str] | TextIO, *, strict: bool = True
) -> Iterator[DataPoint | DeleteBefore]:
    """Yield points and control markers from a log, in file order.

    With ``strict=False`` corrupt lines are skipped instead of raising —
    the recovery path after an unclean shutdown that truncated the tail.
    """
    if isinstance(source, (str, os.PathLike)):
        fh: TextIO = open(source, "r", encoding="utf-8")
        owns = True
    else:
        fh = source
        owns = False
    try:
        for lineno, line in enumerate(fh, start=1):
            try:
                entry = parse_entry(line, lineno)
            except LogCorruption:
                if strict:
                    raise
                continue
            if entry is not None:
                yield entry
    finally:
        if owns:
            fh.close()


def iter_log(
    source: str | os.PathLike[str] | TextIO, *, strict: bool = True
) -> Iterator[DataPoint]:
    """Yield only the data points of a log (control markers skipped)."""
    for entry in iter_entries(source, strict=strict):
        if isinstance(entry, DataPoint):
            yield entry


#: ``load`` flushes its batch builder at this size (bounded memory).
_LOAD_CHUNK = 65_536


def load(
    source: str | os.PathLike[str] | TextIO,
    *,
    strict: bool = True,
    into: "TimeSeriesStore | None" = None,
) -> "TimeSeriesStore":
    """Replay a log into a store (chunked columnar batches).

    Points accumulate in a :class:`BatchBuilder`; a ``!delete_before``
    marker forces a flush and then applies the deletion, so replay
    interleaves batch blocks and retention exactly as the live process
    did — including the index pruning of series the deletion emptied.
    ``into`` defaults to a fresh single-store :class:`TSDB`; pass any
    store (e.g. a :class:`~repro.tsdb.sharded.ShardedTSDB`) to replay
    into it.
    """
    db: "TimeSeriesStore" = into if into is not None else TSDB()
    builder = BatchBuilder()
    for entry in iter_entries(source, strict=strict):
        if isinstance(entry, DeleteBefore):
            db.put_batch(builder.build())
            db.delete_before(entry.cutoff, exclude_suffix=entry.exclude_suffix)
        else:
            builder.add_point(entry)
            if len(builder) >= _LOAD_CHUNK:
                db.put_batch(builder.build())
    db.put_batch(builder.build())
    return db


def snapshot(db: "TimeSeriesStore", path: str | os.PathLike[str]) -> int:
    """Write a whole store as a sorted, deduplicated log.

    Returns the number of points written.  Snapshots are normal logs, so
    ``load`` restores them; they are smaller than the raw WAL because
    overwritten duplicates are gone.  Works on any store — the iteration
    order is canonical (metric, then key), so a sharded store snapshots
    byte-identically to a single store with the same contents.
    """
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        writer = LogWriter(fh)
        writer.comment("repro.tsdb snapshot")
        for point in db.iter_points():
            writer.write(point)
            n += 1
        writer.flush()
    return n


def dumps(db: "TimeSeriesStore") -> str:
    """Snapshot to a string (round-trips through ``load``)."""
    buf = io.StringIO()
    writer = LogWriter(buf)
    for point in db.iter_points():
        writer.write(point)
    return buf.getvalue()
