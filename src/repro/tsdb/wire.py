"""Versioned OpenTSDB-style JSON codec for query requests/responses.

The wire format is the stable outer skin of the query engine: dashboards
(or a future HTTP endpoint) speak JSON, the planner speaks
:class:`~repro.tsdb.query.Query` / :class:`~repro.tsdb.plan.ExprQuery`.
The shape mirrors OpenTSDB's ``/api/query``:

.. code-block:: json

    {"version": 1, "queries": [
        {"metric": "air.co2.ppm", "start": 0, "end": 3600,
         "tags": {"city": "trondheim"}, "aggregator": "avg",
         "downsample": "5m-avg", "rate": false, "groupBy": ["node"]},
        {"expr": "a - b", "operands": {"a": {"metric": "..."},
                                       "b": {"metric": "..."}}}
    ]}

and the response carries one entry per request query, each with its
result series as ``dps`` maps (timestamp → value, NaN encoded as
``null``) plus scanned-point accounting:

.. code-block:: json

    {"version": 1, "results": [
        {"series": [{"metric": "air.co2.ppm", "tags": {"node": "ctt-01"},
                     "dps": {"0": 412.5, "300": null}}],
         "scannedPoints": 1234}
    ]}

Floats round-trip exactly (Python's JSON float repr is shortest
round-trip); NaN encodes as ``null`` and ``±inf`` as the strings
``"Infinity"`` / ``"-Infinity"`` so the emitted text is always valid
RFC 8259 JSON (``response_to_json`` enforces this with
``allow_nan=False``).  Unknown versions and unknown fields are rejected
loudly so format drift cannot pass silently.

:func:`handle_request` is the one-call server side: decode →
``run_many`` → encode.  Failures come back as a versioned *error
response* — ``{"version": 1, "error": {"type": ..., "message": ...}}``
— never as an exception, so one malformed query cannot kill a server
connection; :func:`decode_response` surfaces such a payload to clients
as :class:`RemoteQueryError`.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from .catalog import CardinalityLimitError
from .model import InvalidName
from .plan import ExprQuery, ExprResult, QueryBuilder
from .query import Query, QueryError, QueryResult

#: Current (and only) wire format version.
WIRE_VERSION = 1


class WireError(ValueError):
    """Malformed wire request/response."""


class RemoteQueryError(RuntimeError):
    """The server answered with an error response instead of results.

    Carries the server-side exception class name (``error_type``) and
    message, so clients can distinguish a bad request (``WireError``,
    ``QueryError`` — fix the query) from a server fault
    (``InternalError`` — retry elsewhere).
    """

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.message = message


_QUERY_FIELDS = {
    "metric", "start", "end", "tags", "aggregator", "downsample", "rate",
    "groupBy",
}
_EXPR_FIELDS = {"expr", "operands"}


# ---------------------------------------------------------------------------
# Requests
# ---------------------------------------------------------------------------


def encode_query(q: Query | QueryBuilder | ExprQuery) -> dict:
    """One query as its wire dict (sub-queries of expressions recurse)."""
    if isinstance(q, QueryBuilder):
        q = q.build()
    if isinstance(q, ExprQuery):
        return {
            "expr": q.formula,
            "operands": {name: encode_query(sub) for name, sub in q.operands},
        }
    if not isinstance(q, Query):
        raise WireError(f"cannot encode {type(q).__name__} as a wire query")
    out: dict = {"metric": q.metric, "start": int(q.start), "end": int(q.end)}
    if q.tags:
        out["tags"] = {str(k): str(v) for k, v in sorted(q.tags.items())}
    out["aggregator"] = q.aggregator
    if q.downsample is not None:
        ds = q.parsed_downsample()
        out["downsample"] = ds.spec()
    if q.rate:
        out["rate"] = True
    if q.group_by:
        out["groupBy"] = sorted(q.group_by)
    return out


def encode_request(
    queries: Sequence[Query | QueryBuilder | ExprQuery],
) -> dict:
    """A ``run_many`` batch as a versioned wire request dict."""
    return {
        "version": WIRE_VERSION,
        "queries": [encode_query(q) for q in queries],
    }


def request_to_json(
    queries: Sequence[Query | QueryBuilder | ExprQuery], **dumps_kwargs
) -> str:
    return json.dumps(encode_request(queries), **dumps_kwargs)


def _decode_timestamp(obj: Mapping, field: str) -> int:
    """A ``start``/``end`` value as an exact integer timestamp.

    ``int()`` alone would silently reshape the query range: ``true``
    becomes 1 (bool is an int subclass) and ``3.9`` truncates to 3.
    Accept integers and integral floats (clients that serialize every
    JSON number as a float still round-trip exactly); reject everything
    else loudly.
    """
    v = obj[field]
    if isinstance(v, bool):
        raise WireError(f"{field!r} must be an integer timestamp, got {v!r}")
    if isinstance(v, int):
        return v
    if isinstance(v, float) and v.is_integer():
        return int(v)
    raise WireError(
        f"{field!r} must be an integer timestamp, got {v!r} "
        f"({type(v).__name__})"
    )


def decode_query(obj: Mapping) -> Query | ExprQuery:
    """One wire dict back into a planner query (strict field checking)."""
    if not isinstance(obj, Mapping):
        raise WireError(f"query must be an object, got {type(obj).__name__}")
    if "expr" in obj:
        unknown = set(obj) - _EXPR_FIELDS
        if unknown:
            raise WireError(f"unknown expression fields: {sorted(unknown)}")
        operands = obj.get("operands")
        if not isinstance(operands, Mapping) or not operands:
            raise WireError("expression needs a non-empty 'operands' object")
        decoded_ops = []
        for name, sub in sorted(operands.items()):
            sub_q = decode_query(sub)
            if isinstance(sub_q, ExprQuery):
                raise WireError("nested expressions are not supported")
            decoded_ops.append((str(name), sub_q))
        try:
            return ExprQuery(str(obj["expr"]), tuple(decoded_ops))
        except QueryError as exc:
            raise WireError(str(exc)) from None
    unknown = set(obj) - _QUERY_FIELDS
    if unknown:
        raise WireError(f"unknown query fields: {sorted(unknown)}")
    for field in ("metric", "start", "end"):
        if field not in obj:
            raise WireError(f"query is missing required field {field!r}")
    tags = obj.get("tags", {})
    if not isinstance(tags, Mapping):
        raise WireError("'tags' must be an object of tag filters")
    group_by = obj.get("groupBy", ())
    if isinstance(group_by, str) or not isinstance(group_by, Sequence):
        raise WireError("'groupBy' must be a list of tag keys")
    try:
        return Query(
            metric=obj["metric"],
            start=_decode_timestamp(obj, "start"),
            end=_decode_timestamp(obj, "end"),
            tags={str(k): str(v) for k, v in tags.items()},
            aggregator=str(obj.get("aggregator", "avg")),
            downsample=obj.get("downsample"),
            rate=bool(obj.get("rate", False)),
            group_by=tuple(str(g) for g in group_by),
        )
    except WireError:
        raise
    except (QueryError, TypeError, ValueError) as exc:
        raise WireError(str(exc)) from None


def decode_request(request: str | bytes | Mapping) -> list[Query | ExprQuery]:
    """A wire request (JSON text or already-parsed dict) into queries."""
    if isinstance(request, (str, bytes)):
        try:
            request = json.loads(request)
        except json.JSONDecodeError as exc:
            raise WireError(f"request is not valid JSON: {exc}") from None
    if not isinstance(request, Mapping):
        raise WireError("request must be a JSON object")
    version = request.get("version")
    if version != WIRE_VERSION:
        raise WireError(
            f"unsupported wire version {version!r} (this codec speaks "
            f"{WIRE_VERSION})"
        )
    unknown = set(request) - {"version", "queries"}
    if unknown:
        raise WireError(f"unknown request fields: {sorted(unknown)}")
    queries = request.get("queries")
    if not isinstance(queries, Sequence) or isinstance(queries, (str, bytes)):
        raise WireError("'queries' must be a list")
    return [decode_query(q) for q in queries]


# ---------------------------------------------------------------------------
# Responses
# ---------------------------------------------------------------------------


def _encode_value(v: float) -> float | str | None:
    """NaN → null, ±inf → "Infinity"/"-Infinity", else the float.

    ``json.dumps`` would happily emit bare ``Infinity`` tokens — valid
    Python, invalid JSON per RFC 8259 — so infinities go over the wire
    as strings and :func:`decode_response` maps them back exactly.
    """
    if math.isnan(v):
        return None
    if math.isinf(v):
        return "Infinity" if v > 0 else "-Infinity"
    return float(v)


def _decode_value(v) -> float:
    """Inverse of :func:`_encode_value` (strict about string spellings)."""
    if v is None:
        return math.nan
    if isinstance(v, str):
        if v == "Infinity":
            return math.inf
        if v == "-Infinity":
            return -math.inf
        raise WireError(f"unexpected string value {v!r} in dps")
    if isinstance(v, bool):
        raise WireError("unexpected boolean value in dps")
    return float(v)


def _encode_series(s) -> dict:
    return {
        "metric": s.metric,
        "tags": dict(sorted(s.group_tags.items())),
        "dps": {
            str(int(ts)): _encode_value(val)
            for ts, val in zip(s.timestamps.tolist(), s.values.tolist())
        },
    }


def encode_response(
    results: Sequence[QueryResult | ExprResult],
) -> dict:
    """``run_many`` output as a versioned wire response dict."""
    entries = []
    for res in results:
        entry: dict = {}
        if isinstance(res, ExprResult):
            entry["expr"] = res.expr.formula
        entry["series"] = [_encode_series(s) for s in res.series]
        entry["scannedPoints"] = int(res.scanned_points)
        entries.append(entry)
    return {"version": WIRE_VERSION, "results": entries}


def encode_error(exc: BaseException) -> dict:
    """An exception as a versioned wire *error response*.

    The server-side dual of :func:`encode_response`: a request that
    cannot be served still gets a well-formed, versioned reply, so the
    connection it arrived on stays usable.  ``type`` is the exception
    class name (``WireError``, ``QueryError``, ...).
    """
    return {
        "version": WIRE_VERSION,
        "error": {"type": type(exc).__name__, "message": str(exc)},
    }


def response_to_json(
    results: Sequence[QueryResult | ExprResult], **dumps_kwargs
) -> str:
    # allow_nan=False makes leaking a non-finite float a loud codec bug
    # here instead of unparseable output at some client.
    dumps_kwargs.setdefault("allow_nan", False)
    return json.dumps(encode_response(results), **dumps_kwargs)


def error_to_json(exc: BaseException, **dumps_kwargs) -> str:
    dumps_kwargs.setdefault("allow_nan", False)
    return json.dumps(encode_error(exc), **dumps_kwargs)


@dataclass(frozen=True)
class WireSeries:
    """One decoded result series (client-side view)."""

    metric: str
    tags: dict
    timestamps: np.ndarray
    values: np.ndarray

    def __len__(self) -> int:
        return int(self.timestamps.shape[0])


@dataclass(frozen=True)
class WireResult:
    """One decoded per-query result (client-side view)."""

    series: tuple[WireSeries, ...]
    scanned_points: int
    expr: str | None = None

    def __len__(self) -> int:
        return len(self.series)

    def __iter__(self):
        return iter(self.series)


def decode_response(response: str | bytes | Mapping) -> list[WireResult]:
    """A wire response back into numpy-backed client results."""
    if isinstance(response, (str, bytes)):
        try:
            response = json.loads(response)
        except json.JSONDecodeError as exc:
            raise WireError(f"response is not valid JSON: {exc}") from None
    if not isinstance(response, Mapping):
        raise WireError("response must be a JSON object")
    if response.get("version") != WIRE_VERSION:
        raise WireError(
            f"unsupported wire version {response.get('version')!r}"
        )
    error = response.get("error")
    if error is not None:
        if not isinstance(error, Mapping):
            raise WireError("'error' must be an object")
        raise RemoteQueryError(
            str(error.get("type", "Error")), str(error.get("message", ""))
        )
    out: list[WireResult] = []
    for entry in response.get("results", ()):
        series = []
        for s in entry.get("series", ()):
            dps = s.get("dps", {})
            try:
                ts = np.array([int(k) for k in dps], dtype=np.int64)
                vals = np.array(
                    [_decode_value(v) for v in dps.values()],
                    dtype=np.float64,
                )
            except WireError:
                raise
            except (TypeError, ValueError) as exc:
                raise WireError(f"malformed dps entry: {exc}") from None
            order = np.argsort(ts, kind="stable")
            series.append(
                WireSeries(
                    metric=str(s.get("metric", "")),
                    tags=dict(s.get("tags", {})),
                    timestamps=ts[order],
                    values=vals[order],
                )
            )
        out.append(
            WireResult(
                series=tuple(series),
                scanned_points=int(entry.get("scannedPoints", 0)),
                expr=entry.get("expr"),
            )
        )
    return out


# ---------------------------------------------------------------------------
# Server side
# ---------------------------------------------------------------------------


def handle_request(store, request: str | bytes | Mapping) -> dict:
    """Decode a wire request, execute it as one batch, encode the reply.

    The whole request plans together through ``store.run_many`` —
    shared matching, shared scans, pushdown — so a 12-panel dashboard
    request costs one planning pass, not twelve.

    Never raises for a bad *request*: malformed JSON, version
    mismatches, and invalid queries come back as
    ``{"version": 1, "error": ...}`` (see :func:`encode_error`), so a
    server loop can always answer on the same connection.  Store-side
    faults (bugs) still propagate — the serving layer decides whether
    to translate those into ``InternalError`` replies.
    """
    try:
        queries = decode_request(request)
    except WireError as exc:
        return encode_error(exc)
    try:
        return encode_response(store.run_many(queries))
    except (WireError, QueryError) as exc:
        return encode_error(exc)


# ---------------------------------------------------------------------------
# Catalog (series metadata) requests
# ---------------------------------------------------------------------------

#: Catalog operations, mirroring OpenTSDB's ``/api/suggest`` family.
CATALOG_OPS = ("metrics", "tag_keys", "tag_values", "cardinality")

_CATALOG_ENVELOPE_FIELDS = {"version", "catalog"}
_CATALOG_FIELDS = {"op", "metric", "key", "tags"}

#: Which optional fields each op *requires* / *accepts* beyond ``op``.
_CATALOG_SHAPE = {
    "metrics": (frozenset(), frozenset()),
    "tag_keys": (frozenset({"metric"}), frozenset({"metric"})),
    "tag_values": (
        frozenset({"metric", "key"}),
        frozenset({"metric", "key"}),
    ),
    "cardinality": (
        frozenset({"metric"}),
        frozenset({"metric", "tags"}),
    ),
}


@dataclass(frozen=True)
class CatalogRequest:
    """One decoded catalog request.

    ``tags`` is a canonically sorted tuple of pairs so the request is
    hashable — the serving layer keys its catalog cache on
    :meth:`cache_key` directly.
    """

    op: str
    metric: str | None = None
    key: str | None = None
    tags: tuple[tuple[str, str], ...] = ()

    def cache_key(self) -> tuple:
        return (self.op, self.metric, self.key, self.tags)


def encode_catalog_request(
    op: str,
    *,
    metric: str | None = None,
    key: str | None = None,
    tags: Mapping[str, str] | None = None,
) -> dict:
    """A catalog operation as a versioned wire request dict.

    .. code-block:: json

        {"version": 1, "catalog": {"op": "tag_values",
                                   "metric": "air.co2.ppm",
                                   "key": "node"}}
    """
    body: dict = {"op": str(op)}
    if metric is not None:
        body["metric"] = str(metric)
    if key is not None:
        body["key"] = str(key)
    if tags:
        body["tags"] = {str(k): str(v) for k, v in sorted(tags.items())}
    return {"version": WIRE_VERSION, "catalog": body}


def decode_catalog_request(request: str | bytes | Mapping) -> CatalogRequest:
    """A catalog wire request into a :class:`CatalogRequest` (strict).

    Unknown fields, missing required fields, and fields that do not
    belong to the op (``key`` on anything but ``tag_values``, ``tags``
    anywhere but ``cardinality``) are all rejected loudly, same as the
    query codec.
    """
    if isinstance(request, (str, bytes)):
        try:
            request = json.loads(request)
        except json.JSONDecodeError as exc:
            raise WireError(f"request is not valid JSON: {exc}") from None
    if not isinstance(request, Mapping):
        raise WireError("request must be a JSON object")
    version = request.get("version")
    if version != WIRE_VERSION:
        raise WireError(
            f"unsupported wire version {version!r} (this codec speaks "
            f"{WIRE_VERSION})"
        )
    unknown = set(request) - _CATALOG_ENVELOPE_FIELDS
    if unknown:
        raise WireError(f"unknown request fields: {sorted(unknown)}")
    body = request.get("catalog")
    if not isinstance(body, Mapping):
        raise WireError("'catalog' must be an object")
    unknown = set(body) - _CATALOG_FIELDS
    if unknown:
        raise WireError(f"unknown catalog fields: {sorted(unknown)}")
    op = body.get("op")
    if op not in CATALOG_OPS:
        raise WireError(
            f"unknown catalog op {op!r} (expected one of {list(CATALOG_OPS)})"
        )
    required, allowed = _CATALOG_SHAPE[op]
    present = set(body) - {"op"}
    missing = required - present
    if missing:
        raise WireError(
            f"catalog op {op!r} is missing required field"
            f"{'s' if len(missing) > 1 else ''} {sorted(missing)}"
        )
    extra = present - allowed
    if extra:
        raise WireError(
            f"catalog op {op!r} does not take field"
            f"{'s' if len(extra) > 1 else ''} {sorted(extra)}"
        )
    metric = body.get("metric")
    if metric is not None and not isinstance(metric, str):
        raise WireError("'metric' must be a string")
    key = body.get("key")
    if key is not None and not isinstance(key, str):
        raise WireError("'key' must be a string")
    tags = body.get("tags", {})
    if not isinstance(tags, Mapping):
        raise WireError("'tags' must be an object of tag filters")
    return CatalogRequest(
        op=op,
        metric=metric,
        key=key,
        tags=tuple(sorted((str(k), str(v)) for k, v in tags.items())),
    )


def execute_catalog_request(store, req: CatalogRequest) -> dict:
    """Answer a decoded catalog request against a store.

    Echoes the operation's identifying fields so a pipelined client can
    correlate replies without trusting line order.  Raises
    (:class:`InvalidName` on a malformed tag key, for example) — the
    caller decides between :func:`encode_error` and propagation.
    """
    body: dict = {"op": req.op}
    if req.op == "metrics":
        body["values"] = store.metrics()
    elif req.op == "tag_keys":
        body["metric"] = req.metric
        body["values"] = store.tag_keys(req.metric)
    elif req.op == "tag_values":
        body["metric"] = req.metric
        body["key"] = req.key
        body["values"] = store.tag_values(req.metric, req.key)
    else:  # cardinality
        body["metric"] = req.metric
        if req.tags:
            body["tags"] = dict(req.tags)
        body["count"] = store.cardinality(req.metric, dict(req.tags) or None)
    return {"version": WIRE_VERSION, "catalog": body}


def handle_catalog_request(store, request: str | bytes | Mapping) -> dict:
    """Decode a catalog wire request, execute it, encode the reply.

    The catalog twin of :func:`handle_request`: never raises for a bad
    request — malformed envelopes, invalid names, and guard-rail
    rejections come back as versioned error responses.
    """
    try:
        req = decode_catalog_request(request)
        return execute_catalog_request(store, req)
    except (WireError, QueryError, InvalidName, CardinalityLimitError) as exc:
        return encode_error(exc)


def decode_catalog_response(response: str | bytes | Mapping) -> list | int:
    """A catalog wire response into its payload (client side).

    Returns the ``values`` list for the listing ops or the ``count``
    integer for ``cardinality``; an in-band error response raises
    :class:`RemoteQueryError` exactly like :func:`decode_response`.
    """
    if isinstance(response, (str, bytes)):
        try:
            response = json.loads(response)
        except json.JSONDecodeError as exc:
            raise WireError(f"response is not valid JSON: {exc}") from None
    if not isinstance(response, Mapping):
        raise WireError("response must be a JSON object")
    if response.get("version") != WIRE_VERSION:
        raise WireError(
            f"unsupported wire version {response.get('version')!r}"
        )
    error = response.get("error")
    if error is not None:
        if not isinstance(error, Mapping):
            raise WireError("'error' must be an object")
        raise RemoteQueryError(
            str(error.get("type", "Error")), str(error.get("message", ""))
        )
    body = response.get("catalog")
    if not isinstance(body, Mapping):
        raise WireError("catalog response must carry a 'catalog' object")
    if "count" in body:
        count = body["count"]
        if isinstance(count, bool) or not isinstance(count, int):
            raise WireError(f"'count' must be an integer, got {count!r}")
        return count
    values = body.get("values")
    if not isinstance(values, Sequence) or isinstance(values, (str, bytes)):
        raise WireError("catalog response needs 'values' or 'count'")
    return [str(v) for v in values]
