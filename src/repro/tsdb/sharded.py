"""Sharded TSDB engine: N independent stores behind one interface.

Scaling past a single in-process store means partitioning: series keys
hash-route to one of N independent :class:`~repro.tsdb.database.TSDB`
shards, writes land shard-local (the columnar batch regroups per series
via :meth:`~repro.tsdb.batch.PointBatch.by_series`, so each shard sees
one `extend_batch` per touched series), and reads fan out to the owning
shards before merging.

Semantics are pinned to the single store: a series lives entirely in
exactly one shard, every query runs through the shared
:mod:`~repro.tsdb.plan` stages (groups form from the global key set,
slices aggregate in sorted key order, pushdown engages only where the
distributed merge is bit-exact), and the cross-series merge is the same
sorted timestamp union — so query, aggregation, downsample, and
retention results are byte-identical for any shard count, serial or
thread-pooled (``tests/test_tsdb_sharded.py`` and
``tests/test_tsdb_plan.py`` enforce this for n ∈ {1, 2, 4, 7}).

Routing uses CRC-32 of the canonical key string: stable across
processes and Python's per-run hash randomization, which is what lets a
snapshot taken by one process be restored shard-by-shard in another.
"""

from __future__ import annotations

import os
import re
import zlib
from collections import defaultdict
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Mapping, Sequence

from . import aggregators, persistence
from . import plan as planner
from .batch import PointBatch
from .catalog import MergedCatalog
from .database import TSDB
from .downsample import apply as apply_downsample
from .interface import StoreApi
from .model import DataPoint, SeriesKey
from .query import Query, QueryResult, ResultSeries, compute_rate
from .series import SeriesSlice


def shard_for_key(key: SeriesKey, num_shards: int) -> int:
    """Owning shard of a series: stable hash of the canonical key string.

    Pure function of ``(key, num_shards)`` — independent of insertion
    order, process, and run — so routing never drifts between a writer,
    a restored snapshot, and a reader.
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    return zlib.crc32(str(key).encode("utf-8")) % num_shards


#: Per-shard snapshot files inside a directory: ``shard-<i>-of-<n>.log``
#: (text line protocol) or ``.seg`` (binary columnar segments).
_SHARD_FILE_RE = re.compile(r"^shard-(\d+)-of-(\d+)\.(log|seg)$")

#: Snapshot file extension per format.
_SHARD_EXT = {"text": "log", "binary": "seg"}


def _fanout_workers(num_shards: int) -> int:
    return min(num_shards, os.cpu_count() or 1)


class ShardedTSDB(StoreApi):
    """Hash-partitioned store satisfying the same interface as :class:`TSDB`.

    Drop-in for every consumer of
    :class:`~repro.tsdb.interface.TimeSeriesStore` — the dataport's
    ``BatchingTsdbWriter``, persistence ``snapshot``/``dumps``/``load``,
    ``RetentionPolicy``, dashboards and analytics.  Writes route per
    series; queries fan out and k-way merge per-series slices through
    the shared execution plan.
    """

    def __init__(
        self, num_shards: int = 4, *, max_tag_values: int | None = None
    ) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        self._shards: tuple[TSDB, ...] = tuple(TSDB() for _ in range(num_shards))
        # Merged read-only view over the per-shard catalogs; also holds
        # the store-wide cardinality guard.  Shards run unlimited — a
        # per-shard limit would admit up to N distinct values *per
        # shard*, diverging from the single store's semantics — so the
        # guard check happens at routing time (:meth:`_admit`).
        self._catalog = MergedCatalog(
            [sh.catalog for sh in self._shards], max_tag_values=max_tag_values
        )
        # One fan-out pool per store, created lazily on first pooled
        # operation and reused for every query/snapshot/restore fan-out.
        # A per-call pool costs thread spawn + teardown on every
        # request — ruinous at server request rates.
        self._pool: ThreadPoolExecutor | None = None

    # ------------------------------------------------------------------
    # Fan-out pool lifecycle
    # ------------------------------------------------------------------
    def fanout_pool(self) -> ThreadPoolExecutor:
        """The store's shared fan-out pool (created on first use).

        Sized to ``min(num_shards, cpu_count)``; all pooled paths
        (batched queries, snapshot, restore) share it.  Safe to call
        after :meth:`close` — a fresh pool is created.
        """
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=_fanout_workers(len(self._shards)),
                thread_name_prefix="tsdb-fanout",
            )
        return self._pool

    def close(self) -> None:
        """Shut down the fan-out pool (idempotent).

        The store itself stays usable — serial paths keep working and
        the next pooled operation lazily recreates the pool.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ShardedTSDB":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> tuple[TSDB, ...]:
        """The underlying per-shard stores (read-mostly; owned by us)."""
        return self._shards

    def shard_of(self, key: SeriesKey) -> int:
        """Index of the shard owning ``key``."""
        return shard_for_key(key, len(self._shards))

    def shard_for(self, metric: str, tags: Mapping[str, str] | None = None) -> int:
        """Owning shard for a (metric, tags) combination."""
        return self.shard_of(SeriesKey.make(metric, tags))

    # ------------------------------------------------------------------
    # Writes (route per series)
    # ------------------------------------------------------------------
    def _admit(self, key: SeriesKey, shard: TSDB) -> None:
        """Store-wide cardinality guard for a series about to land.

        Only series new to their owning shard can create tag values, so
        the check — a union over shard catalogs — runs once per new
        series, not per point.
        """
        if self._catalog.max_tag_values is not None and key not in shard._stores:
            self._catalog.check_add(key)

    def put(
        self,
        metric: str,
        timestamp: int,
        value: float,
        tags: Mapping[str, str] | None = None,
    ) -> SeriesKey:
        key = SeriesKey.make(metric, tags)
        shard = self._shards[self.shard_of(key)]
        self._admit(key, shard)
        return shard.put_point(DataPoint(key, int(timestamp), float(value)))

    def put_point(self, point: DataPoint) -> SeriesKey:
        shard = self._shards[self.shard_of(point.key)]
        self._admit(point.key, shard)
        return shard.put_point(point)

    def put_batch(self, batch: PointBatch) -> int:
        """Route a columnar batch: one shard-local column write per series.

        ``by_series`` preserves row order inside each series, so the
        single-store last-write-wins semantics survive the fan-out.
        """
        for key, ts, vals in batch.by_series():
            shard = self._shards[self.shard_of(key)]
            self._admit(key, shard)
            shard.put_column(key, ts, vals)
        return len(batch)

    def put_series(
        self,
        metric: str,
        timestamps,
        values,
        tags: Mapping[str, str] | None = None,
    ) -> SeriesKey:
        batch = PointBatch.for_series(metric, timestamps, values, tags)
        self.put_batch(batch)
        return batch.keys[0]

    # put_many comes from StoreApi (chunked builder → put_batch).

    # ------------------------------------------------------------------
    # Introspection (union over shards)
    # ------------------------------------------------------------------
    @property
    def series_count(self) -> int:
        return sum(sh.series_count for sh in self._shards)

    @property
    def point_count(self) -> int:
        return sum(sh.point_count for sh in self._shards)

    def exact_point_count(self) -> int:
        return sum(sh.exact_point_count() for sh in self._shards)

    @property
    def write_count(self) -> int:
        return sum(sh.write_count for sh in self._shards)

    @property
    def catalog(self) -> MergedCatalog:
        """Read-only merged catalog over the per-shard inverted indexes."""
        return self._catalog

    def metrics(self) -> list[str]:
        return self._catalog.metrics()

    def series_for_metric(self, metric: str) -> list[SeriesKey]:
        return self._catalog.series(metric)

    def tag_keys(self, metric: str) -> list[str]:
        """Tag keys on any live series of ``metric``, across all shards."""
        return self._catalog.tag_keys(metric)

    def tag_values(self, metric: str, tag_key: str) -> list[str]:
        """Distinct live values of one tag key, across all shards."""
        return self._catalog.tag_values(metric, tag_key)

    def suggest_tag_values(self, metric: str, tag_key: str) -> list[str]:
        return self._catalog.tag_values(metric, tag_key)

    def cardinality(
        self, metric: str, tags: Mapping[str, str] | None = None
    ) -> int:
        """Matching-series count summed over the (disjoint) shards."""
        return self._catalog.cardinality(metric, tags)

    def last(
        self, metric: str, tags: Mapping[str, str] | None = None
    ) -> dict[SeriesKey, tuple[int, float]]:
        out: dict[SeriesKey, tuple[int, float]] = {}
        for sh in self._shards:
            out.update(sh.last(metric, tags))  # key sets are disjoint
        return out

    # ------------------------------------------------------------------
    # Write-generation tracking (routes like any other series access)
    # ------------------------------------------------------------------
    def series_generation(self, key: SeriesKey) -> int:
        """Mutation counter of one series (owning shard's counter)."""
        return self._shards[self.shard_of(key)].series_generation(key)

    def series_reshape_generation(self, key: SeriesKey) -> int:
        """Non-append mutation counter of one series (owning shard's)."""
        return self._shards[self.shard_of(key)].series_reshape_generation(key)

    def metric_generation(self, metric: str) -> int:
        """Create/remove counter for a metric, summed over shards.

        Each shard's counter is monotonic, so the sum is monotonic and
        changes exactly when any shard's series set for the metric
        does — the same validity signal the single store provides.
        """
        return sum(sh.metric_generation(metric) for sh in self._shards)

    def catalog_generation(self) -> int:
        """Series create/remove counter, summed over shards (monotonic)."""
        return self._catalog.generation

    def series_latest(self, key: SeriesKey) -> tuple[int, float] | None:
        """Latest ``(timestamp, value)`` of one series, or None."""
        return self._shards[self.shard_of(key)].series_latest(key)

    # ------------------------------------------------------------------
    # Queries (fan out, then merge through the shared plan)
    # ------------------------------------------------------------------
    def run(self, query: Query, *, parallel: bool | None = None) -> QueryResult:
        """Execute a query; a planner shim, like ``TSDB.run``.

        A single query is a batch of one: matching, scanning, and the
        pushdown decisions all go through ``_run_unique_batch``, so
        one-shot and batched execution return identical results.
        ``parallel`` picks serial vs thread-pooled fan-out (default:
        pooled when there is more than one shard); both paths are
        byte-identical.
        """
        return self.run_many([query], parallel=parallel)[0]

    def _run_unique_batch(
        self, queries: Sequence[Query], parallel: bool | None = None
    ) -> list[QueryResult]:
        """Batched fan-out with per-shard pushdown behind ``run_many``.

        Planning happens once for the whole batch:

        1. *Match* (coordinator): each distinct (metric, tags) filter
           matches once across all shards, recording the owning shard
           per key.  Groups form from the global key set — identical to
           the single store's grouping.
        2. *Shard phase* (thread pool, one task per shard): each shard
           scans every touched local series once over the covering
           range of all queries needing it, applies per-series rate,
           and then pushes work down as far as exactness allows: a
           group whose series all live on this shard is finished here
           (aggregate + downsample, same helpers as the central plan);
           a group that spans shards with a
           :func:`~repro.tsdb.aggregators.mergeable` aggregator
           (min/max/count) reduces to a partial column; everything else
           returns its post-rate slices for central aggregation.
        3. *Merge phase* (coordinator, pooled when parallel): merge
           partial columns, run the central plan over gathered slices
           for the float-fold aggregators, and assemble each query's
           series in sorted group order with exact scanned-point
           accounting.

        Every stage runs the same :mod:`~repro.tsdb.plan` helpers over
        the same slices in the same sorted-key order as the single
        store, so results are byte-identical for any shard count, with
        ``parallel`` on or off.
        """
        n = len(self._shards)
        if parallel is None:
            # Pooling one worker only adds overhead: auto mode requires
            # both multiple shards and multiple cores.
            use_pool = n > 1 and _fanout_workers(n) > 1
        else:
            use_pool = bool(parallel)

        # --- 1. match: distinct filters once, owner shard per key -----
        match_cache: dict[tuple, list[tuple[SeriesKey, int]]] = {}
        matched: list[list[tuple[SeriesKey, int]]] = []
        for q in queries:
            mk = (q.metric, tuple(sorted(q.tags.items())))
            pairs = match_cache.get(mk)
            if pairs is None:
                pairs = [
                    (key, si)
                    for si, sh in enumerate(self._shards)
                    for key in sh._match(q.metric, q.tags)
                ]
                match_cache[mk] = pairs
            matched.append(pairs)

        plans = [
            (
                q.parsed_downsample(),
                aggregators.get_columnar(q.aggregator),
                aggregators.mergeable(q.aggregator),
            )
            for q in queries
        ]

        # --- plan the shard tasks --------------------------------------
        scan_plans = [planner.ScanPlan() for _ in range(n)]
        prep: list[list[tuple[int, SeriesKey]]] = [[] for _ in range(n)]
        local_jobs: list[list[tuple[int, tuple, list[SeriesKey]]]] = [
            [] for _ in range(n)
        ]
        partial_jobs: list[list[tuple[int, tuple, list[SeriesKey]]]] = [
            [] for _ in range(n)
        ]
        #: (qi, label) -> ("local", shard) | ("merge", shards) | ("gather",)
        kinds: dict[tuple[int, tuple], tuple] = {}
        groups_per_query: list[list[tuple[tuple, list[SeriesKey]]]] = []
        for qi, (q, pairs) in enumerate(zip(queries, matched)):
            shard_of = dict(pairs)
            for key, si in pairs:
                scan_plans[si].need(key, q.start, q.end)
                prep[si].append((qi, key))
            groups = sorted(planner.group_keys(q, [k for k, _ in pairs]).items())
            groups_per_query.append(groups)
            for label, keys in groups:
                shards_here = sorted({shard_of[k] for k in keys})
                if len(shards_here) == 1:
                    kinds[(qi, label)] = ("local", shards_here[0])
                    local_jobs[shards_here[0]].append((qi, label, keys))
                elif plans[qi][2] is not None:
                    kinds[(qi, label)] = ("merge", shards_here)
                    for si in shards_here:
                        partial_jobs[si].append(
                            (qi, label, [k for k in keys if shard_of[k] == si])
                        )
                else:
                    kinds[(qi, label)] = ("gather",)

        # --- 2. shard phase --------------------------------------------
        def shard_task(si: int):
            shard = self._shards[si]
            scans = scan_plans[si]
            scans.resolve(lambda key, lo, hi: shard._stores[key].scan(lo, hi))
            prepared: dict[tuple[int, SeriesKey], SeriesSlice] = {}
            scanned: dict[int, int] = defaultdict(int)
            for qi, key in prep[si]:
                q = queries[qi]
                sl = scans.slice_for(key, q.start, q.end)
                scanned[qi] += len(sl)
                if q.rate:
                    sl = compute_rate(sl)
                prepared[(qi, key)] = sl
            stack_cache: dict = {}  # shared across this shard's jobs
            finished: dict[tuple[int, tuple], SeriesSlice] = {}
            for qi, label, keys in local_jobs[si]:
                ds, agg, _ = plans[qi]
                finished[(qi, label)] = planner.reduce_group(
                    queries[qi],
                    [prepared[(qi, k)] for k in keys],
                    ds=ds,
                    agg=agg,
                    stack_cache=stack_cache,
                )
            partials: dict[tuple[int, tuple], SeriesSlice] = {}
            for qi, label, keys in partial_jobs[si]:
                partials[(qi, label)] = planner.partial_aggregate(
                    [prepared[(qi, k)] for k in keys],
                    plans[qi][2][0],
                    stack_cache=stack_cache,
                )
            return scanned, finished, partials, prepared

        if use_pool and n > 1:
            pool = self.fanout_pool()
            shard_out = list(pool.map(shard_task, range(n)))
            results = self._merge_phase(
                queries, plans, groups_per_query, kinds, shard_out, pool
            )
        else:
            shard_out = [shard_task(si) for si in range(n)]
            results = self._merge_phase(
                queries, plans, groups_per_query, kinds, shard_out, None
            )
        return results

    def _merge_phase(
        self, queries, plans, groups_per_query, kinds, shard_out, pool
    ) -> list[QueryResult]:
        """Coordinator half of the batched fan-out: merge and assemble."""
        by_key: dict[tuple[int, SeriesKey], SeriesSlice] = {}
        for _, _, _, prepared in shard_out:
            by_key.update(prepared)
        # Shared across the central jobs: two panels aggregating the same
        # prepared slices (avg + p95 over one metric) stack once.  Dict
        # get/set are atomic under the GIL; a rare concurrent double
        # compute of one key is wasted work, never wrong results.
        stack_cache: dict = {}

        def central(qi: int, label: tuple, keys: list[SeriesKey]) -> SeriesSlice:
            q = queries[qi]
            ds, agg, merge_pair = plans[qi]
            kind = kinds[(qi, label)]
            if kind[0] == "merge":
                combined = planner.aggregate_across(
                    [shard_out[si][2][(qi, label)] for si in kind[1]],
                    merge_pair[1],
                )
            else:  # gather: central aggregation in global sorted-key order
                combined = planner.aggregate_across(
                    [by_key[(qi, k)] for k in keys], agg,
                    stack_cache=stack_cache,
                )
            if ds is not None:
                combined = apply_downsample(combined, ds, q.start, q.end)
            return combined

        # Central reductions are independent; fan them out on the same
        # pool (numpy's sort/reduce kernels release the GIL).
        todo = [
            (qi, label, keys)
            for qi, groups in enumerate(groups_per_query)
            for label, keys in groups
            if kinds[(qi, label)][0] != "local"
        ]
        if pool is not None and len(todo) > 1:
            combined_slices = list(
                pool.map(lambda job: central(*job), todo)
            )
        else:
            combined_slices = [central(*job) for job in todo]
        central_done = {
            (qi, label): sl for (qi, label, _), sl in zip(todo, combined_slices)
        }

        results: list[QueryResult] = []
        for qi, (q, groups) in enumerate(zip(queries, groups_per_query)):
            series_out: list[ResultSeries] = []
            for label, keys in groups:
                kind = kinds[(qi, label)]
                if kind[0] == "local":
                    combined = shard_out[kind[1]][1][(qi, label)]
                else:
                    combined = central_done[(qi, label)]
                series_out.append(
                    ResultSeries(
                        metric=q.metric,
                        group_tags=dict(label),
                        slice=combined,
                        source_series=tuple(keys),
                    )
                )
            if not series_out:
                series_out.append(
                    ResultSeries(q.metric, {}, planner._empty_slice(), ())
                )
            scanned = sum(out[0].get(qi, 0) for out in shard_out)
            results.append(
                QueryResult(
                    query=q,
                    series=tuple(series_out),
                    scanned_points=scanned,
                )
            )
        return results

    def series_slice(
        self, key: SeriesKey, start: int | None = None, end: int | None = None
    ) -> SeriesSlice:
        return self._shards[self.shard_of(key)].series_slice(key, start, end)

    # ------------------------------------------------------------------
    # Maintenance (fan out)
    # ------------------------------------------------------------------
    def delete_before(
        self, cutoff: int, *, exclude_suffix: str | None = None
    ) -> int:
        return sum(
            sh.delete_before(cutoff, exclude_suffix=exclude_suffix)
            for sh in self._shards
        )

    def delete_series_before(self, key: SeriesKey, cutoff: int) -> int:
        """Single-series retention, routed to the owning shard."""
        return self._shards[self.shard_of(key)].delete_series_before(key, cutoff)

    # ------------------------------------------------------------------
    # Persistence (one snapshot file per shard)
    # ------------------------------------------------------------------
    def snapshot_to_dir(self, directory: str | Path, *, format: str = "text") -> int:
        """Snapshot every shard into ``<dir>/shard-<i>-of-<n>.log|seg``.

        Shards snapshot independently (each file is a normal WAL in the
        chosen format), so the fan-out runs on a thread pool: each
        worker owns one shard and one file, results are byte-identical
        to a serial pass, and numpy's column encoding releases the GIL
        for the I/O-heavy part.  Workers write ``.tmp`` files that are
        renamed into place — and any previous snapshot's files (other
        format *or* other shard count) removed — only after *every*
        shard succeeded, so a mid-snapshot failure (disk full) leaves
        the prior snapshot restorable instead of a half-replaced mixed
        directory.  Returns total points written.
        """
        if format not in _SHARD_EXT:
            raise ValueError(f'unknown format {format!r}; pick "text" or "binary"')
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        n = len(self._shards)
        ext = _SHARD_EXT[format]

        def snap_one(i: int) -> int:
            return persistence.snapshot(
                self._shards[i],
                directory / f"shard-{i}-of-{n}.{ext}.tmp",
                format=format,
            )

        try:
            if n == 1:
                total = snap_one(0)
            else:
                total = sum(self.fanout_pool().map(snap_one, range(n)))
        except BaseException:
            for i in range(n):
                (directory / f"shard-{i}-of-{n}.{ext}.tmp").unlink(missing_ok=True)
            raise
        keep = set()
        for i in range(n):
            name = f"shard-{i}-of-{n}.{ext}"
            (directory / f"{name}.tmp").replace(directory / name)
            keep.add(name)
        # Drop every other snapshot file — other formats AND other shard
        # counts — so the directory always holds exactly one restorable
        # snapshot (restore_from_dir rejects mixed counts/duplicates).
        for path in directory.iterdir():
            if _SHARD_FILE_RE.match(path.name) and path.name not in keep:
                path.unlink()
        return total

    @classmethod
    def restore_from_dir(
        cls, directory: str | Path, *, mmap: bool = False
    ) -> "ShardedTSDB":
        """Rebuild a sharded store from :meth:`snapshot_to_dir` output.

        The shard count comes from the file names and each file's format
        is auto-detected, so text and binary snapshots (or a mix, as
        after a partial migration) restore identically.  Every restored
        series is verified to hash-route to the shard it was found in,
        so a renamed or misplaced file fails loudly instead of silently
        corrupting routing.  Shards replay on a thread pool — the files
        are independent, so parallel replay is byte-identical to serial.
        ``mmap=True`` replays binary shard files zero-copy out of the
        page cache (see :func:`~repro.tsdb.persistence.load`).
        """
        n, files = scan_snapshot_dir(directory)
        db = cls(n)

        def restore_one(i: int) -> None:
            persistence.load(files[i], into=db._shards[i], mmap=mmap)
            validate_shard_routing(db._shards[i], i, n)

        if n == 1:
            restore_one(0)
        else:
            for _ in db.fanout_pool().map(restore_one, range(n)):
                pass
        return db

    # ------------------------------------------------------------------
    # Internals shared with the single store's callers
    # ------------------------------------------------------------------
    def _match(self, metric: str, tags: Mapping[str, str]) -> list[SeriesKey]:
        """Matching series in canonical sorted order — the merged
        catalog's per-shard postings matches, so the result list is
        identical to the single store's for any shard count."""
        return self._catalog.match(metric, tags)

    def __repr__(self) -> str:
        per_shard = ",".join(str(sh.series_count) for sh in self._shards)
        return f"ShardedTSDB(num_shards={len(self._shards)}, series=[{per_shard}])"


def scan_snapshot_dir(directory: str | Path) -> tuple[int, dict[int, Path]]:
    """Discover and validate a :meth:`ShardedTSDB.snapshot_to_dir` layout.

    Returns ``(shard_count, {shard_index: file})`` after the same checks
    ``restore_from_dir`` applies: no duplicates, one consistent count,
    no missing shards.  Shared with the cold-shard pager and directory
    compaction, which need the layout without replaying anything.
    """
    directory = Path(directory)
    files: dict[int, Path] = {}
    counts: set[int] = set()
    for path in directory.iterdir():
        m = _SHARD_FILE_RE.match(path.name)
        if m is None:
            continue
        if int(m.group(1)) in files:
            raise ValueError(
                f"duplicate snapshot files for shard {m.group(1)} in {directory}"
            )
        files[int(m.group(1))] = path
        counts.add(int(m.group(2)))
    if not files:
        raise FileNotFoundError(f"no shard-*.log|seg snapshot files in {directory}")
    if len(counts) != 1:
        raise ValueError(f"inconsistent shard counts in {directory}: {counts}")
    (n,) = counts
    if sorted(files) != list(range(n)):
        missing = sorted(set(range(n)) - set(files))
        raise ValueError(f"snapshot in {directory} is missing shards {missing}")
    return n, files


def validate_shard_routing(shard: TSDB, index: int, num_shards: int) -> None:
    """Fail loudly if any series in ``shard`` hash-routes elsewhere —
    the renamed/misplaced-snapshot-file guard every restore path runs."""
    for key in shard._stores:
        if shard_for_key(key, num_shards) != index:
            raise ValueError(
                f"series {key} found in shard {index} but routes to "
                f"shard {shard_for_key(key, num_shards)}; snapshot files moved?"
            )


def scatter_batch(batch: PointBatch, num_shards: int) -> list[PointBatch]:
    """Split one batch into per-shard batches (routing preview/debug aid).

    ``put_batch`` routes columns directly and never materializes these;
    this helper exists for callers that ship batches to remote shards.
    """
    builders: dict[int, list] = {}
    for key, ts, vals in batch.by_series():
        builders.setdefault(shard_for_key(key, num_shards), []).append(
            (key, ts, vals)
        )
    out: list[PointBatch] = []
    for i in range(num_shards):
        parts = builders.get(i)
        if not parts:
            out.append(PointBatch.empty())
            continue
        out.append(
            PointBatch.concat(
                [
                    PointBatch.for_series(key.metric, ts, vals, key.tag_dict())
                    for key, ts, vals in parts
                ]
            )
        )
    return out
