"""Series catalog: inverted tag postings for O(result) series matching.

ROADMAP item 4.  At fleet scale (millions of series across 100+ cities)
query *matching* — not scanning — dominates planning: a ``node="*"`` or
``"a|b"`` filter used to linearly test every series under the metric.
The catalog keeps inverted postings per metric::

    metric -> tag key -> tag value -> series postings   (by_value)
    metric -> tag key -> series postings                (by_key)

maintained incrementally on every index/unindex path of
:class:`~repro.tsdb.database.TSDB`, so filter resolution is pure set
algebra over postings:

- exact values intersect their value postings (smallest first),
- ``"a|b"`` alternations union the alternative value postings,
- ``"*"`` intersects the has-key postings,

and :meth:`SeriesCatalog.match` only runs the full
:meth:`~repro.tsdb.model.SeriesKey.matches` predicate over the already
narrowed candidate set as a final exactness check.  Match output is
pinned to canonical (sorted key-string) order, so results are
deterministic and identical for a single store and any shard count.

The same postings answer the metadata API dashboards need for
autocomplete (:meth:`metrics`, :meth:`tag_keys`, :meth:`tag_values`)
and the :meth:`cardinality` counts behind guard-rails:
``SeriesCatalog(max_tag_values=N)`` rejects the write that would create
the (N+1)-th distinct value of one tag key under one metric with a
:class:`CardinalityLimitError` — *before* any state changes — so a
misbehaving ingester (a node id leaking a timestamp into a tag, say)
fails loudly instead of silently exploding the index.

:class:`MergedCatalog` is the read-only union view over the per-shard
catalogs of a :class:`~repro.tsdb.sharded.ShardedTSDB`: series are
disjoint across shards, so every answer is a merge of per-shard
answers, and :meth:`MergedCatalog.check_add` gives the routing layer a
store-wide guard check with single-store semantics (a per-shard limit
would admit up to N values *per shard*).

Catalog state is never persisted: it is a pure function of the live
series set, rebuilt deterministically by WAL/snapshot replay (text or
binary) through the same index/unindex hooks the live process used.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from .model import SeriesKey, validate_name

__all__ = ["CardinalityLimitError", "MergedCatalog", "SeriesCatalog"]


class CardinalityLimitError(ValueError):
    """A cardinality guard-rail tripped.

    Two flavours share the type (clients key on the wire error type):
    the ingest-side distinct tag-value limit
    (:meth:`for_tag_value` — the offending series is rejected
    atomically, store and catalog untouched) and the serving-side
    per-query match limit.  Either way the caller gets a loud,
    attributable in-band error instead of a silently degrading index.
    """

    def __init__(self, message: str, *, limit: int | None = None) -> None:
        super().__init__(message)
        self.limit = limit

    @classmethod
    def for_tag_value(
        cls, metric: str, tag_key: str, tag_value: str, limit: int
    ) -> "CardinalityLimitError":
        return cls(
            f"metric {metric!r} tag {tag_key!r}: value {tag_value!r} would "
            f"exceed the {limit} distinct-value limit",
            limit=limit,
        )


class _MetricIndex:
    """Postings of one metric; empty buckets are pruned on discard."""

    __slots__ = ("keys", "by_key", "by_value")

    def __init__(self) -> None:
        self.keys: set[SeriesKey] = set()
        # tag key -> postings of series carrying that key at all
        self.by_key: dict[str, set[SeriesKey]] = {}
        # tag key -> tag value -> postings of series with exactly that value
        self.by_value: dict[str, dict[str, set[SeriesKey]]] = {}


class SeriesCatalog:
    """Inverted tag index over one store's live series.

    Mutation (:meth:`add` / :meth:`discard`) is O(tags) per series and
    happens exactly when the owning store creates or drops a series, so
    the catalog is always a faithful index of the live series set —
    including after retention churn and WAL/snapshot replay.
    """

    def __init__(self, max_tag_values: int | None = None) -> None:
        if max_tag_values is not None and max_tag_values <= 0:
            raise ValueError("max_tag_values must be positive")
        self.max_tag_values = max_tag_values
        self._metrics: dict[str, _MetricIndex] = {}
        self._generation = 0

    # ------------------------------------------------------------------
    # Maintenance (the store's index/unindex hooks)
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Counter of series added/removed anywhere in the catalog.

        The serving layer's validity signal for whole-catalog answers
        (``metrics()``): while it holds still, no metadata query result
        can have changed.
        """
        return self._generation

    def __len__(self) -> int:
        return sum(len(idx.keys) for idx in self._metrics.values())

    def __contains__(self, key: SeriesKey) -> bool:
        idx = self._metrics.get(key.metric)
        return idx is not None and key in idx.keys

    def check_add(self, key: SeriesKey) -> None:
        """Raise :class:`CardinalityLimitError` if ``key`` would not fit.

        Pure check, no mutation — the atomicity half of :meth:`add`,
        also used standalone by routing layers that guard before
        dispatching to per-shard catalogs.
        """
        if self.max_tag_values is None:
            return
        idx = self._metrics.get(key.metric)
        for k, v in key.tags:
            values = idx.by_value.get(k) if idx is not None else None
            if values is not None and v in values:
                continue
            if len(values or ()) >= self.max_tag_values:
                raise CardinalityLimitError.for_tag_value(
                    key.metric, k, v, self.max_tag_values
                )

    def add(self, key: SeriesKey) -> None:
        """Index a newly created series (idempotent).

        Checks the cardinality guard over *all* tag pairs before
        touching any posting, so a rejected series leaves the catalog
        exactly as it was.
        """
        idx = self._metrics.get(key.metric)
        if idx is not None and key in idx.keys:
            return
        self.check_add(key)
        if idx is None:
            idx = self._metrics[key.metric] = _MetricIndex()
        idx.keys.add(key)
        for k, v in key.tags:
            idx.by_key.setdefault(k, set()).add(key)
            idx.by_value.setdefault(k, {}).setdefault(v, set()).add(key)
        self._generation += 1

    def discard(self, key: SeriesKey) -> None:
        """Unindex a dead series, pruning emptied postings (idempotent).

        Pruning matters under retention churn: a dead tag value frees
        its guard-rail slot, and empty buckets never linger to bloat
        the index or the metadata answers.
        """
        idx = self._metrics.get(key.metric)
        if idx is None or key not in idx.keys:
            return
        idx.keys.discard(key)
        for k, v in key.tags:
            bucket = idx.by_key.get(k)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del idx.by_key[k]
            values = idx.by_value.get(k)
            if values is not None:
                postings = values.get(v)
                if postings is not None:
                    postings.discard(key)
                    if not postings:
                        del values[v]
                if not values:
                    del idx.by_value[k]
        if not idx.keys:
            del self._metrics[key.metric]
        self._generation += 1

    def clear(self) -> None:
        self._metrics.clear()
        self._generation += 1

    # ------------------------------------------------------------------
    # Metadata API (the /api/suggest surface)
    # ------------------------------------------------------------------
    def metrics(self) -> list[str]:
        """All metrics with at least one live series, sorted."""
        return sorted(self._metrics)

    def tag_keys(self, metric: str) -> list[str]:
        """Tag keys appearing on any live series of ``metric``, sorted."""
        idx = self._metrics.get(metric)
        return sorted(idx.by_key) if idx is not None else []

    def tag_values(self, metric: str, tag_key: str) -> list[str]:
        """Distinct live values of one tag key under ``metric``, sorted."""
        validate_name(tag_key, "tag key")
        idx = self._metrics.get(metric)
        if idx is None:
            return []
        return sorted(idx.by_value.get(tag_key, ()))

    def series(self, metric: str) -> list[SeriesKey]:
        """All live series of ``metric`` in canonical (key string) order."""
        idx = self._metrics.get(metric)
        return sorted(idx.keys, key=str) if idx is not None else []

    def cardinality(
        self, metric: str, tags: Mapping[str, str] | None = None
    ) -> int:
        """Number of live series matching ``(metric, tags)``.

        O(result) like :meth:`match` — the count dashboards and
        guard-rails ask for before committing to a scan.
        """
        if not tags:
            idx = self._metrics.get(metric)
            return len(idx.keys) if idx is not None else 0
        return len(self._match_set(metric, tags))

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def _match_set(self, metric: str, tags: Mapping[str, str]) -> set[SeriesKey]:
        """Matching series as a set (postings algebra; order-free)."""
        idx = self._metrics.get(metric)
        if idx is None:
            return set()
        if not tags:
            return idx.keys
        # Resolve each filter to one postings set, cheapest check first
        # when intersecting: exact -> value postings, "a|b" -> union of
        # the alternatives' postings, "*" -> has-key postings.
        postings: list[set[SeriesKey]] = []
        for k, v in tags.items():
            if v == "*":
                p = idx.by_key.get(k)
            elif "|" in v:
                values = idx.by_value.get(k, {})
                parts = [values[alt] for alt in v.split("|") if alt in values]
                if not parts:
                    return set()
                p = set().union(*parts)
            else:
                p = idx.by_value.get(k, {}).get(v)
            if not p:
                return set()
            postings.append(p)
        postings.sort(key=len)
        result = postings[0]
        for p in postings[1:]:
            result = result & p
        # Final exactness check over the narrowed pool: the postings
        # algebra above is exact for the supported filter syntax, but
        # the predicate stays authoritative (and is O(result) here).
        return {key for key in result if key.matches(tags)}

    def match(self, metric: str, tags: Mapping[str, str]) -> list[SeriesKey]:
        """Series matching ``(metric, tags)`` in canonical sorted order.

        The store's ``_match`` resolves here: postings narrowing plus
        the ``matches`` exactness check, with output order pinned to
        the key string — deterministic, and identical across single and
        sharded stores for any shard count.
        """
        if not tags:
            return self.series(metric)
        return sorted(self._match_set(metric, tags), key=str)


class MergedCatalog:
    """Read-only union view over per-shard catalogs.

    Series hash-route to exactly one shard, so the per-shard answers
    are disjoint and every merged answer is a plain union — metadata
    queries and matching over a :class:`~repro.tsdb.sharded.ShardedTSDB`
    return byte-identical results to a single store holding the same
    series.  Carries the store-wide cardinality guard (the per-shard
    catalogs run unlimited; see :meth:`check_add`).
    """

    def __init__(
        self,
        parts: Sequence[SeriesCatalog],
        *,
        max_tag_values: int | None = None,
    ) -> None:
        if not parts:
            raise ValueError("MergedCatalog needs at least one part")
        if max_tag_values is not None and max_tag_values <= 0:
            raise ValueError("max_tag_values must be positive")
        self._parts = tuple(parts)
        self.max_tag_values = max_tag_values

    @property
    def generation(self) -> int:
        """Sum of the per-shard generations (monotonic, changes exactly
        when any shard's series set does)."""
        return sum(part.generation for part in self._parts)

    def __len__(self) -> int:
        return sum(len(part) for part in self._parts)

    def __contains__(self, key: SeriesKey) -> bool:
        return any(key in part for part in self._parts)

    def check_add(self, key: SeriesKey) -> None:
        """Store-wide guard check for a series about to be routed.

        A value already live on *any* shard is always admissible; a new
        value counts against the union of distinct values across shards
        — exactly the single store's semantics, which a per-shard limit
        could not reproduce (each shard sees only its own value subset).
        """
        if self.max_tag_values is None:
            return
        for k, v in key.tags:
            distinct: set[str] = set()
            present = False
            for part in self._parts:
                idx = part._metrics.get(key.metric)
                values = idx.by_value.get(k) if idx is not None else None
                if values is None:
                    continue
                if v in values:
                    present = True
                    break
                distinct.update(values)
            if not present and len(distinct) >= self.max_tag_values:
                raise CardinalityLimitError.for_tag_value(
                    key.metric, k, v, self.max_tag_values
                )

    # ------------------------------------------------------------------
    # Metadata API (unions of disjoint per-shard answers)
    # ------------------------------------------------------------------
    def metrics(self) -> list[str]:
        return sorted(set().union(*(part._metrics.keys() for part in self._parts)))

    def tag_keys(self, metric: str) -> list[str]:
        keys: set[str] = set()
        for part in self._parts:
            keys.update(part.tag_keys(metric))
        return sorted(keys)

    def tag_values(self, metric: str, tag_key: str) -> list[str]:
        validate_name(tag_key, "tag key")
        values: set[str] = set()
        for part in self._parts:
            values.update(part.tag_values(metric, tag_key))
        return sorted(values)

    def series(self, metric: str) -> list[SeriesKey]:
        return _merge_sorted(part.series(metric) for part in self._parts)

    def cardinality(
        self, metric: str, tags: Mapping[str, str] | None = None
    ) -> int:
        # Shards are disjoint: counts sum exactly.
        return sum(part.cardinality(metric, tags) for part in self._parts)

    def match(self, metric: str, tags: Mapping[str, str]) -> list[SeriesKey]:
        return _merge_sorted(part.match(metric, tags) for part in self._parts)


def _merge_sorted(parts: Iterable[list[SeriesKey]]) -> list[SeriesKey]:
    """Merge disjoint, individually sorted key lists into one sorted list.

    Timsort exploits the presorted runs, so this is close to a k-way
    merge without the bookkeeping.
    """
    merged: list[SeriesKey] = []
    for part in parts:
        merged.extend(part)
    merged.sort(key=str)
    return merged
