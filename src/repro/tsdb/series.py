"""In-memory storage of a single time series.

Points arrive mostly in time order (live sensor feeds) but the store must
also absorb out-of-order and duplicate timestamps (LoRaWAN retransmits,
backfilled historic imports).  We keep two numpy-backed growable arrays
plus a small unsorted tail; scans merge-sort the tail in on demand and
deduplicate by keeping the *latest written* value per timestamp, matching
OpenTSDB's overwrite semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class SeriesSlice:
    """A contiguous, time-sorted view of one series."""

    timestamps: np.ndarray  # int64, strictly increasing
    values: np.ndarray  # float64, parallel to timestamps

    def __len__(self) -> int:
        return int(self.timestamps.shape[0])

    def is_empty(self) -> bool:
        return len(self) == 0


class SeriesStore:
    """Append-optimized storage for one series.

    Two monotonic counters make the store's mutation history observable
    without scanning it (the serving layer's cache/refresh validity
    checks):

    - :attr:`generation` bumps on *every* mutation (append, bulk
      extend, retention delete) — "has anything changed since I cached
      this series' query results?";
    - :attr:`reshape_generation` bumps only when a mutation is **not** a
      pure append past the current maximum timestamp (out-of-order or
      duplicate writes, retention deletes) — "may data I already saw
      have changed?".  While it holds still, history is append-only and
      previously computed prefixes of this series are final.
    """

    __slots__ = (
        "_ts", "_vals", "_n", "_tail_ts", "_tail_vals", "_dirty",
        "generation", "reshape_generation",
    )

    _INITIAL = 256

    def __init__(self) -> None:
        self._ts = np.empty(self._INITIAL, dtype=np.int64)
        self._vals = np.empty(self._INITIAL, dtype=np.float64)
        self._n = 0
        self._tail_ts: list[int] = []
        self._tail_vals: list[float] = []
        self._dirty = False
        self.generation = 0
        self.reshape_generation = 0

    def __len__(self) -> int:
        self._compact()
        return self._n

    @property
    def approximate_size(self) -> int:
        """Point count without forcing a compaction."""
        return self._n + len(self._tail_ts)

    def append(self, timestamp: int, value: float) -> None:
        """Add a point; out-of-order and duplicate timestamps are allowed."""
        timestamp = int(timestamp)
        self.generation += 1
        if self._n > 0 and not self._tail_ts and timestamp > int(self._ts[self._n - 1]):
            self._append_sorted(timestamp, float(value))
            return
        if self._n == 0 and not self._tail_ts:
            self._append_sorted(timestamp, float(value))
            return
        # Out-of-order or duplicate timestamp: already-seen data may be
        # overwritten once the tail merges in.
        self.reshape_generation += 1
        self._tail_ts.append(timestamp)
        self._tail_vals.append(float(value))
        self._dirty = True
        if len(self._tail_ts) >= 1024:
            self._compact()

    def _append_sorted(self, timestamp: int, value: float) -> None:
        if self._n == self._ts.shape[0]:
            self._grow()
        self._ts[self._n] = timestamp
        self._vals[self._n] = value
        self._n += 1

    def _grow(self, minimum: int | None = None) -> None:
        cap = max(self._INITIAL, self._ts.shape[0] * 2)
        if minimum is not None:
            cap = max(cap, minimum)
        self._ts = np.resize(self._ts, cap)
        self._vals = np.resize(self._vals, cap)

    def extend_batch(self, timestamps, values) -> int:
        """Bulk-append a column of points with one sorted merge.

        Accepts arbitrary order and duplicates; within the batch, later
        rows win on duplicate timestamps, and the whole batch wins over
        previously stored points (same last-write-wins semantics as a
        sequence of :meth:`append` calls).  Returns points accepted.
        """
        ts = np.ascontiguousarray(timestamps, dtype=np.int64)
        vals = np.ascontiguousarray(values, dtype=np.float64)
        if ts.ndim != 1 or ts.shape != vals.shape:
            raise ValueError(
                f"expected parallel 1-D columns, got {ts.shape} and {vals.shape}"
            )
        n = int(ts.shape[0])
        if n == 0:
            return 0
        self.generation += 1
        in_order = n == 1 or bool(np.all(ts[1:] > ts[:-1]))
        if (
            in_order
            and not self._tail_ts
            and (self._n == 0 or int(ts[0]) > int(self._ts[self._n - 1]))
        ):
            # Fast path: the batch extends the sorted region directly.
            need = self._n + n
            if need > self._ts.shape[0]:
                self._grow(minimum=need)
            self._ts[self._n : need] = ts
            self._vals[self._n : need] = vals
            self._n = need
            return n
        # The merge may rewrite already-seen history (conservatively so:
        # an internally unordered batch that still lands entirely past
        # the sorted region also takes this path).
        self.reshape_generation += 1
        # Slow path: one stable merge of sorted region + tail + batch.
        merged_ts, merged_vals = _merge_last_wins(
            [self._ts[: self._n], np.asarray(self._tail_ts, dtype=np.int64), ts],
            [self._vals[: self._n], np.asarray(self._tail_vals, dtype=np.float64), vals],
        )
        self._ts = merged_ts
        self._vals = merged_vals
        self._n = int(merged_ts.shape[0])
        self._tail_ts.clear()
        self._tail_vals.clear()
        self._dirty = False
        return n

    def _compact(self) -> None:
        """Merge the unsorted tail into the sorted arrays, deduplicating.

        On duplicate timestamps the most recently written value wins
        (OpenTSDB overwrite semantics); within the tail, later appends win.
        """
        if not self._dirty:
            return
        merged_ts, merged_vals = _merge_last_wins(
            [self._ts[: self._n], np.asarray(self._tail_ts, dtype=np.int64)],
            [self._vals[: self._n], np.asarray(self._tail_vals, dtype=np.float64)],
        )
        self._ts = merged_ts
        self._vals = merged_vals
        self._n = int(merged_ts.shape[0])
        self._tail_ts.clear()
        self._tail_vals.clear()
        self._dirty = False

    def scan(self, start: int | None = None, end: int | None = None) -> SeriesSlice:
        """Sorted slice of points with ``start <= t <= end`` (inclusive)."""
        self._compact()
        ts = self._ts[: self._n]
        lo = 0 if start is None else int(np.searchsorted(ts, start, side="left"))
        hi = self._n if end is None else int(np.searchsorted(ts, end, side="right"))
        return SeriesSlice(ts[lo:hi].copy(), self._vals[lo:hi].copy())

    def latest(self) -> tuple[int, float] | None:
        """Most recent ``(timestamp, value)`` or None when empty."""
        self._compact()
        if self._n == 0:
            return None
        return int(self._ts[self._n - 1]), float(self._vals[self._n - 1])

    def first_timestamp(self) -> int | None:
        self._compact()
        return int(self._ts[0]) if self._n else None

    def delete_before(self, cutoff: int) -> int:
        """Drop points strictly older than ``cutoff``; returns count dropped."""
        self._compact()
        ts = self._ts[: self._n]
        lo = int(np.searchsorted(ts, cutoff, side="left"))
        if lo == 0:
            return 0
        self.generation += 1
        self.reshape_generation += 1
        self._ts = self._ts[lo : self._n].copy()
        self._vals = self._vals[lo : self._n].copy()
        self._n -= lo
        return lo


def _merge_last_wins(
    ts_parts: list[np.ndarray], val_parts: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate, stable-sort by time, and keep the last value per
    timestamp (later parts / later rows overwrite earlier ones)."""
    merged_ts = np.concatenate(ts_parts)
    merged_vals = np.concatenate(val_parts)
    # Stable sort keeps insertion order for equal timestamps, so taking
    # the *last* element of each equal-run implements overwrite.
    order = np.argsort(merged_ts, kind="stable")
    merged_ts = merged_ts[order]
    merged_vals = merged_vals[order]
    keep = np.ones(merged_ts.shape[0], dtype=bool)
    keep[:-1] = merged_ts[1:] != merged_ts[:-1]
    return merged_ts[keep], merged_vals[keep]


def merge_slices(slices: list[SeriesSlice]) -> SeriesSlice:
    """Union several sorted slices into one sorted slice.

    Duplicate timestamps across slices keep the value from the later slice
    in the argument list.  Used when grouping series for aggregation.
    """
    if not slices:
        return SeriesSlice(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))
    if len(slices) == 1:
        return slices[0]
    ts = np.concatenate([s.timestamps for s in slices])
    vals = np.concatenate([s.values for s in slices])
    order = np.argsort(ts, kind="stable")
    ts = ts[order]
    vals = vals[order]
    keep = np.ones(ts.shape[0], dtype=bool)
    keep[:-1] = ts[1:] != ts[:-1]
    return SeriesSlice(ts[keep], vals[keep])
