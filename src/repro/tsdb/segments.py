"""Binary columnar segment format: durability at batch granularity.

The line protocol in :mod:`~repro.tsdb.persistence` formats and parses
every point through Python string machinery — at columnar ingest rates
(~10M pts/s) the log costs more than the ingest itself.  This module
persists data the way the hot path moves it: whole
:class:`~repro.tsdb.batch.PointBatch` columns, encoded and decoded with
``ndarray.tobytes``/``np.frombuffer`` and no per-point Python objects.

Segment file layout (all integers little-endian)::

    file   = magic · block*
    magic  = b"RSEG\\x00\\x01\\r\\n"          (8 bytes; last two catch
                                               text-mode newline mangling)
    block  = u8 type · u32 payload_len · u32 crc32(payload) · payload

Block types:

``0x01`` **batch** — one :class:`PointBatch` as columns::

    u32 n_keys
    n_keys × (u16 len · utf-8 canonical key "metric{k=v,...}")
    u32 n_rows
    u32[n_rows] key_idx          (dictionary-encoded series keys)
    i64[n_rows] ts deltas        (delta[0] = ts[0]; decode = cumsum)
    f64[n_rows] values           (raw IEEE-754 bits)

``0x02`` **marker** — a typed control block, the binary twin of the
text protocol's ``!delete_before`` / ``!delete_series_before`` lines::

    u8 kind (1 = delete_before, 2 = delete_series_before) · i64 cutoff
    u8 has_exclude · u16 len · utf-8 tail
    (kind 1: tail = exclude suffix; kind 2: tail = canonical series key)

``0x03`` **comment** — utf-8 text; readers skip it.

Every block carries a CRC-32 covering its type, length, and payload, so
corruption never goes undetected.  ``strict=False`` recovery is
prefix-preserving: damaged *payload* bytes lose exactly that block (the
intact length prefix lets the reader skip it); a damaged *length* field
is indistinguishable from a torn tail, so recovery keeps every block up
to the damage and stops — the same contract as the text protocol's
lenient mode, at block rather than line granularity.  Row order inside
a batch block is preserved exactly, so replay keeps last-write-wins
semantics and markers interleave with batch blocks at their original
positions.
"""

from __future__ import annotations

import mmap as _mmap
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator

import numpy as np

from .batch import BatchBuilder, PointBatch
from .model import DataPoint, SeriesKey

#: First bytes of every segment file (includes the format version).
SEGMENT_MAGIC = b"RSEG\x00\x01\r\n"

_HEADER = struct.Struct("<BII")  # block type, payload length, crc32
_HEADER_PREFIX = struct.Struct("<BI")  # the crc-covered header fields
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_MARKER_HEAD = struct.Struct("<bqB")  # kind, cutoff, has_exclude

#: Block type tags — public so frame-level consumers (the replication
#: log tees pre-framed blocks; followers decode them) can speak the
#: format without re-deriving constants.
BLOCK_BATCH = _BLOCK_BATCH = 0x01
BLOCK_MARKER = _BLOCK_MARKER = 0x02
BLOCK_COMMENT = _BLOCK_COMMENT = 0x03

_KIND_DELETE_BEFORE = 1
_KIND_DELETE_SERIES_BEFORE = 2

#: Batches larger than this split across blocks (u32 payload bound).
_MAX_BLOCK_ROWS = 1 << 26


@dataclass(frozen=True, slots=True)
class DeleteBefore:
    """Replayable retention marker: drop points older than ``cutoff``.

    Shared by both durability formats — the text protocol renders it as
    a ``!delete_before`` line, the segment format as a marker block.
    """

    cutoff: int
    exclude_suffix: str | None = None


@dataclass(frozen=True, slots=True)
class DeleteSeriesBefore:
    """Replayable scoped-retention marker: drop one series' points older
    than ``cutoff``.

    The durable twin of ``TimeSeriesStore.delete_series_before`` —
    per-city retention policies and the replication stream both need
    scoped deletions to survive replay, not just the store-wide
    :class:`DeleteBefore`.  Text form ``!delete_series_before``, binary
    form marker kind 2.
    """

    key: SeriesKey
    cutoff: int


class SegmentCorruption(ValueError):
    """A segment block failed its structural or checksum validation."""

    def __init__(self, offset: int, reason: str) -> None:
        super().__init__(f"segment offset {offset}: {reason}")
        self.offset = offset
        self.reason = reason


def parse_series_key(text: str) -> SeriesKey:
    """Parse the canonical ``str(SeriesKey)`` form back into a key.

    Unambiguous because the identifier charset forbids ``{``, ``}``,
    ``,`` and ``=``; validation happens in :meth:`SeriesKey.make`, so a
    corrupt key string raises rather than poisoning the store.
    """
    if text.endswith("}"):
        metric, brace, inner = text[:-1].partition("{")
        if not brace:
            raise ValueError(f"malformed series key {text!r}")
        tags: dict[str, str] = {}
        if inner:
            for part in inner.split(","):
                k, eq, v = part.partition("=")
                if not eq:
                    raise ValueError(f"malformed tag pair {part!r} in {text!r}")
                tags[k] = v
        return SeriesKey.make(metric, tags)
    return SeriesKey.make(text)


# ---------------------------------------------------------------------------
# Codec: payload <-> typed value (no framing, no I/O)
# ---------------------------------------------------------------------------
def encode_batch(batch: PointBatch) -> bytes:
    """Encode one batch as a block payload (whole-column ``tobytes``)."""
    parts: list[bytes] = [_U32.pack(len(batch.keys))]
    for key in batch.keys:
        raw = str(key).encode("utf-8")
        if len(raw) > 0xFFFF:
            raise ValueError(f"series key too long to encode: {len(raw)} bytes")
        parts.append(_U16.pack(len(raw)))
        parts.append(raw)
    n = len(batch)
    parts.append(_U32.pack(n))
    parts.append(np.ascontiguousarray(batch.key_idx, dtype="<u4").tobytes())
    ts = np.ascontiguousarray(batch.timestamps, dtype="<i8")
    parts.append(np.diff(ts, prepend=ts.dtype.type(0)).tobytes())
    parts.append(np.ascontiguousarray(batch.values, dtype="<f8").tobytes())
    return b"".join(parts)


def decode_batch(payload: bytes | memoryview) -> PointBatch:
    """Decode a batch payload; columns come straight off ``frombuffer``.

    Accepts a ``memoryview`` (the mmap read path) as well as ``bytes``:
    the column arrays are built with ``np.frombuffer`` over whatever
    buffer came in, so an mmap-backed payload decodes without copying
    the columns out of the page cache — only the (small) key strings
    are materialized.
    """
    off = 0
    try:
        (n_keys,) = _U32.unpack_from(payload, off)
        off += 4
        keys = []
        for _ in range(n_keys):
            (klen,) = _U16.unpack_from(payload, off)
            off += 2
            keys.append(
                parse_series_key(bytes(payload[off : off + klen]).decode("utf-8"))
            )
            off += klen
        (n_rows,) = _U32.unpack_from(payload, off)
        off += 4
    except (struct.error, UnicodeDecodeError, ValueError) as exc:
        raise ValueError(f"bad batch block: {exc}") from None
    if len(payload) - off != n_rows * 20:  # u4 idx + i8 delta + f8 value
        raise ValueError(
            f"bad batch block: {n_rows} rows need {n_rows * 20} column bytes, "
            f"found {len(payload) - off}"
        )
    key_idx = np.frombuffer(payload, "<u4", n_rows, off).astype(np.intp)
    off += 4 * n_rows
    deltas = np.frombuffer(payload, "<i8", n_rows, off)
    off += 8 * n_rows
    values = np.frombuffer(payload, "<f8", n_rows, off)
    timestamps = np.cumsum(deltas, dtype=np.int64)
    return PointBatch(tuple(keys), key_idx, timestamps, values)


def encode_marker(marker: DeleteBefore | DeleteSeriesBefore) -> bytes:
    if isinstance(marker, DeleteSeriesBefore):
        tail = str(marker.key).encode("utf-8")
        head = _MARKER_HEAD.pack(_KIND_DELETE_SERIES_BEFORE, int(marker.cutoff), 0)
        return head + _U16.pack(len(tail)) + tail
    suffix = (marker.exclude_suffix or "").encode("utf-8")
    head = _MARKER_HEAD.pack(
        _KIND_DELETE_BEFORE,
        int(marker.cutoff),
        1 if marker.exclude_suffix is not None else 0,
    )
    return head + _U16.pack(len(suffix)) + suffix


def decode_marker(payload: bytes | memoryview) -> DeleteBefore | DeleteSeriesBefore:
    try:
        kind, cutoff, has_exclude = _MARKER_HEAD.unpack_from(payload, 0)
        (slen,) = _U16.unpack_from(payload, _MARKER_HEAD.size)
        raw = bytes(payload[_MARKER_HEAD.size + 2 : _MARKER_HEAD.size + 2 + slen])
        tail = raw.decode("utf-8")
    except (struct.error, UnicodeDecodeError) as exc:
        raise ValueError(f"bad marker block: {exc}") from None
    if len(raw) != slen:
        raise ValueError("bad marker block: truncated marker tail")
    if kind == _KIND_DELETE_BEFORE:
        return DeleteBefore(cutoff, tail if has_exclude else None)
    if kind == _KIND_DELETE_SERIES_BEFORE:
        try:
            return DeleteSeriesBefore(parse_series_key(tail), cutoff)
        except ValueError as exc:
            raise ValueError(f"bad series marker: {exc}") from None
    raise ValueError(f"unknown marker kind {kind}")


def frame_block(block_type: int, payload: bytes) -> bytes:
    """Wrap a block payload in the on-disk/on-wire frame.

    The CRC covers the type and length fields too, so header damage is
    detected as corruption rather than trusted as framing.  Public
    because framed blocks *are* the replication wire unit: the
    replication log stores them, the shipper sends them verbatim, and
    the follower validates them with :func:`decode_frame`.
    """
    crc = zlib.crc32(payload, zlib.crc32(_HEADER_PREFIX.pack(block_type, len(payload))))
    return _HEADER.pack(block_type, len(payload), crc) + payload


_frame = frame_block


def decode_frame(frame: bytes) -> tuple[int, bytes]:
    """Validate one complete in-memory framed block → ``(type, payload)``.

    The in-memory twin of the file reader's framing walk, for consumers
    that receive exactly one frame (a replication record): checks the
    length against the actual byte count and the CRC against header +
    payload, raising :class:`SegmentCorruption` on any mismatch.
    """
    if len(frame) < _HEADER.size:
        raise SegmentCorruption(0, "truncated block header")
    block_type, plen, crc = _HEADER.unpack_from(frame, 0)
    payload = frame[_HEADER.size :]
    if len(payload) != plen:
        raise SegmentCorruption(
            0, f"frame length mismatch ({len(payload)}/{plen} payload bytes)"
        )
    expect = zlib.crc32(payload, zlib.crc32(frame[: _HEADER_PREFIX.size]))
    if expect != crc:
        raise SegmentCorruption(0, "block checksum mismatch")
    return block_type, payload


def decode_block(
    block_type: int, payload: bytes | memoryview
) -> PointBatch | DeleteBefore | DeleteSeriesBefore | None:
    """Decode a validated block payload into its typed value.

    Comments decode to ``None`` (readers skip them); an unknown block
    type raises ``ValueError``, mirroring :func:`iter_segments`.
    """
    if block_type == _BLOCK_BATCH:
        return decode_batch(payload)
    if block_type == _BLOCK_MARKER:
        return decode_marker(payload)
    if block_type == _BLOCK_COMMENT:
        return None
    raise ValueError(f"unknown block type 0x{block_type:02x}")


def _clean_length(path: Path) -> int:
    """Byte offset of the end of the last structurally complete block.

    Walks headers and seeks over payloads (no payload reads, no CRC
    work), so reopening a multi-GB WAL stays cheap; a header or payload
    cut short by a torn write marks the clean end.
    """
    size = path.stat().st_size
    with open(path, "rb") as fh:
        clean = len(SEGMENT_MAGIC)
        fh.seek(clean)
        while True:
            header = fh.read(_HEADER.size)
            if len(header) < _HEADER.size:
                return clean
            _, plen, _ = _HEADER.unpack(header)
            end = clean + _HEADER.size + plen
            if end > size:
                return clean
            fh.seek(end)
            clean = end


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------
class SegmentWriter:
    """Append-only segment writer; the binary twin of ``LogWriter``.

    Accepts whole batches (:meth:`write_batch`, the hot path) and the
    per-point surface retention tees rely on (:meth:`write`,
    :meth:`write_many`, :meth:`delete_before`) — per-point writes buffer
    in a :class:`BatchBuilder` and land as one batch block, flushed
    before any marker or comment so stream order is preserved.
    """

    def __init__(
        self, path: str | os.PathLike[str] | BinaryIO, *, append: bool = True
    ) -> None:
        if isinstance(path, (str, os.PathLike)):
            self._path: Path | None = Path(path)
            fresh = (
                not append
                or not self._path.exists()
                or self._path.stat().st_size == 0
            )
            if fresh:
                self._fh: BinaryIO = open(self._path, "wb")
                self._owns = True
                self._fh.write(SEGMENT_MAGIC)
                self._fh.flush()
            else:
                # Reopening an existing WAL (e.g. after a restart): drop
                # a torn tail *before* appending.  The format has no
                # resync marker — a partial block's length prefix would
                # swallow the start of whatever we append after it, so
                # blocks written post-restart would be unrecoverable.
                with open(self._path, "rb") as probe:
                    if probe.read(len(SEGMENT_MAGIC)) != SEGMENT_MAGIC:
                        raise SegmentCorruption(
                            0, f"{self._path} is not a segment file; refusing to append"
                        )
                clean = _clean_length(self._path)
                self._fh = open(self._path, "r+b")
                self._fh.seek(clean)
                self._fh.truncate(clean)
                self._owns = True
        else:
            self._path = None
            self._fh = path
            self._owns = False
            if not self._fh.seekable() or self._fh.tell() == 0:
                self._fh.write(SEGMENT_MAGIC)
        self._written = 0
        self._pending = BatchBuilder()

    @property
    def written(self) -> int:
        """Points written (markers and comments don't count)."""
        return self._written

    def write_batch(self, batch: PointBatch) -> int:
        """Append one batch as (usually) one checksummed block.

        Flushes per batch, like the text twin — WAL hooks rely on the
        block being on disk before the batch becomes visible in the
        store (durability precedes visibility)."""
        frames, npend = self._pending_frames()
        for lo in range(0, len(batch), _MAX_BLOCK_ROWS):
            frames.append(
                _frame(_BLOCK_BATCH, encode_batch(batch.rows(lo, lo + _MAX_BLOCK_ROWS)))
            )
        self._emit(frames, npend + len(batch))
        return len(batch)

    def write(self, point: DataPoint) -> None:
        """Buffer one point; it lands in the next batch block."""
        self._pending.add_point(point)

    def write_many(self, points: Iterable[DataPoint]) -> int:
        """Buffer many points and flush them as one block; returns the
        number of points passed in (not previously buffered ones)."""
        before = len(self._pending)
        for p in points:
            self._pending.add_point(p)
        n = len(self._pending) - before
        self.flush()
        return n

    def delete_before(
        self, cutoff: int, *, exclude_suffix: str | None = None
    ) -> None:
        """Append a retention marker block (flushes immediately — a
        buffered marker lost in a crash would resurrect deleted points
        on replay, exactly as in the text protocol)."""
        frames, npend = self._pending_frames()
        frames.append(
            _frame(_BLOCK_MARKER, encode_marker(DeleteBefore(int(cutoff), exclude_suffix)))
        )
        self._emit(frames, npend)

    def delete_series_before(self, key: SeriesKey, cutoff: int) -> None:
        """Append a scoped-retention marker block (flushed immediately,
        like :meth:`delete_before` — same resurrect-on-replay hazard)."""
        frames, npend = self._pending_frames()
        frames.append(
            _frame(_BLOCK_MARKER, encode_marker(DeleteSeriesBefore(key, int(cutoff))))
        )
        self._emit(frames, npend)

    def comment(self, text: str) -> None:
        frames, npend = self._pending_frames()
        frames.append(_frame(_BLOCK_COMMENT, text.encode("utf-8")))
        self._emit(frames, npend)

    def _pending_frames(self) -> tuple[list[bytes], int]:
        """The buffered per-point writes as a frame, without clearing
        them — the buffer resets only once the emit succeeds."""
        if not len(self._pending):
            return [], 0
        batch = self._pending.build(clear=False)
        return [_frame(_BLOCK_BATCH, encode_batch(batch))], len(batch)

    def _emit(self, frames: list[bytes], points: int) -> None:
        """Write and flush whole frames; all-or-nothing on disk.

        On a failed write (disk full mid-frame), a torn frame left on
        disk would swallow everything appended after it on replay — the
        format has no resync marker.  For writers that own their file,
        roll the file back to the pre-emit offset so the WAL stays
        appendable and the caller can simply retry.
        """
        if not frames:
            return
        data = b"".join(frames)
        if self._owns and self._path is not None:
            clean = self._fh.tell()
            try:
                self._fh.write(data)
                self._fh.flush()
            except BaseException:
                self._rollback(clean)
                raise
        else:
            self._fh.write(data)
            self._fh.flush()
        self._written += points
        if points:
            self._pending = BatchBuilder()

    def _rollback(self, clean: int) -> None:
        """Drop torn frame bytes: close the (possibly dirty) handle,
        truncate to the last clean offset, reopen for append."""
        try:
            self._fh.close()
        except OSError:
            pass
        try:
            with open(self._path, "r+b") as fh:
                fh.truncate(clean)
        except OSError:
            return  # nothing recoverable; the next write fails loudly
        self._fh = open(self._path, "ab")

    def flush(self) -> None:
        frames, npend = self._pending_frames()
        self._emit(frames, npend)
        self._fh.flush()

    def close(self) -> None:
        self.flush()
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "SegmentWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Reader
# ---------------------------------------------------------------------------
def iter_segments(
    source: str | os.PathLike[str] | BinaryIO,
    *,
    strict: bool = True,
    mmap: bool = False,
) -> Iterator[PointBatch | DeleteBefore | DeleteSeriesBefore]:
    """Yield batch blocks and control markers from a segment, in order.

    With ``strict=False``, a block whose checksum or structure fails is
    skipped by its length prefix, and a truncated tail (or a corrupted
    length field, which is indistinguishable from one) ends iteration
    cleanly after the last clean block — the unclean-shutdown recovery
    path.  A missing or wrong magic always raises: that is a different
    *format*, not a damaged segment.

    With ``mmap=True`` (path sources only) the file is memory-mapped
    and block payloads are ``memoryview`` slices of the map: column
    decode runs ``np.frombuffer`` straight out of the page cache with
    no read-and-copy pass.  The map stays alive for as long as any
    decoded column still references it, so callers that keep batches
    around keep pages mapped — the intended trade for cold-shard
    paging, where the store copies columns on ingest anyway.
    """
    for offset, block_type, payload in _iter_blocks(source, strict=strict, mmap=mmap):
        try:
            item = decode_block(block_type, payload)
        except ValueError as exc:
            if strict:
                raise SegmentCorruption(offset, str(exc)) from None
            continue
        if item is not None:
            yield item


def _iter_blocks_mmap(
    path: str | os.PathLike[str], *, strict: bool
) -> Iterator[tuple[int, int, memoryview]]:
    """mmap twin of :func:`_iter_blocks`: the same framing walk and
    lenient skip/stop rules, but payloads are zero-copy ``memoryview``
    slices of the mapped file.  The map is closed eagerly when the last
    consumer releases its views; until then the OS pages it on demand.
    """
    with open(path, "rb") as fh:
        size = os.fstat(fh.fileno()).st_size
        if size < len(SEGMENT_MAGIC):
            head = fh.read(len(SEGMENT_MAGIC))
            raise SegmentCorruption(0, f"bad segment magic {head!r}")
        mm = _mmap.mmap(fh.fileno(), 0, access=_mmap.ACCESS_READ)
    view = memoryview(mm)
    try:
        if bytes(view[: len(SEGMENT_MAGIC)]) != SEGMENT_MAGIC:
            raise SegmentCorruption(
                0, f"bad segment magic {bytes(view[: len(SEGMENT_MAGIC)])!r}"
            )
        offset = len(SEGMENT_MAGIC)
        while offset < size:
            if size - offset < _HEADER.size:
                if strict:
                    raise SegmentCorruption(offset, "truncated block header")
                return
            block_type, plen, crc = _HEADER.unpack_from(view, offset)
            start = offset
            payload_start = offset + _HEADER.size
            end = payload_start + plen
            if end > size:
                if strict:
                    raise SegmentCorruption(
                        start, f"truncated payload ({size - payload_start}/{plen} bytes)"
                    )
                return
            payload = view[payload_start:end]
            offset = end
            expect = zlib.crc32(
                payload, zlib.crc32(view[start : start + _HEADER_PREFIX.size])
            )
            if expect != crc:
                if strict:
                    raise SegmentCorruption(start, "block checksum mismatch")
                continue
            yield start, block_type, payload
    finally:
        view.release()
        try:
            mm.close()
        except BufferError:
            pass  # zero-copy consumers still hold views; GC frees the map


def _iter_blocks(
    source: str | os.PathLike[str] | BinaryIO, *, strict: bool, mmap: bool = False
) -> Iterator[tuple[int, int, bytes | memoryview]]:
    """The framing walk under every reader: yield CRC-validated
    ``(offset, block_type, payload)`` triples, applying the lenient
    skip/stop rules for damaged or truncated blocks."""
    if mmap and isinstance(source, (str, os.PathLike)):
        yield from _iter_blocks_mmap(source, strict=strict)
        return
    if isinstance(source, (str, os.PathLike)):
        fh: BinaryIO = open(source, "rb")
        owns = True
    else:
        fh = source
        owns = False
    try:
        head = fh.read(len(SEGMENT_MAGIC))
        if head != SEGMENT_MAGIC:
            raise SegmentCorruption(0, f"bad segment magic {head!r}")
        offset = len(SEGMENT_MAGIC)
        while True:
            header = fh.read(_HEADER.size)
            if not header:
                return
            if len(header) < _HEADER.size:
                if strict:
                    raise SegmentCorruption(offset, "truncated block header")
                return
            block_type, plen, crc = _HEADER.unpack(header)
            payload = fh.read(plen)
            if len(payload) < plen:
                if strict:
                    raise SegmentCorruption(
                        offset, f"truncated payload ({len(payload)}/{plen} bytes)"
                    )
                return
            start = offset
            offset += _HEADER.size + plen
            expect = zlib.crc32(payload, zlib.crc32(header[: _HEADER_PREFIX.size]))
            if expect != crc:
                if strict:
                    raise SegmentCorruption(start, "block checksum mismatch")
                continue
            yield start, block_type, payload
    finally:
        if owns:
            fh.close()


def segment_point_count(
    source: str | os.PathLike[str] | BinaryIO,
    *,
    strict: bool = True,
    mmap: bool = False,
) -> int:
    """Total rows across a segment's batch blocks (markers excluded).

    A framing walk only — CRCs are validated but columns are never
    decoded, so counting a large spill backlog at adoption time costs
    one read pass, not a full columnar decode.
    """
    total = 0
    for offset, block_type, payload in _iter_blocks(source, strict=strict, mmap=mmap):
        if block_type != _BLOCK_BATCH:
            continue
        try:
            total += _batch_row_count(payload)
        except ValueError as exc:
            if strict:
                raise SegmentCorruption(offset, str(exc)) from None
    return total


@dataclass(frozen=True, slots=True)
class SegmentStats:
    """Framing-walk summary of one segment file — what a compaction
    trigger policy looks at before deciding to rewrite.

    Collected without decoding any columns (same cost profile as
    :func:`segment_point_count`), so polling a live WAL for "is it
    fragmented enough to compact?" stays cheap.
    """

    size_bytes: int
    blocks: int
    batch_blocks: int
    marker_blocks: int
    comment_blocks: int
    points: int

    @property
    def points_per_batch(self) -> float:
        """Mean batch-block granularity; low values mean a fragmented
        WAL of many small appends — the compaction signal."""
        if not self.batch_blocks:
            return 0.0
        return self.points / self.batch_blocks


def segment_stats(
    path: str | os.PathLike[str], *, strict: bool = False, mmap: bool = False
) -> SegmentStats:
    """Summarize a segment file's block population and row count.

    Lenient by default (``strict=False``): a torn tail or damaged block
    should make a WAL *more* eligible for compaction, not crash the
    poller that decides whether to compact it.
    """
    path = Path(path)
    size = path.stat().st_size
    blocks = batch_blocks = marker_blocks = comment_blocks = points = 0
    for offset, block_type, payload in _iter_blocks(path, strict=strict, mmap=mmap):
        blocks += 1
        if block_type == _BLOCK_BATCH:
            batch_blocks += 1
            try:
                points += _batch_row_count(payload)
            except ValueError as exc:
                if strict:
                    raise SegmentCorruption(offset, str(exc)) from None
        elif block_type == _BLOCK_MARKER:
            marker_blocks += 1
        elif block_type == _BLOCK_COMMENT:
            comment_blocks += 1
    return SegmentStats(
        size_bytes=size,
        blocks=blocks,
        batch_blocks=batch_blocks,
        marker_blocks=marker_blocks,
        comment_blocks=comment_blocks,
        points=points,
    )


def _batch_row_count(payload: bytes | memoryview) -> int:
    """Row count of a batch payload, skipping the key dictionary and
    columns; validates the same structure ``decode_batch`` would."""
    off = 0
    try:
        (n_keys,) = _U32.unpack_from(payload, off)
        off += 4
        for _ in range(n_keys):
            (klen,) = _U16.unpack_from(payload, off)
            off += 2 + klen
        (n_rows,) = _U32.unpack_from(payload, off)
        off += 4
    except struct.error as exc:
        raise ValueError(f"bad batch block: {exc}") from None
    if len(payload) - off != n_rows * 20:
        raise ValueError("bad batch block: column bytes disagree with row count")
    return n_rows
