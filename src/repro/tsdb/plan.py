"""Query planning and batched execution: the v2 query engine.

The declarative surface (:class:`~repro.tsdb.query.Query`) is unchanged;
this module adds everything around it:

- :func:`select` / :class:`QueryBuilder` — fluent, immutable query
  construction (``store.select("air.co2.ppm").where(city="trondheim",
  node="*").range(t0, t1).downsample("5m-avg").rate().group_by("node")``);
- :func:`expr` / :class:`ExprQuery` — expression queries combining
  sub-queries arithmetically (``expr("a - b", a=..., b=...)`` for
  CO2-minus-baseline style dashboard panels);
- :func:`run_batch` — the batched executor behind ``store.run_many``:
  deduplicates queries, shares series matching and physical scans
  across the whole batch, dispatches to the store's execution hook, and
  evaluates expressions over the batch results;
- :func:`execute_plan` — the seed scan → rate → group-by → aggregate →
  downsample plan, factored into reusable stages (:func:`group_keys`,
  :func:`aggregate_across`, :func:`reduce_group`) so the single store,
  the sharded fan-out, and the per-shard pushdown all run the *same*
  code over the same slices — results are bit-identical no matter which
  engine executed them;
- :class:`ScanPlan` / :func:`partial_aggregate` — the physical helpers:
  one covering-range scan per touched series for a whole batch, and the
  per-shard partial aggregates merged through
  :func:`~repro.tsdb.aggregators.mergeable` pairs.

The old one-shot entry points (``TSDB.run``, ``StoreApi.query``,
``query_range``) are thin shims over this planner: a single query is
just a batch of one.
"""

from __future__ import annotations

import ast
import operator
from collections import defaultdict
from dataclasses import dataclass, replace
from typing import Callable, Iterator, Mapping, Sequence

import numpy as np

from . import aggregators
from .downsample import Downsample, apply as apply_downsample
from .model import SeriesKey
from .query import Query, QueryError, QueryResult, ResultSeries, compute_rate
from .series import SeriesSlice


def _empty_slice() -> SeriesSlice:
    return SeriesSlice(np.empty(0, np.int64), np.empty(0, np.float64))


# ---------------------------------------------------------------------------
# Fluent builder
# ---------------------------------------------------------------------------


def select(metric: str, *, store: object | None = None) -> QueryBuilder:
    """Start a fluent query builder (optionally bound to a store).

    ``store.select(metric)`` is the bound form; the unbound form builds
    queries for :func:`run_batch` / ``run_many`` / :func:`expr`.
    """
    return QueryBuilder(_store=store, _metric=metric)


@dataclass(frozen=True)
class QueryBuilder:
    """Immutable fluent builder over :class:`Query`.

    Every method returns a *new* builder, so partial builders can be
    shared and forked (one base per dashboard, one fork per panel).
    ``build()`` validates eagerly through ``Query.__post_init__``;
    ``run()`` executes through the planner on the bound store.
    """

    _store: object | None = None
    _metric: str | None = None
    _start: int | None = None
    _end: int | None = None
    _tags: tuple[tuple[str, str], ...] = ()
    _aggregator: str = "avg"
    _downsample: str | Downsample | None = None
    _rate: bool = False
    _group_by: tuple[str, ...] = ()

    def where(
        self, tags: Mapping[str, str] | None = None, **more: str
    ) -> QueryBuilder:
        """Add tag filters (``"*"`` and ``"a|b"`` supported); merges."""
        merged = dict(self._tags)
        merged.update(tags or {})
        merged.update(more)
        return replace(self, _tags=tuple(sorted(merged.items())))

    def range(self, start: int, end: int) -> QueryBuilder:
        """Inclusive epoch-second time range."""
        return replace(self, _start=int(start), _end=int(end))

    def aggregate(self, name: str) -> QueryBuilder:
        """Cross-series aggregator (``"avg"``, ``"p95"``, ...)."""
        return replace(self, _aggregator=name)

    agg = aggregate

    def downsample(self, spec: str | Downsample) -> QueryBuilder:
        """Downsample spec, e.g. ``"5m-avg"`` or ``"1h-max-nan"``."""
        return replace(self, _downsample=spec)

    def rate(self, enabled: bool = True) -> QueryBuilder:
        """Emit the per-second first derivative (counter metrics)."""
        return replace(self, _rate=bool(enabled))

    def group_by(self, *keys: str) -> QueryBuilder:
        """Tag keys whose value combinations each get their own series."""
        return replace(self, _group_by=self._group_by + tuple(keys))

    def build(self) -> Query:
        """Materialize the declarative :class:`Query` (validates)."""
        if self._metric is None:
            raise QueryError("builder has no metric; start from select(metric)")
        if self._start is None or self._end is None:
            raise QueryError("builder has no time range; call .range(start, end)")
        return Query(
            self._metric,
            self._start,
            self._end,
            tags=dict(self._tags),
            aggregator=self._aggregator,
            downsample=self._downsample,
            rate=self._rate,
            group_by=self._group_by,
        )

    def run(self, store: object | None = None, *, parallel: bool | None = None):
        """Build and execute on ``store`` (or the bound store)."""
        target = store if store is not None else self._store
        if target is None:
            raise QueryError(
                "builder is not bound to a store; use store.select(...) or "
                "pass one to run(store)"
            )
        return run_batch(target, [self.build()], parallel=parallel)[0]


# ---------------------------------------------------------------------------
# Expression queries: arithmetic over sub-query results
# ---------------------------------------------------------------------------

_BIN_OPS = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: operator.mul,
    ast.Div: operator.truediv,
    ast.Mod: operator.mod,
    ast.Pow: operator.pow,
}
_UNARY_OPS = {ast.USub: operator.neg, ast.UAdd: operator.pos}


def _compile_formula(formula: str):
    """Parse a formula into (referenced names, evaluator).

    Only arithmetic over named sub-queries and numeric constants is
    allowed — no calls, attributes, subscripts, or comparisons — so a
    formula arriving over the wire cannot execute anything.
    """
    try:
        tree = ast.parse(formula, mode="eval")
    except SyntaxError as exc:
        raise QueryError(f"malformed expression {formula!r}: {exc}") from None
    names: set[str] = set()

    def check(node: ast.AST) -> None:
        if isinstance(node, ast.Expression):
            check(node.body)
        elif isinstance(node, ast.BinOp) and type(node.op) in _BIN_OPS:
            check(node.left)
            check(node.right)
        elif isinstance(node, ast.UnaryOp) and type(node.op) in _UNARY_OPS:
            check(node.operand)
        elif (
            isinstance(node, ast.Constant)
            and isinstance(node.value, (int, float))
            and not isinstance(node.value, bool)
        ):
            pass
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            names.add(node.id)
        else:
            raise QueryError(
                f"expression {formula!r}: only +, -, *, /, %, ** over named "
                "sub-queries and numeric constants are allowed"
            )

    check(tree)
    if not names:
        raise QueryError(f"expression {formula!r} references no sub-queries")

    def evaluate(env: Mapping[str, np.ndarray]) -> np.ndarray:
        def ev(node: ast.AST):
            if isinstance(node, ast.Expression):
                return ev(node.body)
            if isinstance(node, ast.BinOp):
                return _BIN_OPS[type(node.op)](ev(node.left), ev(node.right))
            if isinstance(node, ast.UnaryOp):
                return _UNARY_OPS[type(node.op)](ev(node.operand))
            if isinstance(node, ast.Constant):
                return node.value
            return env[node.id]  # ast.Name; validated above

        with np.errstate(divide="ignore", invalid="ignore"):
            return np.asarray(ev(tree), dtype=np.float64)

    return names, evaluate


@dataclass(frozen=True)
class ExprQuery:
    """A formula over named sub-queries, e.g. ``a - b``.

    Build via :func:`expr`.  Missing instants are NaN before the
    arithmetic, so gaps propagate instead of silently zero-filling.
    Grouped operands must agree on their group labels; single-series
    operands broadcast across the groups (per-node CO2 minus the
    city-wide baseline in one expression).
    """

    formula: str
    operands: tuple[tuple[str, Query], ...]

    def __post_init__(self) -> None:
        names, _ = _compile_formula(self.formula)
        bound = {name for name, _ in self.operands}
        if names - bound:
            raise QueryError(
                f"expression {self.formula!r} references unbound operands: "
                f"{sorted(names - bound)}"
            )
        if bound - names:
            raise QueryError(
                f"expression {self.formula!r} never uses operands: "
                f"{sorted(bound - names)}"
            )

    def operand_map(self) -> dict[str, Query]:
        return dict(self.operands)


def expr(formula: str, **operands: Query | QueryBuilder) -> ExprQuery:
    """Combine sub-queries arithmetically: ``expr("a - b", a=..., b=...)``.

    Operands are :class:`Query` or (unbound) builders; the planner runs
    them inside the same batch as everything else, so an expression's
    sub-queries share matching and scans with sibling dashboard panels.
    """
    normalized = tuple(
        (name, _as_query(sub)) for name, sub in sorted(operands.items())
    )
    return ExprQuery(formula, normalized)


def _as_query(obj: Query | QueryBuilder) -> Query:
    if isinstance(obj, Query):
        return obj
    if isinstance(obj, QueryBuilder):
        return obj.build()
    raise QueryError(
        f"expected Query or QueryBuilder, got {type(obj).__name__}"
    )


@dataclass(frozen=True)
class ExprResult:
    """All series produced by one expression query."""

    expr: ExprQuery
    series: tuple[ResultSeries, ...]
    scanned_points: int

    def __len__(self) -> int:
        return len(self.series)

    def __iter__(self) -> Iterator[ResultSeries]:
        return iter(self.series)

    def single(self) -> ResultSeries:
        if len(self.series) != 1:
            raise QueryError(
                f"expected exactly one result series, got {len(self.series)}"
            )
        return self.series[0]

    def is_empty(self) -> bool:
        return all(len(s) == 0 for s in self.series)


def _evaluate_expr(
    eq: ExprQuery, results: Mapping[str, QueryResult]
) -> ExprResult:
    """Combine operand results through the formula, label by label."""
    names, evaluate = _compile_formula(eq.formula)
    ordered = sorted(names)
    per_op: dict[str, dict[tuple, ResultSeries]] = {}
    for name in ordered:
        per_op[name] = {
            tuple(sorted(s.group_tags.items())): s for s in results[name].series
        }
    # Operands producing one ungrouped series broadcast; all others must
    # agree on the exact label set.
    label_sets = {name: set(per_op[name]) for name in ordered}
    labeled = [name for name in ordered if label_sets[name] != {()}]
    if labeled:
        base = label_sets[labeled[0]]
        for name in labeled[1:]:
            if label_sets[name] != base:
                raise QueryError(
                    f"expression {eq.formula!r}: operands {labeled[0]!r} and "
                    f"{name!r} have mismatched group labels"
                )
        out_labels = sorted(base)
    else:
        out_labels = [()]

    out_series: list[ResultSeries] = []
    for label in out_labels:
        parts = {
            name: (
                per_op[name][label]
                if label_sets[name] != {()}
                else per_op[name][()]
            )
            for name in ordered
        }
        union = np.unique(
            np.concatenate([s.timestamps for s in parts.values()])
        ) if parts else np.empty(0, np.int64)
        env: dict[str, np.ndarray] = {}
        for name, s in parts.items():
            col = np.full(union.shape[0], np.nan)
            col[np.searchsorted(union, s.timestamps)] = s.values
            env[name] = col
        values = evaluate(env)
        if values.shape != union.shape:  # constant-dominated formula
            values = np.broadcast_to(values, union.shape).astype(np.float64)
        sources = tuple(
            sorted({k for s in parts.values() for k in s.source_series}, key=str)
        )
        out_series.append(
            ResultSeries(
                metric=eq.formula,
                group_tags=dict(label),
                slice=SeriesSlice(union, values),
                source_series=sources,
            )
        )
    scanned = sum(results[name].scanned_points for name in ordered)
    return ExprResult(eq, tuple(out_series), scanned)


# ---------------------------------------------------------------------------
# The logical plan, factored into reusable stages
# ---------------------------------------------------------------------------


def group_keys(
    query: Query, matched: Sequence[SeriesKey]
) -> dict[tuple[tuple[str, str], ...], list[SeriesKey]]:
    """Partition matched keys into group-by labels; keys sorted per group.

    A pure function of the key set — independent of the order ``matched``
    arrived in and of which shard each key lives on, which is what makes
    pushdown safe: every engine forms the same groups.
    """
    groups: dict[tuple, list[SeriesKey]] = defaultdict(list)
    for key in matched:
        label = tuple((g, key.tag(g, "")) for g in sorted(query.group_by))
        groups[label].append(key)
    return {label: sorted(keys, key=str) for label, keys in groups.items()}


def _sorted_union(parts: list[np.ndarray]) -> np.ndarray:
    """Sorted unique union of sorted int64 arrays.

    Output-identical to ``np.unique(np.concatenate(parts))`` but via a
    stable sort (fast on concatenations of sorted runs, and it releases
    the GIL, unlike numpy's hash-based unique) plus a dedup mask.
    """
    merged = np.sort(np.concatenate(parts), kind="stable")
    if merged.shape[0] == 0:
        return merged
    keep = np.empty(merged.shape[0], dtype=bool)
    keep[0] = True
    np.not_equal(merged[1:], merged[:-1], out=keep[1:])
    return merged[keep]


def build_stack(slices: list[SeriesSlice]) -> tuple[np.ndarray, np.ndarray]:
    """Align slices on their timestamp union as a (series, instant) matrix."""
    all_ts = _sorted_union([s.timestamps for s in slices])
    stacked = np.full((len(slices), all_ts.shape[0]), np.nan)
    for i, s in enumerate(slices):
        stacked[i, np.searchsorted(all_ts, s.timestamps)] = s.values
    return all_ts, stacked


def _stacked_for(
    slices: list[SeriesSlice], stack_cache: dict | None
) -> tuple[np.ndarray, np.ndarray, dict | None]:
    """Union+stack (+ shared-moments dict) for ``slices``, memoized per
    batch when a cache is given.

    Keys are slice identities; each entry pins its slices, so a freed
    slice's address can never be reused by an object that would collide
    with a live key (no false hits).  The returned moments dict is
    per-stack: aggregators that share a first pass (avg/sum/dev) store
    their (finite, counts, sums) there once per matrix.
    """
    if stack_cache is None:
        return build_stack(slices) + (None,)
    key = tuple(map(id, slices))
    entry = stack_cache.get(key)
    if entry is None:
        all_ts, stacked = build_stack(slices)
        entry = stack_cache[key] = (list(slices), all_ts, stacked, {})
    return entry[1], entry[2], entry[3]


def aggregate_across(
    slices: list[SeriesSlice], agg, *, stack_cache: dict | None = None
) -> SeriesSlice:
    """Combine several series into one by aggregating per timestamp.

    Timestamps are the union of all input timestamps; at each instant the
    aggregator sees the values of every series that has a point exactly
    there.  (OpenTSDB interpolates; our feeds are bucket-aligned by the
    ingest pipeline, so exact alignment is the common case and
    interpolation is left to downsample fill policies.)

    ``agg`` is a *columnar* aggregator (see
    :func:`~repro.tsdb.aggregators.get_columnar`): the whole
    series×instant matrix reduces in one numpy pass instead of a Python
    loop per timestamp.

    ``stack_cache`` is the batched executor's cross-query win: queries
    in one batch that aggregate the *same* slice objects (a dashboard's
    ``avg`` and ``p95`` panels over one metric) share the union+stack
    work and differ only in the final reduction.  Keys are slice
    identities, so the cache is only valid while the batch holds its
    prepared slices — callers pass a per-batch dict.
    """
    slices = [s for s in slices if len(s) > 0]
    if not slices:
        return _empty_slice()
    if len(slices) == 1 and agg not in aggregators.NON_IDENTITY_COLUMNAR:
        # Sound only where aggregating one series is the identity —
        # count (→ 1-where-finite) and dev (→ 0) take the full path, or
        # a group whose siblings fall away (rate on a 1-point series,
        # empty shard partials) would return raw values instead.
        return slices[0]
    all_ts, stacked, moments = _stacked_for(slices, stack_cache)
    if moments is not None and agg in aggregators.MOMENT_AWARE_COLUMNAR:
        return SeriesSlice(all_ts, agg(stacked, moments))
    return SeriesSlice(all_ts, agg(stacked))


def reduce_group(
    query: Query,
    slices: list[SeriesSlice],
    *,
    ds: Downsample | None,
    agg,
    stack_cache: dict | None = None,
) -> SeriesSlice:
    """Finish one group: cross-series aggregate, then downsample."""
    combined = aggregate_across(slices, agg, stack_cache=stack_cache)
    if ds is not None:
        combined = apply_downsample(combined, ds, query.start, query.end)
    return combined


def execute_plan(
    query: Query,
    matched: Sequence[SeriesKey],
    scan: Callable[[SeriesKey], SeriesSlice],
    *,
    stack_cache: dict | None = None,
) -> QueryResult:
    """The group-by → aggregate → downsample plan over scanned slices.

    ``matched`` is the set of series the query touches and ``scan``
    produces each one's time-sorted slice; everything downstream of the
    scan is store-layout-independent.  The single store, the sharded
    fan-out, and the batched executor all run queries through these same
    stages, so results are bit-identical regardless of how series are
    partitioned: groups form from the key set alone and slices always
    aggregate in sorted key order.
    """
    ds = query.parsed_downsample()
    agg = aggregators.get_columnar(query.aggregator)

    scanned = 0
    series_out: list[ResultSeries] = []
    for label, keys in sorted(group_keys(query, matched).items()):
        slices: list[SeriesSlice] = []
        for key in keys:
            sl = scan(key)
            scanned += len(sl)
            if query.rate:
                sl = compute_rate(sl)
            slices.append(sl)
        series_out.append(
            ResultSeries(
                metric=query.metric,
                group_tags=dict(label),
                slice=reduce_group(
                    query, slices, ds=ds, agg=agg, stack_cache=stack_cache
                ),
                source_series=tuple(keys),
            )
        )
    if not series_out:
        series_out.append(ResultSeries(query.metric, {}, _empty_slice(), ()))
    return QueryResult(query=query, series=tuple(series_out), scanned_points=scanned)


# ---------------------------------------------------------------------------
# Physical helpers: shared scans and pushdown partials
# ---------------------------------------------------------------------------


class ScanPlan:
    """One physical scan per touched series for a whole query batch.

    Queries register the ranges they need per key; ``resolve`` runs one
    covering-range scan per key; ``slice_for`` hands each query its
    sub-range.  Timestamps are strictly increasing, so the searchsorted
    sub-range of the covering scan is bit-identical to a direct
    ``scan(start, end)`` — sharing is invisible to results.
    """

    def __init__(self) -> None:
        self._ranges: dict[SeriesKey, list[int]] = {}
        self._scans: dict[SeriesKey, SeriesSlice] = {}
        self._subslices: dict[tuple[SeriesKey, int, int], SeriesSlice] = {}

    def need(self, key: SeriesKey, start: int, end: int) -> None:
        bounds = self._ranges.get(key)
        if bounds is None:
            self._ranges[key] = [start, end]
        else:
            bounds[0] = min(bounds[0], start)
            bounds[1] = max(bounds[1], end)

    @property
    def touched(self) -> int:
        return len(self._ranges)

    def resolve(
        self, scanner: Callable[[SeriesKey, int, int], SeriesSlice]
    ) -> None:
        for key, (lo, hi) in self._ranges.items():
            self._scans[key] = scanner(key, lo, hi)

    def slice_for(self, key: SeriesKey, start: int, end: int) -> SeriesSlice:
        """Sub-range of the covering scan; memoized so queries sharing a
        (key, range) see the *same* slice object (which is what lets the
        batch's stack cache recognize shared aggregation work)."""
        sl = self._scans[key]
        lo, hi = self._ranges[key]
        if lo == start and hi == end:
            return sl
        memo_key = (key, start, end)
        sub = self._subslices.get(memo_key)
        if sub is None:
            ts = sl.timestamps
            a = int(np.searchsorted(ts, start, side="left"))
            b = int(np.searchsorted(ts, end, side="right"))
            sub = (
                sl
                if a == 0 and b == ts.shape[0]
                else SeriesSlice(ts[a:b], sl.values[a:b])
            )
            self._subslices[memo_key] = sub
        return sub


def partial_aggregate(
    slices: list[SeriesSlice], partial_fn, *, stack_cache: dict | None = None
) -> SeriesSlice:
    """Partial cross-series aggregate of one shard's slices.

    Like :func:`aggregate_across` but *without* the single-slice
    shortcut: the partial form must apply even to one series (a lone
    series' ``count`` partial is 1-where-finite, not its raw values).
    Only aggregators with a :func:`~repro.tsdb.aggregators.mergeable`
    pair ever reach this path.
    """
    slices = [s for s in slices if len(s) > 0]
    if not slices:
        return _empty_slice()
    all_ts, stacked, _ = _stacked_for(slices, stack_cache)
    return SeriesSlice(all_ts, partial_fn(stacked))


def match_batch(
    match: Callable[[str, Mapping[str, str]], list],
    queries: Sequence[Query],
) -> list[list]:
    """Matched series per query, computing each distinct filter once."""
    cache: dict[tuple, list] = {}
    out: list[list] = []
    for q in queries:
        mk = (q.metric, tuple(sorted(q.tags.items())))
        if mk not in cache:
            cache[mk] = match(q.metric, q.tags)
        out.append(cache[mk])
    return out


# ---------------------------------------------------------------------------
# The batched executor behind store.run_many
# ---------------------------------------------------------------------------


def _canonical_key(q: Query) -> tuple:
    """Dedup identity of a query (spelling-insensitive where safe)."""
    ds = q.parsed_downsample()
    return (
        q.metric,
        tuple(sorted(q.tags.items())),
        int(q.start),
        int(q.end),
        q.aggregator,
        None if ds is None else (ds.width, ds.agg, ds.fill.value),
        bool(q.rate),
        tuple(sorted(q.group_by)),
    )


def run_batch(
    store: object,
    queries: Sequence[Query | QueryBuilder | ExprQuery],
    *,
    parallel: bool | None = None,
) -> list[QueryResult | ExprResult]:
    """Plan and execute a batch of queries together.

    Accepts a mix of :class:`Query`, builders, and :class:`ExprQuery`;
    duplicate queries (including expression operands equal to sibling
    panels) execute once.  Execution goes through the store's
    ``_run_unique_batch`` hook — the shared-scan local executor on
    :class:`~repro.tsdb.database.TSDB`, the pushdown fan-out on
    :class:`~repro.tsdb.sharded.ShardedTSDB` — falling back to one
    ``store.run`` per query for stores without the hook.  Results align
    with the input order.
    """
    specs: list[tuple] = []
    flat: list[Query] = []
    index: dict[tuple, int] = {}

    def intern(q: Query) -> int:
        ck = _canonical_key(q)
        i = index.get(ck)
        if i is None:
            i = len(flat)
            index[ck] = i
            flat.append(q)
        return i

    for item in queries:
        if isinstance(item, QueryBuilder):
            item = item.build()
        if isinstance(item, Query):
            specs.append(("q", item, intern(item)))
        elif isinstance(item, ExprQuery):
            specs.append(
                ("expr", item, {name: intern(sub) for name, sub in item.operands})
            )
        else:
            raise QueryError(
                "run_many items must be Query, QueryBuilder, or ExprQuery; "
                f"got {type(item).__name__}"
            )

    runner = getattr(store, "_run_unique_batch", None)
    if runner is None:
        flat_results = [store.run(q) for q in flat]
    else:
        flat_results = runner(flat, parallel=parallel)

    out: list[QueryResult | ExprResult] = []
    for kind, item, ref in specs:
        if kind == "q":
            res = flat_results[ref]
            if res.query is not item:
                res = QueryResult(item, res.series, res.scanned_points)
            out.append(res)
        else:
            out.append(
                _evaluate_expr(
                    item, {name: flat_results[i] for name, i in ref.items()}
                )
            )
    return out
