"""Retention and rollup policies.

City archives grow without bound (the paper's archive runs from January
2017).  A :class:`RetentionPolicy` bounds raw-data age, optionally rolling
old raw points up into a coarser metric before deletion so long-horizon
dashboards stay cheap.

Two scoped variants serve the multi-city / sharded deployments:

- :meth:`RetentionPolicy.enforce_scoped` limits a pass to series
  matching a tag filter (the regional hub's per-city horizons, scoped
  to ``city=<name>``), optionally appending ``!delete_series_before``
  markers (and teeing rollup writes) to a WAL so scoped retention
  survives replay;
- :class:`PerShardRetention` applies a distinct policy per shard of a
  :class:`~repro.tsdb.sharded.ShardedTSDB`, optionally appending the
  matching ``!delete_before`` WAL marker to each shard's log so a
  shard-by-shard replay (``restore_from_dir``) reproduces the
  post-retention state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

from .downsample import Downsample, apply as apply_downsample
from .model import DataPoint, SeriesKey

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .interface import TimeSeriesStore
    from .persistence import LogWriter, SegmentWriter
    from .sharded import ShardedTSDB


@dataclass(frozen=True)
class RolledUp:
    """Outcome of one enforcement pass."""

    dropped_points: int
    rolled_points: int
    cutoff: int


@dataclass(frozen=True)
class RetentionPolicy:
    """Keep raw points for ``raw_max_age`` seconds.

    When ``rollup`` is set (e.g. ``Downsample.parse("1h-avg")``), points
    older than the cutoff are first aggregated into
    ``<metric><rollup_suffix>`` series carrying the same tags, then the
    raw points are deleted.
    """

    raw_max_age: int
    rollup: Downsample | None = None
    rollup_suffix: str = ".rollup"

    def __post_init__(self) -> None:
        if self.raw_max_age <= 0:
            raise ValueError("raw_max_age must be positive")

    def enforce(self, db: "TimeSeriesStore", now: int) -> RolledUp:
        """Apply the policy; returns what was rolled and dropped."""
        cutoff = now - self.raw_max_age
        rolled = 0
        exclude = None
        if self.rollup is not None:
            rolled = self._roll_old_points(db, cutoff)
            exclude = self.rollup_suffix
        dropped = db.delete_before(cutoff, exclude_suffix=exclude)
        return RolledUp(dropped_points=dropped, rolled_points=rolled, cutoff=cutoff)

    def enforce_scoped(
        self,
        db: "TimeSeriesStore",
        now: int,
        tags: Mapping[str, str],
        *,
        wal: "LogWriter | SegmentWriter | None" = None,
    ) -> RolledUp:
        """Apply the policy to series matching ``tags`` only.

        Same semantics as :meth:`enforce` restricted to the matching
        series (tag filters support the query syntax: exact, ``*``,
        ``a|b``).  Deletion goes series-by-series through
        ``delete_series_before``, so other tenants of the same store —
        other cities, shared external feeds — are untouched.  With a
        ``wal`` writer attached, every effective deletion appends the
        matching ``!delete_series_before`` marker and rollup writes are
        teed as point lines, so a replayed log reproduces the scoped
        post-retention state (the same contract
        :class:`PerShardRetention` keeps for whole shards).
        """
        cutoff = now - self.raw_max_age
        rolled = 0
        exclude = None
        if self.rollup is not None:
            into = db if wal is None else _WalPutTee(db, wal)
            rolled = self._roll_old_points(db, cutoff, tags=tags, into=into)
            exclude = self.rollup_suffix
        dropped = 0
        for metric in list(db.metrics()):
            if exclude is not None and metric.endswith(exclude):
                continue
            for key in list(db.series_for_metric(metric)):
                if not key.matches(tags):
                    continue
                dropped_here = db.delete_series_before(key, cutoff)
                if dropped_here and wal is not None:
                    wal.delete_series_before(key, cutoff)
                dropped += dropped_here
        return RolledUp(dropped_points=dropped, rolled_points=rolled, cutoff=cutoff)

    def _roll_old_points(
        self,
        db: "TimeSeriesStore",
        cutoff: int,
        *,
        tags: Mapping[str, str] | None = None,
        into: "TimeSeriesStore | None" = None,
    ) -> int:
        """Aggregate pre-cutoff raw points into rollup series.

        ``tags`` restricts the pass to matching series; ``into`` routes
        the rollup *writes* to a different store than the one being read
        (per-shard retention reads one shard but writes through the
        sharded coordinator so rollup series hash-route correctly).
        """
        assert self.rollup is not None
        target_db = db if into is None else into
        rolled = 0
        # Materialize the key list first: we add rollup series while iterating.
        for metric in list(db.metrics()):
            if metric.endswith(self.rollup_suffix):
                continue  # never roll a rollup
            for key in list(db.series_for_metric(metric)):
                if tags is not None and not key.matches(tags):
                    continue
                old = db.series_slice(key, end=cutoff - 1)
                if len(old) == 0:
                    continue
                buckets = apply_downsample(old, self.rollup)
                target = SeriesKey.make(metric + self.rollup_suffix, key.tag_dict())
                for ts, val in zip(
                    buckets.timestamps.tolist(), buckets.values.tolist()
                ):
                    target_db.put(target.metric, int(ts), float(val), target.tag_dict())
                    rolled += 1
        return rolled


@dataclass(frozen=True)
class PerShardRetention:
    """Distinct retention horizons per shard of a sharded store.

    ``policies[i]`` governs shard ``i`` (None = shard exempt).  Rollups
    read shard-local raw data but write through the *coordinator*, so a
    rollup series lands in whichever shard its key hash-routes to —
    exactly where queries will look for it.  When per-shard WAL writers
    are supplied, each enforcement appends the matching
    ``!delete_before`` marker to that shard's log, keeping shard-by-
    shard replay faithful to the post-retention state.
    """

    policies: tuple["RetentionPolicy | None", ...]

    def enforce(
        self,
        db: "ShardedTSDB",
        now: int,
        *,
        wal: "Sequence[LogWriter | SegmentWriter | None] | None" = None,
    ) -> tuple[RolledUp | None, ...]:
        if len(self.policies) != db.num_shards:
            raise ValueError(
                f"{len(self.policies)} policies for {db.num_shards} shards"
            )
        if wal is not None and len(wal) != db.num_shards:
            raise ValueError(f"{len(wal)} WAL writers for {db.num_shards} shards")
        # Rollup series are *regional* state: a rollup written while
        # enforcing shard i hash-routes to whichever shard owns its key,
        # so every shard's delete pass must spare the suffix — not just
        # the shards whose own policy rolls up (otherwise shard j's
        # plain delete destroys shard i's freshly rolled history).
        suffixes = {
            p.rollup_suffix
            for p in self.policies
            if p is not None and p.rollup is not None
        }
        if len(suffixes) > 1:
            raise ValueError(
                f"mixed rollup suffixes across shard policies: {sorted(suffixes)}"
            )
        exclude = next(iter(suffixes), None)
        if wal is not None and exclude is not None and any(w is None for w in wal):
            # A rollup may hash-route to *any* shard, including ones
            # with no policy of their own; a missing writer would make
            # that shard's replay silently diverge from the live store.
            raise ValueError(
                "rollup-bearing per-shard retention requires a WAL writer "
                "for every shard (rollups may land in any shard)"
            )
        out: list[RolledUp | None] = []
        for i, (policy, shard) in enumerate(zip(self.policies, db.shards)):
            if policy is None:
                out.append(None)
                continue
            cutoff = now - policy.raw_max_age
            rolled = 0
            if policy.rollup is not None:
                # Route rollup writes through the coordinator; with WALs
                # attached, mirror each point into its owning shard's log
                # so shard-by-shard replay reproduces the rollups too.
                into = db if wal is None else _WalTeeStore(db, wal)
                rolled = policy._roll_old_points(shard, cutoff, into=into)
            dropped = shard.delete_before(cutoff, exclude_suffix=exclude)
            if wal is not None and wal[i] is not None:
                wal[i].delete_before(cutoff, exclude_suffix=exclude)
            out.append(
                RolledUp(dropped_points=dropped, rolled_points=rolled, cutoff=cutoff)
            )
        return tuple(out)


class _WalPutTee:
    """Write facade for scoped rollups: store put + a line in one WAL."""

    def __init__(
        self, db: "TimeSeriesStore", wal: "LogWriter | SegmentWriter"
    ) -> None:
        self._db = db
        self._wal = wal

    def put(self, metric, timestamp, value, tags=None) -> SeriesKey:
        key = self._db.put(metric, timestamp, value, tags)
        self._wal.write(DataPoint(key, int(timestamp), float(value)))
        return key


class _WalTeeStore:
    """Write facade: coordinator put + a point line in the owner's WAL.

    Only the ``put`` surface rollups use; everything the sharded store
    accepts lands normally, and the same point is appended to the WAL of
    the shard that owns the series, keeping per-shard logs replayable.
    """

    def __init__(
        self, db: "ShardedTSDB", wal: "Sequence[LogWriter | SegmentWriter | None]"
    ) -> None:
        self._db = db
        self._wal = wal

    def put(self, metric, timestamp, value, tags=None) -> SeriesKey:
        key = self._db.put(metric, timestamp, value, tags)
        writer = self._wal[self._db.shard_of(key)]
        if writer is not None:
            writer.write(DataPoint(key, int(timestamp), float(value)))
        return key
