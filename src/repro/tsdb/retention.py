"""Retention and rollup policies.

City archives grow without bound (the paper's archive runs from January
2017).  A :class:`RetentionPolicy` bounds raw-data age, optionally rolling
old raw points up into a coarser metric before deletion so long-horizon
dashboards stay cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .downsample import Downsample, apply as apply_downsample
from .model import SeriesKey

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .interface import TimeSeriesStore


@dataclass(frozen=True)
class RolledUp:
    """Outcome of one enforcement pass."""

    dropped_points: int
    rolled_points: int
    cutoff: int


@dataclass(frozen=True)
class RetentionPolicy:
    """Keep raw points for ``raw_max_age`` seconds.

    When ``rollup`` is set (e.g. ``Downsample.parse("1h-avg")``), points
    older than the cutoff are first aggregated into
    ``<metric><rollup_suffix>`` series carrying the same tags, then the
    raw points are deleted.
    """

    raw_max_age: int
    rollup: Downsample | None = None
    rollup_suffix: str = ".rollup"

    def __post_init__(self) -> None:
        if self.raw_max_age <= 0:
            raise ValueError("raw_max_age must be positive")

    def enforce(self, db: "TimeSeriesStore", now: int) -> RolledUp:
        """Apply the policy; returns what was rolled and dropped."""
        cutoff = now - self.raw_max_age
        rolled = 0
        exclude = None
        if self.rollup is not None:
            rolled = self._roll_old_points(db, cutoff)
            exclude = self.rollup_suffix
        dropped = db.delete_before(cutoff, exclude_suffix=exclude)
        return RolledUp(dropped_points=dropped, rolled_points=rolled, cutoff=cutoff)

    def _roll_old_points(self, db: "TimeSeriesStore", cutoff: int) -> int:
        assert self.rollup is not None
        rolled = 0
        # Materialize the key list first: we add rollup series while iterating.
        for metric in list(db.metrics()):
            if metric.endswith(self.rollup_suffix):
                continue  # never roll a rollup
            for key in list(db.series_for_metric(metric)):
                old = db.series_slice(key, end=cutoff - 1)
                if len(old) == 0:
                    continue
                buckets = apply_downsample(old, self.rollup)
                target = SeriesKey.make(metric + self.rollup_suffix, key.tag_dict())
                for ts, val in zip(
                    buckets.timestamps.tolist(), buckets.values.tolist()
                ):
                    db.put(target.metric, int(ts), float(val), target.tag_dict())
                    rolled += 1
        return rolled
