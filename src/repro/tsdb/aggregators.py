"""Aggregation functions over aligned series values.

Aggregators serve two roles, mirroring OpenTSDB:

- *cross-series* aggregation: combining the values of several series at
  the same instant (e.g. the city-wide average CO2 across nodes);
- *downsampling* aggregation: collapsing all raw points inside one time
  bucket to a single value.

All scalar functions take a 1-D float array and return a float; NaNs
are ignored (a bucket of all-NaN yields NaN).

Each scalar aggregator also has two vectorized forms that the query
engine prefers on the hot path:

- *columnar* (:func:`get_columnar`): takes a ``(n_series, n_instants)``
  matrix and reduces down the columns in one numpy pass — this is what
  replaced the per-timestamp Python loop in cross-series aggregation;
- *grouped* (:func:`grouped`): takes a value column plus ``reduceat``
  segment starts and reduces every segment at once — downsampling's
  per-bucket loop, vectorized.  Segments must be non-empty (NaNs inside
  them are fine); order-statistic aggregators (median, percentiles)
  return None and callers fall back to the scalar loop.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

Aggregator = Callable[[np.ndarray], float]
#: (n_series, n_instants) matrix -> per-instant 1-D result.
ColumnarAggregator = Callable[[np.ndarray], np.ndarray]
#: (values, segment_starts) -> per-segment 1-D result.
GroupedAggregator = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _nan_safe(fn: Callable[[np.ndarray], np.floating], empty: float = np.nan):
    def agg(values: np.ndarray) -> float:
        if values.size == 0:
            return empty
        finite = values[~np.isnan(values)]
        if finite.size == 0:
            return np.nan
        return float(fn(finite))

    return agg


avg = _nan_safe(np.mean)
total = _nan_safe(np.sum, empty=0.0)
minimum = _nan_safe(np.min)
maximum = _nan_safe(np.max)
median = _nan_safe(np.median)
dev = _nan_safe(lambda v: np.std(v, ddof=0))
first = _nan_safe(lambda v: v[0])
last = _nan_safe(lambda v: v[-1])


def count(values: np.ndarray) -> float:
    """Number of non-NaN values (0.0 for an empty bucket)."""
    if values.size == 0:
        return 0.0
    return float(np.count_nonzero(~np.isnan(values)))


def percentile(q: float) -> Aggregator:
    """Aggregator computing the ``q``-th percentile (0-100)."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100]: {q}")
    return _nan_safe(lambda v: np.percentile(v, q))


_REGISTRY: dict[str, Aggregator] = {
    "avg": avg,
    "mean": avg,
    "sum": total,
    "min": minimum,
    "max": maximum,
    "median": median,
    "dev": dev,
    "std": dev,
    "count": count,
    "first": first,
    "last": last,
    "p50": percentile(50.0),
    "p90": percentile(90.0),
    "p95": percentile(95.0),
    "p99": percentile(99.0),
}


class UnknownAggregator(KeyError):
    """Requested aggregator name is not registered."""


def get(name: str) -> Aggregator:
    """Look up an aggregator by name (e.g. ``"avg"``, ``"p95"``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownAggregator(
            f"unknown aggregator {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def names() -> list[str]:
    return sorted(_REGISTRY)


# ---------------------------------------------------------------------------
# Columnar forms: reduce a (n_series, n_instants) matrix down the columns.
# ---------------------------------------------------------------------------


def _mask_empty(out: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    out = np.asarray(out, dtype=np.float64)
    empty = np.all(np.isnan(matrix), axis=0)
    if empty.any():
        out[empty] = np.nan
    return out


def _moments(matrix: np.ndarray, cache: dict | None):
    """(finite mask, per-column counts, per-column sums), memoized.

    The shared first pass of avg/sum/dev: when the batched executor
    reuses one stacked matrix for several aggregators, ``cache`` (a
    per-stack dict) makes them pay for it once.  The arithmetic is
    exactly what each aggregator computed inline, so sharing cannot
    change a bit of the output.
    """
    if cache is not None:
        cached = cache.get("moments")
        if cached is not None:
            return cached
    finite = ~np.isnan(matrix)
    counts = finite.sum(axis=0)
    sums = np.where(finite, matrix, 0.0).sum(axis=0)
    if cache is not None:
        cache["moments"] = (finite, counts, sums)
    return finite, counts, sums


def _col_sum(matrix: np.ndarray, cache: dict | None = None) -> np.ndarray:
    finite, counts, sums = _moments(matrix, cache)
    out = np.asarray(sums, dtype=np.float64).copy()
    out[counts == 0] = np.nan
    return out


def _col_avg(matrix: np.ndarray, cache: dict | None = None) -> np.ndarray:
    finite, counts, sums = _moments(matrix, cache)
    out = np.divide(sums, counts, out=np.full(counts.shape, np.nan), where=counts > 0)
    return out


def _col_min(matrix: np.ndarray) -> np.ndarray:
    return _mask_empty(np.where(np.isnan(matrix), np.inf, matrix).min(axis=0), matrix)


def _col_max(matrix: np.ndarray) -> np.ndarray:
    return _mask_empty(np.where(np.isnan(matrix), -np.inf, matrix).max(axis=0), matrix)


def _col_dev(matrix: np.ndarray, cache: dict | None = None) -> np.ndarray:
    # Two-pass (center first): the E[x²]-E[x]² shortcut cancels
    # catastrophically for large-offset values (epoch-like series).
    finite, counts, sums = _moments(matrix, cache)
    with np.errstate(invalid="ignore", divide="ignore"):
        mean = sums / counts
        centered = np.where(finite, matrix - mean, 0.0)
        var = (centered * centered).sum(axis=0) / counts
    out = np.sqrt(var)
    out[counts == 0] = np.nan
    return out


#: Columnar aggregators accepting the shared-moments cache as a second
#: argument (the batched executor passes one dict per stacked matrix).
MOMENT_AWARE_COLUMNAR = frozenset({_col_avg, _col_sum, _col_dev})


def _col_count(matrix: np.ndarray) -> np.ndarray:
    return (~np.isnan(matrix)).sum(axis=0).astype(np.float64)


#: Columnar aggregators for which reducing a *single* series is not the
#: identity: ``count`` of one series is 1-where-finite and ``dev`` is
#: 0-where-finite, never the raw values.  ``aggregate_across``'s
#: single-slice shortcut must fall through to the full reduction for
#: these (every other registered aggregator — min/max/avg/sum/first/
#: last/median/percentiles — returns the lone value at each instant,
#: and NaN instants stay NaN, so skipping the stack is exact).
NON_IDENTITY_COLUMNAR = frozenset({_col_count, _col_dev})


def _col_first(matrix: np.ndarray) -> np.ndarray:
    finite = ~np.isnan(matrix)
    idx = np.argmax(finite, axis=0)
    out = matrix[idx, np.arange(matrix.shape[1])]
    return _mask_empty(out, matrix)


def _col_last(matrix: np.ndarray) -> np.ndarray:
    finite = ~np.isnan(matrix)
    idx = matrix.shape[0] - 1 - np.argmax(finite[::-1], axis=0)
    out = matrix[idx, np.arange(matrix.shape[1])]
    return _mask_empty(out, matrix)


def _col_median(matrix: np.ndarray) -> np.ndarray:
    if np.isnan(matrix).any():
        with np.errstate(invalid="ignore"):
            return np.asarray(_nanquiet(np.nanmedian, matrix), dtype=np.float64)
    return np.median(matrix, axis=0)


def _col_percentile(q: float) -> ColumnarAggregator:
    def columnar(matrix: np.ndarray) -> np.ndarray:
        if np.isnan(matrix).any():
            return np.asarray(
                _nanquiet(np.nanpercentile, matrix, q), dtype=np.float64
            )
        return np.percentile(matrix, q, axis=0)

    return columnar


def _nanquiet(fn, matrix: np.ndarray, *args) -> np.ndarray:
    """Run a nan-reduction silencing the all-NaN-slice RuntimeWarning."""
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return fn(matrix, *args, axis=0)


_COLUMNAR: dict[str, ColumnarAggregator] = {
    "avg": _col_avg,
    "mean": _col_avg,
    "sum": _col_sum,
    "min": _col_min,
    "max": _col_max,
    "median": _col_median,
    "dev": _col_dev,
    "std": _col_dev,
    "count": _col_count,
    "first": _col_first,
    "last": _col_last,
    "p50": _col_percentile(50.0),
    "p90": _col_percentile(90.0),
    "p95": _col_percentile(95.0),
    "p99": _col_percentile(99.0),
}


def get_columnar(name: str) -> ColumnarAggregator:
    """Columnar form of a registered aggregator (always available)."""
    get(name)  # raise UnknownAggregator consistently
    return _COLUMNAR[name]


# ---------------------------------------------------------------------------
# Mergeable forms: distributed partial aggregation for shard pushdown.
# A (partial, merge) pair decomposes the cross-series aggregate: each
# shard reduces its own series to a partial column (on its local
# timestamp union) and the coordinator reduces the partial columns.
# Only aggregators whose merge is *bit-identical* to a single pass over
# all series are listed: min/max are exactly associative and
# commutative, and count sums small integers (exact in float64).  Float
# folds (avg/sum/dev) are excluded on purpose — regrouping the
# additions by shard changes the last ulp — as are order statistics,
# which have no fixed-size partial at all.
# ---------------------------------------------------------------------------


def _col_count_merge(matrix: np.ndarray) -> np.ndarray:
    """Sum per-shard finite counts; a shard with no point contributes 0."""
    return np.where(np.isnan(matrix), 0.0, matrix).sum(axis=0)


_MERGEABLE: dict[str, tuple[ColumnarAggregator, ColumnarAggregator]] = {
    "min": (_col_min, _col_min),
    "max": (_col_max, _col_max),
    "count": (_col_count, _col_count_merge),
}


def mergeable(name: str) -> tuple[ColumnarAggregator, ColumnarAggregator] | None:
    """``(partial, merge)`` columnar pair, or None when the aggregator
    cannot be decomposed without changing results (float-fold and
    order-statistic aggregators run centrally instead)."""
    get(name)
    return _MERGEABLE.get(name)


# ---------------------------------------------------------------------------
# Grouped forms: reduce contiguous segments of a value column at once.
# Segments are given by their start offsets (np.reduceat convention) and
# must be non-empty; NaNs within a segment are ignored.
# ---------------------------------------------------------------------------


def _seg_counts(finite: np.ndarray, starts: np.ndarray) -> np.ndarray:
    return np.add.reduceat(finite.astype(np.float64), starts)


def _grp_sum(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    finite = ~np.isnan(values)
    sums = np.add.reduceat(np.where(finite, values, 0.0), starts)
    sums[_seg_counts(finite, starts) == 0] = np.nan
    return sums


def _grp_avg(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    finite = ~np.isnan(values)
    counts = _seg_counts(finite, starts)
    sums = np.add.reduceat(np.where(finite, values, 0.0), starts)
    return np.divide(sums, counts, out=np.full(counts.shape, np.nan), where=counts > 0)


def _grp_min(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    finite = ~np.isnan(values)
    out = np.minimum.reduceat(np.where(finite, values, np.inf), starts)
    out[_seg_counts(finite, starts) == 0] = np.nan
    return out


def _grp_max(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    finite = ~np.isnan(values)
    out = np.maximum.reduceat(np.where(finite, values, -np.inf), starts)
    out[_seg_counts(finite, starts) == 0] = np.nan
    return out


def _grp_dev(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    # Two-pass like _col_dev: center each segment on its own mean
    # before squaring to avoid catastrophic cancellation.
    finite = ~np.isnan(values)
    counts = _seg_counts(finite, starts)
    sums = np.add.reduceat(np.where(finite, values, 0.0), starts)
    lengths = np.diff(np.concatenate([starts, [values.shape[0]]]))
    with np.errstate(invalid="ignore", divide="ignore"):
        mean = sums / counts
        centered = np.where(finite, values - np.repeat(mean, lengths), 0.0)
        var = np.add.reduceat(centered * centered, starts) / counts
    out = np.sqrt(var)
    out[counts == 0] = np.nan
    return out


def _grp_count(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    return _seg_counts(~np.isnan(values), starts)


def _grp_first(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    n = values.shape[0]
    finite = ~np.isnan(values)
    # Index of the first finite row per segment (n = "no finite row").
    cand = np.where(finite, np.arange(n), n)
    firsts = np.minimum.reduceat(cand, starts)
    out = values[np.minimum(firsts, n - 1)].astype(np.float64)
    out[firsts == n] = np.nan
    return out


def _grp_last(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    finite = ~np.isnan(values)
    cand = np.where(finite, np.arange(values.shape[0]), -1)
    lasts = np.maximum.reduceat(cand, starts)
    out = values[np.maximum(lasts, 0)].astype(np.float64)
    out[lasts < 0] = np.nan
    return out


_GROUPED: dict[str, GroupedAggregator] = {
    "avg": _grp_avg,
    "mean": _grp_avg,
    "sum": _grp_sum,
    "min": _grp_min,
    "max": _grp_max,
    "dev": _grp_dev,
    "std": _grp_dev,
    "count": _grp_count,
    "first": _grp_first,
    "last": _grp_last,
    # median / percentiles are order statistics; no reduceat form.
}


def grouped(name: str) -> GroupedAggregator | None:
    """Reduceat form of an aggregator, or None when only the scalar
    per-segment loop can compute it (median, percentiles)."""
    get(name)
    return _GROUPED.get(name)
