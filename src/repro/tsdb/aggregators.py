"""Aggregation functions over aligned series values.

Aggregators serve two roles, mirroring OpenTSDB:

- *cross-series* aggregation: combining the values of several series at
  the same instant (e.g. the city-wide average CO2 across nodes);
- *downsampling* aggregation: collapsing all raw points inside one time
  bucket to a single value.

All functions take a 1-D float array and return a float; NaNs are
ignored (a bucket of all-NaN yields NaN).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

Aggregator = Callable[[np.ndarray], float]


def _nan_safe(fn: Callable[[np.ndarray], np.floating], empty: float = np.nan):
    def agg(values: np.ndarray) -> float:
        if values.size == 0:
            return empty
        finite = values[~np.isnan(values)]
        if finite.size == 0:
            return np.nan
        return float(fn(finite))

    return agg


avg = _nan_safe(np.mean)
total = _nan_safe(np.sum, empty=0.0)
minimum = _nan_safe(np.min)
maximum = _nan_safe(np.max)
median = _nan_safe(np.median)
dev = _nan_safe(lambda v: np.std(v, ddof=0))
first = _nan_safe(lambda v: v[0])
last = _nan_safe(lambda v: v[-1])


def count(values: np.ndarray) -> float:
    """Number of non-NaN values (0.0 for an empty bucket)."""
    if values.size == 0:
        return 0.0
    return float(np.count_nonzero(~np.isnan(values)))


def percentile(q: float) -> Aggregator:
    """Aggregator computing the ``q``-th percentile (0-100)."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100]: {q}")
    return _nan_safe(lambda v: np.percentile(v, q))


_REGISTRY: dict[str, Aggregator] = {
    "avg": avg,
    "mean": avg,
    "sum": total,
    "min": minimum,
    "max": maximum,
    "median": median,
    "dev": dev,
    "std": dev,
    "count": count,
    "first": first,
    "last": last,
    "p50": percentile(50.0),
    "p90": percentile(90.0),
    "p95": percentile(95.0),
    "p99": percentile(99.0),
}


class UnknownAggregator(KeyError):
    """Requested aggregator name is not registered."""


def get(name: str) -> Aggregator:
    """Look up an aggregator by name (e.g. ``"avg"``, ``"p95"``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownAggregator(
            f"unknown aggregator {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def names() -> list[str]:
    return sorted(_REGISTRY)
