"""Batch-path equivalence for stream operators.

A chain fed columnar `EventBatch` blocks must produce the same output as
the same chain fed the same events one at a time — whether a stage has a
vectorized form or falls back to per-event processing.
"""

import numpy as np
import pytest

from repro.streams import (
    BatchSink,
    Event,
    EventBatch,
    Filter,
    Map,
    Segmenter,
    Sink,
    Source,
    TumblingWindow,
    chain,
)


def make_batch(ts, vals, tags=None):
    return EventBatch(np.asarray(ts), np.asarray(vals), dict(tags or {}))


class TestEventBatch:
    def test_iterates_as_events(self):
        batch = make_batch([1, 2], [1.0, 2.0], {"city": "vejle"})
        events = list(batch)
        assert events[0] == Event(1, 1.0, {"city": "vejle"})
        assert len(batch) == 2

    def test_from_events_roundtrip(self):
        events = [Event(1, 1.0), Event(5, 5.0)]
        batch = EventBatch.from_events(events)
        assert batch.timestamps.tolist() == [1, 5]
        assert batch.values.tolist() == [1.0, 5.0]

    def test_from_events_keeps_shared_tags(self):
        events = [Event(1, 1.0, {"seg": "0"}), Event(2, 2.0, {"seg": "0"})]
        assert EventBatch.from_events(events).tags == {"seg": "0"}

    def test_from_events_rejects_mixed_tags(self):
        events = [Event(1, 1.0, {"seg": "0"}), Event(2, 2.0, {"seg": "1"})]
        with pytest.raises(ValueError):
            EventBatch.from_events(events)
        # explicit override is the escape hatch
        batch = EventBatch.from_events(events, tags={"seg": "mixed"})
        assert batch.tags == {"seg": "mixed"}

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            EventBatch(np.array([1, 2]), np.array([1.0]))


class TestBatchScalarEquivalence:
    def build_chain(self, vectorized):
        src = Source()
        mapped = Map(
            lambda e: Event(e.timestamp, e.value * 2.0, e.tags),
            vector_fn=(lambda ts, v: (ts, v * 2.0)) if vectorized else None,
        )
        kept = Filter(
            lambda e: e.value > 0,
            vector_predicate=(lambda ts, v: v > 0) if vectorized else None,
        )
        window = TumblingWindow(60, aggregate=np.mean)
        sink = Sink()
        chain(src, mapped, kept, window, sink)
        return src, sink

    @pytest.mark.parametrize("vectorized", [False, True])
    def test_batched_chain_matches_per_event_chain(self, vectorized):
        rng = np.random.default_rng(11)
        ts = np.sort(rng.integers(0, 1_000, size=400)).astype(np.int64)
        vals = rng.normal(size=400)

        scalar_src, scalar_sink = self.build_chain(vectorized=False)
        scalar_src.push_many(Event(int(t), float(v)) for t, v in zip(ts, vals))
        scalar_src.flush()

        batch_src, batch_sink = self.build_chain(vectorized=vectorized)
        for lo in range(0, 400, 64):  # uneven final chunk on purpose
            batch_src.push_batch(make_batch(ts[lo : lo + 64], vals[lo : lo + 64]))
        batch_src.flush()

        assert scalar_sink.timestamps().tolist() == batch_sink.timestamps().tolist()
        assert np.allclose(scalar_sink.values(), batch_sink.values())

    def test_counts_match_between_paths(self):
        src, _ = self.build_chain(vectorized=True)
        src.push_batch(make_batch([0, 1, 2], [1.0, -1.0, 2.0]))
        assert src.received == 3
        assert src.emitted == 3

    def test_late_events_fold_into_open_window(self):
        """Batch path applies the same event-time rule as per-event."""
        for use_batch in (False, True):
            window = TumblingWindow(60, aggregate=np.sum)
            sink = Sink()
            window.to(sink)
            events = [(0, 1.0), (61, 2.0), (30, 4.0), (122, 8.0)]
            if use_batch:
                window.push_batch(
                    make_batch([t for t, _ in events], [v for _, v in events])
                )
            else:
                for t, v in events:
                    window.push(Event(t, v))
            window.flush()
            # 30 arrives after the [60,120) window opened -> folds into it.
            assert sink.timestamps().tolist() == [0, 60, 120]
            assert sink.values().tolist() == [1.0, 6.0, 8.0]

    def test_filter_integer_mask_is_treated_as_boolean(self):
        """A 0/1 int mask must filter, not fancy-index duplicate rows."""
        kept = Filter(
            lambda e: e.value > 0,
            vector_predicate=lambda ts, v: (v > 0).astype(int),
        )
        sink = BatchSink()
        kept.to(sink)
        kept.push_batch(make_batch([1, 2, 3], [-1.0, 5.0, 7.0]))
        assert sink.values().tolist() == [5.0, 7.0]

    def test_filter_vector_mask_all_and_none(self):
        kept = Filter(lambda e: e.value > 0, vector_predicate=lambda ts, v: v > 0)
        sink = BatchSink()
        kept.to(sink)
        kept.push_batch(make_batch([1, 2], [1.0, 2.0]))
        kept.push_batch(make_batch([3, 4], [-1.0, -2.0]))
        assert sink.timestamps().tolist() == [1, 2]
        assert kept.emitted == 2


class TestBatchSink:
    def test_collects_batches_and_single_events(self):
        sink = BatchSink()
        sink.push_batch(make_batch([1, 2], [1.0, 2.0]))
        sink.push(Event(3, 3.0))
        assert len(sink) == 3
        assert sink.timestamps().tolist() == [1, 2, 3]
        assert sink.values().tolist() == [1.0, 2.0, 3.0]

    def test_empty(self):
        sink = BatchSink()
        assert len(sink) == 0
        assert sink.timestamps().tolist() == []
        assert sink.values().tolist() == []


class TestFallbackOperators:
    def test_segmenter_handles_batches_via_fallback(self):
        segments = []
        seg = Segmenter(10, on_segment=segments.append)
        sink = Sink()
        seg.to(sink)
        seg.push_batch(make_batch([0, 5, 100, 103], [1.0, 2.0, 3.0, 4.0]))
        seg.flush()
        assert len(segments) == 2
        assert [e.timestamp for e in segments[0]] == [0, 5]
        assert sink.events[-1].tags["segment"] == 1

    def test_plain_operator_forwards_batches(self):
        from repro.streams import Operator

        head = Operator()
        sink = BatchSink()
        head.to(sink)
        head.push_batch(make_batch([1], [1.0]))
        assert sink.timestamps().tolist() == [1]
