"""RegionalHub: multi-city fan-in equivalence, backpressure, lifecycle.

The acceptance gates of the fan-in layer:

- an N-city hub run over a sharded store is *byte-identical* (snapshot
  ``dumps``) to one merged dataport writing the same traffic into a
  single store;
- a deliberately throttled regional store triggers backpressure
  (bounded queue depth, exact drop/stall accounting) instead of
  stalling ingestion;
- per-city retention policies prune only their own city's series;
- the ecosystem/CLI wiring routes hop-5 writes through the hub without
  changing what ends up queryable.
"""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core import (
    CttEcosystem,
    EcosystemConfig,
    trondheim_deployment,
    vejle_deployment,
)
from repro.dataport import BatchingTsdbWriter
from repro.region import AsyncBatchQueue, Backpressure, CityIngress, CityPolicy, RegionalHub
from repro.simclock import HOUR, Scheduler, SimClock
from repro.streams import EventBatch, Source, StoreSink
from repro.tsdb import (
    Downsample,
    PointBatch,
    Query,
    RetentionPolicy,
    ShardedTSDB,
    TSDB,
    dumps,
)
from repro.viz import build_regional_dashboard

CITIES = ("trondheim", "vejle", "bergen", "aarhus")
METRICS = ("air.co2.ppm", "air.no2.ugm3", "weather.temperature.c")


def city_traffic(city: str, seed: int, n_batches: int = 30, rows: int = 100):
    """Deterministic per-city batches (city tag included, like a dataport)."""
    rng = np.random.default_rng([seed, hash(city) % 2**31])
    batches = []
    ts0 = 0
    for _ in range(n_batches):
        ts = ts0 + np.sort(rng.integers(0, 300, size=rows)).astype(np.int64)
        metric = METRICS[int(rng.integers(len(METRICS)))]
        node = f"ctt-{int(rng.integers(5)):02d}"
        vals = rng.normal(400.0, 20.0, size=rows)
        batches.append(
            PointBatch.for_series(metric, ts, vals, {"node": node, "city": city})
        )
        ts0 += 300
    return batches


class TestCityIngress:
    def test_stamps_city_tag_only_when_missing(self):
        q = AsyncBatchQueue(1000)
        ingress = CityIngress("vejle", q)
        ingress.put_batch(
            PointBatch.for_series("air.co2.ppm", [1], [400.0], {"node": "a"})
        )
        ingress.put_batch(
            PointBatch.for_series(
                "air.co2.ppm", [2], [401.0], {"node": "a", "city": "trondheim"}
            )
        )
        out = q.drain()
        tags = sorted(key.tag("city") for key in out.keys)
        assert tags == ["trondheim", "vejle"]

    def test_batching_writer_is_the_enqueue_side(self):
        """The dataport's hop-5 writer plugs into a fan-in lane unchanged."""
        scheduler = Scheduler(SimClock(start=0))
        store = TSDB()
        hub = RegionalHub(store, scheduler, flush_interval_s=10)
        ingress = hub.register_city(CityPolicy("trondheim", queue_capacity=300))
        writer = BatchingTsdbWriter(ingress, max_pending=100)
        for i in range(250):
            writer.add("air.co2.ppm", i, 400.0 + i, {"node": "n1"})
        writer.flush()
        assert writer.written == 250
        assert writer.pending == 0
        hub.drain_all()
        assert store.exact_point_count() == 250
        (key,) = store.series_for_metric("air.co2.ppm")
        assert key.tag("city") == "trondheim"

    def test_oversized_put_under_drop_oldest_keeps_newest_capacity_rows(self):
        """The lossy policies take oversized batches whole: the queue's
        trim keeps the newest `capacity` rows, where slice-by-slice
        enqueueing would let each slice evict the previous one."""
        q = AsyncBatchQueue(50, Backpressure.DROP_OLDEST)
        ingress = CityIngress("vejle", q)
        assert ingress.put_batch(
            PointBatch.for_series("air.co2.ppm", np.arange(101), np.ones(101))
        ) == 101
        assert q.drain().timestamps.tolist() == list(range(51, 101))

    def test_oversized_put_splits_to_capacity_slices(self):
        q = AsyncBatchQueue(50, Backpressure.BLOCK)
        ingress = CityIngress("vejle", q)
        n = ingress.put_batch(
            PointBatch.for_series("air.co2.ppm", np.arange(175), np.ones(175))
        )
        assert n == 175
        assert q.depth_points <= 50
        # 50 queued, 125 stalled upstream — nothing lost, bound honoured.
        assert q.depth_points + ingress.stalled_points == 175
        drained = []
        while not q.is_empty() or ingress.backpressured:
            drained.extend(q.drain().timestamps.tolist())
            ingress.retry_stalled()
        assert drained == list(range(175))


class TestFanInEquivalence:
    @pytest.mark.parametrize("backpressure", ["block", "spill"])
    def test_four_city_hub_matches_single_merged_dataport(
        self, tmp_path, backpressure
    ):
        """ISSUE acceptance: 4-city fan-in over a sharded store is
        byte-identical to one merged dataport over a single store."""
        traffic = {city: city_traffic(city, seed=7) for city in CITIES}

        # Reference: one merged dataport writing straight into one store.
        reference = TSDB()
        for city in CITIES:
            for batch in traffic[city]:
                reference.put_batch(batch)

        # Fan-in: 4 lanes with tight queues (forcing stall/spill churn)
        # draining into a 4-shard regional store on scheduler ticks.
        scheduler = Scheduler(SimClock(start=0))
        store = ShardedTSDB(4)
        hub = RegionalHub(
            store, scheduler, flush_interval_s=60, spill_dir=tmp_path / "spill"
        )
        lanes = {
            city: hub.register_city(
                CityPolicy(
                    city,
                    queue_capacity=250,
                    backpressure=backpressure,
                    max_flush_points=400,
                )
            )
            for city in CITIES
        }
        hub.start()
        # Interleave cities round-robin, pumping the clock as we go.
        for i in range(max(len(b) for b in traffic.values())):
            for city in CITIES:
                if i < len(traffic[city]):
                    lanes[city].put_batch(traffic[city][i])
            scheduler.run_for(60)
        hub.drain_all()

        # Byte-identical snapshots (store-agnostic canonical order).
        assert dumps(store) == dumps(reference)
        # And identical query/aggregate output through the shared plan.
        for metric in METRICS:
            q = Query(
                metric, 0, 10**7, aggregator="sum",
                downsample="10m-avg", group_by=("city",),
            )
            got, want = store.run(q), reference.run(q)
            assert len(got.series) == len(want.series)
            for g, w in zip(got.series, want.series):
                assert g.group_tags == w.group_tags
                np.testing.assert_array_equal(g.timestamps, w.timestamps)
                np.testing.assert_array_equal(g.values, w.values)
        # No data was dropped on the way through.
        for city in CITIES:
            assert hub.city_stats(city)["dropped_points"] == 0


class TestBackpressure:
    def _flood(self, policy: CityPolicy, tmp_path=None):
        """Feed 10k points at 2x the throttled store's drain bandwidth."""
        scheduler = Scheduler(SimClock(start=0))
        store = TSDB()
        hub = RegionalHub(store, scheduler, flush_interval_s=10,
                          spill_dir=tmp_path)
        ingress = hub.register_city(policy)
        hub.start()
        produced = 0
        for i in range(25):  # bursts of 2x200 vs one 200-batch flushed/tick
            for _ in range(2):
                batch = PointBatch.for_series(
                    "air.co2.ppm",
                    np.arange(produced, produced + 200, dtype=np.int64),
                    np.ones(200),
                    {"node": "n1", "city": policy.city},
                )
                assert ingress.put_batch(batch) == 200
                produced += 200
            scheduler.run_for(10)  # one hub tick → at most 200 flushed
            assert hub.queue(policy.city).depth_points <= policy.queue_capacity
        return scheduler, store, hub, ingress, produced

    def test_block_bounds_queue_and_loses_nothing(self):
        policy = CityPolicy(
            "trondheim", queue_capacity=1_000,
            backpressure=Backpressure.BLOCK, max_flush_points=200,
        )
        scheduler, store, hub, ingress, produced = self._flood(policy)
        # The slow store backpressured the lane instead of stalling hop 4.
        assert ingress.backpressured
        assert ingress.stalled_points > 0
        assert hub.queue("trondheim").stats.refused_offers > 0
        hub.drain_all()
        assert store.exact_point_count() == produced  # zero loss
        assert hub.queue("trondheim").stats.dropped_points == 0

    def test_drop_oldest_accounts_exactly_and_keeps_newest(self):
        policy = CityPolicy(
            "trondheim", queue_capacity=1_000,
            backpressure=Backpressure.DROP_OLDEST, max_flush_points=200,
        )
        scheduler, store, hub, ingress, produced = self._flood(policy)
        hub.drain_all()
        stats = hub.queue("trondheim").stats
        assert stats.dropped_points > 0
        assert store.exact_point_count() == produced - stats.dropped_points
        # The newest measurement always survives drop-oldest.
        sl = store.series_slice(store.series_for_metric("air.co2.ppm")[0])
        assert int(sl.timestamps[-1]) == produced - 1
        assert not ingress.backpressured

    def test_spill_absorbs_overflow_without_loss(self, tmp_path):
        policy = CityPolicy(
            "trondheim", queue_capacity=1_000,
            backpressure=Backpressure.SPILL, max_flush_points=200,
        )
        scheduler, store, hub, ingress, produced = self._flood(
            policy, tmp_path=tmp_path
        )
        assert hub.queue("trondheim").stats.spilled_points > 0
        hub.drain_all()
        assert store.exact_point_count() == produced  # zero loss
        assert hub.queue("trondheim").spill_pending_points == 0


class TestPerCityRetention:
    def test_scoped_retention_prunes_only_its_city(self):
        scheduler = Scheduler(SimClock(start=0))
        store = ShardedTSDB(3)
        hub = RegionalHub(store, scheduler, flush_interval_s=60)
        pol_a = CityPolicy(
            "trondheim",
            retention=RetentionPolicy(
                raw_max_age=3600, rollup=Downsample.parse("1h-avg")
            ),
        )
        pol_b = CityPolicy("vejle")  # no retention: full history kept
        a, b = hub.register_city(pol_a), hub.register_city(pol_b)
        ts = np.arange(0, 8 * 3600, 600, dtype=np.int64)
        vals = np.linspace(380.0, 420.0, ts.size)
        a.put_batch(PointBatch.for_series("air.co2.ppm", ts, vals, {"node": "a"}))
        b.put_batch(PointBatch.for_series("air.co2.ppm", ts, vals, {"node": "b"}))
        # A shared, city-less series must never be touched by city policies.
        hub.drain_all()
        store.put_series("traffic.jam_factor", ts, vals, {"road": "e6"})

        now = int(ts[-1])
        results = hub.enforce_retention(now)
        assert set(results) == {"trondheim"}
        cutoff = now - 3600

        (key_a,) = [
            k for k in store.series_for_metric("air.co2.ppm")
            if k.tag("city") == "trondheim"
        ]
        (key_b,) = [
            k for k in store.series_for_metric("air.co2.ppm")
            if k.tag("city") == "vejle"
        ]
        assert int(store.series_slice(key_a).timestamps[0]) >= cutoff
        assert int(store.series_slice(key_b).timestamps[0]) == 0  # untouched
        shared = store.series_slice(
            store.series_for_metric("traffic.jam_factor")[0]
        )
        assert int(shared.timestamps[0]) == 0  # untouched
        # Rollup series exists, tagged with the city, holding the old data.
        rollup_keys = store.series_for_metric("air.co2.ppm.rollup")
        assert [k.tag("city") for k in rollup_keys] == ["trondheim"]
        assert results["trondheim"].rolled_points == len(
            store.series_slice(rollup_keys[0])
        )


    def test_retention_drains_backlog_before_rolling(self):
        """Stragglers queued behind a throttle must flush before the
        rollup pass; otherwise a later pass re-rolls only the stragglers
        and last-write-wins overwrites the correct bucket average."""
        scheduler = Scheduler(SimClock(start=0))
        store = TSDB()
        hub = RegionalHub(store, scheduler, flush_interval_s=60)
        policy = CityPolicy(
            "trondheim",
            max_flush_points=6,  # throttled: backlog builds up
            retention=RetentionPolicy(
                raw_max_age=3600, rollup=Downsample.parse("1h-avg")
            ),
        )
        ingress = hub.register_city(policy)
        ts = np.arange(0, 3600, 300, dtype=np.int64)  # one pre-cutoff hour
        vals = np.linspace(100.0, 210.0, ts.size)
        for i in range(ts.size):  # one batch per point → 12 queued batches
            ingress.put_batch(
                PointBatch.for_series(
                    "air.co2.ppm", ts[i : i + 1], vals[i : i + 1], {"node": "a"}
                )
            )
        now = 2 * 3600
        hub.enforce_retention(now)
        (rollup_key,) = store.series_for_metric("air.co2.ppm.rollup")
        sl = store.series_slice(rollup_key)
        # One bucket holding the average of ALL twelve points — not just
        # the throttled slice that happened to be flushed already.
        assert sl.timestamps.tolist() == [0]
        np.testing.assert_allclose(sl.values, [vals.mean()])
        assert store.series_for_metric("air.co2.ppm") == []  # raw pruned


class TestEcosystemWiring:
    def test_regional_run_matches_direct_run_byte_for_byte(self):
        """Same seed, same traffic: hub fan-in vs direct hop-5 writes."""
        deployments = [trondheim_deployment(), vejle_deployment()]

        direct = CttEcosystem(
            deployments, config=EcosystemConfig(seed=11, tsdb_shards=2)
        )
        direct.start()
        direct.run(2 * HOUR)

        regional = CttEcosystem(
            [trondheim_deployment(), vejle_deployment()],
            config=EcosystemConfig(
                seed=11,
                tsdb_shards=2,
                cities=(
                    CityPolicy("trondheim", queue_capacity=2_000),
                    CityPolicy("vejle", queue_capacity=500),
                ),
                region_flush_interval_s=120,
            ),
        )
        assert regional.hub is not None
        assert regional.hub.cities == ["trondheim", "vejle"]
        regional.start()
        regional.run(2 * HOUR)
        regional.flush_region()

        assert regional.db.exact_point_count() > 0
        assert dumps(regional.db) == dumps(direct.db)
        for city in ("trondheim", "vejle"):
            assert regional.hub.city_stats(city)["flushed_points"] > 0

    def test_cli_region_run(self, capsys):
        rc = cli_main([
            "run", "--cities", "trondheim,vejle", "--hours", "1",
            "--queue-depth", "500", "--backpressure", "drop-oldest",
            "--shards", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "regional fan-in: 2 cities" in out
        assert "[trondheim]" in out and "[vejle]" in out
        assert "accepted_points" in out

    def test_policy_for_undeployed_city_rejected(self):
        with pytest.raises(ValueError, match="undeployed"):
            CttEcosystem(
                [vejle_deployment()],
                config=EcosystemConfig(cities=(CityPolicy("trondheim"),)),
            )

    def test_cli_rejects_duplicate_cities(self):
        with pytest.raises(SystemExit):
            cli_main(["run", "--cities", "vejle,vejle", "--hours", "1"])


class TestStreamsBridge:
    def test_store_sink_feeds_a_fanin_lane(self):
        scheduler = Scheduler(SimClock(start=0))
        store = TSDB()
        hub = RegionalHub(store, scheduler, flush_interval_s=10)
        ingress = hub.register_city(CityPolicy("vejle"))
        source = Source()
        sink = StoreSink(ingress, "air.co2.ppm", {"node": "s1"}, flush_every=50)
        source.to(sink)
        source.push_batch(
            EventBatch(np.arange(100, dtype=np.int64), np.full(100, 415.0))
        )
        sink.flush()
        hub.drain_all()
        assert store.exact_point_count() == 100
        (key,) = store.series_for_metric("air.co2.ppm")
        assert key.tag("city") == "vejle"  # lane namespacing applied
        assert key.tag("node") == "s1"


class TestRegionalQueries:
    def test_query_cities_matches_per_city_runs(self):
        """The batched per-city helper returns exactly what N separate
        city-scoped run() calls would, in registration order."""
        scheduler = Scheduler(SimClock(start=0))
        store = ShardedTSDB(3)
        hub = RegionalHub(store, scheduler, flush_interval_s=10)
        for city in ("trondheim", "vejle", "bergen"):
            ingress = hub.register_city(CityPolicy(city))
            for batch in city_traffic(city, seed=7, n_batches=5):
                ingress.put_batch(batch)
        hub.drain_all()
        results = hub.query_cities(
            "air.co2.ppm", 0, 10**6, downsample="5m-avg", group_by=("node",)
        )
        assert list(results) == hub.cities
        for city, res in results.items():
            ref = store.run(
                Query(
                    "air.co2.ppm", 0, 10**6, tags={"city": city},
                    downsample="5m-avg", group_by=("node",),
                )
            )
            assert res.scanned_points == ref.scanned_points
            assert len(res) == len(ref)
            for sa, sb in zip(res, ref):
                assert dict(sa.group_tags) == dict(sb.group_tags)
                assert np.array_equal(sa.timestamps, sb.timestamps)
                assert np.array_equal(sa.values, sb.values, equal_nan=True)


class TestRegionalDashboard:
    def test_renders_per_city_panels_and_health(self):
        scheduler = Scheduler(SimClock(start=0))
        store = TSDB()
        hub = RegionalHub(store, scheduler, flush_interval_s=10)
        for city in ("trondheim", "vejle"):
            ingress = hub.register_city(CityPolicy(city))
            ingress.put_batch(
                PointBatch.for_series(
                    "air.co2.ppm",
                    np.arange(0, 7200, 600, dtype=np.int64),
                    np.linspace(390, 430, 12),
                    {"node": "n1"},
                )
            )
        hub.drain_all()
        dash = build_regional_dashboard(hub, 0, 7200)
        text = dash.render_text()
        assert "Regional fan-in — 2 cities" in text
        assert "trondheim" in text and "vejle" in text
        assert "Fan-in health" in text
        assert "air.co2.ppm by city" in text
        html = dash.render_html()
        assert "Fan-in health" in html
