"""Tests for satellite measurement grounding."""

import numpy as np
import pytest

from repro.analytics import ground_against_satellite
from repro.geo import BoundingBox, TRONDHEIM
from repro.integration import Oco2Connector
from repro.sensors import UrbanEnvironment
from repro.simclock import DAY, HOUR
from repro.tsdb import METRIC_CO2, TSDB


@pytest.fixture(scope="module")
def grounded_setup():
    """90 days of hourly network CO2 plus a satellite over the region."""
    env = UrbanEnvironment("trondheim", TRONDHEIM, seed=7)
    region = BoundingBox.around(TRONDHEIM, 8000.0)
    satellite = Oco2Connector(region, env, seed=5, cloud_failure_limit=1.1)
    db = TSDB()
    start, end = 0, 90 * DAY
    for ts in range(start, end, HOUR):
        # Two nodes sampling the true field (grounding compares signals,
        # not calibration, so truth-level data keeps the test focused).
        for i, bearing in enumerate((0.0, 120.0)):
            loc = TRONDHEIM.destination(bearing, 600.0)
            db.put(
                METRIC_CO2,
                ts,
                env.co2_ppm(ts, loc),
                {"city": "trondheim", "node": f"n{i}"},
            )
    return db, satellite, start, end


class TestGrounding:
    def test_report_covers_overpasses(self, grounded_setup):
        db, satellite, start, end = grounded_setup
        report = ground_against_satellite(db, satellite, "trondheim", start, end)
        assert len(report) >= 4  # ~5-6 overpasses in 90 days
        for c in report.comparisons:
            assert c.n_soundings > 0
            assert 380.0 < c.satellite_xco2_ppm < 430.0

    def test_column_enhancement_diluted(self, grounded_setup):
        """The physical shape: column enhancements are much smaller than
        surface enhancements (the ~1/30 dilution)."""
        db, satellite, start, end = grounded_setup
        report = ground_against_satellite(db, satellite, "trondheim", start, end)
        surf = np.mean(
            [abs(c.network_enhancement_ppm) for c in report.comparisons]
        )
        sat = np.mean(
            [abs(c.satellite_enhancement_ppm) for c in report.comparisons]
        )
        assert surf > sat  # dilution in the right direction

    def test_mostly_consistent(self, grounded_setup):
        db, satellite, start, end = grounded_setup
        report = ground_against_satellite(db, satellite, "trondheim", start, end)
        assert report.consistent_fraction >= 0.5

    def test_background_defaulting(self, grounded_setup):
        db, satellite, start, end = grounded_setup
        report = ground_against_satellite(db, satellite, "trondheim", start, end)
        assert 380.0 < report.background_ppm < 430.0

    def test_needs_network_data(self, grounded_setup):
        db, satellite, start, end = grounded_setup
        empty = TSDB()
        with pytest.raises(ValueError):
            ground_against_satellite(empty, satellite, "trondheim", start, end)
